#!/usr/bin/env python3
"""Nondeterminism lint for the quicsteps simulation sources.

Every published number in this repository is a pure function of (config,
seed); that only holds if simulation code never consults a wall clock, the
libc RNG, or a hash container whose iteration order depends on the
allocator. This lint bans those patterns from src/ outright:

  wall-clock        std::chrono (system_clock/steady_clock/...), time(),
                    clock(), gettimeofday, clock_gettime — simulated time
                    comes from sim::Time / the EventLoop, never the host.
  libc-rand         rand(), srand(), *rand48 — all modelled noise draws
                    from the seeded sim::Rng.
  random-device     std::random_device — nondeterministic by definition.
  unordered-container
                    std::unordered_{map,set,multimap,multiset} — iteration
                    order is allocator/libc++-dependent; anything that
                    feeds output or event order from one is a heisenbug.
                    Use std::map, a sorted vector, or net::CountersTable.
  thread-sleep      std::this_thread::sleep_* — wall-clock waiting has no
                    place in a discrete-event simulation.
  include-guard     every header must open with #pragma once.

Legitimate exceptions (none today) go in tools/lint_allowlist.txt as
"<path-relative-to-repo>:<rule>" lines; everything else is a hard failure.

Usage: quicsteps_lint.py [--root REPO_ROOT] [--allowlist FILE] [PATHS...]
Exit status: 0 clean, 1 violations found, 2 bad invocation.
"""

import argparse
import re
import sys
from pathlib import Path

# rule name -> compiled pattern matched against comment- and string-stripped
# source lines.
RULES = {
    "wall-clock": re.compile(
        r"std::chrono\b|\btime\s*\(|\bclock\s*\(|\bgettimeofday\b|\bclock_gettime\b"
    ),
    "libc-rand": re.compile(r"\brand\s*\(|\bsrand\s*\(|\b[dlm]rand48\b"),
    "random-device": re.compile(r"std::random_device\b"),
    "unordered-container": re.compile(
        r"std::unordered_(map|set|multimap|multiset)\b"
    ),
    "thread-sleep": re.compile(r"std::this_thread::sleep_(for|until)\b"),
}

HEADER_SUFFIXES = {".hpp", ".h"}
SOURCE_SUFFIXES = {".hpp", ".h", ".cpp", ".cc"}

STRING_OR_CHAR = re.compile(
    r'"(?:[^"\\]|\\.)*"|' r"'(?:[^'\\]|\\.)*'"
)


def strip_strings_and_comments(text):
    """Blanks out string/char literals and comments, preserving line
    structure, so a comment *mentioning* rand() is not a violation."""
    # Literals first: "// not a comment" inside a string must not hide code
    # after it, and comment markers inside literals must not eat lines.
    text = STRING_OR_CHAR.sub(lambda m: '"' + " " * (len(m.group()) - 2) + '"',
                              text)
    out = []
    i, n = 0, len(text)
    in_block = False
    while i < n:
        if in_block:
            if text.startswith("*/", i):
                in_block = False
                i += 2
            else:
                out.append(text[i] if text[i] == "\n" else " ")
                i += 1
        elif text.startswith("/*", i):
            in_block = True
            i += 2
        elif text.startswith("//", i):
            while i < n and text[i] != "\n":
                i += 1
        else:
            out.append(text[i])
            i += 1
    return "".join(out)


def load_allowlist(path):
    allowed = set()
    if not path.is_file():
        return allowed
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if ":" not in line:
            print(f"{path}: malformed allowlist entry {raw!r} "
                  "(want <path>:<rule>)", file=sys.stderr)
            sys.exit(2)
        file_part, rule = line.rsplit(":", 1)
        if rule not in RULES and rule != "include-guard":
            print(f"{path}: unknown rule {rule!r} in {raw!r}", file=sys.stderr)
            sys.exit(2)
        allowed.add((file_part.strip(), rule))
    return allowed


def lint_file(path, rel, allowed):
    violations = []
    text = path.read_text(encoding="utf-8", errors="replace")

    if path.suffix in HEADER_SUFFIXES and "#pragma once" not in text:
        if (rel, "include-guard") not in allowed:
            violations.append((rel, 1, "include-guard",
                               "header lacks #pragma once"))

    stripped = strip_strings_and_comments(text)
    for lineno, line in enumerate(stripped.splitlines(), start=1):
        for rule, pattern in RULES.items():
            if pattern.search(line) and (rel, rule) not in allowed:
                violations.append((rel, lineno, rule, line.strip()))
    return violations


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the repo this "
                             "script lives in)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="allowlist file (default: "
                             "tools/lint_allowlist.txt under --root)")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: <root>/src)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    allowlist_path = args.allowlist or root / "tools" / "lint_allowlist.txt"
    allowed = load_allowlist(allowlist_path)

    targets = args.paths or [root / "src"]
    files = []
    for target in targets:
        target = target.resolve()
        if target.is_dir():
            files.extend(p for p in sorted(target.rglob("*"))
                         if p.suffix in SOURCE_SUFFIXES)
        elif target.is_file():
            files.append(target)
        else:
            print(f"quicsteps_lint: no such path: {target}", file=sys.stderr)
            return 2

    violations = []
    for path in files:
        try:
            rel = str(path.relative_to(root))
        except ValueError:
            rel = str(path)
        violations.extend(lint_file(path, rel, allowed))

    for rel, lineno, rule, detail in violations:
        print(f"{rel}:{lineno}: [{rule}] {detail}")
    print(f"quicsteps_lint: {len(files)} files, "
          f"{len(violations)} violation(s)", file=sys.stderr)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
