#!/usr/bin/env python3
"""Nondeterminism lint for the quicsteps simulation sources (wrapper).

Historically this script owned the regex rules banning wall clocks, libc
rand, std::random_device, unordered containers, and thread sleeps from
src/. Those rules now live in the in-repo C++ static analyzer
(tools/analyze, rule family determinism/*) together with the layering,
unit-safety, and scheduling rules — one engine owns every invariant. This
wrapper keeps the historical CLI stable (`quicsteps_lint.py [--root R]
[--allowlist F] [PATHS...]`, exit 0 clean / 1 violations / 2 bad
invocation) and execs quicsteps-analyze, forwarding `--cache-dir`,
`--fix-baseline`, and `--rules` verbatim along with the analyzer's exact
exit code.

Old allowlist entries ("<path>:<rule>") are translated on the fly to the
analyzer's baseline format ("<path>:determinism/<rule>"); permanent
waivers belong in tools/analyze/baseline.txt.

Build the analyzer first if needed:
    cmake --build build --target quicsteps-analyze
"""

import argparse
import glob
import os
import subprocess
import sys
import tempfile
from pathlib import Path

# Historic rule names -> analyzer rule IDs.
RULE_MAP = {
    "wall-clock": "determinism/wall-clock",
    "libc-rand": "determinism/libc-rand",
    "random-device": "determinism/random-device",
    "unordered-container": "determinism/unordered-container",
    "thread-sleep": "determinism/thread-sleep",
    "include-guard": "determinism/include-guard",
}


def find_analyzer(root, explicit):
    if explicit:
        return explicit
    env = os.environ.get("QUICSTEPS_ANALYZE")
    if env:
        return env
    candidates = glob.glob(str(root / "build*" / "tools" / "analyze" /
                               "quicsteps-analyze"))
    candidates = [c for c in candidates if os.access(c, os.X_OK)]
    if candidates:
        # Prefer the most recently built binary.
        return max(candidates, key=lambda c: os.stat(c).st_mtime)
    return None


def translate_allowlist(path):
    """Old-format allowlist -> analyzer baseline lines (or None if empty)."""
    lines = []
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if ":" not in line:
            print(f"{path}: malformed allowlist entry {raw!r} "
                  "(want <path>:<rule>)", file=sys.stderr)
            sys.exit(2)
        file_part, rule = line.rsplit(":", 1)
        rule = rule.strip()
        mapped = RULE_MAP.get(rule, rule)  # pass analyzer IDs through as-is
        lines.append(f"{file_part.strip()}:{mapped}")
    return lines


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the repo this "
                             "script lives in)")
    parser.add_argument("--allowlist", type=Path, default=None,
                        help="legacy allowlist file; entries are translated "
                             "into analyzer baseline entries")
    parser.add_argument("--analyzer", type=Path, default=None,
                        help="path to the quicsteps-analyze binary "
                             "(default: $QUICSTEPS_ANALYZE or the newest "
                             "build*/tools/analyze/quicsteps-analyze)")
    parser.add_argument("--cache-dir", default=None,
                        help="forwarded verbatim: analyzer token/result "
                             "cache directory")
    parser.add_argument("--fix-baseline", action="store_true",
                        help="forwarded verbatim: rewrite baseline files in "
                             "place, dropping stale entries")
    parser.add_argument("--rules", default=None,
                        help="forwarded verbatim: comma-separated rule "
                             "families to run")
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: <root>/src)")
    args = parser.parse_args(argv)

    root = args.root.resolve()
    analyzer = find_analyzer(root, args.analyzer)
    if not analyzer or not Path(analyzer).exists():
        print("quicsteps_lint: quicsteps-analyze binary not found; build it "
              "with `cmake --build build --target quicsteps-analyze` or set "
              "QUICSTEPS_ANALYZE", file=sys.stderr)
        return 2

    cmd = [str(analyzer), "--root", str(root)]
    if args.cache_dir is not None:
        cmd += ["--cache-dir", args.cache_dir]
    if args.fix_baseline:
        cmd += ["--fix-baseline"]
    if args.rules is not None:
        cmd += ["--rules", args.rules]
    default_baseline = root / "tools" / "analyze" / "baseline.txt"
    tmp = None
    if args.allowlist is not None and args.allowlist.is_file():
        extra = translate_allowlist(args.allowlist)
        if default_baseline.is_file():
            cmd += ["--baseline", str(default_baseline)]
        tmp = tempfile.NamedTemporaryFile(
            "w", suffix=".baseline", delete=False)
        tmp.write("\n".join(extra) + "\n")
        tmp.close()
        cmd += ["--baseline", tmp.name]
    cmd += [str(p) for p in args.paths]

    try:
        return subprocess.call(cmd)
    finally:
        if tmp is not None:
            os.unlink(tmp.name)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
