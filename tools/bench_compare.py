#!/usr/bin/env python3
"""Compare google-benchmark JSON output against a baseline and fail on
regressions in named benchmark families.

Usage (local, same machine as the baseline):

    python3 tools/bench_compare.py \
        --baseline BENCH_micro.json --current /tmp/bench_out.json \
        --families BM_LoopHopPacket BM_DrainScheduleRun --threshold 0.15

Usage (CI, different machine than the baseline): normalize both runs by an
anchor benchmark first, so only the *relative* structure is compared —
"batched hop is N x the plain schedule loop" carries across machines even
though absolute nanoseconds do not:

    python3 tools/bench_compare.py \
        --baseline BENCH_micro.json --current /tmp/bench_out.json \
        --families BM_LoopHopPacket --anchor BM_EventLoopScheduleRun/10000

In-run gates need no baseline at all (use for invariants like "the batched
arm beats the closure arm"):

    python3 tools/bench_compare.py --current /tmp/bench_out.json \
        --require-ratio BM_LoopHopPacketBatched/10000:BM_LoopHopPacketClosure/10000:1.5

Inputs may be raw `--benchmark_format=json` output or the repo's
BENCH_micro.json (whose `benchmarks` array uses the same schema). Only the
Python standard library is used.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """Returns {name: entry} from a google-benchmark JSON file (or any JSON
    object with a compatible `benchmarks` array)."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for entry in doc.get("benchmarks", []):
        name = entry.get("name")
        # Skip aggregate rows (mean/median/stddev) — compare raw runs only.
        if name and entry.get("run_type", "iteration") == "iteration":
            out[name] = entry
    return out


def metric(entry):
    """(value, higher_is_better) — throughput when reported, else time."""
    if "items_per_second" in entry:
        return float(entry["items_per_second"]), True
    return float(entry["real_time"]), False


def in_families(name, families):
    return any(name.startswith(f) for f in families)


def compare(baseline, current, families, threshold, anchor):
    """Yields (name, change) where change > 0 means regression fraction."""
    base_anchor = cur_anchor = 1.0
    if anchor:
        if anchor not in baseline or anchor not in current:
            sys.exit(f"bench_compare: anchor '{anchor}' missing from input")
        base_anchor, _ = metric(baseline[anchor])
        cur_anchor, _ = metric(current[anchor])
    for name, base_entry in sorted(baseline.items()):
        if not in_families(name, families) or name not in current:
            continue
        base_value, higher_better = metric(base_entry)
        cur_value, _ = metric(current[name])
        if anchor:
            base_value /= base_anchor
            cur_value /= cur_anchor
        if base_value == 0:
            continue
        if higher_better:
            change = (base_value - cur_value) / base_value
        else:
            change = (cur_value - base_value) / base_value
        yield name, change, higher_better


def check_ratios(current, specs):
    """Each spec is 'numerator:denominator:min_ratio' on items_per_second."""
    failures = []
    for spec in specs:
        try:
            num_name, den_name, min_ratio = spec.rsplit(":", 2)
            min_ratio = float(min_ratio)
        except ValueError:
            sys.exit(f"bench_compare: bad --require-ratio spec '{spec}'")
        for name in (num_name, den_name):
            if name not in current:
                sys.exit(f"bench_compare: benchmark '{name}' not in current run")
        num, _ = metric(current[num_name])
        den, _ = metric(current[den_name])
        ratio = num / den if den else float("inf")
        ok = ratio >= min_ratio
        print(f"{'PASS' if ok else 'FAIL'}  {num_name} / {den_name} = "
              f"{ratio:.2f} (required >= {min_ratio:.2f})")
        if not ok:
            failures.append(spec)
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", help="baseline JSON (e.g. BENCH_micro.json)")
    parser.add_argument("--current", required=True,
                        help="fresh --benchmark_format=json output")
    parser.add_argument("--families", nargs="*", default=[],
                        help="benchmark-name prefixes to compare")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max tolerated regression fraction (default 0.15)")
    parser.add_argument("--anchor", default=None,
                        help="normalize both runs by this benchmark first "
                             "(for cross-machine comparison)")
    parser.add_argument("--require-ratio", action="append", default=[],
                        metavar="NUM:DEN:MIN",
                        help="in-run gate: items_per_second(NUM)/(DEN) >= MIN")
    args = parser.parse_args()

    current = load_benchmarks(args.current)
    failures = check_ratios(current, args.require_ratio)

    if args.baseline and args.families:
        baseline = load_benchmarks(args.baseline)
        compared = 0
        for name, change, higher_better in compare(
                baseline, current, args.families, args.threshold, args.anchor):
            compared += 1
            status = "FAIL" if change > args.threshold else "ok"
            kind = "items/s" if higher_better else "time"
            print(f"{status:>4}  {name}: {kind} changed {change:+.1%} "
                  f"(threshold {args.threshold:.0%})")
            if change > args.threshold:
                failures.append(name)
        if compared == 0:
            sys.exit("bench_compare: no benchmarks matched the named families")

    if failures:
        print(f"bench_compare: {len(failures)} regression(s): "
              f"{', '.join(failures)}")
        return 1
    print("bench_compare: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
