// quicsteps_cli — run any experiment of the reproduction from the command
// line and export its artifacts (summary/gaps/capture CSV, qlog traces).
//
//   quicsteps_cli --stack quiche-sf --qdisc fq --payload-mib 10 --reps 3
//                 --csv out/run --qlog out/trace.qlog
//
// Flags (all optional; defaults reproduce the paper baseline):
//   --stack     quiche | quiche-sf | picoquic | ngtcp2 | tcp | ideal
//   --cca       cubic | newreno | bbr
//   --qdisc     fifo | fq_codel | fq | etf | etf-lt
//   --gso       off | on | paced          --gso-segments N
//   --sendmmsg                            (batch sends, GSO off)
//   --payload-mib N   --reps N   --seed N   --jobs N
//   --rate-mbit N     --rtt-ms N --buffer-kb N
//   --loss P          --reorder P          --gro-us N
//   --csv PREFIX      (PREFIX_summary.csv, PREFIX_gaps.<rep>.csv,
//                      PREFIX_capture.<rep>.csv, PREFIX_cwnd.<rep>.csv)
//   --qlog PATH       (qlog JSON-SEQ per repetition: PATH.<seed>)
//   --trace           record per-packet path spans (pacer->wire->delivery)
//                     and print the run's metrics registry
//   --qlog-dir DIR    with --trace: write DIR/path.<rep>.qlog (path-qlog
//                     JSONL) and DIR/path.<rep>.csv per repetition
//
// Fleet mode (--flows N with N >= 2) runs one N-flow fabric over a shared
// bottleneck instead of repetitions of a single flow:
//   --flows N             number of competing senders (ids 10..)
//   --trace-sample N      with --trace: record spans for 1 in N flows,
//                         chosen deterministically from (seed, flow id)
//   --window-ms N         fleet telemetry window width (default 10 when
//                         any telemetry output below is requested)
//   --timeseries-csv PATH windowed fleet time-series CSV
//   --health-report PATH  deterministic run-health JSON ('-' = stdout)
//   --health-exit         exit nonzero when the health report is unhealthy
//                         (stalls / pacing spikes / drop bursts /
//                         incomplete flows) — the CI gate switch
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/quicsteps.hpp"
#include "framework/artifacts.hpp"

using namespace quicsteps;

namespace {

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "quicsteps_cli: %s\n(see the header of "
                       "tools/quicsteps_cli.cpp for flags)\n",
               message.c_str());
  std::exit(2);
}

framework::StackKind parse_stack(const std::string& value) {
  if (value == "quiche") return framework::StackKind::kQuiche;
  if (value == "quiche-sf") return framework::StackKind::kQuicheSf;
  if (value == "picoquic") return framework::StackKind::kPicoquic;
  if (value == "ngtcp2") return framework::StackKind::kNgtcp2;
  if (value == "tcp") return framework::StackKind::kTcpTls;
  if (value == "ideal") return framework::StackKind::kIdealQuic;
  usage_error("unknown stack '" + value + "'");
}

cc::CcAlgorithm parse_cca(const std::string& value) {
  if (value == "cubic") return cc::CcAlgorithm::kCubic;
  if (value == "newreno") return cc::CcAlgorithm::kNewReno;
  if (value == "bbr") return cc::CcAlgorithm::kBbr;
  usage_error("unknown cca '" + value + "'");
}

framework::QdiscKind parse_qdisc(const std::string& value) {
  if (value == "fifo") return framework::QdiscKind::kFifo;
  if (value == "fq_codel") return framework::QdiscKind::kFqCodel;
  if (value == "fq") return framework::QdiscKind::kFq;
  if (value == "etf") return framework::QdiscKind::kEtf;
  if (value == "etf-lt") return framework::QdiscKind::kEtfOffload;
  usage_error("unknown qdisc '" + value + "'");
}

kernel::GsoMode parse_gso(const std::string& value) {
  if (value == "off") return kernel::GsoMode::kOff;
  if (value == "on") return kernel::GsoMode::kOn;
  if (value == "paced") return kernel::GsoMode::kPaced;
  usage_error("unknown gso mode '" + value + "'");
}

/// Fleet mode: one N-flow fabric, telemetry, health report. Returns the
/// process exit code.
int run_fleet(const framework::ExperimentConfig& base, int flows, int jobs,
              std::uint32_t trace_sample, std::int64_t window_ms,
              const std::string& timeseries_csv,
              const std::string& health_path, bool health_exit) {
  framework::MultiFlowConfig fleet;
  fleet.seed = base.seed;
  fleet.flows.assign(static_cast<std::size_t>(flows), {base});
  // Raw per-flow sample vectors cost too much at fabric scale; stream the
  // summaries instead (same switch the 10k benches use).
  fleet.lite_metrics = flows >= 64;
  fleet.trace_sample = trace_sample;
  const bool telemetry_requested =
      window_ms > 0 || !timeseries_csv.empty() || !health_path.empty();
  if (telemetry_requested) {
    fleet.telemetry_window = sim::Duration::millis(window_ms > 0 ? window_ms
                                                                 : 10);
  }

  framework::MultiFlowResult result =
      framework::ParallelRunner(jobs).run_flow_shards(fleet);

  std::int64_t completed = 0;
  for (const auto& flow : result.flows) completed += flow.completed ? 1 : 0;
  std::printf("  fleet: %d flows, %lld completed, fairness=%.4f "
              "bottleneck_drops=%lld\n",
              flows, static_cast<long long>(completed), result.fairness,
              static_cast<long long>(result.bottleneck_drops));
  if (result.timeseries != nullptr) {
    std::printf("  telemetry: %zu windows (%lld evicted), width=%lld us\n",
                result.timeseries->size(),
                static_cast<long long>(result.timeseries->evicted_windows()),
                static_cast<long long>(result.timeseries->width().us()));
  }

  if (!timeseries_csv.empty() && result.timeseries != nullptr) {
    std::ofstream out(timeseries_csv);
    out << result.timeseries->to_csv();
  }

  const obs::HealthReport health = framework::fleet_health(fleet, result);
  if (!health_path.empty()) {
    const std::string json = health.to_json();
    if (health_path == "-") {
      std::fputs(json.c_str(), stdout);
      std::fputc('\n', stdout);
    } else {
      std::ofstream out(health_path);
      out << json << '\n';
    }
  }
  std::printf("  health: %s (%zu stalls, %zu pacing spikes, %zu drop "
              "bursts)\n",
              health.healthy() ? "ok" : "UNHEALTHY", health.stalls.size(),
              health.pacing_spikes.size(), health.drop_bursts.size());

  if (health_exit && !health.healthy()) return 1;
  return completed == flows ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  framework::ExperimentConfig config;
  config.label = "cli";
  std::string csv_prefix;
  std::string qlog_dir;
  int flows = 1;
  std::uint32_t trace_sample = 0;
  std::int64_t window_ms = 0;
  std::string timeseries_csv;
  std::string health_path;
  bool health_exit = false;
  int jobs = 0;  // 0 = QUICSTEPS_JOBS env, then hardware concurrency.

  auto next_value = [&](int& i) -> std::string {
    if (i + 1 >= argc) usage_error(std::string(argv[i]) + " needs a value");
    return argv[++i];
  };

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--stack") {
      config.stack = parse_stack(next_value(i));
      config.label = framework::to_string(config.stack);
    } else if (flag == "--cca") {
      config.cca = parse_cca(next_value(i));
    } else if (flag == "--qdisc") {
      config.topology.server_qdisc = parse_qdisc(next_value(i));
    } else if (flag == "--gso") {
      config.gso = parse_gso(next_value(i));
    } else if (flag == "--gso-segments") {
      config.gso_segments = std::stoi(next_value(i));
    } else if (flag == "--sendmmsg") {
      config.use_sendmmsg = true;
    } else if (flag == "--payload-mib") {
      config.payload_bytes = std::stoll(next_value(i)) * 1024 * 1024;
    } else if (flag == "--reps") {
      config.repetitions = std::stoi(next_value(i));
    } else if (flag == "--seed") {
      config.seed = std::stoull(next_value(i));
    } else if (flag == "--jobs") {
      jobs = std::stoi(next_value(i));
    } else if (flag == "--rate-mbit") {
      config.topology.bottleneck_rate =
          net::DataRate::megabits_per_second(std::stoll(next_value(i)));
    } else if (flag == "--rtt-ms") {
      config.topology.path_delay_one_way =
          sim::Duration::millis(std::stoll(next_value(i)) / 2);
    } else if (flag == "--buffer-kb") {
      config.topology.bottleneck_buffer_bytes =
          std::stoll(next_value(i)) * 1000;
    } else if (flag == "--loss") {
      config.topology.path_loss_probability = std::stod(next_value(i));
    } else if (flag == "--reorder") {
      config.topology.path_reorder_probability = std::stod(next_value(i));
    } else if (flag == "--gro-us") {
      config.topology.client_gro_window =
          sim::Duration::micros(std::stoll(next_value(i)));
    } else if (flag == "--csv") {
      csv_prefix = next_value(i);
      config.keep_capture = true;
      config.record_cwnd_trace = true;
    } else if (flag == "--qlog") {
      config.qlog_path = next_value(i);
    } else if (flag == "--trace") {
      config.trace = true;
    } else if (flag == "--qlog-dir") {
      qlog_dir = next_value(i);
    } else if (flag == "--flows") {
      flows = std::stoi(next_value(i));
      if (flows < 1) usage_error("--flows needs a positive count");
    } else if (flag == "--trace-sample") {
      trace_sample = static_cast<std::uint32_t>(std::stoul(next_value(i)));
    } else if (flag == "--window-ms") {
      window_ms = std::stoll(next_value(i));
    } else if (flag == "--timeseries-csv") {
      timeseries_csv = next_value(i);
    } else if (flag == "--health-report") {
      health_path = next_value(i);
    } else if (flag == "--health-exit") {
      health_exit = true;
    } else if (flag == "--help" || flag == "-h") {
      std::printf("see the header comment of tools/quicsteps_cli.cpp\n");
      return 0;
    } else {
      usage_error("unknown flag '" + flag + "'");
    }
  }

  std::printf("quicsteps %s — %s, %s, qdisc=%s, %s%s, %lld MiB x %d\n",
              kVersion, config.label.c_str(), cc::to_string(config.cca),
              framework::to_string(config.topology.server_qdisc),
              kernel::to_string(config.gso),
              config.use_sendmmsg ? "+sendmmsg" : "",
              static_cast<long long>(config.payload_bytes / (1024 * 1024)),
              config.repetitions);

  if (!qlog_dir.empty()) config.trace = true;  // --qlog-dir implies --trace

  if (flows > 1) {
    return run_fleet(config, flows, jobs, trace_sample, window_ms,
                     timeseries_csv, health_path, health_exit);
  }

  std::ofstream summary;
  if (!csv_prefix.empty()) {
    summary.open(csv_prefix + "_summary.csv");
  }

  // Repetitions fan out across the worker pool; results come back in rep
  // order and are bit-identical to a serial loop, so the report below is
  // unchanged by --jobs.
  std::vector<framework::RunResult> runs =
      framework::ParallelRunner(jobs).run_all(config);
  for (int rep = 0; rep < config.repetitions; ++rep) {
    const auto& run = runs[static_cast<std::size_t>(rep)];
    std::printf(
        "  rep %d: %s goodput=%.2f Mbit/s dropped=%lld lost=%lld "
        "trains<=5=%.1f%% precision=%.3f ms\n",
        rep, run.completed ? "ok" : "INCOMPLETE",
        run.goodput.goodput.mbps(),
        static_cast<long long>(run.dropped_packets),
        static_cast<long long>(run.packets_declared_lost),
        100.0 * run.trains.fraction_in_trains_up_to(5),
        run.precision.precision_ms);
    if (run.trace != nullptr) {
      const auto timelines = obs::build_timelines(*run.trace);
      const auto errors = obs::stage_errors(timelines);
      std::printf("    trace: %zu spans over %zu packets, %lld complete "
                  "pacer->delivery chains\n",
                  run.trace->events.size(), timelines.size(),
                  static_cast<long long>(obs::count_complete(timelines)));
      for (const auto& se : errors) {
        std::printf("    %-24s mean_error=%9.1f us  n=%lld\n",
                    obs::to_string(se.stage), se.mean_us(),
                    static_cast<long long>(se.error_us.count()));
      }
      obs::MetricsRegistry registry;
      registry.add_counter("pacer/releases", run.pacer_releases);
      registry.add_counter("pacer/deferrals", run.pacer_deferrals);
      registry.set_gauge("bottleneck/dropped_packets", run.dropped_packets);
      registry.set_gauge("trace/complete_chains",
                         obs::count_complete(timelines));
      for (const auto& se : errors) {
        registry.histogram(std::string("pacing_error/") +
                           obs::to_string(se.stage)) = se.error_us;
      }
      std::printf("    metrics registry:\n");
      const std::string metrics_text = registry.to_string();
      std::size_t start = 0;
      while (start < metrics_text.size()) {
        const std::size_t end = metrics_text.find('\n', start);
        std::printf("      %s\n",
                    metrics_text.substr(start, end - start).c_str());
        start = end + 1;
      }
      if (!qlog_dir.empty()) {
        const std::string base = qlog_dir + "/path." + std::to_string(rep);
        std::ofstream path_qlog(base + ".qlog");
        framework::write_path_qlog(path_qlog, run, config.label);
        std::ofstream path_csv(base + ".csv");
        framework::write_path_trace_csv(path_csv, run);
      }
    }
    if (!csv_prefix.empty()) {
      framework::write_summary_csv(summary, config.label, run, rep == 0);
      std::string tag = ".";
      tag += std::to_string(rep);
      tag += ".csv";
      std::ofstream gaps(csv_prefix + "_gaps" + tag);
      framework::write_gaps_csv(gaps, run);
      std::ofstream cwnd(csv_prefix + "_cwnd" + tag);
      framework::write_cwnd_trace_csv(cwnd, run);
      if (run.capture != nullptr) {
        std::ofstream capture(csv_prefix + "_capture" + tag);
        framework::write_capture_csv(capture, *run.capture);
      }
    }
  }

  auto agg = framework::aggregate(config.label, runs);
  std::fputs(framework::render_goodput_table({agg}, "summary").c_str(),
             stdout);
  std::fputs(framework::render_train_figure({agg}, "packet trains").c_str(),
             stdout);
  return agg.completed == agg.repetitions ? 0 : 1;
}
