#!/usr/bin/env python3
"""Diff two quicsteps-analyze SARIF files; fail only on NEW findings.

CI runs the analyzer twice on a pull request — once on the merge base,
once on the head — and gates on this diff instead of the absolute count,
so a PR is never blocked by pre-existing findings it did not touch (the
baseline covers the deliberate ones; this covers everything in between,
e.g. a rule upgrade that lands new findings across the tree).

Findings are keyed by (ruleId, file, message text) as a multiset — NOT
by line — so pure line shifts (an unrelated edit above an old finding)
do not read as new findings. Suppressed results (baseline entries ride
in SARIF as suppressions) never gate.

Exit codes: 0 = no new findings, 1 = new findings (listed on stdout),
2 = usage / unreadable input.
"""

import argparse
import collections
import json
import sys


def load_findings(path):
    """Multiset of (ruleId, uri, message) for active results, plus a
    representative location per key for reporting."""
    try:
        with open(path, encoding="utf-8") as f:
            sarif = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"analyze_diff: cannot read {path}: {e}")
    counts = collections.Counter()
    where = {}
    for run in sarif.get("runs", []):
        for result in run.get("results", []):
            if any(s.get("status", "accepted") == "accepted"
                   for s in result.get("suppressions", [])):
                continue
            loc = result.get("locations", [{}])[0].get("physicalLocation", {})
            uri = loc.get("artifactLocation", {}).get("uri", "<unknown>")
            line = loc.get("region", {}).get("startLine", 0)
            key = (result.get("ruleId", "<no-rule>"), uri,
                   result.get("message", {}).get("text", ""))
            counts[key] += 1
            where.setdefault(key, line)
    return counts, where


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--base", required=True,
                        help="SARIF from the merge base")
    parser.add_argument("--head", required=True,
                        help="SARIF from the PR head")
    args = parser.parse_args()

    base, _ = load_findings(args.base)
    head, head_where = load_findings(args.head)

    new = head - base
    fixed = base - head
    for key in sorted(fixed):
        rule, uri, _ = key
        print(f"fixed: {uri} [{rule}] x{fixed[key]}")
    if not new:
        print(f"analyze_diff: no new findings "
              f"({sum(head.values())} in head, {sum(base.values())} in base)")
        return 0
    for key in sorted(new):
        rule, uri, message = key
        line = head_where.get(key, 0)
        print(f"NEW: {uri}:{line}: [{rule}] {message} (x{new[key]})")
    print(f"analyze_diff: {sum(new.values())} new finding(s) — fix them or "
          f"baseline them with a rationale in tools/analyze/baseline.txt")
    return 1


if __name__ == "__main__":
    sys.exit(main())
