// Cross-TU symbol index for the quicsteps static analyzer.
//
// Built on the token stream (no real C++ frontend): a heuristic scope
// parser walks each file's tokens tracking namespace / class / function /
// lambda nesting and records every symbol the semantic rules need —
// functions and methods (with their body token ranges), lambdas (with
// their capture lists and the local name they are bound to, if any),
// namespace-scope globals, function-local statics, and class member
// fields, each with const / atomic / mutex classification from the
// declaration tokens. The call graph (callgraph.hpp), the dataflow
// skeleton (dataflow.hpp), and the interprocedural rule families all sit
// on top of this index.
//
// Being token-level, the parser is deliberately conservative: anything it
// cannot classify becomes an anonymous block, never a wrong symbol. The
// repo's house style (pragma-once headers, paren member init, no macros
// that open braces) keeps the heuristics honest; the symbol-index golden
// test pins the behavior on a fixture tree.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "source_model.hpp"

namespace quicsteps::analyze {

struct Symbol {
  enum class Kind {
    kFunction,     // free function or method definition (has a body)
    kLambda,       // lambda expression
    kGlobal,       // namespace-scope variable
    kStaticLocal,  // function-local static variable
    kField,        // class member variable
  };
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  Kind kind = Kind::kFunction;
  std::string name;       // unqualified; lambdas: "<lambda>"
  std::string qual_name;  // Outer::Inner::name as spelled at the definition
  std::size_t file = 0;   // index into Model::files
  int line = 1;
  int col = 1;

  // Declaration classification (variables and fields; functions record
  // const-method-ness in is_const).
  bool is_const = false;   // const / constexpr declaration, or const method
  bool is_atomic = false;  // declared type names std::atomic
  bool is_mutex = false;   // declared type names a mutex/lock type
  std::string type_text;   // joined declaration/return-type tokens

  // Functions and lambdas: token indices (into the owning file's token
  // vector) of the body's '{' and matching '}'; npos when unterminated.
  std::size_t body_begin = npos;
  std::size_t body_end = npos;
  // Functions and lambdas: token indices of the parameter list's '(' and
  // ')'; npos when the lambda has no parameter list.
  std::size_t params_begin = npos;
  std::size_t params_end = npos;
  // Lambdas: token indices of the capture-list '[' and ']'.
  std::size_t cap_begin = npos;
  std::size_t cap_end = npos;
  // Lambdas: the local variable the lambda initializes, when written as
  // `auto worker = [..]...` — lets `worker()` and `pool.emplace_back(
  // worker)` resolve to the lambda.
  std::string bound_name;
  // Lambdas and static locals: index of the enclosing function/lambda
  // symbol; npos at namespace scope.
  std::size_t parent = npos;

  bool is_callable() const {
    return kind == Kind::kFunction || kind == Kind::kLambda;
  }
};

struct SymbolIndex {
  std::vector<Symbol> symbols;
  /// Per model file: symbol ids defined in that file, in token order.
  std::vector<std::vector<std::size_t>> by_file;
  /// Callable name -> symbol ids (functions only; lambdas resolve through
  /// bound_name, recorded here under that name).
  std::multimap<std::string, std::size_t> callables_by_name;
  /// Globals and static locals by unqualified name.
  std::multimap<std::string, std::size_t> variables_by_name;

  /// Innermost function/lambda whose body [body_begin, body_end] contains
  /// token `tok` of file `file`; npos when at namespace/class scope.
  std::size_t enclosing_callable(std::size_t file, std::size_t tok) const;
};

/// Builds the index over every file in the model. Deterministic: symbols
/// appear in (file, token) order.
SymbolIndex build_symbol_index(const Model& model);

/// True when the declaration token run names a std::atomic type.
bool type_text_is_atomic(const std::string& type_text);
/// True for mutex/lock-owning types (mutex, shared_mutex, lock_guard...).
bool type_text_is_mutex(const std::string& type_text);

}  // namespace quicsteps::analyze
