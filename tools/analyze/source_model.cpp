#include "source_model.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "cache.hpp"
#include "lexer.hpp"

namespace quicsteps::analyze {

namespace fs = std::filesystem;

namespace {

bool has_source_suffix(const fs::path& p, bool* is_header) {
  const std::string ext = p.extension().string();
  if (ext == ".hpp" || ext == ".h") {
    *is_header = true;
    return true;
  }
  if (ext == ".cpp" || ext == ".cc") {
    *is_header = false;
    return true;
  }
  return false;
}

std::string relative_to(const fs::path& p, const fs::path& base) {
  std::error_code ec;
  fs::path rel = fs::relative(p, base, ec);
  if (ec || rel.empty()) return {};
  std::string s = rel.generic_string();
  if (s.rfind("..", 0) == 0) return {};  // outside base
  return s;
}

}  // namespace

bool build_model(const std::vector<std::string>& paths,
                 const std::string& root, const std::string& include_base,
                 Model* model, std::string* error, TokenCache* cache) {
  std::vector<std::pair<fs::path, bool>> inputs;  // path, is_header
  for (const auto& raw : paths) {
    fs::path p = fs::path(raw).lexically_normal();
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      fs::recursive_directory_iterator it(p), end;
      for (; it != end; ++it) {
        if (it->is_directory() && it->path().filename() == "testdata") {
          it.disable_recursion_pending();
          continue;
        }
        bool is_header = false;
        if (it->is_regular_file() &&
            has_source_suffix(it->path(), &is_header)) {
          inputs.emplace_back(it->path().lexically_normal(), is_header);
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      bool is_header = false;
      if (has_source_suffix(p, &is_header)) inputs.emplace_back(p, is_header);
    } else {
      *error = "no such file or directory: " + raw;
      return false;
    }
  }

  const fs::path root_p = fs::path(root).lexically_normal();
  const fs::path base_p = fs::path(include_base).lexically_normal();
  for (const auto& [path, is_header] : inputs) {
    SourceFile f;
    f.abs_path = path.string();
    f.rel_path = relative_to(path, root_p);
    if (f.rel_path.empty()) f.rel_path = path.generic_string();
    f.include_key = relative_to(path, base_p);
    if (!f.include_key.empty()) {
      const auto slash = f.include_key.find('/');
      if (slash != std::string::npos) f.layer = f.include_key.substr(0, slash);
    } else {
      // Outside the include base (the self-hosted tools/ tree): the layer
      // is still the first rel_path component so layering rules apply.
      const auto slash = f.rel_path.find('/');
      if (slash != std::string::npos) f.layer = f.rel_path.substr(0, slash);
    }
    f.is_header = is_header;

    std::ifstream in(path, std::ios::binary);
    if (!in) {
      *error = "cannot read " + f.abs_path;
      return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string content = buf.str();
    f.content_hash = content_hash(content);
    f.lex = cache != nullptr ? cache->lex_cached(content) : lex(content);
    model->files.push_back(std::move(f));
  }

  std::sort(model->files.begin(), model->files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel_path < b.rel_path;
            });
  // Drop duplicates (the same file named twice on the command line).
  model->files.erase(
      std::unique(model->files.begin(), model->files.end(),
                  [](const SourceFile& a, const SourceFile& b) {
                    return a.rel_path == b.rel_path;
                  }),
      model->files.end());
  for (std::size_t i = 0; i < model->files.size(); ++i) {
    if (!model->files[i].include_key.empty()) {
      model->by_include_key.emplace(model->files[i].include_key, i);
    }
  }
  return true;
}

}  // namespace quicsteps::analyze
