#include "cache.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "lexer.hpp"

namespace quicsteps::analyze {

namespace {

constexpr char kMagic[4] = {'Q', 'S', 'L', 'X'};
constexpr std::uint32_t kVersion = 1;

constexpr char kResultMagic[4] = {'Q', 'S', 'R', 'C'};
constexpr std::uint32_t kResultVersion = 1;

void put_u8(std::string* out, std::uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void put_u32(std::string* out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void put_u64(std::string* out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void put_str(std::string* out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked sequential reader; any overrun flips ok to false and
/// every later read returns zero values, so a truncated entry can never
/// produce partial tokens.
struct Reader {
  const std::string& buf;
  std::size_t at = 0;
  bool ok = true;

  bool take(void* dst, std::size_t n) {
    if (!ok || at + n > buf.size()) {
      ok = false;
      return false;
    }
    std::memcpy(dst, buf.data() + at, n);
    at += n;
    return true;
  }
  std::uint8_t u8() {
    std::uint8_t v = 0;
    take(&v, 1);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    take(&v, 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    take(&v, 8);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok || at + n > buf.size()) {
      ok = false;
      return {};
    }
    std::string s(buf, at, n);
    at += n;
    return s;
  }
};

std::string serialize(std::uint64_t hash, const LexResult& lex) {
  std::string out;
  out.append(kMagic, 4);
  put_u32(&out, kVersion);
  put_u64(&out, hash);
  put_u8(&out, lex.has_pragma_once ? 1 : 0);
  put_u64(&out, lex.tokens.size());
  for (const Token& t : lex.tokens) {
    put_u8(&out, static_cast<std::uint8_t>(t.kind));
    put_u8(&out, static_cast<std::uint8_t>((t.in_pp ? 1 : 0) |
                                           (t.angle_include ? 2 : 0)));
    put_u32(&out, static_cast<std::uint32_t>(t.line));
    put_u32(&out, static_cast<std::uint32_t>(t.col));
    put_str(&out, t.text);
  }
  put_u64(&out, lex.includes.size());
  for (const IncludeDirective& inc : lex.includes) {
    put_u8(&out, inc.angle ? 1 : 0);
    put_u32(&out, static_cast<std::uint32_t>(inc.line));
    put_str(&out, inc.path);
  }
  return out;
}

bool deserialize(const std::string& buf, std::uint64_t expect_hash,
                 LexResult* out) {
  Reader r{buf};
  char magic[4];
  if (!r.take(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) return false;
  if (r.u32() != kVersion || r.u64() != expect_hash) return false;
  out->has_pragma_once = r.u8() != 0;
  const std::uint64_t ntok = r.u64();
  if (!r.ok || ntok > buf.size()) return false;  // implausible count
  out->tokens.reserve(ntok);
  for (std::uint64_t i = 0; i < ntok && r.ok; ++i) {
    Token t;
    t.kind = static_cast<TokKind>(r.u8());
    const std::uint8_t flags = r.u8();
    t.in_pp = (flags & 1) != 0;
    t.angle_include = (flags & 2) != 0;
    t.line = static_cast<int>(r.u32());
    t.col = static_cast<int>(r.u32());
    t.text = r.str();
    out->tokens.push_back(std::move(t));
  }
  const std::uint64_t ninc = r.u64();
  if (!r.ok || ninc > buf.size()) return false;
  out->includes.reserve(ninc);
  for (std::uint64_t i = 0; i < ninc && r.ok; ++i) {
    IncludeDirective inc;
    inc.angle = r.u8() != 0;
    inc.line = static_cast<int>(r.u32());
    inc.path = r.str();
    out->includes.push_back(std::move(inc));
  }
  return r.ok && r.at == buf.size();
}

std::string serialize_findings(std::uint64_t key,
                               const std::vector<Finding>& findings) {
  std::string out;
  out.append(kResultMagic, 4);
  put_u32(&out, kResultVersion);
  put_u64(&out, key);
  put_u64(&out, findings.size());
  for (const Finding& f : findings) {
    put_str(&out, f.rule_id);
    put_str(&out, f.file);
    put_u32(&out, static_cast<std::uint32_t>(f.line));
    put_u32(&out, static_cast<std::uint32_t>(f.col));
    put_str(&out, f.message);
    // baselined is deliberately NOT stored: the baseline is re-applied on
    // every run, so a cached entry stays valid across baseline.txt edits.
    put_u64(&out, f.fixits.size());
    for (const FixIt& fix : f.fixits) {
      put_str(&out, fix.description);
      put_u32(&out, static_cast<std::uint32_t>(fix.line));
      put_u32(&out, static_cast<std::uint32_t>(fix.col));
      put_u32(&out, static_cast<std::uint32_t>(fix.end_line));
      put_u32(&out, static_cast<std::uint32_t>(fix.end_col));
      put_str(&out, fix.replacement);
    }
  }
  return out;
}

bool deserialize_findings(const std::string& buf, std::uint64_t expect_key,
                          std::vector<Finding>* out) {
  Reader r{buf};
  char magic[4];
  if (!r.take(magic, 4) || std::memcmp(magic, kResultMagic, 4) != 0) {
    return false;
  }
  if (r.u32() != kResultVersion || r.u64() != expect_key) return false;
  const std::uint64_t n = r.u64();
  if (!r.ok || n > buf.size()) return false;  // implausible count
  std::vector<Finding> findings;
  findings.reserve(n);
  for (std::uint64_t i = 0; i < n && r.ok; ++i) {
    Finding f;
    f.rule_id = r.str();
    f.file = r.str();
    f.line = static_cast<int>(r.u32());
    f.col = static_cast<int>(r.u32());
    f.message = r.str();
    f.baselined = false;
    const std::uint64_t nfix = r.u64();
    if (!r.ok || nfix > buf.size()) return false;
    f.fixits.reserve(nfix);
    for (std::uint64_t j = 0; j < nfix && r.ok; ++j) {
      FixIt fix;
      fix.description = r.str();
      fix.line = static_cast<int>(r.u32());
      fix.col = static_cast<int>(r.u32());
      fix.end_line = static_cast<int>(r.u32());
      fix.end_col = static_cast<int>(r.u32());
      fix.replacement = r.str();
      f.fixits.push_back(std::move(fix));
    }
    findings.push_back(std::move(f));
  }
  if (!r.ok || r.at != buf.size()) return false;
  *out = std::move(findings);
  return true;
}

}  // namespace

std::uint64_t content_hash(const std::string& content) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : content) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void KeyHasher::mix_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h_ ^= static_cast<std::uint8_t>(v >> (i * 8));
    h_ *= 0x100000001b3ULL;
  }
}

void KeyHasher::mix(const std::string& s) {
  mix_u64(s.size());
  for (const char c : s) {
    h_ ^= static_cast<std::uint8_t>(c);
    h_ *= 0x100000001b3ULL;
  }
}

std::string TokenCache::entry_path(std::uint64_t hash) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.lex",
                static_cast<unsigned long long>(hash));
  return dir_ + "/" + name;
}

bool TokenCache::load(const std::string& path, std::uint64_t hash,
                      LexResult* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize(buf.str(), hash, out);
}

void TokenCache::store(const std::string& path, std::uint64_t hash,
                       const LexResult& lex) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable cache is a slow run, not an error
    const std::string blob = serialize(hash, lex);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

LexResult TokenCache::lex_cached(const std::string& content) {
  if (dir_.empty()) {
    ++misses_;
    return lex(content);
  }
  const std::uint64_t hash = content_hash(content);
  const std::string path = entry_path(hash);
  LexResult cached;
  if (load(path, hash, &cached)) {
    ++hits_;
    return cached;
  }
  ++misses_;
  LexResult fresh = lex(content);
  store(path, hash, fresh);
  return fresh;
}

std::string ResultCache::entry_path(std::uint64_t key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.res",
                static_cast<unsigned long long>(key));
  return dir_ + "/" + name;
}

bool ResultCache::load(std::uint64_t key, std::vector<Finding>* out) const {
  if (dir_.empty()) return false;
  std::ifstream in(entry_path(key), std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  return deserialize_findings(buf.str(), key, out);
}

void ResultCache::store(std::uint64_t key,
                        const std::vector<Finding>& findings) const {
  if (dir_.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  const std::string path = entry_path(key);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // unwritable cache is a cold next run, not an error
    const std::string blob = serialize_findings(key, findings);
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    if (!out) {
      out.close();
      std::filesystem::remove(tmp, ec);
      return;
    }
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

}  // namespace quicsteps::analyze
