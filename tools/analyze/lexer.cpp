#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace quicsteps::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Raw-string / string-literal prefixes. Anything ending in R introduces a
/// raw string when immediately followed by a quote.
bool is_string_prefix(const std::string& s) {
  return s == "R" || s == "u8R" || s == "uR" || s == "UR" || s == "LR" ||
         s == "L" || s == "u8" || s == "u" || s == "U";
}

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  LexResult run();

 private:
  char cur() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  char peek(std::size_t off) const {
    return pos_ + off < text_.size() ? text_[pos_ + off] : '\0';
  }
  bool eof() const { return pos_ >= text_.size(); }

  /// Consumes one byte, maintaining line/col. Newlines must go through
  /// newline() instead so preprocessor state stays correct.
  void adv() {
    if (cur() == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  /// True (and consumed) when the cursor sits on a backslash-newline
  /// splice; the logical line continues.
  bool splice() {
    if (cur() == '\\' && peek(1) == '\n') {
      pos_ += 2;
      ++line_;
      col_ = 1;
      return true;
    }
    if (cur() == '\\' && peek(1) == '\r' && peek(2) == '\n') {
      pos_ += 3;
      ++line_;
      col_ = 1;
      return true;
    }
    return false;
  }

  /// Skips spaces/tabs (never newlines). Returns false at end of line.
  void skip_blanks() {
    while (!eof()) {
      if (splice()) continue;
      char c = cur();
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        adv();
      } else {
        break;
      }
    }
  }

  Token make(TokKind kind, std::string text, int line, int col) const {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line;
    t.col = col;
    t.in_pp = in_pp_;
    return t;
  }

  std::string lex_ident_text() {
    std::string s;
    while (!eof()) {
      if (splice()) continue;
      if (!ident_char(cur())) break;
      s += cur();
      adv();
    }
    return s;
  }

  void lex_string(LexResult* out);
  void lex_raw_string(LexResult* out);
  void lex_char_lit(LexResult* out);
  void lex_number(LexResult* out);
  void lex_pp_directive(LexResult* out);
  void lex_header_name(LexResult* out);

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  bool in_pp_ = false;
};

void Lexer::lex_string(LexResult* out) {
  const int line = line_, col = col_;
  adv();  // opening quote
  std::string body;
  while (!eof() && cur() != '"' && cur() != '\n') {
    if (cur() == '\\' && peek(1) != '\0') {
      body += cur();
      adv();
      body += cur();
      adv();
      continue;
    }
    body += cur();
    adv();
  }
  if (cur() == '"') adv();
  out->tokens.push_back(make(TokKind::kString, std::move(body), line, col));
}

void Lexer::lex_raw_string(LexResult* out) {
  const int line = line_, col = col_;
  adv();  // opening quote
  std::string delim;
  while (!eof() && cur() != '(' && cur() != '\n' && delim.size() < 16) {
    delim += cur();
    adv();
  }
  if (cur() == '(') adv();
  const std::string closer = ")" + delim + "\"";
  std::string body;
  while (!eof()) {
    if (text_.compare(pos_, closer.size(), closer) == 0) {
      for (std::size_t i = 0; i < closer.size(); ++i) adv();
      break;
    }
    body += cur();
    adv();
  }
  out->tokens.push_back(make(TokKind::kString, std::move(body), line, col));
}

void Lexer::lex_char_lit(LexResult* out) {
  const int line = line_, col = col_;
  adv();  // opening quote
  std::string body;
  while (!eof() && cur() != '\'' && cur() != '\n') {
    if (cur() == '\\' && peek(1) != '\0') {
      body += cur();
      adv();
      body += cur();
      adv();
      continue;
    }
    body += cur();
    adv();
  }
  if (cur() == '\'') adv();
  out->tokens.push_back(make(TokKind::kCharLit, std::move(body), line, col));
}

void Lexer::lex_number(LexResult* out) {
  const int line = line_, col = col_;
  std::string body;
  // pp-number: digits, identifier chars, '.', digit separators, and
  // sign characters directly after an exponent marker. This swallows
  // 1'000'000 without ever mistaking the separator for a char literal.
  while (!eof()) {
    if (splice()) continue;
    char c = cur();
    if (ident_char(c) || c == '.') {
      body += c;
      adv();
      if ((c == 'e' || c == 'E' || c == 'p' || c == 'P') &&
          (cur() == '+' || cur() == '-')) {
        body += cur();
        adv();
      }
      continue;
    }
    if (c == '\'' && ident_char(peek(1))) {
      body += c;
      adv();
      continue;
    }
    break;
  }
  out->tokens.push_back(make(TokKind::kNumber, std::move(body), line, col));
}

void Lexer::lex_header_name(LexResult* out) {
  skip_blanks();
  const int line = line_, col = col_;
  char open = cur();
  if (open != '"' && open != '<') return;
  const char close = open == '"' ? '"' : '>';
  adv();
  std::string path;
  while (!eof() && cur() != close && cur() != '\n') {
    path += cur();
    adv();
  }
  if (cur() == close) adv();
  Token t = make(TokKind::kIncludePath, path, line, col);
  t.angle_include = open == '<';
  out->tokens.push_back(t);
  out->includes.push_back({std::move(path), open == '<', line});
}

void Lexer::lex_pp_directive(LexResult* out) {
  in_pp_ = true;
  out->tokens.push_back(make(TokKind::kPunct, "#", line_, col_));
  adv();  // '#'
  skip_blanks();
  if (!ident_start(cur())) return;
  const int line = line_, col = col_;
  std::string name = lex_ident_text();
  out->tokens.push_back(make(TokKind::kIdentifier, name, line, col));
  if (name == "include") {
    lex_header_name(out);
  } else if (name == "pragma") {
    skip_blanks();
    if (ident_start(cur())) {
      const int pl = line_, pc = col_;
      std::string arg = lex_ident_text();
      if (arg == "once") out->has_pragma_once = true;
      out->tokens.push_back(
          make(TokKind::kIdentifier, std::move(arg), pl, pc));
    }
  }
  // The rest of the directive line lexes through the normal loop with
  // in_pp_ still set; a real (unspliced) newline clears it.
}

LexResult Lexer::run() {
  LexResult out;
  bool at_line_start = true;
  while (!eof()) {
    if (splice()) continue;
    char c = cur();
    if (c == '\n') {
      adv();
      in_pp_ = false;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      adv();
      continue;
    }
    if (c == '/' && peek(1) == '/') {
      while (!eof() && cur() != '\n') {
        if (!splice()) adv();
      }
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      adv();
      adv();
      while (!eof() && !(cur() == '*' && peek(1) == '/')) adv();
      if (!eof()) {
        adv();
        adv();
      }
      continue;
    }
    if (c == '#' && at_line_start) {
      at_line_start = false;
      lex_pp_directive(&out);
      continue;
    }
    at_line_start = false;
    if (c == '"') {
      lex_string(&out);
      continue;
    }
    if (c == '\'') {
      lex_char_lit(&out);
      continue;
    }
    if (ident_start(c)) {
      const int line = line_, col = col_;
      std::string name = lex_ident_text();
      if (cur() == '"' && is_string_prefix(name)) {
        if (name.back() == 'R') {
          lex_raw_string(&out);
        } else {
          lex_string(&out);
        }
        continue;
      }
      out.tokens.push_back(
          make(TokKind::kIdentifier, std::move(name), line, col));
      continue;
    }
    if (digit(c) || (c == '.' && digit(peek(1)))) {
      lex_number(&out);
      continue;
    }
    // Punctuation; the multi-character spellings rules care about come out
    // as single tokens so "::" never reads as two colons and "&&" never
    // reads as a reference capture.
    const int line = line_, col = col_;
    std::string p(1, c);
    if ((c == ':' && peek(1) == ':') || (c == '-' && peek(1) == '>') ||
        (c == '&' && peek(1) == '&') || (c == '|' && peek(1) == '|')) {
      p += peek(1);
      adv();
    }
    adv();
    out.tokens.push_back(make(TokKind::kPunct, std::move(p), line, col));
  }
  return out;
}

}  // namespace

LexResult lex(std::string_view text) { return Lexer(text).run(); }

}  // namespace quicsteps::analyze
