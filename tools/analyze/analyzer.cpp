#include "analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baseline.hpp"
#include "cache.hpp"
#include "callgraph.hpp"
#include "cfg.hpp"
#include "dataflow.hpp"
#include "symbols.hpp"

namespace quicsteps::analyze {

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool family_enabled(const Options& options, const char* family) {
  if (options.rule_families.empty()) return true;
  for (const auto& f : options.rule_families) {
    if (f == family) return true;
  }
  return false;
}

}  // namespace

AnalysisResult run_analysis(const Options& options) {
  AnalysisResult result;
  const std::string root =
      options.root.empty() ? std::string(".") : options.root;
  const std::string include_base =
      options.include_base.empty() ? root + "/src" : options.include_base;
  std::vector<std::string> paths = options.paths;
  if (paths.empty()) {
    paths.push_back(root + "/src");
    // Self-hosting: the analyzer's own sources are part of the default
    // scan (fixture trees under testdata/ are skipped by build_model),
    // and so are the bench drivers and examples — they exercise the same
    // APIs the protocols and lifetime rules guard.
    for (const char* extra : {"/tools/analyze", "/bench", "/examples"}) {
      const std::string dir = root + extra;
      if (std::filesystem::exists(dir)) paths.push_back(dir);
    }
  }

  TokenCache cache(options.cache_dir);
  Model model;
  if (!build_model(paths, root, include_base, &model, &result.error,
                   &cache)) {
    return result;
  }
  result.files_scanned = model.files.size();
  result.files_from_cache = cache.hits();

  std::vector<Finding> findings;
  // The manifest feeds three families: layering (the DAG), perf (the
  // hot_path tags), and concurrency (the parallel_entries roots). "-"
  // skips all three — fixture trees without a real layer stack opt out of
  // manifest-driven rules entirely.
  const bool want_layering = family_enabled(options, "layering");
  const bool want_perf = family_enabled(options, "perf");
  const bool want_concurrency = family_enabled(options, "concurrency");
  const bool want_determinism = family_enabled(options, "determinism");
  const bool want_units = family_enabled(options, "units");
  const bool want_lifetime = family_enabled(options, "lifetime");
  const bool want_protocol = family_enabled(options, "protocol");
  LayerManifest manifest;
  std::string manifest_text;
  bool have_manifest = false;
  if (want_layering || want_perf || want_concurrency || want_lifetime ||
      want_protocol) {
    std::string layers_path = options.layers_file.empty()
                                  ? root + "/tools/analyze/layers.json"
                                  : options.layers_file;
    if (layers_path != "-") {
      if (!read_file(layers_path, &manifest_text)) {
        result.error = "cannot read layer manifest " + layers_path;
        return result;
      }
      if (!load_layer_manifest(manifest_text, &manifest, &result.error)) {
        return result;
      }
      have_manifest = true;
    }
  }

  // Whole-analysis result cache: the key pins everything the raw finding
  // set depends on — the manifest TEXT (not its path), the rule-family
  // selection, and every scanned file's (rel_path, content hash) in
  // report order. The baseline is applied after replay, so it is
  // deliberately absent from the key.
  ResultCache result_cache(options.cache_dir);
  std::uint64_t result_key = 0;
  if (result_cache.enabled()) {
    KeyHasher k;
    k.mix_u64(1);  // result-key schema version
    k.mix(include_base);
    k.mix(manifest_text);
    k.mix_u64(options.rule_families.size());
    for (const auto& fam : options.rule_families) k.mix(fam);
    k.mix_u64(model.files.size());
    for (const SourceFile& f : model.files) {
      k.mix(f.rel_path);
      k.mix_u64(f.content_hash);
    }
    result_key = k.value();
  }

  const bool replayed =
      result_cache.enabled() && result_cache.load(result_key, &findings);
  result.findings_from_cache = replayed;
  if (!replayed) {
    if (want_layering && have_manifest) {
      run_layering_rules(model, manifest, &findings);
    }

    // The semantic families share one model: symbol index, call graph
    // (hot tags need the manifest), dataflow skeleton.
    SymbolIndex index;
    CallGraph graph;
    Dataflow flow;
    CfgIndex cfgs;
    SemanticModel sem;
    // The flow-sensitive families (lifetime, interval units, typestate)
    // additionally need per-callable CFGs.
    const bool want_flow =
        (want_lifetime && have_manifest) || (want_protocol && have_manifest) ||
        want_units;
    const bool want_semantic = (want_perf && have_manifest) ||
                               (want_concurrency && have_manifest) ||
                               want_determinism || want_flow;
    if (want_semantic) {
      index = build_symbol_index(model);
      graph =
          build_call_graph(model, index, have_manifest ? &manifest : nullptr);
      flow = build_dataflow(model, index);
      sem = {&index, &graph, &flow};
      if (want_flow) {
        cfgs = build_cfg_index(model, index);
        sem.cfgs = &cfgs;
      }
    }
    if (want_perf && have_manifest) {
      run_perf_rules(model, manifest, sem, &findings);
    }
    if (want_concurrency && have_manifest) {
      run_concurrency_rules(model, manifest, sem, &findings);
    }
    if (want_units) {
      run_units_rules(model, &findings);
      run_interval_rules(model, sem, &findings);
    }
    if (want_lifetime && have_manifest) {
      run_lifetime_rules(model, manifest, sem, &findings);
    }
    if (want_protocol && have_manifest) {
      run_typestate_rules(model, manifest, sem, &findings);
    }
    if (want_determinism) {
      run_determinism_rules(model, &findings);
      run_taint_rules(model, sem, &findings);
    }
    if (family_enabled(options, "scheduling")) {
      run_scheduling_rules(model, &findings);
    }
    if (result_cache.enabled()) result_cache.store(result_key, findings);
  }
  for (const auto& rule : all_rules()) {
    if (family_enabled(options, rule_family(rule.id).c_str())) {
      ++result.rules_run;
    }
  }

  Baseline baseline;
  std::vector<std::string> baseline_files = options.baseline_files;
  if (baseline_files.empty()) {
    const std::string default_baseline = root + "/tools/analyze/baseline.txt";
    if (std::filesystem::exists(default_baseline)) {
      baseline_files.push_back(default_baseline);
    }
  }
  for (const auto& path : baseline_files) {
    std::string content;
    if (!read_file(path, &content)) {
      result.error = "cannot read baseline " + path;
      return result;
    }
    if (!baseline.load(content, path, &result.error)) return result;
  }

  for (auto& f : findings) {
    f.baselined = baseline.matches(f);
    if (f.baselined) {
      ++result.baselined_count;
    } else {
      ++result.active_count;
    }
  }
  result.unused_baseline_entries = baseline.unused();

  if (options.fix_baseline && !result.unused_baseline_entries.empty()) {
    for (const auto& path : baseline_files) {
      std::string fixed;
      if (!baseline.rewritten(path, &fixed)) continue;
      std::string current;
      read_file(path, &current);
      if (fixed == current) continue;  // this file held no stale entries
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        result.error = "--fix-baseline: cannot rewrite " + path;
        return result;
      }
      out << fixed;
      result.rewritten_baselines.push_back(path);
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule_id < b.rule_id;
            });
  result.findings = std::move(findings);
  return result;
}

}  // namespace quicsteps::analyze
