#include "analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "baseline.hpp"

namespace quicsteps::analyze {

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

bool family_enabled(const Options& options, const char* family) {
  if (options.rule_families.empty()) return true;
  for (const auto& f : options.rule_families) {
    if (f == family) return true;
  }
  return false;
}

}  // namespace

AnalysisResult run_analysis(const Options& options) {
  AnalysisResult result;
  const std::string root =
      options.root.empty() ? std::string(".") : options.root;
  const std::string include_base =
      options.include_base.empty() ? root + "/src" : options.include_base;
  std::vector<std::string> paths = options.paths;
  if (paths.empty()) paths.push_back(root + "/src");

  Model model;
  if (!build_model(paths, root, include_base, &model, &result.error)) {
    return result;
  }
  result.files_scanned = model.files.size();

  std::vector<Finding> findings;
  // The manifest feeds two families: layering (the DAG) and perf (the
  // hot_path file tags). "-" skips both — fixture trees without a real
  // layer stack opt out of manifest-driven rules entirely.
  const bool want_layering = family_enabled(options, "layering");
  const bool want_perf = family_enabled(options, "perf");
  if (want_layering || want_perf) {
    std::string layers_path = options.layers_file.empty()
                                  ? root + "/tools/analyze/layers.json"
                                  : options.layers_file;
    if (layers_path != "-") {
      std::string json_text;
      if (!read_file(layers_path, &json_text)) {
        result.error = "cannot read layer manifest " + layers_path;
        return result;
      }
      LayerManifest manifest;
      if (!load_layer_manifest(json_text, &manifest, &result.error)) {
        return result;
      }
      if (want_layering) run_layering_rules(model, manifest, &findings);
      if (want_perf) run_perf_rules(model, manifest, &findings);
    }
  }
  if (family_enabled(options, "units")) run_units_rules(model, &findings);
  if (family_enabled(options, "determinism")) {
    run_determinism_rules(model, &findings);
  }
  if (family_enabled(options, "scheduling")) {
    run_scheduling_rules(model, &findings);
  }
  for (const auto& rule : all_rules()) {
    if (family_enabled(options, rule_family(rule.id).c_str())) {
      ++result.rules_run;
    }
  }

  Baseline baseline;
  std::vector<std::string> baseline_files = options.baseline_files;
  if (baseline_files.empty()) {
    const std::string default_baseline = root + "/tools/analyze/baseline.txt";
    if (std::filesystem::exists(default_baseline)) {
      baseline_files.push_back(default_baseline);
    }
  }
  for (const auto& path : baseline_files) {
    std::string content;
    if (!read_file(path, &content)) {
      result.error = "cannot read baseline " + path;
      return result;
    }
    if (!baseline.load(content, path, &result.error)) return result;
  }

  for (auto& f : findings) {
    f.baselined = baseline.matches(f);
    if (f.baselined) {
      ++result.baselined_count;
    } else {
      ++result.active_count;
    }
  }
  result.unused_baseline_entries = baseline.unused();

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return a.rule_id < b.rule_id;
            });
  result.findings = std::move(findings);
  return result;
}

}  // namespace quicsteps::analyze
