#include "callgraph.hpp"

#include <algorithm>
#include <queue>

namespace quicsteps::analyze {

namespace {

// By-name resolution stops inventing edges past this many candidate
// definitions — common method names (size, reset, push) would otherwise
// connect everything to everything.
constexpr std::size_t kAmbiguityCap = 8;

bool is_call_keyword(const std::string& s) {
  static const char* kWords[] = {
      "if",     "else",  "for",    "while",   "switch",     "do",
      "return", "sizeof", "alignof", "decltype", "new",     "delete",
      "case",   "catch", "throw",  "static_cast", "const_cast",
      "dynamic_cast", "reinterpret_cast", "static_assert", "assert",
      "defined", "alignas", "noexcept", "typeid",
  };
  for (const char* w : kWords) {
    if (s == w) return true;
  }
  return false;
}

bool match_paren(const std::vector<Token>& toks, std::size_t open,
                 std::size_t* close) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].in_pp) continue;
    if (toks[i].is_punct("(")) ++depth;
    if (toks[i].is_punct(")")) {
      --depth;
      if (depth == 0) {
        *close = i;
        return true;
      }
    }
  }
  return false;
}

void resolve_site(const SymbolIndex& index, CallSite* site) {
  auto [lo, hi] = index.callables_by_name.equal_range(site->name);
  std::vector<std::size_t> same_file, elsewhere;
  for (auto it = lo; it != hi; ++it) {
    const Symbol& cand = index.symbols[it->second];
    // A lambda resolves through its bound name only within its own file —
    // the binding is a local variable.
    if (cand.kind == Symbol::Kind::kLambda && cand.file != site->file) {
      continue;
    }
    (cand.file == site->file ? same_file : elsewhere).push_back(it->second);
  }
  std::vector<std::size_t>& picked =
      same_file.empty() ? elsewhere : same_file;
  if (picked.empty() || picked.size() > kAmbiguityCap) return;
  std::sort(picked.begin(), picked.end());
  site->callees = picked;
}

}  // namespace

CallGraph build_call_graph(const Model& model, const SymbolIndex& index,
                           const LayerManifest* manifest) {
  CallGraph graph;
  graph.edges.resize(index.symbols.size());
  graph.hot.resize(index.symbols.size(), false);

  // Implicit containment edges: enclosing callable -> lambda.
  for (std::size_t id = 0; id < index.symbols.size(); ++id) {
    const Symbol& sym = index.symbols[id];
    if (sym.kind == Symbol::Kind::kLambda && sym.parent != Symbol::npos) {
      graph.edges[sym.parent].push_back(id);
    }
  }

  for (std::size_t f = 0; f < model.files.size(); ++f) {
    const std::vector<Token>& toks = model.files[f].lex.tokens;
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.in_pp || t.kind != TokKind::kIdentifier ||
          is_call_keyword(t.text) || !toks[i + 1].is_punct("(")) {
        continue;
      }
      std::size_t close = 0;
      if (!match_paren(toks, i + 1, &close)) continue;
      const std::size_t caller = index.enclosing_callable(f, i);
      // Skip the definition header itself: `void f(` is not a call to f.
      if (caller != Symbol::npos) {
        const Symbol& enclosing = index.symbols[caller];
        if (enclosing.params_begin == i + 1) continue;
      }
      // `Type name(args);` declarations at namespace/class scope also look
      // like calls, but they have no enclosing callable and resolving them
      // adds edges from npos, which we drop anyway.
      CallSite site;
      site.caller = caller;
      site.name = t.text;
      site.file = f;
      site.tok = i;
      site.line = t.line;
      site.col = t.col;
      site.args_begin = i + 1;
      site.args_end = close;
      resolve_site(index, &site);
      if (caller != Symbol::npos) {
        for (const std::size_t callee : site.callees) {
          if (callee != caller) graph.edges[caller].push_back(callee);
        }
      }
      graph.sites.push_back(std::move(site));
    }
  }

  for (auto& out : graph.edges) {
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

  if (manifest != nullptr) {
    std::queue<std::size_t> frontier;
    for (std::size_t id = 0; id < index.symbols.size(); ++id) {
      const Symbol& sym = index.symbols[id];
      if (!sym.is_callable()) continue;
      if (manifest->is_hot_path(model.files[sym.file].include_key)) {
        graph.hot[id] = true;
        graph.hot_seeds.push_back(id);
        frontier.push(id);
      }
    }
    while (!frontier.empty()) {
      const std::size_t at = frontier.front();
      frontier.pop();
      for (const std::size_t next : graph.edges[at]) {
        if (!graph.hot[next]) {
          graph.hot[next] = true;
          frontier.push(next);
        }
      }
    }
  }
  return graph;
}

std::vector<std::size_t> worker_entries(
    const SymbolIndex& index, const CallGraph& graph,
    const std::vector<std::string>& entry_names) {
  std::vector<std::size_t> entries;
  const auto named_entry = [&entry_names](const std::string& name) {
    return std::find(entry_names.begin(), entry_names.end(), name) !=
           entry_names.end();
  };
  // Lambdas handed to an entry call: [..] lexically inside the args.
  for (const CallSite& site : graph.sites) {
    if (!named_entry(site.name)) continue;
    for (std::size_t id = 0; id < index.symbols.size(); ++id) {
      const Symbol& sym = index.symbols[id];
      if (sym.kind != Symbol::Kind::kLambda || sym.file != site.file) {
        continue;
      }
      if (sym.cap_begin > site.args_begin && sym.cap_begin < site.args_end) {
        entries.push_back(id);
      }
    }
  }
  // Lambdas defined inside the body of the entry function itself (the
  // pool worker thunk), walking up through nested lambdas.
  for (std::size_t id = 0; id < index.symbols.size(); ++id) {
    const Symbol& sym = index.symbols[id];
    if (sym.kind != Symbol::Kind::kLambda) continue;
    for (std::size_t up = sym.parent; up != Symbol::npos;
         up = index.symbols[up].parent) {
      if (index.symbols[up].kind == Symbol::Kind::kFunction &&
          named_entry(index.symbols[up].name)) {
        entries.push_back(id);
        break;
      }
    }
  }
  std::sort(entries.begin(), entries.end());
  entries.erase(std::unique(entries.begin(), entries.end()), entries.end());
  return entries;
}

}  // namespace quicsteps::analyze
