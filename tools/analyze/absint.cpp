#include "absint.hpp"

#include <limits>

namespace quicsteps::analyze {

namespace {

constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();

/// Saturating multiply with overflow detection.
std::int64_t sat_mul(std::int64_t a, std::int64_t b, bool* overflowed) {
  if (a == 0 || b == 0) return 0;
  // __int128 is available on every compiler this repo builds with.
  const __int128 wide = static_cast<__int128>(a) * static_cast<__int128>(b);
  if (wide > static_cast<__int128>(kMax)) {
    *overflowed = true;
    return kMax;
  }
  if (wide < static_cast<__int128>(kMin)) {
    *overflowed = true;
    return kMin;
  }
  return static_cast<std::int64_t>(wide);
}

std::int64_t sat_add(std::int64_t a, std::int64_t b, bool* overflowed) {
  std::int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    *overflowed = true;
    return b > 0 ? kMax : kMin;
  }
  return out;
}

std::int64_t sat_sub(std::int64_t a, std::int64_t b, bool* overflowed) {
  std::int64_t out;
  if (__builtin_sub_overflow(a, b, &out)) {
    *overflowed = true;
    return b < 0 ? kMax : kMin;
  }
  return out;
}

}  // namespace

IntInterval IntInterval::top() { return {kMin, kMax}; }

IntInterval IntInterval::constant(std::int64_t v) { return {v, v}; }

IntInterval IntInterval::range(std::int64_t lo, std::int64_t hi) {
  return {lo, hi};
}

bool IntInterval::join(const IntInterval& o) {
  if (o.is_bottom()) return false;
  if (is_bottom()) {
    *this = o;
    return true;
  }
  bool changed = false;
  if (o.lo < lo) {
    lo = o.lo;
    changed = true;
  }
  if (o.hi > hi) {
    hi = o.hi;
    changed = true;
  }
  return changed;
}

void IntInterval::widen(const IntInterval& prev) {
  if (is_bottom() || prev.is_bottom()) return;
  if (lo < prev.lo) lo = kMin;
  if (hi > prev.hi) hi = kMax;
}

IntInterval IntInterval::add(const IntInterval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  bool of = false;
  return {sat_add(lo, o.lo, &of), sat_add(hi, o.hi, &of)};
}

IntInterval IntInterval::sub(const IntInterval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  bool of = false;
  return {sat_sub(lo, o.hi, &of), sat_sub(hi, o.lo, &of)};
}

IntInterval IntInterval::mul(const IntInterval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  bool of = false;
  const std::int64_t c[4] = {
      sat_mul(lo, o.lo, &of), sat_mul(lo, o.hi, &of),
      sat_mul(hi, o.lo, &of), sat_mul(hi, o.hi, &of)};
  IntInterval r{c[0], c[0]};
  for (int i = 1; i < 4; ++i) {
    if (c[i] < r.lo) r.lo = c[i];
    if (c[i] > r.hi) r.hi = c[i];
  }
  return r;
}

IntInterval IntInterval::div(const IntInterval& o) const {
  if (is_bottom() || o.is_bottom()) return {};
  // A divisor interval containing zero makes the quotient unknowable
  // here (the div-by-zero rule reports separately).
  if (o.contains(0)) return top();
  const std::int64_t c[4] = {lo / o.lo, lo / o.hi, hi / o.lo, hi / o.hi};
  IntInterval r{c[0], c[0]};
  for (int i = 1; i < 4; ++i) {
    if (c[i] < r.lo) r.lo = c[i];
    if (c[i] > r.hi) r.hi = c[i];
  }
  return r;
}

IntInterval IntInterval::refine_lt(std::int64_t k) const {
  if (is_bottom() || k == kMin) return {};
  return {lo, hi < k - 1 ? hi : k - 1};
}

IntInterval IntInterval::refine_le(std::int64_t k) const {
  if (is_bottom()) return {};
  return {lo, hi < k ? hi : k};
}

IntInterval IntInterval::refine_gt(std::int64_t k) const {
  if (is_bottom() || k == kMax) return {};
  return {lo > k + 1 ? lo : k + 1, hi};
}

IntInterval IntInterval::refine_ge(std::int64_t k) const {
  if (is_bottom()) return {};
  return {lo > k ? lo : k, hi};
}

IntInterval IntInterval::refine_eq(std::int64_t k) const {
  if (!contains(k)) return {};
  return {k, k};
}

IntInterval IntInterval::refine_ne(std::int64_t k) const {
  if (is_bottom()) return {};
  // Only exact-endpoint exclusion is representable in an interval.
  IntInterval r = *this;
  if (r.lo == k && r.lo < r.hi) ++r.lo;
  if (r.hi == k && r.lo < r.hi) --r.hi;
  if (r.lo == k && r.hi == k) return {};
  return r;
}

bool mul_may_overflow(const IntInterval& a, const IntInterval& b) {
  if (a.is_bottom() || b.is_bottom()) return false;
  bool of = false;
  sat_mul(a.lo, b.lo, &of);
  sat_mul(a.lo, b.hi, &of);
  sat_mul(a.hi, b.lo, &of);
  sat_mul(a.hi, b.hi, &of);
  return of;
}

bool add_may_overflow(const IntInterval& a, const IntInterval& b) {
  if (a.is_bottom() || b.is_bottom()) return false;
  bool of = false;
  sat_add(a.lo, b.lo, &of);
  sat_add(a.hi, b.hi, &of);
  return of;
}

}  // namespace quicsteps::analyze
