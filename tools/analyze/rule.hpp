// Rule registry and finding model.
//
// Rule IDs are "<family>/<name>" (e.g. "determinism/wall-clock"). Families
// group what one conceptual checker owns; the baseline file and the
// --rules filter both operate on these IDs. Adding a rule means adding a
// RuleInfo entry here and emitting findings with that ID — the reporters
// and SARIF metadata pick it up from the table.
#pragma once

#include <string>
#include <vector>

#include "source_model.hpp"

namespace quicsteps::analyze {

/// Machine-applicable replacement: replace the [line:col, end_line:end_col)
/// region of the finding's file with `replacement`. A zero-width region
/// (line==end_line, col==end_col) is an insertion; an empty replacement is
/// a deletion. Reported as a `fix:` line by the text reporter and as a
/// SARIF `fixes` entry.
struct FixIt {
  std::string description;
  int line = 1;
  int col = 1;
  int end_line = 1;
  int end_col = 1;
  std::string replacement;
};

struct Finding {
  std::string rule_id;
  std::string file;  // rel_path of the file
  int line = 1;
  int col = 1;
  std::string message;
  bool baselined = false;
  std::vector<FixIt> fixits;
};

struct RuleInfo {
  const char* id;
  const char* short_description;
};

/// Every rule the analyzer knows, in stable (reporting) order.
const std::vector<RuleInfo>& all_rules();

/// True when `rule_id` exists in all_rules().
bool known_rule(const std::string& rule_id);

/// Family prefix of an ID ("determinism/wall-clock" -> "determinism").
std::string rule_family(const std::string& rule_id);

/// A generation-checked container type (net::PacketSlab and friends):
/// `borrow` methods hand out references/pointers into its storage that
/// every `invalidate` method (allocation or slot recycling) may kill.
/// lifetime/* checks the static twin of the runtime generation audit.
struct GenerationChecked {
  std::string type;                    // matched as a type_text substring
  std::vector<std::string> borrow;     // e.g. {"peek"}
  std::vector<std::string> invalidate; // e.g. {"put", "take"}
};

/// One protocol event a typestate machine reacts to:
///   method:NAME   var.NAME(...) / var->NAME(...)
///   arg:NAME      var passed in the argument list of a call to NAME
///   cond-true     a branch condition on var taken true (null/enabled check)
///   cond-false    the same condition taken false
///   mutate        member assignment or a mutating member call on var
/// A whole-object reassignment (`var = ...`) always resets to `start`.
struct TypestateTransition {
  std::string event;
  std::string from;  // empty = any state
  std::string to;
};

/// A checked obligation: when `event` fires on a variable, the solved
/// state set at that point must not (may-mode: contain any / must-mode:
/// consist only of) the forbidden states.
struct TypestateRequire {
  std::string event;
  std::vector<std::string> forbid;
  bool must = false;  // false = may (any forbidden state errs)
  std::string message;
};

/// A per-type protocol state machine, declared in layers.json and checked
/// along all CFG paths by protocol/typestate.
struct TypestateProtocol {
  std::string name;
  std::string type;   // matched as a type_text substring
  std::string start;
  std::vector<std::string> states;  // start must be listed
  std::vector<TypestateTransition> transitions;
  std::vector<TypestateRequire> checks;
  /// Track only pointer-typed variables (the null-check protocols); when
  /// false, only value-typed ones (construction fixes the start state).
  bool pointer_only = false;
  /// Parameters enter in this state; empty = parameters are not tracked
  /// (their history belongs to the caller).
  std::string param_start;
};

/// The layering manifest: which layer may include which, plus the
/// hot-path file tags the perf/* rules key off.
struct LayerManifest {
  /// layer -> allowed dependency layers ("*" = everything).
  std::vector<std::pair<std::string, std::vector<std::string>>> allow;
  /// Layers includable from anywhere (the audit spine and the umbrella).
  std::vector<std::string> universal;
  /// Files (by include key, e.g. "kernel/nic.cpp") on the per-packet
  /// datapath: the perf family seeds hot callables there and
  /// perf/hot-path-alloc-interproc propagates the tag along call edges.
  std::vector<std::string> hot_path;
  /// Function names whose lambda arguments (and internal worker thunks)
  /// run on pool threads; concurrency/parallel-shared-state roots its
  /// reachability walk here. Defaults to {"parallel_for"} when the
  /// manifest omits the key.
  std::vector<std::string> parallel_entries;
  /// Generation-checked containers for the lifetime/* family.
  std::vector<GenerationChecked> generation_checked;
  /// Typestate protocols for protocol/typestate.
  std::vector<TypestateProtocol> typestate;

  bool declared(const std::string& layer) const {
    for (const auto& [name, deps] : allow) {
      if (name == layer) return true;
    }
    return false;
  }
  bool is_universal(const std::string& layer) const {
    for (const auto& u : universal) {
      if (u == layer) return true;
    }
    return false;
  }
  bool is_hot_path(const std::string& include_key) const {
    for (const auto& h : hot_path) {
      if (h == include_key) return true;
    }
    return false;
  }
  const std::vector<std::string>* deps_of(const std::string& layer) const {
    for (const auto& [name, deps] : allow) {
      if (name == layer) return &deps;
    }
    return nullptr;
  }
};

/// Parses + validates layers.json content. The declared dependency graph
/// restricted to non-universal layers must be a DAG; a cycle there is a
/// configuration error, reported via `*error` (the analyzer exits 2 — a
/// broken manifest must never read as "clean").
bool load_layer_manifest(const std::string& json_text, LayerManifest* out,
                         std::string* error);

struct SymbolIndex;
struct CallGraph;
struct Dataflow;
struct CfgIndex;

/// The semantic model the interprocedural families share; built once per
/// run by the analyzer when any of them is enabled (symbols.hpp,
/// callgraph.hpp, dataflow.hpp, cfg.hpp).
struct SemanticModel {
  const SymbolIndex* index = nullptr;
  const CallGraph* graph = nullptr;
  const Dataflow* flow = nullptr;
  const CfgIndex* cfgs = nullptr;
};

// Rule family entry points. Each appends findings for every file in the
// model; filtering (baseline, --rules) happens downstream.
void run_determinism_rules(const Model& model, std::vector<Finding>* out);
void run_units_rules(const Model& model, std::vector<Finding>* out);
void run_scheduling_rules(const Model& model, std::vector<Finding>* out);
void run_layering_rules(const Model& model, const LayerManifest& manifest,
                        std::vector<Finding>* out);
void run_perf_rules(const Model& model, const LayerManifest& manifest,
                    const SemanticModel& sem, std::vector<Finding>* out);
void run_concurrency_rules(const Model& model, const LayerManifest& manifest,
                           const SemanticModel& sem,
                           std::vector<Finding>* out);
void run_taint_rules(const Model& model, const SemanticModel& sem,
                     std::vector<Finding>* out);
void run_lifetime_rules(const Model& model, const LayerManifest& manifest,
                        const SemanticModel& sem, std::vector<Finding>* out);
void run_interval_rules(const Model& model, const SemanticModel& sem,
                        std::vector<Finding>* out);
void run_typestate_rules(const Model& model, const LayerManifest& manifest,
                         const SemanticModel& sem,
                         std::vector<Finding>* out);

}  // namespace quicsteps::analyze
