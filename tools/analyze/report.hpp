// Reporters: compiler-style text and SARIF 2.1.0.
#pragma once

#include <string>
#include <vector>

#include "rule.hpp"

namespace quicsteps::analyze {

/// One line per finding, gcc style:
///   src/sim/time.cpp:12:9: [units/raw-time-type] message
/// A finding with fix-it hints gets one indented line per hint:
///   src/sim/time.cpp:12:9: fix: replace [12:9-12:22] with 'map' (...)
/// Baselined findings are omitted (they are visible in the SARIF output as
/// suppressed results and in the summary count).
std::string text_report(const std::vector<Finding>& findings);

/// Full SARIF 2.1.0 log. Every known rule appears in the driver metadata;
/// baselined findings are emitted with an external suppression so the
/// output is a complete audit of what the analyzer saw. Deterministic:
/// same findings in, byte-identical log out (golden-tested).
std::string sarif_report(const std::vector<Finding>& findings);

/// "N files (C cached), R rules, F finding(s) (B baselined) in T ms" —
/// the auditable one-liner check.sh and CI print. C is the token-cache
/// hit count (0 when --cache-dir is off or cold), so CI logs show warm
/// vs cold wall time side by side.
std::string summary_line(std::size_t files, std::size_t cached,
                         std::size_t rules, std::size_t findings,
                         std::size_t baselined, long long elapsed_ms);

}  // namespace quicsteps::analyze
