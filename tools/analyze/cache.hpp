// Content-hash-keyed caches (--cache-dir): token cache + result cache.
//
// Two layers, both keyed by content, never by path or mtime — a rename or
// touch never invalidates, an edit always does:
//
//   * TokenCache keys each file's BYTES (FNV-1a 64) and stores its token
//     stream; a warm run skips re-tokenizing but still builds the symbol
//     index / call graph and runs every rule.
//   * ResultCache keys the WHOLE analysis — format version, include base,
//     enabled rule families, layer-manifest text, and the ordered
//     (rel_path, content hash) list — and stores the raw findings
//     (fix-its included, pre-baseline). A hit replays them and skips the
//     semantic build and all rules; any edit to any scanned file, the
//     manifest, or the rule selection changes the key. The baseline is
//     applied AFTER replay, so editing baseline.txt never needs a
//     cold run.
//
// Entries are one binary blob per key under the cache directory, written
// via temp+rename so a crashed run can never leave a torn entry, and
// carry a format version plus the key inline — a stale or corrupt entry
// deserializes as a miss, never as wrong output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rule.hpp"
#include "token.hpp"

namespace quicsteps::analyze {

/// 64-bit FNV-1a over the raw bytes.
std::uint64_t content_hash(const std::string& content);

/// Incremental FNV-1a 64 for composite cache keys. Each mix() folds in a
/// length prefix before the bytes so ("ab","c") and ("a","bc") hash
/// differently.
class KeyHasher {
 public:
  void mix(const std::string& s);
  void mix_u64(std::uint64_t v);
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

class TokenCache {
 public:
  /// `dir` empty disables the cache (every lookup is a miss that is not
  /// stored). The directory is created on first store.
  explicit TokenCache(std::string dir) : dir_(std::move(dir)) {}

  /// Returns the LexResult for `content`, from the cache when an entry
  /// with matching content hash deserializes cleanly, else by lexing (and
  /// storing the result).
  LexResult lex_cached(const std::string& content);

  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  bool enabled() const { return !dir_.empty(); }

 private:
  std::string entry_path(std::uint64_t hash) const;
  bool load(const std::string& path, std::uint64_t hash, LexResult* out);
  void store(const std::string& path, std::uint64_t hash,
             const LexResult& lex);

  std::string dir_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

class ResultCache {
 public:
  /// `dir` empty disables the cache. Shares the token cache's directory;
  /// entries are `<key>.res` next to the `<hash>.lex` token entries.
  explicit ResultCache(std::string dir) : dir_(std::move(dir)) {}

  /// Loads the findings stored under `key`. Returns false (leaving `out`
  /// untouched) on a miss or a stale/corrupt entry. Replayed findings
  /// always carry baselined = false — the caller re-applies the baseline.
  bool load(std::uint64_t key, std::vector<Finding>* out) const;

  /// Stores `findings` under `key` (best effort: an unwritable cache
  /// directory means the next run is cold, not an error).
  void store(std::uint64_t key, const std::vector<Finding>& findings) const;

  bool enabled() const { return !dir_.empty(); }

 private:
  std::string entry_path(std::uint64_t key) const;

  std::string dir_;
};

}  // namespace quicsteps::analyze
