// Comment/string/preprocessor-aware C++ lexer for the static analyzer.
#pragma once

#include <string_view>

#include "token.hpp"

namespace quicsteps::analyze {

/// Lexes `text` into tokens. Comments vanish (they never produce tokens),
/// string/char literal bodies are preserved but typed so rules can ignore
/// them, backslash-newline continuations are spliced, and #include paths
/// come out as dedicated kIncludePath tokens (also collected in
/// LexResult::includes). Never fails: unexpected bytes lex as punctuation.
LexResult lex(std::string_view text);

}  // namespace quicsteps::analyze
