// Determinism rules: every published number must be a pure function of
// (config, seed). These port tools/quicsteps_lint.py's regex rules onto
// the token stream, so string literals and comments can never false-
// positive and one engine owns the policy.
#include "rule.hpp"

namespace quicsteps::analyze {

namespace {

bool is_unordered_container(const std::string& s) {
  return s == "unordered_map" || s == "unordered_set" ||
         s == "unordered_multimap" || s == "unordered_multiset";
}

/// Exporter-path files: everything under obs/ plus the artifact, report,
/// and qlog writers. Their iteration order IS the output format, so even
/// an aliased / using-imported unordered container (which the
/// std::-qualified rule above cannot see) is a determinism bug there.
bool is_exporter_file(const std::string& rel) {
  return rel.find("obs/") != std::string::npos ||
         rel.find("exporter") != std::string::npos ||
         rel.find("artifacts") != std::string::npos ||
         rel.find("report") != std::string::npos ||
         rel.find("qlog") != std::string::npos;
}

/// True when tokens[i] is preceded by a member-access operator, i.e.
/// `x.time(` / `x->clock(` — those are method calls on simulation objects,
/// not the libc functions.
bool member_access_before(const std::vector<Token>& toks, std::size_t i) {
  if (i == 0) return false;
  return toks[i - 1].is_punct(".") || toks[i - 1].is_punct("->");
}

bool next_is_call(const std::vector<Token>& toks, std::size_t i) {
  return i + 1 < toks.size() && toks[i + 1].is_punct("(");
}

void add(std::vector<Finding>* out, const char* id, const SourceFile& f,
         const Token& t, std::string message) {
  out->push_back({id, f.rel_path, t.line, t.col, std::move(message), false, {}});
}

/// Machine fix: swap the `unordered_<X>` token for its ordered `<X>`
/// equivalent in place.
FixIt ordered_equivalent_fix(const Token& container_tok) {
  FixIt fix;
  const std::string ordered =
      container_tok.text.substr(std::string("unordered_").size());
  fix.description = "replace " + container_tok.text + " with " + ordered;
  fix.line = container_tok.line;
  fix.col = container_tok.col;
  fix.end_line = container_tok.line;
  fix.end_col =
      container_tok.col + static_cast<int>(container_tok.text.size());
  fix.replacement = ordered;
  return fix;
}

}  // namespace

void run_determinism_rules(const Model& model, std::vector<Finding>* out) {
  for (const auto& f : model.files) {
    if (f.is_header && !f.lex.has_pragma_once) {
      FixIt fix;
      fix.description = "insert #pragma once";
      fix.replacement = "#pragma once\n";
      out->push_back({"determinism/include-guard", f.rel_path, 1, 1,
                      "header lacks #pragma once", false,
                      std::vector<FixIt>{fix}});
    }

    const auto& toks = f.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier) continue;

      // Unqualified unordered container in an exporter-path file. The
      // qualified form is already covered by determinism/unordered-container
      // below (hence the `::` exclusion — no double report), and `#include
      // <unordered_map>` tokens are preprocessor text, not uses.
      if (is_unordered_container(t.text) && !t.in_pp &&
          !(i > 0 && toks[i - 1].is_punct("::")) &&
          is_exporter_file(f.rel_path)) {
        add(out, "determinism/exporter-unordered", f, t,
            t.text + " reached exporter code unqualified (alias or "
                     "using-import); exporters may only iterate sorted "
                     "containers");
        out->back().fixits.push_back(ordered_equivalent_fix(t));
        continue;
      }

      // std::<something> patterns.
      if (t.text == "std" && i + 2 < toks.size() &&
          toks[i + 1].is_punct("::") &&
          toks[i + 2].kind == TokKind::kIdentifier) {
        const std::string& m = toks[i + 2].text;
        if (m == "chrono") {
          add(out, "determinism/wall-clock", f, t,
              "std::chrono reads the host clock; simulated time comes from "
              "sim::Time / the EventLoop");
        } else if (m == "random_device") {
          add(out, "determinism/random-device", f, t,
              "std::random_device is nondeterministic by definition; draw "
              "from the seeded sim::Rng");
        } else if (is_unordered_container(m)) {
          add(out, "determinism/unordered-container", f, t,
              "std::" + m +
                  " iteration order is allocator-dependent; use std::map, a "
                  "sorted vector, or net::CountersTable");
          out->back().fixits.push_back(ordered_equivalent_fix(toks[i + 2]));
        } else if (m == "this_thread" && i + 4 < toks.size() &&
                   toks[i + 3].is_punct("::") &&
                   (toks[i + 4].is_id("sleep_for") ||
                    toks[i + 4].is_id("sleep_until"))) {
          add(out, "determinism/thread-sleep", f, t,
              "wall-clock sleeping has no place in a discrete-event "
              "simulation");
        }
        continue;
      }

      // Bare libc calls. `std::time(` / `std::clock(` funnel through here
      // too: the preceding "std" token matches none of the cases above and
      // the call itself is still the libc function.
      if ((t.text == "time" || t.text == "clock") && next_is_call(toks, i) &&
          !member_access_before(toks, i)) {
        add(out, "determinism/wall-clock", f, t,
            t.text + "() reads the host clock; use the EventLoop's now()");
        continue;
      }
      if (t.text == "gettimeofday" || t.text == "clock_gettime") {
        add(out, "determinism/wall-clock", f, t,
            t.text + " reads the host clock; use the EventLoop's now()");
        continue;
      }
      if ((t.text == "rand" || t.text == "srand") && next_is_call(toks, i) &&
          !member_access_before(toks, i)) {
        add(out, "determinism/libc-rand", f, t,
            t.text + "() bypasses the seeded sim::Rng");
        continue;
      }
      if (t.text == "drand48" || t.text == "lrand48" ||
          t.text == "mrand48") {
        add(out, "determinism/libc-rand", f, t,
            t.text + " bypasses the seeded sim::Rng");
        continue;
      }
    }
  }
}

}  // namespace quicsteps::analyze
