// Hot-path allocation hygiene.
//
// The batched datapath's whole point is that the per-packet path performs
// no allocation in steady state: packets live in the slab
// (net/packet_slab.hpp), hops ride drain records
// (sim::EventLoop::schedule_drain_at), and every container grows only to
// its high-water mark. Files carrying that guarantee are tagged under
// "hot_path" in tools/analyze/layers.json; this rule flags the patterns
// that silently reintroduce per-packet cost there:
//   * operator new / std::make_unique / std::make_shared — a heap
//     allocation per call;
//   * push_back / emplace_back — container growth (fine when amortized to
//     a recycled high-water mark, which is what the baseline records);
//   * schedule_at / schedule_after — constructs a std::function closure
//     per event; per-packet hops should use a drain channel.
// Deliberate sites (free-list growth, the legacy A/B datapath) are
// baselined in tools/analyze/baseline.txt with their rationale.
#include "rule.hpp"

namespace quicsteps::analyze {

void run_perf_rules(const Model& model, const LayerManifest& manifest,
                    std::vector<Finding>* out) {
  for (const auto& f : model.files) {
    if (f.include_key.empty() || !manifest.is_hot_path(f.include_key)) {
      continue;
    }
    const auto& toks = f.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier) continue;
      const bool is_call =
          i + 1 < toks.size() &&
          (toks[i + 1].is_punct("(") || toks[i + 1].is_punct("<"));
      std::string message;
      if (t.text == "new") {
        message =
            "'new' in a hot-path file allocates per call; store packets in "
            "the slab or preallocated state";
      } else if ((t.text == "make_unique" || t.text == "make_shared") &&
                 is_call) {
        message = "'" + t.text +
                  "' in a hot-path file allocates per call; store packets "
                  "in the slab or preallocated state";
      } else if ((t.text == "push_back" || t.text == "emplace_back") &&
                 is_call) {
        message = "'" + t.text +
                  "' in a hot-path file grows a container; growth must "
                  "amortize to a recycled high-water mark (baseline with "
                  "the rationale if it does)";
      } else if ((t.text == "schedule_at" || t.text == "schedule_after") &&
                 is_call) {
        message = "'" + t.text +
                  "' in a hot-path file constructs a std::function per "
                  "event; per-packet hops should ride a drain channel "
                  "(register_drain/schedule_drain_at)";
      } else {
        continue;
      }
      out->push_back({"perf/hot-path-alloc", f.rel_path, t.line, t.col,
                      std::move(message), false});
    }
  }
}

}  // namespace quicsteps::analyze
