// Hot-path allocation hygiene, interprocedural.
//
// The batched datapath's whole point is that the per-packet path performs
// no allocation in steady state: packets live in the slab
// (net/packet_slab.hpp), hops ride drain records
// (sim::EventLoop::schedule_drain_at), and every container grows only to
// its high-water mark. Files carrying that guarantee are tagged under
// "hot_path" in tools/analyze/layers.json.
//
// v1 of this rule (perf/hot-path-alloc) scanned whole hot files
// syntactically — every allocation in a hot file was flagged, including
// setup/teardown helpers, and an allocation in a helper one call away in a
// cold file was invisible. This version walks the call graph instead: the
// hot set is every callable defined in a hot-path file plus everything
// transitively reachable from one, and only tokens inside those callables'
// bodies are scanned. Patterns flagged:
//   * operator new / std::make_unique / std::make_shared — a heap
//     allocation per call;
//   * push_back / emplace_back — container growth (fine when amortized to
//     a recycled high-water mark, which is what the baseline records);
//   * schedule_at / schedule_after — constructs a std::function closure
//     per event; per-packet hops should use a drain channel.
// Deliberate sites (free-list growth, the legacy A/B datapath) are
// baselined in tools/analyze/baseline.txt with their rationale.
#include "callgraph.hpp"
#include "dataflow.hpp"
#include "rule.hpp"
#include "symbols.hpp"

namespace quicsteps::analyze {

void run_perf_rules(const Model& model, const LayerManifest& manifest,
                    const SemanticModel& sem, std::vector<Finding>* out) {
  (void)manifest;
  const SymbolIndex& index = *sem.index;
  const CallGraph& graph = *sem.graph;
  for (std::size_t id = 0; id < index.symbols.size(); ++id) {
    const Symbol& sym = index.symbols[id];
    if (!graph.is_hot(id) || !sym.is_callable() ||
        sym.body_begin == Symbol::npos || sym.body_end == Symbol::npos) {
      continue;
    }
    const SourceFile& f = model.files[sym.file];
    const bool seeded = manifest.is_hot_path(f.include_key);
    const std::string where =
        seeded ? "a hot-path callable"
               : "'" + sym.qual_name +
                     "', reachable from the hot-path set via the call graph";
    const auto& toks = f.lex.tokens;
    for (std::size_t i = sym.body_begin + 1; i < sym.body_end; ++i) {
      const Token& t = toks[i];
      if (t.in_pp || t.kind != TokKind::kIdentifier) continue;
      // Don't double-report tokens of a nested lambda that is itself hot —
      // the lambda's own walk covers them. (A cold nested lambda inside a
      // hot body stays covered here.)
      const std::size_t owner = index.enclosing_callable(sym.file, i);
      if (owner != id && owner != Symbol::npos && graph.is_hot(owner) &&
          index.symbols[owner].body_begin > sym.body_begin) {
        continue;
      }
      // A call to the enclosing callable's own name is overload delegation
      // (or recursion) — the definition-site family, not a use of the
      // pattern. The untagged schedule_at/schedule_after wrappers
      // delegating to their tagged overloads are the motivating case.
      if (t.text == sym.name) continue;
      const bool is_call =
          i + 1 < toks.size() &&
          (toks[i + 1].is_punct("(") || toks[i + 1].is_punct("<"));
      std::string message;
      if (t.text == "new") {
        message = "'new' in " + where +
                  " allocates per call; store packets in the slab or "
                  "preallocated state";
      } else if ((t.text == "make_unique" || t.text == "make_shared") &&
                 is_call) {
        message = "'" + t.text + "' in " + where +
                  " allocates per call; store packets in the slab or "
                  "preallocated state";
      } else if ((t.text == "push_back" || t.text == "emplace_back") &&
                 is_call) {
        message = "'" + t.text + "' in " + where +
                  " grows a container; growth must amortize to a recycled "
                  "high-water mark (baseline with the rationale if it does)";
      } else if ((t.text == "schedule_at" || t.text == "schedule_after") &&
                 is_call) {
        message = "'" + t.text + "' in " + where +
                  " constructs a std::function per event; per-packet hops "
                  "should ride a drain channel "
                  "(register_drain/schedule_drain_at)";
      } else {
        continue;
      }
      out->push_back({"perf/hot-path-alloc-interproc", f.rel_path, t.line,
                      t.col, std::move(message), false, {}});
    }
  }
}

}  // namespace quicsteps::analyze
