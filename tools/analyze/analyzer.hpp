// Orchestration: options in, sorted findings out. main.cpp and the
// self-tests both drive analysis through this header so the CLI and the
// test suite can never disagree about behavior.
#pragma once

#include <string>
#include <vector>

#include "rule.hpp"

namespace quicsteps::analyze {

struct Options {
  std::string root;                        // anchors reported paths
  std::vector<std::string> paths;          // files/dirs; default: root/src
                                           // plus root/tools/analyze (the
                                           // analyzer self-hosts)
  std::string include_base;                // default: root/src
  std::string layers_file;                 // default:
                                           // root/tools/analyze/layers.json;
                                           // "-" disables manifest rules
  std::vector<std::string> baseline_files; // default:
                                           // root/tools/analyze/baseline.txt
                                           // (if it exists)
  std::vector<std::string> rule_families;  // empty = all families
  std::string cache_dir;                   // token + result caches; empty =
                                           // disabled
  bool fix_baseline = false;               // rewrite baselines, dropping
                                           // stale entries
};

struct AnalysisResult {
  /// All findings (baselined ones flagged), sorted by
  /// (file, line, col, rule_id) — the order every reporter uses.
  std::vector<Finding> findings;
  std::vector<std::string> unused_baseline_entries;
  /// Baseline files rewritten by --fix-baseline (stale entries dropped).
  std::vector<std::string> rewritten_baselines;
  std::size_t files_scanned = 0;
  std::size_t files_from_cache = 0;  // of files_scanned, token-cache hits
  /// True when the whole finding set was replayed from the result cache
  /// (semantic build and all rules skipped).
  bool findings_from_cache = false;
  std::size_t rules_run = 0;
  std::size_t active_count = 0;     // findings not baselined
  std::size_t baselined_count = 0;
  /// Non-empty on configuration errors (bad manifest, unreadable path,
  /// malformed baseline). Callers must exit 2, not "clean".
  std::string error;
};

AnalysisResult run_analysis(const Options& options);

}  // namespace quicsteps::analyze
