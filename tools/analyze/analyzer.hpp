// Orchestration: options in, sorted findings out. main.cpp and the
// self-tests both drive analysis through this header so the CLI and the
// test suite can never disagree about behavior.
#pragma once

#include <string>
#include <vector>

#include "rule.hpp"

namespace quicsteps::analyze {

struct Options {
  std::string root;                        // anchors reported paths
  std::vector<std::string> paths;          // files/dirs; default: root/src
  std::string include_base;                // default: root/src
  std::string layers_file;                 // default:
                                           // root/tools/analyze/layers.json;
                                           // "-" disables layering rules
  std::vector<std::string> baseline_files; // default:
                                           // root/tools/analyze/baseline.txt
                                           // (if it exists)
  std::vector<std::string> rule_families;  // empty = all families
};

struct AnalysisResult {
  /// All findings (baselined ones flagged), sorted by
  /// (file, line, col, rule_id) — the order every reporter uses.
  std::vector<Finding> findings;
  std::vector<std::string> unused_baseline_entries;
  std::size_t files_scanned = 0;
  std::size_t rules_run = 0;
  std::size_t active_count = 0;     // findings not baselined
  std::size_t baselined_count = 0;
  /// Non-empty on configuration errors (bad manifest, unreadable path,
  /// malformed baseline). Callers must exit 2, not "clean".
  std::string error;
};

AnalysisResult run_analysis(const Options& options);

}  // namespace quicsteps::analyze
