#include "json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace quicsteps::analyze {

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(&v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      return std::nullopt;
    }
    return v;
  }

 private:
  char cur() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void adv() {
    if (cur() == '\n') ++line_;
    ++pos_;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(cur()))) {
      adv();
    }
  }
  bool fail(const std::string& what) {
    if (error_->empty()) {
      *error_ = "line " + std::to_string(line_) + ": " + what;
    }
    return false;
  }

  bool parse_value(JsonValue* out) {
    switch (cur()) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return parse_string(&out->str);
      case 't':
      case 'f':
        return parse_keyword(out);
      case 'n':
        return parse_keyword(out);
      default:
        if (cur() == '-' || std::isdigit(static_cast<unsigned char>(cur()))) {
          return parse_number(out);
        }
        return fail("unexpected character");
    }
  }

  bool parse_keyword(JsonValue* out) {
    static const struct {
      const char* word;
      JsonValue::Kind kind;
      bool value;
    } kWords[] = {{"true", JsonValue::Kind::kBool, true},
                  {"false", JsonValue::Kind::kBool, false},
                  {"null", JsonValue::Kind::kNull, false}};
    for (const auto& w : kWords) {
      const std::size_t n = std::string(w.word).size();
      if (text_.compare(pos_, n, w.word) == 0) {
        out->kind = w.kind;
        out->boolean = w.value;
        for (std::size_t i = 0; i < n; ++i) adv();
        return true;
      }
    }
    return fail("unknown keyword");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (cur() == '-') adv();
    while (std::isdigit(static_cast<unsigned char>(cur())) || cur() == '.' ||
           cur() == 'e' || cur() == 'E' || cur() == '+' || cur() == '-') {
      adv();
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  bool parse_string(std::string* out) {
    if (cur() != '"') return fail("expected string");
    adv();
    out->clear();
    while (cur() != '"') {
      if (cur() == '\0') return fail("unterminated string");
      if (cur() == '\\') {
        adv();
        switch (cur()) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            // Keep it simple: \uXXXX passes through as '?' (the manifest
            // never uses them).
            for (int i = 0; i < 4 && cur() != '\0'; ++i) adv();
            *out += '?';
            continue;
          }
          default:
            return fail("bad escape");
        }
        adv();
        continue;
      }
      *out += cur();
      adv();
    }
    adv();
    return true;
  }

  bool parse_array(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    adv();  // '['
    skip_ws();
    if (cur() == ']') {
      adv();
      return true;
    }
    while (true) {
      JsonValue elem;
      if (!parse_value(&elem)) return false;
      out->array.push_back(std::move(elem));
      skip_ws();
      if (cur() == ',') {
        adv();
        skip_ws();
        continue;
      }
      if (cur() == ']') {
        adv();
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    adv();  // '{'
    skip_ws();
    if (cur() == '}') {
      adv();
      return true;
    }
    while (true) {
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (cur() != ':') return fail("expected ':' after object key");
      adv();
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (cur() == ',') {
        adv();
        skip_ws();
        continue;
      }
      if (cur() == '}') {
        adv();
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error) {
  error->clear();
  return Parser(text, error).run();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace quicsteps::analyze
