#include "symbols.hpp"

#include <algorithm>

namespace quicsteps::analyze {

namespace {

constexpr std::size_t npos = Symbol::npos;

bool is_keyword(const std::string& s) {
  static const char* kWords[] = {
      "if",       "else",    "for",      "while",    "switch",  "do",
      "return",   "sizeof",  "alignof",  "decltype", "new",     "delete",
      "case",     "default", "break",    "continue", "goto",    "try",
      "catch",    "throw",   "static",   "const",    "constexpr",
      "inline",   "virtual", "explicit", "typename", "template", "using",
      "typedef",  "friend",  "extern",   "public",   "private", "protected",
      "operator", "noexcept", "override", "final",   "mutable", "co_return",
      "co_await", "co_yield", "static_cast", "const_cast", "dynamic_cast",
      "reinterpret_cast", "static_assert", "namespace", "class", "struct",
      "union",    "enum",    "auto",     "void",     "this",
  };
  for (const char* w : kWords) {
    if (s == w) return true;
  }
  return false;
}

bool is_control_keyword(const std::string& s) {
  return s == "if" || s == "else" || s == "for" || s == "while" ||
         s == "switch" || s == "do" || s == "try" || s == "catch";
}

bool match_group(const std::vector<Token>& toks, std::size_t open,
                 const char* open_p, const char* close_p,
                 std::size_t* close) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].in_pp) continue;
    if (toks[i].is_punct(open_p)) ++depth;
    if (toks[i].is_punct(close_p)) {
      --depth;
      if (depth == 0) {
        *close = i;
        return true;
      }
    }
  }
  return false;
}

bool match_paren(const std::vector<Token>& toks, std::size_t open,
                 std::size_t* close) {
  return match_group(toks, open, "(", ")", close);
}

bool match_bracket(const std::vector<Token>& toks, std::size_t open,
                   std::size_t* close) {
  return match_group(toks, open, "[", "]", close);
}

std::string join_tokens(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].in_pp) continue;
    if (!out.empty() && toks[i].kind == TokKind::kIdentifier &&
        toks[i - 1].kind == TokKind::kIdentifier) {
      out += ' ';
    }
    out += toks[i].text;
  }
  return out;
}

struct Scope {
  enum class Kind { kNamespace, kClass, kEnum, kFunction, kLambda, kBlock };
  Kind kind;
  std::string name;          // namespace/class name ("" when anonymous)
  std::size_t symbol = npos; // kFunction/kLambda: index into out.symbols
};

/// Per-file heuristic scope parser. Walks the token stream once,
/// maintaining the namespace/class/function/lambda nesting, and appends
/// every discovered symbol to `out`.
class FileParser {
 public:
  FileParser(const Model& model, std::size_t file, SymbolIndex* out)
      : toks_(model.files[file].lex.tokens), file_(file), out_(out) {}

  void run();

 private:
  const Token& tok(std::size_t i) const { return toks_[i]; }

  /// Innermost enclosing function/lambda symbol id, else npos.
  std::size_t enclosing_callable() const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      if (it->kind == Scope::Kind::kFunction ||
          it->kind == Scope::Kind::kLambda) {
        return it->symbol;
      }
    }
    return npos;
  }

  Scope::Kind innermost_kind() const {
    return scopes_.empty() ? Scope::Kind::kNamespace : scopes_.back().kind;
  }

  /// "ns::Class::" prefix from the open scopes.
  std::string scope_prefix() const {
    std::string prefix;
    for (const auto& s : scopes_) {
      if ((s.kind == Scope::Kind::kNamespace ||
           s.kind == Scope::Kind::kClass) &&
          !s.name.empty()) {
        prefix += s.name + "::";
      }
    }
    return prefix;
  }

  std::size_t add_symbol(Symbol sym) {
    out_->symbols.push_back(std::move(sym));
    const std::size_t id = out_->symbols.size() - 1;
    out_->by_file[file_].push_back(id);
    return id;
  }

  void classify_open_brace(std::size_t i);
  void maybe_variable_decl(std::size_t stmt_begin, std::size_t stmt_end);
  bool try_lambda(std::size_t i, std::size_t* resume);

  const std::vector<Token>& toks_;
  std::size_t file_;
  SymbolIndex* out_;
  std::vector<Scope> scopes_;
  std::size_t stmt_start_ = 0;
  // body-open brace token index -> lambda symbol id (filled when the
  // introducer is recognized, consumed when the walk reaches the brace).
  std::map<std::size_t, std::size_t> lambda_bodies_;
};

bool FileParser::try_lambda(std::size_t i, std::size_t* resume) {
  // Reject subscripts/attributes: a lambda introducer cannot directly
  // follow a value-producing token.
  if (i > 0) {
    const Token& prev = tok(i - 1);
    if (prev.kind == TokKind::kIdentifier && !is_keyword(prev.text)) {
      return false;
    }
    if (prev.kind == TokKind::kNumber || prev.is_punct(")") ||
        prev.is_punct("]")) {
      return false;
    }
  }
  std::size_t cap_end = 0;
  if (!match_bracket(toks_, i, &cap_end)) return false;

  std::size_t j = cap_end + 1;
  std::size_t params_begin = npos, params_end = npos;
  if (j < toks_.size() && tok(j).is_punct("(")) {
    std::size_t close = 0;
    if (!match_paren(toks_, j, &close)) return false;
    params_begin = j;
    params_end = close;
    j = close + 1;
  }
  // Skip mutable/noexcept/trailing-return tokens up to the body brace;
  // bail on anything that ends the expression first.
  std::size_t body = npos;
  for (std::size_t k = j; k < toks_.size() && k < j + 32; ++k) {
    if (tok(k).is_punct("{")) {
      body = k;
      break;
    }
    if (tok(k).is_punct(";") || tok(k).is_punct(")") ||
        tok(k).is_punct(",") || tok(k).is_punct("]")) {
      return false;
    }
  }
  if (body == npos) return false;

  Symbol sym;
  sym.kind = Symbol::Kind::kLambda;
  sym.name = "<lambda>";
  sym.file = file_;
  sym.line = tok(i).line;
  sym.col = tok(i).col;
  sym.cap_begin = i;
  sym.cap_end = cap_end;
  sym.params_begin = params_begin;
  sym.params_end = params_end;
  sym.parent = enclosing_callable();
  // `auto worker = [..]` binds the lambda to a local name.
  if (i >= 2 && tok(i - 1).is_punct("=") &&
      tok(i - 2).kind == TokKind::kIdentifier &&
      !is_keyword(tok(i - 2).text)) {
    sym.bound_name = tok(i - 2).text;
  }
  sym.qual_name = scope_prefix() +
                  (sym.bound_name.empty() ? "<lambda>" : sym.bound_name);
  const std::size_t id = add_symbol(std::move(sym));
  if (!out_->symbols[id].bound_name.empty()) {
    out_->callables_by_name.emplace(out_->symbols[id].bound_name, id);
  }
  lambda_bodies_[body] = id;
  *resume = cap_end;  // keep walking inside the capture list's successors
  return true;
}

void FileParser::classify_open_brace(std::size_t i) {
  // A lambda introducer already claimed this brace as its body.
  auto pending = lambda_bodies_.find(i);
  if (pending != lambda_bodies_.end()) {
    out_->symbols[pending->second].body_begin = i;
    scopes_.push_back({Scope::Kind::kLambda, "", pending->second});
    lambda_bodies_.erase(pending);
    return;
  }

  const std::size_t begin = stmt_start_;
  // Aggregate / designated initializer: `= {...}`.
  if (i > begin && tok(i - 1).is_punct("=")) {
    scopes_.push_back({Scope::Kind::kBlock, "", npos});
    return;
  }

  std::size_t last_class_kw = npos;
  bool has_namespace = false, has_enum = false, has_control = false;
  int paren_depth = 0;
  for (std::size_t k = begin; k < i; ++k) {
    if (tok(k).in_pp) continue;
    if (tok(k).is_punct("(")) ++paren_depth;
    if (tok(k).is_punct(")")) --paren_depth;
    if (tok(k).kind != TokKind::kIdentifier || paren_depth > 0) continue;
    const std::string& s = tok(k).text;
    if (s == "namespace") has_namespace = true;
    if (s == "enum") has_enum = true;
    if (s == "class" || s == "struct" || s == "union") last_class_kw = k;
    if (is_control_keyword(s)) has_control = true;
  }

  if (has_namespace) {
    std::string name;
    for (std::size_t k = i; k-- > begin;) {
      if (tok(k).kind == TokKind::kIdentifier && tok(k).text != "namespace") {
        name = tok(k).text;
        break;
      }
      if (tok(k).is_id("namespace")) break;
    }
    scopes_.push_back({Scope::Kind::kNamespace, name, npos});
    return;
  }
  if (has_enum) {
    scopes_.push_back({Scope::Kind::kEnum, "", npos});
    return;
  }
  if (last_class_kw != npos) {
    std::string name;
    if (last_class_kw + 1 < i &&
        tok(last_class_kw + 1).kind == TokKind::kIdentifier) {
      name = tok(last_class_kw + 1).text;
    }
    scopes_.push_back({Scope::Kind::kClass, name, npos});
    return;
  }
  if (has_control) {
    scopes_.push_back({Scope::Kind::kBlock, "", npos});
    return;
  }

  // Function definition: `ret Qual::name ( params ) qualifiers {` at
  // namespace or class scope. Inside a function body, every remaining
  // brace is a plain block.
  const Scope::Kind at = innermost_kind();
  if (at != Scope::Kind::kNamespace && at != Scope::Kind::kClass) {
    scopes_.push_back({Scope::Kind::kBlock, "", npos});
    return;
  }
  std::size_t name_tok = npos, params_open = npos;
  int depth = 0;
  for (std::size_t k = begin; k < i; ++k) {
    if (tok(k).in_pp) continue;
    if (tok(k).is_punct("(")) {
      if (depth == 0 && k > begin && params_open == npos) {
        const Token& before = tok(k - 1);
        if (before.kind == TokKind::kIdentifier && !is_keyword(before.text)) {
          name_tok = k - 1;
          params_open = k;
        } else if (before.kind == TokKind::kPunct && k >= 2 &&
                   tok(k - 2).is_id("operator")) {
          name_tok = k - 2;  // operator<< and friends
          params_open = k;
        }
      }
      ++depth;
    }
    if (tok(k).is_punct(")")) --depth;
  }
  if (name_tok == npos) {
    scopes_.push_back({Scope::Kind::kBlock, "", npos});
    return;
  }

  Symbol sym;
  sym.kind = Symbol::Kind::kFunction;
  sym.name = tok(name_tok).is_id("operator")
                 ? "operator" + tok(name_tok + 1).text
                 : tok(name_tok).text;
  sym.file = file_;
  sym.line = tok(name_tok).line;
  sym.col = tok(name_tok).col;
  // Out-of-line qualifiers: `EventLoop::schedule_at` -> EventLoop:: chain.
  std::string qualifier;
  for (std::size_t k = name_tok; k >= 2 && tok(k - 1).is_punct("::") &&
                                 tok(k - 2).kind == TokKind::kIdentifier;
       k -= 2) {
    qualifier = tok(k - 2).text + "::" + qualifier;
  }
  sym.qual_name = scope_prefix() + qualifier + sym.name;
  sym.type_text = join_tokens(toks_, begin, name_tok);
  // Const method: `) const ... {`.
  std::size_t close = 0;
  if (params_open != npos && match_paren(toks_, params_open, &close)) {
    sym.params_begin = params_open;
    sym.params_end = close;
    for (std::size_t k = close + 1; k < i; ++k) {
      if (tok(k).is_id("const")) sym.is_const = true;
    }
  }
  const std::size_t id = add_symbol(std::move(sym));
  out_->symbols[id].body_begin = i;
  out_->callables_by_name.emplace(out_->symbols[id].name, id);
  scopes_.push_back({Scope::Kind::kFunction, "", id});
}

void FileParser::maybe_variable_decl(std::size_t begin, std::size_t end) {
  const Scope::Kind at = innermost_kind();
  const std::size_t parent = enclosing_callable();
  const bool in_callable = parent != npos;
  // Namespace-scope globals, class fields, and function-local statics;
  // non-static locals are the dataflow skeleton's job (dataflow.cpp).
  if (at == Scope::Kind::kEnum) return;
  if (in_callable && !(begin < end && tok(begin).is_id("static"))) return;
  if (at == Scope::Kind::kBlock && !in_callable) return;

  bool is_static = false, is_const = false, rejected = false;
  std::size_t name_tok = npos;
  int paren_depth = 0, bracket_depth = 0;
  for (std::size_t k = begin; k < end; ++k) {
    if (tok(k).in_pp) continue;
    const Token& t = tok(k);
    if (t.is_punct("(")) ++paren_depth;
    if (t.is_punct(")")) --paren_depth;
    if (t.is_punct("[")) ++bracket_depth;
    if (t.is_punct("]")) --bracket_depth;
    if (t.kind != TokKind::kIdentifier) continue;
    const std::string& s = t.text;
    if (s == "using" || s == "typedef" || s == "friend" || s == "extern" ||
        s == "namespace" || s == "operator" || s == "return" ||
        s == "template" || s == "class" || s == "struct" || s == "union" ||
        s == "enum" || is_control_keyword(s)) {
      rejected = true;
      break;
    }
    if (s == "static") is_static = true;
    if ((s == "const" || s == "constexpr") && name_tok == npos) {
      is_const = true;
    }
    if (paren_depth > 0 || bracket_depth > 0 || name_tok != npos) continue;
    // Declarator: `Type name` followed by = ; { [  — with a type-ish
    // token right before the name.
    if (is_keyword(s) || k == begin || k + 1 > end) continue;
    const Token& prev = tok(k - 1);
    const bool typed_before =
        (prev.kind == TokKind::kIdentifier && !is_control_keyword(prev.text) &&
         prev.text != "return") ||
        prev.is_punct(">") || prev.is_punct("*") || prev.is_punct("&");
    if (!typed_before) continue;
    const bool ends_decl =
        k + 1 == end || tok(k + 1).is_punct("=") || tok(k + 1).is_punct("{") ||
        tok(k + 1).is_punct("[");
    if (ends_decl) name_tok = k;
  }
  if (rejected || name_tok == npos) return;
  // `a == b` is a comparison, not a declaration.
  if (name_tok + 2 < end && tok(name_tok + 1).is_punct("=") &&
      tok(name_tok + 2).is_punct("=")) {
    return;
  }

  Symbol sym;
  sym.file = file_;
  sym.name = tok(name_tok).text;
  sym.line = tok(name_tok).line;
  sym.col = tok(name_tok).col;
  sym.is_const = is_const;
  sym.type_text = join_tokens(toks_, begin, name_tok);
  sym.is_atomic = type_text_is_atomic(sym.type_text);
  sym.is_mutex = type_text_is_mutex(sym.type_text);
  if (in_callable) {
    if (!is_static) return;
    sym.kind = Symbol::Kind::kStaticLocal;
    sym.parent = parent;
  } else if (at == Scope::Kind::kClass) {
    sym.kind = Symbol::Kind::kField;
  } else {
    sym.kind = Symbol::Kind::kGlobal;
  }
  sym.qual_name = scope_prefix() + sym.name;
  const std::size_t id = add_symbol(std::move(sym));
  if (out_->symbols[id].kind != Symbol::Kind::kField) {
    out_->variables_by_name.emplace(out_->symbols[id].name, id);
  }
}

void FileParser::run() {
  for (std::size_t i = 0; i < toks_.size(); ++i) {
    const Token& t = tok(i);
    if (t.in_pp) {
      stmt_start_ = i + 1;
      continue;
    }
    if (t.is_punct("[")) {
      std::size_t resume = i;
      if (try_lambda(i, &resume)) {
        i = resume;  // walk capture contents' successors normally
        continue;
      }
      std::size_t close = 0;
      if (match_bracket(toks_, i, &close)) i = close;  // subscript/attribute
      continue;
    }
    if (t.is_punct("{")) {
      classify_open_brace(i);
      stmt_start_ = i + 1;
      continue;
    }
    if (t.is_punct("}")) {
      if (!scopes_.empty()) {
        const Scope& top = scopes_.back();
        if (top.symbol != npos) out_->symbols[top.symbol].body_end = i;
        scopes_.pop_back();
      }
      stmt_start_ = i + 1;
      continue;
    }
    if (t.is_punct(";")) {
      maybe_variable_decl(stmt_start_, i);
      stmt_start_ = i + 1;
      continue;
    }
    if (t.is_punct("(")) {
      // Keep statement boundaries out of argument lists: `f(a; b)` cannot
      // occur, but `for (a; b; c)` can — skip the whole group.
      const std::size_t begin = stmt_start_;
      std::size_t close = 0;
      if (i > begin && match_paren(toks_, i, &close)) {
        bool is_for = false;
        for (std::size_t k = begin; k < i; ++k) {
          if (tok(k).is_id("for")) is_for = true;
        }
        if (is_for) i = close;
      }
      continue;
    }
  }
}

}  // namespace

bool type_text_is_atomic(const std::string& type_text) {
  return type_text.find("atomic") != std::string::npos;
}

bool type_text_is_mutex(const std::string& type_text) {
  for (const char* m : {"mutex", "lock_guard", "scoped_lock", "unique_lock",
                        "shared_lock"}) {
    if (type_text.find(m) != std::string::npos) return true;
  }
  return false;
}

std::size_t SymbolIndex::enclosing_callable(std::size_t file,
                                            std::size_t tok) const {
  std::size_t best = Symbol::npos;
  std::size_t best_begin = 0;
  for (const std::size_t id : by_file[file]) {
    const Symbol& s = symbols[id];
    if (!s.is_callable() || s.body_begin == Symbol::npos ||
        s.body_end == Symbol::npos) {
      continue;
    }
    if (s.body_begin < tok && tok < s.body_end &&
        (best == Symbol::npos || s.body_begin >= best_begin)) {
      best = id;
      best_begin = s.body_begin;
    }
  }
  return best;
}

SymbolIndex build_symbol_index(const Model& model) {
  SymbolIndex index;
  index.by_file.resize(model.files.size());
  for (std::size_t f = 0; f < model.files.size(); ++f) {
    FileParser(model, f, &index).run();
  }
  return index;
}

}  // namespace quicsteps::analyze
