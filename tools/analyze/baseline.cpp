#include "baseline.hpp"

#include <sstream>

namespace quicsteps::analyze {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

bool Baseline::load(const std::string& content,
                    const std::string& source_name, std::string* error) {
  sources_.emplace_back(source_name, std::vector<Line>());
  std::vector<Line>& lines = sources_.back().second;
  std::istringstream in(content);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    lines.push_back({raw, static_cast<std::size_t>(-1)});
    const auto hash = raw.find('#');
    std::string line = trim(hash == std::string::npos ? raw
                                                      : raw.substr(0, hash));
    if (line.empty()) continue;
    // The rule ID itself contains a '/'; the separator is the LAST ':'.
    const auto colon = line.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= line.size()) {
      *error = source_name + ":" + std::to_string(lineno) +
               ": malformed baseline entry (want <path>:<rule-id>)";
      return false;
    }
    Entry e;
    e.path = trim(line.substr(0, colon));
    e.rule_id = trim(line.substr(colon + 1));
    if (!known_rule(e.rule_id)) {
      *error = source_name + ":" + std::to_string(lineno) +
               ": unknown rule id '" + e.rule_id + "'";
      return false;
    }
    lines.back().entry = entries_.size();
    entries_.push_back(std::move(e));
  }
  return true;
}

bool Baseline::matches(const Finding& finding) {
  bool hit = false;
  for (auto& e : entries_) {
    if (e.path == finding.file && e.rule_id == finding.rule_id) {
      e.used = true;
      hit = true;
    }
  }
  return hit;
}

std::vector<std::string> Baseline::unused() const {
  std::vector<std::string> out;
  for (const auto& e : entries_) {
    if (!e.used) out.push_back(e.path + ":" + e.rule_id);
  }
  return out;
}

bool Baseline::rewritten(const std::string& source_name,
                         std::string* out) const {
  for (const auto& [name, lines] : sources_) {
    if (name != source_name) continue;
    out->clear();
    for (const Line& line : lines) {
      if (line.entry != static_cast<std::size_t>(-1) &&
          !entries_[line.entry].used) {
        continue;  // stale entry: the whole line goes
      }
      *out += line.raw;
      *out += '\n';
    }
    return true;
  }
  return false;
}

}  // namespace quicsteps::analyze
