// Baseline / suppression file support.
//
// Format, one entry per line, '#' comments:
//     <path-relative-to-root>:<rule-id>
// e.g. src/sim/time.cpp:units/raw-time-type
//
// An entry waives every finding of that rule in that file (deliberate:
// line numbers churn, policies do not). Entries that match nothing are
// reported so the baseline can only shrink. This replaces
// tools/lint_allowlist.txt; its rule names map to determinism/<rule>.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "rule.hpp"

namespace quicsteps::analyze {

class Baseline {
 public:
  /// Parses baseline file content. Unknown rule IDs or malformed lines
  /// set `*error` and fail (a typo must not silently waive nothing).
  bool load(const std::string& content, const std::string& source_name,
            std::string* error);

  /// True when `finding` is waived; records the entry as used.
  bool matches(const Finding& finding);

  /// Entries that never matched a finding (stale — candidates to delete).
  std::vector<std::string> unused() const;

  /// --fix-baseline: the content of `source_name` with stale entry lines
  /// removed. Comment-only and blank lines survive verbatim, as do the
  /// inline rationale comments of kept entries; a dropped entry takes its
  /// whole line (inline comment included) with it. Returns false when the
  /// source was never loaded.
  bool rewritten(const std::string& source_name, std::string* out) const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string path;
    std::string rule_id;
    bool used = false;
  };
  struct Line {
    std::string raw;
    std::size_t entry = static_cast<std::size_t>(-1);  // into entries_
  };
  std::vector<Entry> entries_;
  /// source_name -> original lines, each tagged with the entry it defines.
  std::vector<std::pair<std::string, std::vector<Line>>> sources_;
};

}  // namespace quicsteps::analyze
