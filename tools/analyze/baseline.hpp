// Baseline / suppression file support.
//
// Format, one entry per line, '#' comments:
//     <path-relative-to-root>:<rule-id>
// e.g. src/sim/time.cpp:units/raw-time-type
//
// An entry waives every finding of that rule in that file (deliberate:
// line numbers churn, policies do not). Entries that match nothing are
// reported so the baseline can only shrink. This replaces
// tools/lint_allowlist.txt; its rule names map to determinism/<rule>.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "rule.hpp"

namespace quicsteps::analyze {

class Baseline {
 public:
  /// Parses baseline file content. Unknown rule IDs or malformed lines
  /// set `*error` and fail (a typo must not silently waive nothing).
  bool load(const std::string& content, const std::string& source_name,
            std::string* error);

  /// True when `finding` is waived; records the entry as used.
  bool matches(const Finding& finding);

  /// Entries that never matched a finding (stale — candidates to delete).
  std::vector<std::string> unused() const;

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string path;
    std::string rule_id;
    bool used = false;
  };
  std::vector<Entry> entries_;
};

}  // namespace quicsteps::analyze
