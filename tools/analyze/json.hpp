// Minimal JSON reader for the analyzer's manifest files.
//
// Supports objects, arrays, strings, numbers, booleans and null — enough
// for tools/analyze/layers.json — with object key order preserved so
// diagnostics can cite the manifest deterministically. Parse errors return
// nullopt plus a message; the analyzer treats that as a configuration
// error (exit 2), never as "no findings".
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace quicsteps::analyze {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  // Ordered: lookup plus iteration in declaration order.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(const std::string& key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses `text`; on failure returns nullopt and sets `*error` to a
/// "line N: ..." description.
std::optional<JsonValue> parse_json(const std::string& text,
                                    std::string* error);

/// Escapes a string for embedding in JSON output (no surrounding quotes).
std::string json_escape(const std::string& s);

}  // namespace quicsteps::analyze
