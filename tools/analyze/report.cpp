#include "report.hpp"

#include <cstdio>

#include "json.hpp"

namespace quicsteps::analyze {

std::string text_report(const std::vector<Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    if (f.baselined) continue;
    out += f.file + ":" + std::to_string(f.line) + ":" +
           std::to_string(f.col) + ": [" + f.rule_id + "] " + f.message +
           "\n";
    for (const FixIt& fix : f.fixits) {
      std::string shown;  // keep the report line-oriented
      for (const char c : fix.replacement) {
        c == '\n' ? shown += "\\n" : shown += c;
      }
      out += f.file + ":" + std::to_string(fix.line) + ":" +
             std::to_string(fix.col) + ": fix: replace [" +
             std::to_string(fix.line) + ":" + std::to_string(fix.col) + "-" +
             std::to_string(fix.end_line) + ":" +
             std::to_string(fix.end_col) + "] with '" + shown + "' (" +
             fix.description + ")\n";
    }
  }
  return out;
}

std::string sarif_report(const std::vector<Finding>& findings) {
  const auto& rules = all_rules();
  auto rule_index = [&](const std::string& id) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (id == rules[i].id) return static_cast<int>(i);
    }
    return -1;
  };

  std::string out;
  out += "{\n";
  out += "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n";
  out += "  \"version\": \"2.1.0\",\n";
  out += "  \"runs\": [\n";
  out += "    {\n";
  out += "      \"tool\": {\n";
  out += "        \"driver\": {\n";
  out += "          \"name\": \"quicsteps-analyze\",\n";
  out += "          \"version\": \"1.0.0\",\n";
  out += "          \"rules\": [\n";
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "            {\n";
    out += "              \"id\": \"" + json_escape(rules[i].id) + "\",\n";
    out += "              \"shortDescription\": { \"text\": \"" +
           json_escape(rules[i].short_description) + "\" }\n";
    out += i + 1 < rules.size() ? "            },\n" : "            }\n";
  }
  out += "          ]\n";
  out += "        }\n";
  out += "      },\n";
  out += "      \"columnKind\": \"utf16CodeUnits\",\n";
  out += "      \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "        {\n";
    out += "          \"ruleId\": \"" + json_escape(f.rule_id) + "\",\n";
    out += "          \"ruleIndex\": " + std::to_string(rule_index(f.rule_id)) +
           ",\n";
    out += "          \"level\": \"error\",\n";
    out += "          \"message\": { \"text\": \"" + json_escape(f.message) +
           "\" },\n";
    out += "          \"locations\": [\n";
    out += "            {\n";
    out += "              \"physicalLocation\": {\n";
    out += "                \"artifactLocation\": { \"uri\": \"" +
           json_escape(f.file) + "\" },\n";
    out += "                \"region\": { \"startLine\": " +
           std::to_string(f.line) +
           ", \"startColumn\": " + std::to_string(f.col) + " }\n";
    out += "              }\n";
    out += "            }\n";
    out += "          ]";
    if (!f.fixits.empty()) {
      out += ",\n          \"fixes\": [\n";
      for (std::size_t j = 0; j < f.fixits.size(); ++j) {
        const FixIt& fix = f.fixits[j];
        out += "            {\n";
        out += "              \"description\": { \"text\": \"" +
               json_escape(fix.description) + "\" },\n";
        out += "              \"artifactChanges\": [\n";
        out += "                {\n";
        out += "                  \"artifactLocation\": { \"uri\": \"" +
               json_escape(f.file) + "\" },\n";
        out += "                  \"replacements\": [\n";
        out += "                    {\n";
        out += "                      \"deletedRegion\": { \"startLine\": " +
               std::to_string(fix.line) +
               ", \"startColumn\": " + std::to_string(fix.col) +
               ", \"endLine\": " + std::to_string(fix.end_line) +
               ", \"endColumn\": " + std::to_string(fix.end_col) + " },\n";
        out += "                      \"insertedContent\": { \"text\": \"" +
               json_escape(fix.replacement) + "\" }\n";
        out += "                    }\n";
        out += "                  ]\n";
        out += "                }\n";
        out += "              ]\n";
        out += j + 1 < f.fixits.size() ? "            },\n"
                                       : "            }\n";
      }
      out += "          ]";
    }
    if (f.baselined) {
      out += ",\n          \"suppressions\": [ { \"kind\": \"external\" } ]";
    }
    out += "\n";
    out += i + 1 < findings.size() ? "        },\n" : "        }\n";
  }
  out += "      ]\n";
  out += "    }\n";
  out += "  ]\n";
  out += "}\n";
  return out;
}

std::string summary_line(std::size_t files, std::size_t cached,
                         std::size_t rules, std::size_t findings,
                         std::size_t baselined, long long elapsed_ms) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "quicsteps-analyze: %zu files (%zu cached), %zu rules, "
                "%zu finding(s) (%zu baselined) in %lld ms",
                files, cached, rules, findings, baselined, elapsed_ms);
  return buf;
}

}  // namespace quicsteps::analyze
