#include "cfg.hpp"

#include <algorithm>

namespace quicsteps::analyze {

namespace {

constexpr std::size_t npos = CfgBlock::npos;

/// Index of the ')' matching the '(' at `open`, or npos. Skips pp tokens.
std::size_t match_paren(const std::vector<Token>& toks, std::size_t open,
                        std::size_t limit) {
  int depth = 0;
  for (std::size_t i = open; i < limit && i < toks.size(); ++i) {
    if (toks[i].in_pp) continue;
    if (toks[i].is_punct("(")) ++depth;
    if (toks[i].is_punct(")")) {
      if (--depth == 0) return i;
    }
  }
  return npos;
}

/// Index of the '}' matching the '{' at `open`, or npos.
std::size_t match_brace(const std::vector<Token>& toks, std::size_t open,
                        std::size_t limit) {
  int depth = 0;
  for (std::size_t i = open; i < limit && i < toks.size(); ++i) {
    if (toks[i].in_pp) continue;
    if (toks[i].is_punct("{")) ++depth;
    if (toks[i].is_punct("}")) {
      if (--depth == 0) return i;
    }
  }
  return npos;
}

class CfgBuilder {
 public:
  CfgBuilder(const std::vector<Token>& toks, const Symbol& sym,
             std::size_t symbol_id)
      : toks_(toks), sym_(sym) {
    cfg_.symbol = symbol_id;
    cfg_.blocks.resize(2);  // kEntry, kExit
  }

  Cfg build() {
    std::size_t current = Cfg::kEntry;
    parse_region(sym_.body_begin + 1, sym_.body_end, &current);
    link(current, Cfg::kExit);
    compute_rpo();
    return std::move(cfg_);
  }

 private:
  const Token& tok(std::size_t i) const { return toks_[i]; }

  std::size_t new_block() {
    cfg_.blocks.emplace_back();
    return cfg_.blocks.size() - 1;
  }

  void link(std::size_t from, std::size_t to) {
    cfg_.blocks[from].succs.push_back(to);
  }

  void add_stmt(std::size_t block, std::size_t begin, std::size_t end) {
    if (begin >= end) return;
    cfg_.blocks[block].stmts.push_back({begin, end});
  }

  /// End of the plain statement starting at `i`: the ';' at nesting depth
  /// zero (parens, brackets, braces all count — a lambda body is one
  /// statement to the CFG). Returns the ';' index, or `limit`.
  std::size_t stmt_end(std::size_t i, std::size_t limit) const {
    int depth = 0;
    for (std::size_t k = i; k < limit; ++k) {
      if (tok(k).in_pp) continue;
      if (tok(k).is_punct("(") || tok(k).is_punct("[") ||
          tok(k).is_punct("{")) {
        ++depth;
      }
      if (tok(k).is_punct(")") || tok(k).is_punct("]") ||
          tok(k).is_punct("}")) {
        if (depth == 0) return k;  // malformed; stop at the close
        --depth;
      }
      if (tok(k).is_punct(";") && depth == 0) return k;
    }
    return limit;
  }

  /// Lowers a condition expression [begin, end) into a chain of atomic
  /// condition blocks with short-circuit edges. Returns the chain's entry
  /// block id. Splits at top-level `||` first (lowest precedence), then
  /// `&&`; `!x` / `!(...)` swap the targets.
  std::size_t lower_cond(std::size_t begin, std::size_t end,
                         std::size_t true_target, std::size_t false_target) {
    // Strip parens that wrap the whole range.
    while (begin < end && tok(begin).is_punct("(") &&
           match_paren(toks_, begin, end) == end - 1) {
      ++begin;
      --end;
    }
    if (begin >= end) {
      // Empty condition (for(;;)): always true.
      const std::size_t b = new_block();
      cfg_.blocks[b].is_cond = true;
      link(b, true_target);
      link(b, false_target);
      return b;
    }
    // `!expr` where expr spans the rest: swap targets.
    if (tok(begin).is_punct("!") &&
        (begin + 1 == end - 0 || !has_toplevel_binop(begin + 1, end))) {
      return lower_cond(begin + 1, end, false_target, true_target);
    }
    // Top-level split, right-associatively built: find the LAST top-level
    // `||` (then `&&`) so evaluation order stays left-to-right.
    const std::size_t or_at = find_toplevel(begin, end, "||");
    if (or_at != npos) {
      const std::size_t rhs =
          lower_cond(or_at + 1, end, true_target, false_target);
      return lower_cond(begin, or_at, true_target, rhs);
    }
    const std::size_t and_at = find_toplevel(begin, end, "&&");
    if (and_at != npos) {
      const std::size_t rhs =
          lower_cond(and_at + 1, end, true_target, false_target);
      return lower_cond(begin, and_at, rhs, false_target);
    }
    const std::size_t b = new_block();
    cfg_.blocks[b].is_cond = true;
    add_stmt(b, begin, end);
    link(b, true_target);
    link(b, false_target);
    return b;
  }

  /// First top-level occurrence of punct `op` in [begin, end), or npos.
  std::size_t find_toplevel(std::size_t begin, std::size_t end,
                            const char* op) const {
    int depth = 0;
    for (std::size_t k = begin; k < end; ++k) {
      if (tok(k).in_pp) continue;
      if (tok(k).is_punct("(") || tok(k).is_punct("[") ||
          tok(k).is_punct("{")) {
        ++depth;
      }
      if (tok(k).is_punct(")") || tok(k).is_punct("]") ||
          tok(k).is_punct("}")) {
        --depth;
      }
      if (depth == 0 && tok(k).is_punct(op)) return k;
    }
    return npos;
  }

  bool has_toplevel_binop(std::size_t begin, std::size_t end) const {
    return find_toplevel(begin, end, "||") != npos ||
           find_toplevel(begin, end, "&&") != npos;
  }

  /// Parses statements in [begin, end) growing from *current; on return
  /// *current is the block falling through past `end`.
  void parse_region(std::size_t begin, std::size_t end,
                    std::size_t* current) {
    std::size_t i = begin;
    while (i < end) {
      if (tok(i).in_pp || tok(i).is_punct(";")) {
        ++i;
        continue;
      }
      i = parse_stmt(i, end, current);
    }
  }

  /// Parses one statement starting at `i`; returns the index just past it.
  std::size_t parse_stmt(std::size_t i, std::size_t limit,
                         std::size_t* current) {
    const Token& t = tok(i);

    if (t.is_punct("{")) {
      const std::size_t close = match_brace(toks_, i, limit);
      if (close == npos) return limit;
      parse_region(i + 1, close, current);
      return close + 1;
    }

    if (t.is_id("if")) return parse_if(i, limit, current);
    if (t.is_id("while")) return parse_while(i, limit, current);
    if (t.is_id("for")) return parse_for(i, limit, current);
    if (t.is_id("do")) return parse_do(i, limit, current);
    if (t.is_id("switch")) return parse_switch(i, limit, current);

    if (t.is_id("return") || t.is_id("co_return")) {
      const std::size_t semi = stmt_end(i, limit);
      add_stmt(*current, i, semi);
      link(*current, Cfg::kExit);
      *current = new_block();  // unreachable continuation
      return semi + 1;
    }
    if (t.is_id("break") && !break_targets_.empty()) {
      add_stmt(*current, i, i + 1);
      link(*current, break_targets_.back());
      *current = new_block();
      return stmt_end(i, limit) + 1;
    }
    if (t.is_id("continue") && !continue_targets_.empty()) {
      add_stmt(*current, i, i + 1);
      link(*current, continue_targets_.back());
      *current = new_block();
      return stmt_end(i, limit) + 1;
    }

    // `else` without a preceding `if` we parsed (malformed / macro): skip
    // the keyword, parse its statement inline.
    if (t.is_id("else")) return i + 1;

    // `case X:` / `default:` outside a switch we model: skip the label.
    if ((t.is_id("case") || t.is_id("default"))) {
      std::size_t k = i + 1;
      while (k < limit && !tok(k).is_punct(":")) ++k;
      return k + 1;
    }

    // try/catch: lower both blocks as sequential regions (the analyzer's
    // rules treat exceptional edges conservatively as fallthrough).
    if (t.is_id("try")) return i + 1;
    if (t.is_id("catch")) {
      if (i + 1 < limit && tok(i + 1).is_punct("(")) {
        const std::size_t close = match_paren(toks_, i + 1, limit);
        if (close != npos) return close + 1;
      }
      return i + 1;
    }

    // Plain statement.
    const std::size_t semi = stmt_end(i, limit);
    add_stmt(*current, i, semi);
    return semi + 1;
  }

  /// `if [constexpr] (cond) stmt [else stmt]`, including the
  /// if-with-initializer form (`if (init; cond)`).
  std::size_t parse_if(std::size_t i, std::size_t limit,
                       std::size_t* current) {
    std::size_t open = i + 1;
    if (open < limit && tok(open).is_id("constexpr")) ++open;
    if (open >= limit || !tok(open).is_punct("(")) return i + 1;
    const std::size_t close = match_paren(toks_, open, limit);
    if (close == npos) return limit;

    std::size_t cond_begin = open + 1;
    const std::size_t init_semi = find_toplevel(cond_begin, close, ";");
    if (init_semi != npos) {
      add_stmt(*current, cond_begin, init_semi);
      cond_begin = init_semi + 1;
    }

    const std::size_t then_entry = new_block();
    const std::size_t join = new_block();

    // Parse the then-branch first so we can see whether an `else` follows.
    std::size_t then_cur = then_entry;
    std::size_t after = parse_stmt(close + 1, limit, &then_cur);

    std::size_t false_entry = join;
    if (after < limit && tok(after).is_id("else")) {
      const std::size_t else_entry = new_block();
      false_entry = else_entry;
      std::size_t else_cur = else_entry;
      after = parse_stmt(after + 1, limit, &else_cur);
      link(else_cur, join);
    }
    link(then_cur, join);

    const std::size_t chain =
        lower_cond(cond_begin, close, then_entry, false_entry);
    link(*current, chain);
    *current = join;
    return after;
  }

  std::size_t parse_while(std::size_t i, std::size_t limit,
                          std::size_t* current) {
    const std::size_t open = i + 1;
    if (open >= limit || !tok(open).is_punct("(")) return i + 1;
    const std::size_t close = match_paren(toks_, open, limit);
    if (close == npos) return limit;

    const std::size_t head = new_block();
    cfg_.blocks[head].is_loop_head = true;
    link(*current, head);
    const std::size_t body_entry = new_block();
    const std::size_t after = new_block();
    const std::size_t chain = lower_cond(open + 1, close, body_entry, after);
    link(head, chain);

    break_targets_.push_back(after);
    continue_targets_.push_back(head);
    std::size_t body_cur = body_entry;
    const std::size_t next = parse_stmt(close + 1, limit, &body_cur);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    link(body_cur, head);  // back edge
    *current = after;
    return next;
  }

  std::size_t parse_for(std::size_t i, std::size_t limit,
                        std::size_t* current) {
    const std::size_t open = i + 1;
    if (open >= limit || !tok(open).is_punct("(")) return i + 1;
    const std::size_t close = match_paren(toks_, open, limit);
    if (close == npos) return limit;

    const std::size_t semi1 = find_toplevel(open + 1, close, ";");
    const std::size_t colon =
        semi1 == npos ? find_rangefor_colon(open + 1, close) : npos;

    const std::size_t head = new_block();
    cfg_.blocks[head].is_loop_head = true;
    const std::size_t body_entry = new_block();
    const std::size_t after = new_block();

    std::size_t continue_to = head;
    if (colon != npos) {
      // Range-for: the whole header is the (always-may-iterate) condition;
      // the binding declaration rides along for statement-scanning rules.
      link(*current, head);
      const std::size_t cond = new_block();
      cfg_.blocks[cond].is_cond = true;
      add_stmt(cond, open + 1, close);
      link(cond, body_entry);
      link(cond, after);
      link(head, cond);
    } else if (semi1 != npos) {
      const std::size_t semi2 = find_toplevel(semi1 + 1, close, ";");
      add_stmt(*current, open + 1, semi1);  // init runs once, before head
      link(*current, head);
      const std::size_t cond_begin = semi1 + 1;
      const std::size_t cond_end = semi2 == npos ? close : semi2;
      const std::size_t chain =
          lower_cond(cond_begin, cond_end, body_entry, after);
      link(head, chain);
      if (semi2 != npos && semi2 + 1 < close) {
        const std::size_t step = new_block();
        add_stmt(step, semi2 + 1, close);
        link(step, head);
        continue_to = step;
      }
    } else {
      // Malformed header: degrade to a linear statement.
      add_stmt(*current, open + 1, close);
      link(*current, head);
      link(head, body_entry);
    }

    break_targets_.push_back(after);
    continue_targets_.push_back(continue_to);
    std::size_t body_cur = body_entry;
    const std::size_t next = parse_stmt(close + 1, limit, &body_cur);
    break_targets_.pop_back();
    continue_targets_.pop_back();

    link(body_cur, continue_to);
    *current = after;
    return next;
  }

  /// The range-for ':' at top nesting level, not part of '::'.
  std::size_t find_rangefor_colon(std::size_t begin, std::size_t end) const {
    int depth = 0;
    for (std::size_t k = begin; k < end; ++k) {
      if (tok(k).in_pp) continue;
      if (tok(k).is_punct("(") || tok(k).is_punct("[") ||
          tok(k).is_punct("{") || tok(k).is_punct("<")) {
        ++depth;
      }
      if (tok(k).is_punct(")") || tok(k).is_punct("]") ||
          tok(k).is_punct("}") || tok(k).is_punct(">")) {
        --depth;
      }
      if (depth == 0 && tok(k).is_punct(":") &&
          !(k > begin && tok(k - 1).is_punct(":")) &&
          !(k + 1 < end && tok(k + 1).is_punct(":"))) {
        return k;
      }
    }
    return npos;
  }

  std::size_t parse_do(std::size_t i, std::size_t limit,
                       std::size_t* current) {
    const std::size_t head = new_block();
    cfg_.blocks[head].is_loop_head = true;
    link(*current, head);
    const std::size_t after = new_block();
    // continue in a do-loop jumps to the condition; the condition is not
    // built yet, so route through a placeholder join.
    const std::size_t cond_join = new_block();

    break_targets_.push_back(after);
    continue_targets_.push_back(cond_join);
    std::size_t body_cur = head;
    std::size_t next = parse_stmt(i + 1, limit, &body_cur);
    break_targets_.pop_back();
    continue_targets_.pop_back();
    link(body_cur, cond_join);

    if (next < limit && tok(next).is_id("while") && next + 1 < limit &&
        tok(next + 1).is_punct("(")) {
      const std::size_t close = match_paren(toks_, next + 1, limit);
      if (close != npos) {
        const std::size_t chain =
            lower_cond(next + 2, close, head, after);
        link(cond_join, chain);
        return stmt_end(close, limit) + 1;
      }
    }
    // Malformed `do`: fall through.
    link(cond_join, after);
    *current = after;
    return next;
  }

  std::size_t parse_switch(std::size_t i, std::size_t limit,
                           std::size_t* current) {
    const std::size_t open = i + 1;
    if (open >= limit || !tok(open).is_punct("(")) return i + 1;
    const std::size_t close = match_paren(toks_, open, limit);
    if (close == npos || close + 1 >= limit ||
        !tok(close + 1).is_punct("{")) {
      return close == npos ? limit : close + 1;
    }
    const std::size_t body_close = match_brace(toks_, close + 1, limit);
    if (body_close == npos) return limit;

    // The head evaluates the scrutinee, then fans out to every label.
    add_stmt(*current, open + 1, close);
    const std::size_t head = *current;
    const std::size_t after = new_block();

    break_targets_.push_back(after);
    bool has_default = false;
    std::size_t cur = npos;  // dead until the first label
    std::size_t k = close + 2;
    while (k < body_close) {
      if (tok(k).in_pp) {
        ++k;
        continue;
      }
      const bool is_case = tok(k).is_id("case");
      const bool is_default = tok(k).is_id("default");
      if (is_case || is_default) {
        // New label: previous arm falls through into it.
        const std::size_t label = new_block();
        link(head, label);
        if (cur != npos) link(cur, label);
        cur = label;
        has_default = has_default || is_default;
        while (k < body_close && !tok(k).is_punct(":")) ++k;
        ++k;
        continue;
      }
      if (cur == npos) {
        ++k;  // statements before the first label are unreachable
        continue;
      }
      k = parse_stmt(k, body_close, &cur);
    }
    break_targets_.pop_back();
    if (cur != npos) link(cur, after);
    if (!has_default) link(head, after);
    *current = after;
    return body_close + 1;
  }

  void compute_rpo() {
    std::vector<int> state(cfg_.blocks.size(), 0);
    std::vector<std::size_t> post;
    // Iterative DFS from the entry.
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(Cfg::kEntry, 0);
    state[Cfg::kEntry] = 1;
    while (!stack.empty()) {
      auto& [b, next] = stack.back();
      if (next < cfg_.blocks[b].succs.size()) {
        const std::size_t s = cfg_.blocks[b].succs[next++];
        if (state[s] == 0) {
          state[s] = 1;
          stack.emplace_back(s, 0);
        }
      } else {
        post.push_back(b);
        stack.pop_back();
      }
    }
    cfg_.rpo.assign(post.rbegin(), post.rend());
  }

  const std::vector<Token>& toks_;
  const Symbol& sym_;
  Cfg cfg_;
  std::vector<std::size_t> break_targets_;
  std::vector<std::size_t> continue_targets_;
};

}  // namespace

Cfg build_cfg(const std::vector<Token>& toks, const Symbol& sym,
              std::size_t symbol_id) {
  return CfgBuilder(toks, sym, symbol_id).build();
}

CfgIndex build_cfg_index(const Model& model, const SymbolIndex& index) {
  CfgIndex out;
  for (std::size_t id = 0; id < index.symbols.size(); ++id) {
    const Symbol& sym = index.symbols[id];
    if (!sym.is_callable() || sym.body_begin == Symbol::npos ||
        sym.body_end == Symbol::npos) {
      continue;
    }
    out.by_symbol[id] = out.cfgs.size();
    out.cfgs.push_back(
        build_cfg(model.files[sym.file].lex.tokens, sym, id));
  }
  return out;
}

}  // namespace quicsteps::analyze
