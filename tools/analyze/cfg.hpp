// Intraprocedural control-flow graphs for the quicsteps static analyzer.
//
// dataflow.hpp models a callable as a flat def/use list — fine for the
// unordered-taint fixpoint, useless for anything path-dependent: a slab
// handle that dies on one branch of an `if`, a rate that is only proven
// nonzero on the guarded path, a loop that schedules on the first
// iteration and runs on the second. This builder turns a callable's body
// token range into a statement-level CFG:
//
//   * basic blocks hold consecutive simple statements (token ranges);
//   * `if` / `while` / `for` / `do` / `switch` lower to condition blocks
//     with explicit true/false successor edges;
//   * conditions are split at TOP-LEVEL `&&` / `||` into a chain of atomic
//     condition blocks, so short-circuit control flow is real edges and a
//     guard like `if (bus && bus->enabled())` refines state per conjunct;
//   * `return` wires straight to the exit block, `break` / `continue` to
//     the innermost breakable/continuable construct, `case`/`default`
//     fan out from the switch head;
//   * loop back edges are recorded (`is_loop_head`) so the abstract
//     interpreter (absint.hpp) knows where to widen.
//
// Like the rest of the analyzer this is a token-level heuristic, not a
// frontend: anything unrecognized becomes a plain statement in the current
// block, and malformed nesting degrades to a linear region — conservative
// for the path-sensitive rules, which only ever refine (never invent)
// state along explicit edges.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "symbols.hpp"

namespace quicsteps::analyze {

/// One simple statement: tokens [begin, end) of the owning file, with the
/// trailing ';' excluded. Condition blocks carry their expression here too
/// (Block::is_cond distinguishes them).
struct CfgStmt {
  std::size_t begin = 0;
  std::size_t end = 0;
};

struct CfgBlock {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::vector<CfgStmt> stmts;

  /// Condition blocks: `stmts` holds exactly the atomic condition
  /// expression, succs[0] is the true edge and succs[1] the false edge.
  bool is_cond = false;

  /// Head of a `while` / `for` / `do` loop: the abstract interpreter
  /// widens here after a bounded number of visits.
  bool is_loop_head = false;

  /// Successor block ids. Plain blocks have 0 or 1; condition blocks
  /// exactly 2 (true, false); the exit block none.
  std::vector<std::size_t> succs;
};

/// CFG for one callable body. Block 0 is the entry, block 1 the exit;
/// both are empty plain blocks.
struct Cfg {
  static constexpr std::size_t kEntry = 0;
  static constexpr std::size_t kExit = 1;

  std::size_t symbol = Symbol::npos;  // into SymbolIndex::symbols
  std::vector<CfgBlock> blocks;

  /// Blocks in reverse post-order from the entry — the iteration order
  /// the worklist seeds with so loops converge fast.
  std::vector<std::size_t> rpo;
};

/// Builds the CFG for one callable; requires sym.body_begin/end valid.
Cfg build_cfg(const std::vector<Token>& toks, const Symbol& sym,
              std::size_t symbol_id);

/// CFGs for every callable in the index that has a body.
struct CfgIndex {
  std::vector<Cfg> cfgs;
  std::map<std::size_t, std::size_t> by_symbol;  // symbol id -> cfgs index

  const Cfg* for_symbol(std::size_t symbol) const {
    auto it = by_symbol.find(symbol);
    return it == by_symbol.end() ? nullptr : &cfgs[it->second];
  }
};

CfgIndex build_cfg_index(const Model& model, const SymbolIndex& index);

}  // namespace quicsteps::analyze
