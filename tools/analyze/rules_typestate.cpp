// protocol/typestate — data-driven API state machines over the CFG.
//
// Protocols are declared in tools/analyze/layers.json (`typestate`): a
// set of states, transitions keyed by events, and `requires` obligations.
// The abstract state of each tracked variable is the SET of protocol
// states it may be in (powerset domain, joined by union at merges), so a
// branch that schedules on one arm and not the other yields {unscheduled,
// armed} downstream — exactly what the may/must polarity of a check needs:
//
//   may  — error when ANY possible state is forbidden. Used for the
//          null-check protocols (TraceBus publish): one unchecked path in
//          is one null deref too many.
//   must — error when EVERY possible state is forbidden. Used for
//          "run() on a loop no path ever scheduled" and "mutate after
//          run_flows": a sweep loop whose back edge joins {building,
//          frozen} stays silent, straight-line misuse does not.
//
// Events (see TypestateTransition in rule.hpp): method:NAME, arg:NAME,
// cond-true/cond-false (a branch taken on the variable itself — the
// null/enabled guard), mutate (member assignment or mutating member
// call), and escape (the variable handed bare into some call — the
// conservative "a component now holds a reference" transition). A
// whole-object reassignment resets to the start state.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "absint.hpp"
#include "cfg.hpp"
#include "dataflow.hpp"
#include "rule.hpp"
#include "symbols.hpp"

namespace quicsteps::analyze {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }

bool type_word(const std::string& text, const std::string& w) {
  std::size_t at = 0;
  while ((at = text.find(w, at)) != std::string::npos) {
    const bool l_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(text[at - 1])) &&
                    text[at - 1] != '_');
    const std::size_t after = at + w.size();
    const bool r_ok = after >= text.size() ||
                      (!std::isalnum(static_cast<unsigned char>(text[after])) &&
                       text[after] != '_');
    if (l_ok && r_ok) return true;
    at = after;
  }
  return false;
}

/// Container-mutator method names that count as the "mutate" event when
/// called through a member chain (`cfg.flows.push_back(..)`).
const std::set<std::string>& mutator_methods() {
  static const std::set<std::string> kMutators = {
      "push_back", "emplace_back", "pop_back", "clear",  "resize",
      "insert",    "erase",        "assign",   "emplace", "reserve"};
  return kMutators;
}

struct TrackedVar {
  std::size_t local = npos;
  std::size_t proto = npos;  // into manifest.typestate
};

struct ProtoTables {
  std::uint16_t start_mask = 0;
  std::uint16_t param_mask = 0;  // 0 = params not tracked
  std::map<std::string, std::uint16_t> state_bit;
};

struct TypestateDomain {
  using State = std::vector<std::uint16_t>;  // per tracked var, state set

  const std::vector<Token>* toks = nullptr;
  const CallableDataflow* dfc = nullptr;
  const std::vector<TypestateProtocol>* protos = nullptr;
  std::vector<TrackedVar> tracked;
  std::vector<ProtoTables> tables;      // parallel to *protos
  std::map<std::string, std::size_t> tracked_by_name;
  std::map<std::size_t, std::size_t> reassign_defs;  // def tok -> tracked idx
  std::set<std::size_t> decl_toks;  // tracked decls: not an event

  bool reporting = false;
  const SourceFile* file = nullptr;
  std::vector<Finding>* out = nullptr;
  std::set<std::size_t> reported;

  const Token& tok(std::size_t i) const { return (*toks)[i]; }

  State entry_state() const {
    State st(tracked.size(), 0);
    for (std::size_t v = 0; v < tracked.size(); ++v) {
      const ProtoTables& pt = tables[tracked[v].proto];
      st[v] = dfc->locals[tracked[v].local].is_param ? pt.param_mask
                                                     : pt.start_mask;
    }
    return st;
  }
  bool join(State* into, const State& s) const {
    bool changed = false;
    for (std::size_t i = 0; i < into->size() && i < s.size(); ++i) {
      const std::uint16_t merged = (*into)[i] | s[i];
      if (merged != (*into)[i]) {
        (*into)[i] = merged;
        changed = true;
      }
    }
    return changed;
  }
  void widen(State*, const State&) const {}  // finite powerset

  std::uint16_t mask_of(std::size_t proto_idx,
                        const std::vector<std::string>& states) const {
    std::uint16_t m = 0;
    for (const auto& s : states) {
      auto it = tables[proto_idx].state_bit.find(s);
      if (it != tables[proto_idx].state_bit.end()) m |= it->second;
    }
    return m;
  }

  std::string show_states(std::size_t proto_idx, std::uint16_t mask) const {
    std::string out_s;
    for (const auto& [name, bit] : tables[proto_idx].state_bit) {
      if ((mask & bit) == 0) continue;
      if (!out_s.empty()) out_s += "|";
      out_s += name;
    }
    return out_s.empty() ? "<none>" : out_s;
  }

  void fire(std::size_t v, const std::string& event, std::size_t at,
            std::uint16_t* mask) {
    const TypestateProtocol& proto = (*protos)[tracked[v].proto];
    // Obligations first: the state BEFORE the event is what is checked.
    for (const TypestateRequire& req : proto.checks) {
      if (req.event != event) continue;
      const std::uint16_t forbid = mask_of(tracked[v].proto, req.forbid);
      const bool bad = req.must ? (*mask != 0 && (*mask & ~forbid) == 0)
                                : ((*mask & forbid) != 0);
      if (bad && reporting && reported.insert(at).second) {
        Finding f;
        f.rule_id = "protocol/typestate";
        f.file = file->rel_path;
        f.line = tok(at).line;
        f.col = tok(at).col;
        f.message = "[" + proto.name + "] '" +
                    dfc->locals[tracked[v].local].name + "' may be " +
                    show_states(tracked[v].proto, *mask) + " here: " +
                    req.message;
        out->push_back(std::move(f));
      }
    }
    // Then transitions, per possible state.
    std::uint16_t next = 0;
    for (const auto& [name, bit] : tables[tracked[v].proto].state_bit) {
      if ((*mask & bit) == 0) continue;
      bool moved = false;
      for (const TypestateTransition& t : proto.transitions) {
        if (t.event != event) continue;
        if (!t.from.empty() && t.from != name) continue;
        next |= tables[tracked[v].proto].state_bit.at(t.to);
        moved = true;
        break;
      }
      if (!moved) next |= bit;
    }
    *mask = next;
  }

  /// Walks a member-access chain starting at the `.`/`->` after position
  /// i; fires method/mutate events as appropriate.
  void member_chain(std::size_t v, std::size_t i, std::size_t end,
                    std::uint16_t* mask) {
    // First member: a direct call is the method:NAME event.
    if (i + 3 < end && is_ident(tok(i + 2)) && tok(i + 3).is_punct("(")) {
      const std::string& m = tok(i + 2).text;
      fire(v, "method:" + m, i + 2, mask);
      if (mutator_methods().count(m)) fire(v, "mutate", i + 2, mask);
      return;
    }
    // Deeper chain: `v.a.b...` — mutate when it ends in an assignment or
    // a mutating container call.
    std::size_t j = i;
    while (j + 2 < end && (tok(j + 1).is_punct(".") ||
                           tok(j + 1).is_punct("->")) &&
           is_ident(tok(j + 2))) {
      j += 2;
      // Skip a subscript: v.flows[i]...
      while (j + 1 < end && tok(j + 1).is_punct("[")) {
        int depth = 0;
        std::size_t k = j + 1;
        for (; k < end; ++k) {
          if (tok(k).is_punct("[")) ++depth;
          if (tok(k).is_punct("]") && --depth == 0) break;
        }
        j = k;
      }
    }
    if (j == i) return;
    if (j + 1 < end && tok(j + 1).is_punct("(") && is_ident(tok(j)) &&
        mutator_methods().count(tok(j).text)) {
      fire(v, "mutate", j, mask);
      return;
    }
    // Assignment tail: `= rhs` or compound `+ =` — but not `==`.
    if (j + 1 < end) {
      const bool plain_eq = tok(j + 1).is_punct("=") &&
                            !(j + 2 < end && tok(j + 2).is_punct("="));
      const bool compound =
          j + 2 < end && tok(j + 2).is_punct("=") &&
          (tok(j + 1).is_punct("+") || tok(j + 1).is_punct("-") ||
           tok(j + 1).is_punct("*") || tok(j + 1).is_punct("/"));
      if (plain_eq || compound) fire(v, "mutate", j, mask);
    }
  }

  /// The callee name owning the innermost open paren around position i,
  /// or empty when i is not inside a call's argument list.
  std::string enclosing_call(std::size_t begin, std::size_t i) const {
    std::vector<std::size_t> opens;
    for (std::size_t k = begin; k < i; ++k) {
      if (tok(k).is_punct("(")) opens.push_back(k);
      if (tok(k).is_punct(")") && !opens.empty()) opens.pop_back();
    }
    if (opens.empty()) return "";
    const std::size_t open = opens.back();
    if (open > begin && is_ident(tok(open - 1))) return tok(open - 1).text;
    return "";
  }

  void transfer_range(std::size_t begin, std::size_t end, State* st) {
    for (std::size_t i = begin; i < end; ++i) {
      auto r = reassign_defs.find(i);
      if (r != reassign_defs.end()) {
        (*st)[r->second] = tables[tracked[r->second].proto].start_mask;
        continue;
      }
      if (!is_ident(tok(i))) continue;
      // The variable's own declaration (`sim::EventLoop loop;`) introduces
      // it in the start state; it is not an arg/escape event.
      if (decl_toks.count(i) != 0) continue;
      if (i > begin && (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->") ||
                        tok(i - 1).is_punct("::"))) {
        continue;
      }
      auto t = tracked_by_name.find(tok(i).text);
      if (t == tracked_by_name.end()) continue;
      const std::size_t v = t->second;
      if (i + 1 < end &&
          (tok(i + 1).is_punct(".") || tok(i + 1).is_punct("->"))) {
        member_chain(v, i, end, &(*st)[v]);
        continue;
      }
      // Whole-object reassignment is handled via reassign_defs above;
      // a bare mention is an arg/escape event.
      if (i + 1 < end && tok(i + 1).is_punct("=") &&
          !(i + 2 < end && tok(i + 2).is_punct("="))) {
        continue;
      }
      const std::string callee = enclosing_call(begin, i);
      if (!callee.empty()) {
        fire(v, "arg:" + callee, i, &(*st)[v]);
      }
      fire(v, "escape", i, &(*st)[v]);
    }
  }

  void transfer_stmt(const CfgStmt& s, State* st) {
    transfer_range(s.begin, s.end, st);
  }

  void transfer_cond(const CfgStmt& s, bool branch_true, State* st) {
    std::size_t b = s.begin, e = s.end;
    // `v`, `v != nullptr`, `v == nullptr`, `nullptr != v`, ...
    std::size_t var_tok = npos;
    bool polarity = true;  // true-branch means "non-null / set"
    if (e - b == 1 && is_ident(tok(b))) {
      var_tok = b;
    } else if (e - b == 2 && tok(b).is_punct("!") && is_ident(tok(b + 1))) {
      var_tok = b + 1;
      polarity = false;
    } else if (e - b == 4 && is_ident(tok(b)) && tok(b + 1).kind ==
                   TokKind::kPunct && tok(b + 2).is_punct("=") &&
               is_ident(tok(b + 3)) && tok(b + 3).text == "nullptr") {
      var_tok = b;
      polarity = tok(b + 1).is_punct("!");
    } else if (e - b == 4 && is_ident(tok(b)) && tok(b).text == "nullptr" &&
               tok(b + 1).kind == TokKind::kPunct &&
               tok(b + 2).is_punct("=") && is_ident(tok(b + 3))) {
      var_tok = b + 3;
      polarity = tok(b + 1).is_punct("!");
    }
    if (var_tok != npos) {
      auto t = tracked_by_name.find(tok(var_tok).text);
      if (t != tracked_by_name.end()) {
        const bool taken_set = branch_true == polarity;
        fire(t->second, taken_set ? "cond-true" : "cond-false", var_tok,
             &(*st)[t->second]);
        return;
      }
    }
    // Conditions with method calls on tracked vars (`while (loop.run_one())`)
    // still fire their method events on both branches.
    transfer_range(s.begin, s.end, st);
  }
};

}  // namespace

void run_typestate_rules(const Model& model, const LayerManifest& manifest,
                         const SemanticModel& sem,
                         std::vector<Finding>* out) {
  if (manifest.typestate.empty() || sem.cfgs == nullptr ||
      sem.flow == nullptr || sem.index == nullptr) {
    return;
  }
  for (const Cfg& cfg : sem.cfgs->cfgs) {
    const Symbol& sym = sem.index->symbols[cfg.symbol];
    const CallableDataflow* dfc = sem.flow->for_symbol(cfg.symbol);
    if (dfc == nullptr || sym.file >= model.files.size()) continue;
    const SourceFile& sf = model.files[sym.file];

    TypestateDomain dom;
    dom.toks = &sf.lex.tokens;
    dom.dfc = dfc;
    dom.protos = &manifest.typestate;
    dom.file = &sf;
    dom.out = out;
    dom.tables.resize(manifest.typestate.size());
    for (std::size_t p = 0; p < manifest.typestate.size(); ++p) {
      const TypestateProtocol& proto = manifest.typestate[p];
      ProtoTables& pt = dom.tables[p];
      std::uint16_t bit = 1;
      for (const auto& s : proto.states) {
        pt.state_bit[s] = bit;
        bit = static_cast<std::uint16_t>(bit << 1);
      }
      pt.start_mask = pt.state_bit.count(proto.start)
                          ? pt.state_bit.at(proto.start)
                          : 0;
      pt.param_mask = proto.param_start.empty()
                          ? 0
                          : pt.state_bit.at(proto.param_start);
    }

    for (std::size_t l = 0; l < dfc->locals.size(); ++l) {
      const Local& local = dfc->locals[l];
      const bool is_ptr = local.type_text.find('*') != std::string::npos;
      const bool is_ref = local.type_text.find('&') != std::string::npos;
      for (std::size_t p = 0; p < manifest.typestate.size(); ++p) {
        const TypestateProtocol& proto = manifest.typestate[p];
        if (!type_word(local.type_text, proto.type)) continue;
        if (proto.pointer_only != is_ptr) continue;
        if (local.is_param) {
          if (proto.param_start.empty()) continue;
        } else if (is_ref) {
          // A reference local aliases an object whose history we cannot
          // see; never tracked.
          continue;
        }
        TrackedVar tv;
        tv.local = l;
        tv.proto = p;
        dom.tracked_by_name[local.name] = dom.tracked.size();
        dom.tracked.push_back(tv);
        dom.decl_toks.insert(local.decl_tok);
        break;
      }
    }
    if (dom.tracked.empty()) continue;

    // Whole-object reassignments reset to the start state.
    for (std::size_t v = 0; v < dom.tracked.size(); ++v) {
      const Local& local = dfc->locals[dom.tracked[v].local];
      for (const Def& d : local.defs) {
        if (d.tok == local.decl_tok) continue;  // decl init = start anyway
        dom.reassign_defs[d.tok] = v;
      }
    }

    auto solved = solve_absint(cfg, dom);
    dom.reporting = true;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!solved.reachable[b]) continue;
      TypestateDomain::State st = solved.in[b];
      const CfgBlock& block = cfg.blocks[b];
      if (block.is_cond) {
        // Checks fire on the pre-branch state, so replaying one branch
        // covers them; the discarded post-state is irrelevant here.
        if (!block.stmts.empty()) {
          dom.transfer_cond(block.stmts.front(), true, &st);
        }
        continue;
      }
      for (const CfgStmt& s : block.stmts) dom.transfer_stmt(s, &st);
    }
  }
}

}  // namespace quicsteps::analyze
