#include "rule.hpp"

namespace quicsteps::analyze {

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      {"layering/upward-include",
       "A layer includes a header from a layer the manifest does not allow "
       "it to depend on."},
      {"layering/unknown-layer",
       "A source directory is not declared in tools/analyze/layers.json."},
      {"layering/cycle", "Files form an #include cycle."},
      {"units/raw-time-type",
       "Raw int64_t/uint64_t/double declaration with a time-unit suffix "
       "(_ns/_us/_ms) bypasses sim::Time / sim::Duration."},
      {"units/raw-rate-type",
       "Raw int64_t/uint64_t/double declaration with a rate suffix "
       "(_bps/_rate) bypasses net::DataRate."},
      {"units/unwrap-rewrap",
       "A Duration/Time value is unwrapped with .ns()/.us()/.ms() and "
       "rewrapped in the same expression."},
      {"determinism/wall-clock",
       "Host clock access (std::chrono, time(), clock(), gettimeofday, "
       "clock_gettime) in simulation code."},
      {"determinism/libc-rand",
       "libc RNG (rand, srand, *rand48) bypasses the seeded sim::Rng."},
      {"determinism/random-device",
       "std::random_device is nondeterministic by definition."},
      {"determinism/unordered-container",
       "std::unordered_* iteration order is allocator-dependent."},
      {"determinism/thread-sleep",
       "std::this_thread::sleep_* waits on the wall clock."},
      {"determinism/exporter-unordered",
       "Exporter code (obs/, artifacts, report, qlog) names an unordered_* "
       "container without std:: qualification — aliases and using-imports "
       "would leak hash order into published artifacts."},
      {"determinism/include-guard", "Header does not open with #pragma once."},
      {"scheduling/ref-capture",
       "Lambda passed to EventLoop::schedule_at/schedule_after captures by "
       "reference (dangling-callback heuristic)."},
      {"perf/hot-path-alloc-interproc",
       "Allocation in a callable transitively reachable from the hot-path "
       "file set (tagged in tools/analyze/layers.json, propagated over the "
       "call graph): operator new / make_unique / make_shared, container "
       "growth, or a std::function closure schedule — use the packet slab "
       "and drain channels, or baseline with the rationale."},
      {"concurrency/parallel-shared-state",
       "A worker entry point (lambda handed to a parallel_entries function "
       "or defined inside one) reaches non-const shared state — a "
       "by-reference capture it mutates, a non-const global, or a static "
       "local — that is neither std::atomic nor guarded by a lock in the "
       "mutating scope. Races break the serial==parallel wire_hash "
       "invariant."},
      {"determinism/unordered-taint",
       "Iteration order of an unordered_* container flows through a local, "
       "parameter, or return value into an exporter/hash/report sink; the "
       "order is allocator-dependent and would leak into published "
       "artifacts. Use an ordered container or sort before the sink."},
  };
  return kRules;
}

bool known_rule(const std::string& rule_id) {
  for (const auto& r : all_rules()) {
    if (rule_id == r.id) return true;
  }
  return false;
}

std::string rule_family(const std::string& rule_id) {
  const auto slash = rule_id.find('/');
  return slash == std::string::npos ? rule_id : rule_id.substr(0, slash);
}

}  // namespace quicsteps::analyze
