#include "rule.hpp"

namespace quicsteps::analyze {

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      {"layering/upward-include",
       "A layer includes a header from a layer the manifest does not allow "
       "it to depend on."},
      {"layering/unknown-layer",
       "A source directory is not declared in tools/analyze/layers.json."},
      {"layering/cycle", "Files form an #include cycle."},
      {"units/raw-time-type",
       "Raw int64_t/uint64_t/double declaration with a time-unit suffix "
       "(_ns/_us/_ms) bypasses sim::Time / sim::Duration."},
      {"units/raw-rate-type",
       "Raw int64_t/uint64_t/double declaration with a rate suffix "
       "(_bps/_rate) bypasses net::DataRate."},
      {"units/unwrap-rewrap",
       "A Duration/Time value is unwrapped with .ns()/.us()/.ms() and "
       "rewrapped in the same expression."},
      {"determinism/wall-clock",
       "Host clock access (std::chrono, time(), clock(), gettimeofday, "
       "clock_gettime) in simulation code."},
      {"determinism/libc-rand",
       "libc RNG (rand, srand, *rand48) bypasses the seeded sim::Rng."},
      {"determinism/random-device",
       "std::random_device is nondeterministic by definition."},
      {"determinism/unordered-container",
       "std::unordered_* iteration order is allocator-dependent."},
      {"determinism/thread-sleep",
       "std::this_thread::sleep_* waits on the wall clock."},
      {"determinism/exporter-unordered",
       "Exporter code (obs/, artifacts, report, qlog) names an unordered_* "
       "container without std:: qualification — aliases and using-imports "
       "would leak hash order into published artifacts."},
      {"determinism/include-guard", "Header does not open with #pragma once."},
      {"scheduling/ref-capture",
       "Lambda passed to EventLoop::schedule_at/schedule_after captures by "
       "reference (dangling-callback heuristic)."},
      {"perf/hot-path-alloc-interproc",
       "Allocation in a callable transitively reachable from the hot-path "
       "file set (tagged in tools/analyze/layers.json, propagated over the "
       "call graph): operator new / make_unique / make_shared, container "
       "growth, or a std::function closure schedule — use the packet slab "
       "and drain channels, or baseline with the rationale."},
      {"concurrency/parallel-shared-state",
       "A worker entry point (lambda handed to a parallel_entries function "
       "or defined inside one) reaches non-const shared state — a "
       "by-reference capture it mutates, a non-const global, or a static "
       "local — that is neither std::atomic nor guarded by a lock in the "
       "mutating scope. Races break the serial==parallel wire_hash "
       "invariant."},
      {"determinism/unordered-taint",
       "Iteration order of an unordered_* container flows through a local, "
       "parameter, or return value into an exporter/hash/report sink; the "
       "order is allocator-dependent and would leak into published "
       "artifacts. Use an ordered container or sort before the sink."},
      {"lifetime/use-after-recycle",
       "A reference or pointer borrowed from a generation-checked "
       "container (tools/analyze/layers.json generation_checked, e.g. "
       "net::PacketSlab::peek) is used on a CFG path after a call that may "
       "allocate or recycle slots (put/take) — the static twin of the "
       "QUICSTEPS_AUDIT stale-ref generation check. Re-borrow after the "
       "mutation, or copy the packet out first."},
      {"lifetime/ref-escape",
       "A reference or pointer borrowed from a generation-checked "
       "container escapes into a lambda or deferred callback "
       "(schedule_*/post_drain_at): the callback runs after slots may have "
       "recycled, so the borrow cannot outlive the statement. Capture the "
       "slab ref (the ticket) instead and re-borrow inside the callback."},
      {"units/interval-overflow",
       "Interval analysis proves this arithmetic can exceed the int64 "
       "range BEFORE the value reaches sim::Time/Duration's saturating "
       "sentinel arithmetic — the multiply/add itself is UB. Reorder to "
       "divide first, or route through saturating_add_ns."},
      {"units/div-by-zero-rate",
       "Division by a rate/divisor whose interval contains zero on some "
       "CFG path (no `> 0` / `!= 0` / is_zero() guard dominates the "
       "division). A zero rate is a valid 'link down' configuration; guard "
       "the division."},
      {"units/lossy-narrowing",
       "A nanosecond-magnitude value (.ns()/.us() unwrap or an int64 whose "
       "interval exceeds the destination type) is narrowed into "
       "int/int32_t/uint32_t/float — wraps after ~2.1 s of nanoseconds. "
       "Keep the int64_t (fix-it attached)."},
      {"protocol/typestate",
       "A declared API protocol (tools/analyze/layers.json typestate) is "
       "violated along some CFG path: e.g. EventLoop::run() on a loop no "
       "path ever scheduled, TraceBus publish without a null/enabled check "
       "dominating it, or a MultiFlowConfig mutated after run_flows() "
       "consumed it."},
  };
  return kRules;
}

bool known_rule(const std::string& rule_id) {
  for (const auto& r : all_rules()) {
    if (rule_id == r.id) return true;
  }
  return false;
}

std::string rule_family(const std::string& rule_id) {
  const auto slash = rule_id.find('/');
  return slash == std::string::npos ? rule_id : rule_id.substr(0, slash);
}

}  // namespace quicsteps::analyze
