#include "rule.hpp"

namespace quicsteps::analyze {

const std::vector<RuleInfo>& all_rules() {
  static const std::vector<RuleInfo> kRules = {
      {"layering/upward-include",
       "A layer includes a header from a layer the manifest does not allow "
       "it to depend on."},
      {"layering/unknown-layer",
       "A source directory is not declared in tools/analyze/layers.json."},
      {"layering/cycle", "Files form an #include cycle."},
      {"units/raw-time-type",
       "Raw int64_t/uint64_t/double declaration with a time-unit suffix "
       "(_ns/_us/_ms) bypasses sim::Time / sim::Duration."},
      {"units/raw-rate-type",
       "Raw int64_t/uint64_t/double declaration with a rate suffix "
       "(_bps/_rate) bypasses net::DataRate."},
      {"units/unwrap-rewrap",
       "A Duration/Time value is unwrapped with .ns()/.us()/.ms() and "
       "rewrapped in the same expression."},
      {"determinism/wall-clock",
       "Host clock access (std::chrono, time(), clock(), gettimeofday, "
       "clock_gettime) in simulation code."},
      {"determinism/libc-rand",
       "libc RNG (rand, srand, *rand48) bypasses the seeded sim::Rng."},
      {"determinism/random-device",
       "std::random_device is nondeterministic by definition."},
      {"determinism/unordered-container",
       "std::unordered_* iteration order is allocator-dependent."},
      {"determinism/thread-sleep",
       "std::this_thread::sleep_* waits on the wall clock."},
      {"determinism/exporter-unordered",
       "Exporter code (obs/, artifacts, report, qlog) names an unordered_* "
       "container without std:: qualification — aliases and using-imports "
       "would leak hash order into published artifacts."},
      {"determinism/include-guard", "Header does not open with #pragma once."},
      {"scheduling/ref-capture",
       "Lambda passed to EventLoop::schedule_at/schedule_after captures by "
       "reference (dangling-callback heuristic)."},
      {"perf/hot-path-alloc",
       "Per-packet allocation in a hot-path file (tagged in "
       "tools/analyze/layers.json): operator new / make_unique / "
       "make_shared, container growth, or a std::function closure schedule "
       "— use the packet slab and drain channels, or baseline with the "
       "rationale."},
  };
  return kRules;
}

bool known_rule(const std::string& rule_id) {
  for (const auto& r : all_rules()) {
    if (rule_id == r.id) return true;
  }
  return false;
}

std::string rule_family(const std::string& rule_id) {
  const auto slash = rule_id.find('/');
  return slash == std::string::npos ? rule_id : rule_id.substr(0, slash);
}

}  // namespace quicsteps::analyze
