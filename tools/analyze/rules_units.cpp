// Unit-safety rules: nanosecond/rate arithmetic must flow through the
// strong types (sim::Time, sim::Duration, net::DataRate). A raw int64_t
// with a unit-suffixed name is exactly the kind of value that gets added
// to a microsecond count without anyone noticing; an .ns() unwrap that is
// rewrapped in the same expression is arithmetic the strong type should
// have expressed itself.
#include "rule.hpp"

namespace quicsteps::analyze {

namespace {

/// Strips the trailing member-variable underscore, then tests the unit
/// suffix: last_ns_ -> last_ns -> "_ns".
const char* unit_suffix(const std::string& name) {
  static const char* kTime[] = {"_ns", "_us", "_ms"};
  static const char* kRate[] = {"_bps", "_rate"};
  std::string n = name;
  if (!n.empty() && n.back() == '_') n.pop_back();
  for (const char* s : kTime) {
    const std::string suf(s);
    if (n.size() > suf.size() && n.compare(n.size() - suf.size(),
                                           suf.size(), suf) == 0) {
      return "time";
    }
  }
  for (const char* s : kRate) {
    const std::string suf(s);
    if (n.size() > suf.size() && n.compare(n.size() - suf.size(),
                                           suf.size(), suf) == 0) {
      return "rate";
    }
  }
  return nullptr;
}

bool raw_numeric_type(const std::string& s) {
  return s == "int64_t" || s == "uint64_t" || s == "double";
}

bool unwrap_accessor(const std::string& s) {
  return s == "ns" || s == "us" || s == "ms";
}

bool rewrap_maker(const std::string& s) {
  return s == "nanos" || s == "micros" || s == "millis" || s == "from_ns";
}

/// Index of the token after the ')' matching the '(' at `open`, with
/// `*close` set to the ')' index. Returns false when unbalanced.
bool match_paren(const std::vector<Token>& toks, std::size_t open,
                 std::size_t* close) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].is_punct("(")) ++depth;
    if (toks[i].is_punct(")")) {
      --depth;
      if (depth == 0) {
        *close = i;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void run_units_rules(const Model& model, std::vector<Finding>* out) {
  for (const auto& f : model.files) {
    const auto& toks = f.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier || t.in_pp) continue;

      // Raw declarations/parameters: [std::]{int64_t,uint64_t,double}
      // <name with unit suffix> not followed by '(' (a call or function
      // declaration named *_ns is the accessor idiom, not a raw value).
      if (raw_numeric_type(t.text)) {
        std::size_t j = i + 1;
        if (j < toks.size() && toks[j].kind == TokKind::kIdentifier &&
            !toks[j].in_pp) {
          const char* cat = unit_suffix(toks[j].text);
          const bool is_decl =
              j + 1 >= toks.size() || !toks[j + 1].is_punct("(");
          if (cat != nullptr && is_decl) {
            const char* id = cat[0] == 't' ? "units/raw-time-type"
                                           : "units/raw-rate-type";
            const char* wrap = cat[0] == 't'
                                   ? "sim::Duration / sim::Time"
                                   : "net::DataRate";
            out->push_back(
                {id, f.rel_path, toks[j].line, toks[j].col,
                 "raw " + t.text + " '" + toks[j].text +
                     "' carries a unit suffix; use " + wrap +
                     " (or baseline it with a comment explaining why raw "
                     "representation is required)",
                 false,
                 {}});
          }
        }
      }

      // Unwrap-compute-rewrap: Duration::nanos(... x.ns() ...) and
      // Time::from_ns(... x.ns() ...) in one expression.
      if ((t.text == "Duration" || t.text == "Time") && i + 3 < toks.size() &&
          toks[i + 1].is_punct("::") &&
          toks[i + 2].kind == TokKind::kIdentifier &&
          rewrap_maker(toks[i + 2].text) && toks[i + 3].is_punct("(")) {
        std::size_t close = 0;
        if (!match_paren(toks, i + 3, &close)) continue;
        for (std::size_t k = i + 4; k + 2 < close; ++k) {
          if (toks[k].is_punct(".") &&
              toks[k + 1].kind == TokKind::kIdentifier &&
              unwrap_accessor(toks[k + 1].text) &&
              toks[k + 2].is_punct("(")) {
            out->push_back(
                {"units/unwrap-rewrap", f.rel_path, t.line, t.col,
                 t.text + "::" + toks[i + 2].text + "(...." +
                     toks[k + 1].text +
                     "()...) unwraps and rewraps in one expression; express "
                     "the arithmetic on the strong type instead",
                 false,
                 {}});
            break;
          }
        }
      }
    }
  }
}

}  // namespace quicsteps::analyze
