// Call graph over the symbol index.
//
// Edges come from by-name resolution of `name(` call sites inside callable
// bodies: candidates sharing the callee name are looked up in the index,
// preferring definitions in the calling file, and capped when a name is
// ambiguous across too many definitions (a heuristic graph must not invent
// thousands of edges for `reset`). Lambdas get an implicit edge from the
// callable that lexically contains them — a lambda defined in a hot
// function runs on the hot path until proven otherwise — and resolve by
// their bound local name when invoked or passed on.
//
// Hot tags seed from callables defined in the layers.json hot_path file
// set and propagate transitively along edges (BFS); this is what lets
// perf/hot-path-alloc-interproc flag an allocation two calls away from the
// per-packet loop.
#pragma once

#include <string>
#include <vector>

#include "rule.hpp"
#include "symbols.hpp"

namespace quicsteps::analyze {

/// One `name(...)` occurrence inside a callable body.
struct CallSite {
  std::size_t caller = Symbol::npos;  // enclosing callable; npos at
                                      // namespace scope (global init)
  std::string name;                   // callee name as spelled
  std::size_t file = 0;
  std::size_t tok = 0;   // token index of the name
  int line = 1;
  int col = 1;
  std::size_t args_begin = 0;  // token index of '('
  std::size_t args_end = 0;    // token index of matching ')'
  std::vector<std::size_t> callees;  // resolved symbol ids (may be empty)
};

struct CallGraph {
  std::vector<CallSite> sites;  // (file, token) order
  /// Per symbol id: resolved callee symbol ids, sorted + deduped.
  /// Includes the implicit containing-callable -> lambda edges.
  std::vector<std::vector<std::size_t>> edges;
  /// Per symbol id: transitively reachable from a hot-path file's
  /// callables (seeds included).
  std::vector<bool> hot;
  std::vector<std::size_t> hot_seeds;  // symbol ids, ascending

  bool is_hot(std::size_t symbol) const {
    return symbol < hot.size() && hot[symbol];
  }
};

/// Builds sites, edges, and (when `manifest` is non-null) hot tags.
CallGraph build_call_graph(const Model& model, const SymbolIndex& index,
                           const LayerManifest* manifest);

/// Worker entry points for the concurrency family: lambdas passed as
/// arguments to calls whose name is in `entry_names` (the layers.json
/// parallel_entries list), plus lambdas defined inside the body of a
/// function itself named there (the pool worker in parallel_for). Returns
/// symbol ids, ascending.
std::vector<std::size_t> worker_entries(
    const SymbolIndex& index, const CallGraph& graph,
    const std::vector<std::string>& entry_names);

}  // namespace quicsteps::analyze
