// Intraprocedural dataflow skeleton for the quicsteps static analyzer.
//
// For every callable in the symbol index this builds a flat def/use model
// of its locals: parameter and local-variable declarations (with their
// declared type text), every assignment to each local together with the
// right-hand-side token range, and every read. Range-for bindings keep a
// pointer to the range expression so taint rules can follow
// `for (auto& kv : unordered_map)` from the container into the loop
// variable. No control-flow sensitivity — defs and uses are in token
// order, which is all the unordered-taint rule needs.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "symbols.hpp"

namespace quicsteps::analyze {

/// One assignment to a local: `x = <rhs>;`, `x += <rhs>;`, `++x`.
struct Def {
  std::size_t tok = 0;        // token index of the local's name
  std::size_t rhs_begin = 0;  // first RHS token; rhs_begin==rhs_end for ++/--
  std::size_t rhs_end = 0;    // one past the last RHS token
};

struct Local {
  std::string name;
  std::size_t decl_tok = 0;  // token index of the name at the declaration
  int line = 1;
  int col = 1;
  std::string type_text;  // joined declaration tokens before the name
  bool is_const = false;
  bool is_param = false;
  bool is_range_for = false;  // declared in `for (T x : range)`
  // is_range_for only: token range of the range expression after ':'.
  std::size_t range_begin = 0;
  std::size_t range_end = 0;
  std::vector<Def> defs;          // assignments after the declaration
  std::vector<std::size_t> uses;  // token indices of reads
};

/// Def/use model for one callable's body.
struct CallableDataflow {
  std::size_t symbol = Symbol::npos;  // into SymbolIndex::symbols
  std::vector<Local> locals;          // declaration order, params first

  /// First local with this name, or npos (shadowing collapses — fine for
  /// heuristic taint).
  std::size_t find(const std::string& name) const;
};

struct Dataflow {
  std::vector<CallableDataflow> callables;
  /// symbol id -> index into `callables`.
  std::map<std::size_t, std::size_t> by_symbol;

  const CallableDataflow* for_symbol(std::size_t symbol) const;
};

/// Builds def/use for every callable in the index that has a body.
Dataflow build_dataflow(const Model& model, const SymbolIndex& index);

}  // namespace quicsteps::analyze
