// units/* interval rules — abstract interpretation over int64 intervals.
//
// sim::Time and sim::Duration keep an INT64_MAX "infinite" sentinel and
// saturate additive arithmetic (saturating_add_ns); net::DataRate keeps
// bps with zero = "link down". The type wrappers cannot protect the raw
// int64 math AROUND them: unwrapping with .ns() and multiplying, scaling
// inside the non-saturating constexpr factories (Duration::millis(ms) is
// a raw multiply), dividing by a rate nobody proved non-zero, or stuffing
// a nanosecond magnitude into an int. This pass runs an interval domain
// through each callable's CFG (absint.hpp) and reports exactly those:
//
//   units/interval-overflow   known-interval multiply/add can exceed int64
//                             BEFORE any saturating wrapper sees it
//   units/div-by-zero-rate    divisor interval contains 0 on some path and
//                             no dominating `> 0` / `!= 0` / !is_zero()
//                             guard refines it away
//   units/lossy-narrowing     known interval (e.g. the full .ns() range)
//                             does not fit the declared destination type
//
// Locals are classified by declared type: plain integers carry their
// evaluated interval, Duration/Time carry their magnitude in ns (always
// int64-bounded, so .ns() on an untracked value is the full range — the
// sentinel IS representable), DataRate carries bps with a default of
// [0, INT64_MAX]: a rate is possibly-zero until a guard proves otherwise.
// Guards refine through the edge-sensitive condition transfer.
#include <cctype>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "absint.hpp"
#include "cfg.hpp"
#include "dataflow.hpp"
#include "rule.hpp"
#include "symbols.hpp"

namespace quicsteps::analyze {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);
constexpr std::int64_t kI64Max = std::numeric_limits<std::int64_t>::max();

bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }

bool word_in(const std::string& text, const std::string& w) {
  std::size_t at = 0;
  while ((at = text.find(w, at)) != std::string::npos) {
    const bool l_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(text[at - 1])) &&
                    text[at - 1] != '_');
    const std::size_t after = at + w.size();
    const bool r_ok = after >= text.size() ||
                      (!std::isalnum(static_cast<unsigned char>(text[after])) &&
                       text[after] != '_');
    if (l_ok && r_ok) return true;
    at = after;
  }
  return false;
}

enum class VKind { kNone, kInt, kChrono, kRate };

/// Destination range of a narrow integer (or float-mantissa) type named in
/// a declaration; returns false for 64-bit-safe types.
bool narrow_range(const std::string& type_text, std::int64_t* lo,
                  std::int64_t* hi, std::string* pretty) {
  if (word_in(type_text, "int64_t") || word_in(type_text, "uint64_t") ||
      word_in(type_text, "size_t") || word_in(type_text, "long") ||
      word_in(type_text, "auto")) {
    return false;
  }
  if (word_in(type_text, "int32_t") || word_in(type_text, "int")) {
    *lo = -2147483648LL;
    *hi = 2147483647LL;
    *pretty = "int32";
    return true;
  }
  if (word_in(type_text, "uint32_t") || word_in(type_text, "unsigned")) {
    *lo = 0;
    *hi = 4294967295LL;
    *pretty = "uint32";
    return true;
  }
  if (word_in(type_text, "int16_t") || word_in(type_text, "short")) {
    *lo = -32768;
    *hi = 32767;
    *pretty = "int16";
    return true;
  }
  if (word_in(type_text, "uint16_t")) {
    *lo = 0;
    *hi = 65535;
    *pretty = "uint16";
    return true;
  }
  if (word_in(type_text, "float")) {
    *lo = -(std::int64_t{1} << 53);
    *hi = std::int64_t{1} << 53;
    *pretty = "float mantissa";
    return true;
  }
  return false;
}

struct EvalResult {
  IntInterval iv;
  bool known = false;
  // Provenance: the value derives from a chrono unwrap/factory (.ns(),
  // Duration::millis, ...) or a rate unwrap/factory (.bps(), DataRate::...).
  // The overflow/div/narrowing checks only fire for unit-derived values or
  // provably-bounded constant math — a widened loop counter has neither.
  bool chrono = false;
  bool rate = false;
};

EvalResult unknown_value() { return {}; }
EvalResult known_value(IntInterval iv) { return {iv, true}; }
EvalResult known_value(IntInterval iv, bool chrono, bool rate) {
  EvalResult r{iv, true};
  r.chrono = chrono;
  r.rate = rate;
  return r;
}

struct DefSite {
  std::size_t local = npos;
  std::size_t rhs_begin = 0;
  std::size_t rhs_end = 0;
  bool is_decl = false;
};

/// Chrono/rate factory scale, or 0 when the name is not a factory.
std::int64_t factory_scale(const std::string& owner, const std::string& fn) {
  if (owner == "Duration") {
    if (fn == "nanos") return 1;
    if (fn == "micros") return 1'000;
    if (fn == "millis") return 1'000'000;
    if (fn == "seconds") return 1'000'000'000;
  } else if (owner == "Time") {
    if (fn == "from_ns") return 1;
  } else if (owner == "DataRate") {
    if (fn == "bits_per_second") return 1;
    if (fn == "kilobits_per_second") return 1'000;
    if (fn == "megabits_per_second") return 1'000'000;
    if (fn == "gigabits_per_second") return 1'000'000'000;
    if (fn == "bytes_per_second") return 8;
  }
  return 0;
}

struct IntervalDomain {
  // local index -> interval. Absent = unknown (nothing provable).
  using State = std::map<std::size_t, IntInterval>;

  const std::vector<Token>* toks = nullptr;
  const CallableDataflow* dfc = nullptr;
  std::vector<VKind> kinds;
  std::map<std::size_t, DefSite> def_at;  // def token -> site
  // Static (flow-insensitive) unit taint per local: any def RHS mentions a
  // chrono/rate unwrap, factory, or an already-tainted local.
  std::vector<std::uint8_t> prov_chrono, prov_rate;

  bool reporting = false;
  const SourceFile* file = nullptr;
  std::vector<Finding>* out = nullptr;
  std::set<std::size_t> reported;

  const Token& tok(std::size_t i) const { return (*toks)[i]; }

  State entry_state() const {
    State st;
    for (std::size_t l = 0; l < dfc->locals.size(); ++l) {
      if (!dfc->locals[l].is_param) continue;
      if (kinds[l] == VKind::kRate) st[l] = IntInterval::range(0, kI64Max);
      if (kinds[l] == VKind::kChrono) st[l] = IntInterval::top();
    }
    return st;
  }

  bool join(State* into, const State& s) const {
    bool changed = false;
    for (auto it = into->begin(); it != into->end();) {
      auto f = s.find(it->first);
      if (f == s.end()) {
        it = into->erase(it);
        changed = true;
      } else {
        if (it->second.join(f->second)) changed = true;
        ++it;
      }
    }
    return changed;
  }

  void widen(State* into, const State& prev) const {
    for (auto& [l, iv] : *into) {
      auto p = prev.find(l);
      if (p != prev.end()) iv.widen(p->second);
    }
  }

  void report(const char* rule, std::size_t at, std::string msg,
              std::vector<FixIt> fixits = {}) {
    if (!reporting || !reported.insert(at).second) return;
    Finding f;
    f.rule_id = rule;
    f.file = file->rel_path;
    f.line = tok(at).line;
    f.col = tok(at).col;
    f.message = std::move(msg);
    f.fixits = std::move(fixits);
    out->push_back(std::move(f));
  }

  /// Both ends proven finite — constant math, not a widened guard artifact.
  static bool bounded(const IntInterval& iv) {
    return iv.lo != std::numeric_limits<std::int64_t>::min() &&
           iv.hi != kI64Max;
  }
  static bool unit_tainted(const EvalResult& v) { return v.chrono || v.rate; }
  /// Overflow checks only make sense for unit-derived magnitudes (where the
  /// sentinel/full-range intervals are REAL values) or fully bounded
  /// constant arithmetic. A loop counter widened to [k, INT64_MAX] by a
  /// guard is neither — flagging `i + 1` on it is noise.
  static bool overflow_checkable(const EvalResult& l, const EvalResult& r) {
    return unit_tainted(l) || unit_tainted(r) ||
           (bounded(l.iv) && bounded(r.iv));
  }

  static std::string show(const IntInterval& iv) {
    auto one = [](std::int64_t v) -> std::string {
      if (v == kI64Max) return "INT64_MAX";
      if (v == std::numeric_limits<std::int64_t>::min()) return "INT64_MIN";
      return std::to_string(v);
    };
    return "[" + one(iv.lo) + ", " + one(iv.hi) + "]";
  }

  // -- expression evaluation -----------------------------------------------

  /// Strips balanced wrapping parens in-place.
  void trim(std::size_t* b, std::size_t* e) const {
    while (*b < *e && tok(*b).is_punct("(") && tok(*e - 1).is_punct(")")) {
      int depth = 0;
      bool wraps = true;
      for (std::size_t k = *b; k + 1 < *e; ++k) {
        if (tok(k).is_punct("(")) ++depth;
        if (tok(k).is_punct(")")) {
          --depth;
          if (depth == 0) {
            wraps = false;
            break;
          }
        }
      }
      if (!wraps) return;
      ++*b;
      --*e;
    }
  }

  /// True when the token can end a value (so a following +/- is binary).
  bool ends_value(std::size_t i) const {
    const Token& t = tok(i);
    return t.kind == TokKind::kNumber || is_ident(t) || t.is_punct(")") ||
           t.is_punct("]");
  }

  /// Last depth-0 occurrence of a binary op in `ops`, or npos.
  std::size_t find_binary(std::size_t b, std::size_t e,
                          const std::set<std::string>& ops) const {
    int depth = 0;
    std::size_t found = npos;
    for (std::size_t k = b; k < e; ++k) {
      const Token& t = tok(k);
      if (t.is_punct("(") || t.is_punct("[") || t.is_punct("{")) ++depth;
      if (t.is_punct(")") || t.is_punct("]") || t.is_punct("}")) --depth;
      if (depth != 0 || t.kind != TokKind::kPunct) continue;
      // `<` / `>` here would be comparisons, not handled at this level.
      if (ops.count(t.text) && k > b && ends_value(k - 1)) found = k;
    }
    return found;
  }

  EvalResult eval_number(const std::string& raw) const {
    std::string digits;
    for (const char c : raw) {
      if (c == '\'') continue;
      digits += c;
    }
    if (digits.find('.') != std::string::npos) return unknown_value();
    const bool hex =
        digits.rfind("0x", 0) == 0 || digits.rfind("0X", 0) == 0;
    if (!hex && (digits.find('e') != std::string::npos ||
                 digits.find('E') != std::string::npos)) {
      return unknown_value();  // 1e9 is a double literal
    }
    // strtoll handles 0x...; trailing integer suffixes stop the parse.
    char* endp = nullptr;
    const long long v = std::strtoll(digits.c_str(), &endp, 0);
    if (endp == digits.c_str()) return unknown_value();
    for (; *endp; ++endp) {
      const char c = static_cast<char>(std::tolower(*endp));
      if (c != 'u' && c != 'l' && c != 'z') return unknown_value();
    }
    return known_value(IntInterval::constant(v));
  }

  /// `Owner::factory(arg)` with optional `sim::`/`net::` qualification.
  /// Returns true and fills *r when matched.
  bool eval_factory(std::size_t b, std::size_t e, VKind want,
                    const State* st, EvalResult* r) {
    // Strip namespace qualifiers: `sim :: Duration :: millis(..)`.
    while (b + 1 < e && is_ident(tok(b)) && tok(b + 1).is_punct("::") &&
           b + 3 < e && is_ident(tok(b + 2)) && tok(b + 3).is_punct("::")) {
      b += 2;
    }
    if (b + 3 >= e || !is_ident(tok(b)) || !tok(b + 1).is_punct("::") ||
        !is_ident(tok(b + 2)) || !tok(b + 3).is_punct("(") ||
        !tok(e - 1).is_punct(")")) {
      return false;
    }
    const std::string& owner = tok(b).text;
    const std::string& fn = tok(b + 2).text;
    const bool chrono_owner = owner == "Duration" || owner == "Time";
    const bool rate_owner = owner == "DataRate";
    if (!chrono_owner && !rate_owner) return false;
    if (want == VKind::kChrono && !chrono_owner) return false;
    if (want == VKind::kRate && !rate_owner) return false;
    if (fn == "zero") {
      *r = known_value(IntInterval::constant(0), chrono_owner, rate_owner);
      return true;
    }
    if (fn == "infinite") {
      *r = known_value(IntInterval::constant(kI64Max), chrono_owner,
                       rate_owner);
      return true;
    }
    const std::int64_t scale = factory_scale(owner, fn);
    if (scale == 0) {
      *r = rate_owner ? known_value(IntInterval::range(0, kI64Max), false,
                                    true)
                      : known_value(IntInterval::top(), true, false);
      return true;
    }
    const EvalResult arg = eval_int_st(b + 4, e - 1, st);
    if (!arg.known) {
      *r = rate_owner ? known_value(IntInterval::range(0, kI64Max), false,
                                    true)
                      : unknown_value();
      return true;
    }
    const IntInterval k = IntInterval::constant(scale);
    // The constexpr factories multiply WITHOUT saturating — a too-large
    // argument is UB before any sentinel logic can intervene. Only flag
    // unit-derived or provably-bounded arguments; a counter the solver
    // widened to [k, INT64_MAX] proves nothing about the real value.
    if (scale > 1 && (unit_tainted(arg) || bounded(arg.iv)) &&
        mul_may_overflow(arg.iv, k)) {
      report("units/interval-overflow", b + 2,
             owner + "::" + fn + "() scales by " + std::to_string(scale) +
                 " without saturating; the argument interval " +
                 show(arg.iv) +
                 " can overflow int64 inside the factory. Clamp the "
                 "argument or build from Duration::nanos().");
    }
    *r = known_value(arg.iv.mul(k), chrono_owner, rate_owner);
    return true;
  }

  /// Integer-valued expression: literals, tracked locals, .ns()/.us()/
  /// .ms()/.bps() unwraps, static_cast, saturating_add_ns, + - * / %.
  EvalResult eval_int_st(std::size_t b, std::size_t e, const State* st) {
    trim(&b, &e);
    if (b >= e) return unknown_value();

    const std::size_t addop = find_binary(b, e, {"+", "-"});
    if (addop != npos) {
      const EvalResult l = eval_int_st(b, addop, st);
      const EvalResult r = eval_int_st(addop + 1, e, st);
      if (!l.known || !r.known) return unknown_value();
      const bool prov_c = l.chrono || r.chrono;
      const bool prov_r = l.rate || r.rate;
      if (tok(addop).is_punct("+")) {
        if (overflow_checkable(l, r) && add_may_overflow(l.iv, r.iv)) {
          report("units/interval-overflow", addop,
                 "addition of intervals " + show(l.iv) + " + " + show(r.iv) +
                     " can exceed int64 — this raw + does not saturate. "
                     "Route through sim::detail::saturating_add_ns or the "
                     "Duration/Time operators.");
        }
        return known_value(l.iv.add(r.iv), prov_c, prov_r);
      }
      return known_value(l.iv.sub(r.iv), prov_c, prov_r);
    }

    const std::size_t mulop = find_binary(b, e, {"*", "/", "%"});
    if (mulop != npos) {
      const EvalResult l = eval_int_st(b, mulop, st);
      const EvalResult r = eval_int_st(mulop + 1, e, st);
      const bool prov_c = l.chrono || r.chrono;
      const bool prov_r = l.rate || r.rate;
      if (tok(mulop).is_punct("/") || tok(mulop).is_punct("%")) {
        // Only unit-typed divisors carry the "zero is a valid state"
        // semantics (rate zero = link down, duration zero = unset).
        if (r.known && unit_tainted(r) && r.iv.contains(0)) {
          report("units/div-by-zero-rate", mulop,
                 "divisor interval " + show(r.iv) +
                     " contains zero on some path to this division — a "
                     "zero rate is a valid 'link down' configuration. "
                     "Guard with `> 0` / `!is_zero()` first.");
        }
        if (!l.known || !r.known) return unknown_value();
        return known_value(l.iv.div(r.iv), prov_c, prov_r);
      }
      if (l.known && r.known && overflow_checkable(l, r) &&
          mul_may_overflow(l.iv, r.iv)) {
        report("units/interval-overflow", mulop,
               "multiply of intervals " + show(l.iv) + " * " + show(r.iv) +
                   " can exceed int64 before any saturating wrapper sees "
                   "the product. Divide first, bound the operands, or use "
                   "__int128 and clamp.");
      }
      if (!l.known || !r.known) return unknown_value();
      return known_value(l.iv.mul(r.iv), prov_c, prov_r);
    }

    return eval_int_atom(b, e, st);
  }

  EvalResult eval_int_atom(std::size_t b, std::size_t e, const State* st) {
    if (tok(b).is_punct("-")) {
      const EvalResult r = eval_int_st(b + 1, e, st);
      if (!r.known) return unknown_value();
      return known_value(IntInterval::constant(0).sub(r.iv), r.chrono,
                         r.rate);
    }
    if (tok(b).is_punct("+")) return eval_int_st(b + 1, e, st);

    if (e - b == 1) {
      if (tok(b).kind == TokKind::kNumber) return eval_number(tok(b).text);
      if (is_ident(tok(b))) {
        const std::string& name = tok(b).text;
        if (name == "INT64_MAX") {
          return known_value(IntInterval::constant(kI64Max));
        }
        if (name == "INT64_MIN") {
          return known_value(IntInterval::constant(
              std::numeric_limits<std::int64_t>::min()));
        }
        if (name == "INT32_MAX") {
          return known_value(IntInterval::constant(2147483647));
        }
        if (st != nullptr) {
          const std::size_t l = dfc->find(name);
          if (l != npos && kinds[l] == VKind::kInt) {
            auto it = st->find(l);
            if (it != st->end()) {
              return known_value(it->second, prov_chrono[l] != 0,
                                 prov_rate[l] != 0);
            }
          }
        }
        return unknown_value();
      }
      return unknown_value();
    }

    // `<recv> . ns ( )` / us / ms / bps — unwrap with the type bound.
    if (e - b >= 5 && tok(e - 1).is_punct(")") && tok(e - 2).is_punct("(") &&
        is_ident(tok(e - 3)) &&
        (tok(e - 4).is_punct(".") || tok(e - 4).is_punct("->"))) {
      const std::string& fn = tok(e - 3).text;
      const auto recv_interval = [&](VKind want,
                                     IntInterval fallback) -> IntInterval {
        if (e - 4 - b == 1 && is_ident(tok(b)) && st != nullptr) {
          const std::size_t l = dfc->find(tok(b).text);
          if (l != npos && kinds[l] == want) {
            auto it = st->find(l);
            if (it != st->end()) return it->second;
          }
        }
        return fallback;
      };
      if (fn == "ns") {
        return known_value(recv_interval(VKind::kChrono, IntInterval::top()),
                           true, false);
      }
      if (fn == "us") {
        return known_value(recv_interval(VKind::kChrono, IntInterval::top())
                               .div(IntInterval::constant(1'000)),
                           true, false);
      }
      if (fn == "ms") {
        return known_value(recv_interval(VKind::kChrono, IntInterval::top())
                               .div(IntInterval::constant(1'000'000)),
                           true, false);
      }
      if (fn == "bps") {
        return known_value(
            recv_interval(VKind::kRate, IntInterval::range(0, kI64Max)),
            false, true);
      }
      return unknown_value();
    }

    // static_cast<T>(expr): evaluate the inner expression; the narrowing
    // check happens at the definition that receives the value.
    if (is_ident(tok(b)) && tok(b).text == "static_cast") {
      std::size_t open = b;
      while (open < e && !tok(open).is_punct("(")) ++open;
      if (open < e && tok(e - 1).is_punct(")")) {
        // Lossy float casts make the value unknowable; integer casts
        // pass through.
        std::string cast_type;
        for (std::size_t k = b + 1; k < open; ++k) cast_type += tok(k).text;
        // Lossy float casts make the value unknowable; a cast to __int128
        // widens past int64, so arithmetic ON the cast result cannot
        // overflow int64 — the blessed overflow-safe escape hatch. The
        // inner expression still computes in its own type: evaluate it for
        // its checks, then drop the bound.
        if (cast_type.find("int128") != std::string::npos) {
          eval_int_st(open + 1, e - 1, st);
          return unknown_value();
        }
        if (cast_type.find("double") != std::string::npos ||
            cast_type.find("float") != std::string::npos) {
          return unknown_value();
        }
        return eval_int_st(open + 1, e - 1, st);
      }
      return unknown_value();
    }

    // saturating_add_ns(a, b) — the blessed helper, never flagged.
    {
      std::size_t fb = b;
      while (fb + 1 < e && is_ident(tok(fb)) && tok(fb + 1).is_punct("::")) {
        fb += 2;
      }
      if (fb + 1 < e && is_ident(tok(fb)) &&
          tok(fb).text == "saturating_add_ns" && tok(fb + 1).is_punct("(") &&
          tok(e - 1).is_punct(")")) {
        int depth = 0;
        std::size_t comma = npos;
        for (std::size_t k = fb + 2; k + 1 < e; ++k) {
          if (tok(k).is_punct("(")) ++depth;
          if (tok(k).is_punct(")")) --depth;
          if (depth == 0 && tok(k).is_punct(",")) comma = k;
        }
        if (comma != npos) {
          const EvalResult l = eval_int_st(fb + 2, comma, st);
          const EvalResult r = eval_int_st(comma + 1, e - 1, st);
          if (l.known && r.known) {
            return known_value(l.iv.add(r.iv), true, false);
          }
        }
        return known_value(IntInterval::top(), true, false);
      }
    }
    return unknown_value();
  }

  /// Duration/Time magnitude in ns. Always int64-bounded, so unresolved
  /// forms are the full range (the sentinel is representable).
  EvalResult eval_chrono(std::size_t b, std::size_t e, const State* st) {
    trim(&b, &e);
    if (b >= e) return known_value(IntInterval::top(), true, false);
    const std::size_t addop = find_binary(b, e, {"+", "-"});
    if (addop != npos) {
      // Duration/Time operator+/- saturate — interval add, never flagged.
      const EvalResult l = eval_chrono(b, addop, st);
      const EvalResult r = eval_chrono(addop + 1, e, st);
      return known_value(tok(addop).is_punct("+") ? l.iv.add(r.iv)
                                                  : l.iv.sub(r.iv),
                         true, false);
    }
    EvalResult r;
    if (eval_factory(b, e, VKind::kChrono, st, &r)) {
      return r.known ? r : known_value(IntInterval::top(), true, false);
    }
    if (e - b == 1 && is_ident(tok(b)) && st != nullptr) {
      const std::size_t l = dfc->find(tok(b).text);
      if (l != npos && kinds[l] == VKind::kChrono) {
        auto it = st->find(l);
        if (it != st->end()) return known_value(it->second, true, false);
      }
    }
    return known_value(IntInterval::top(), true, false);
  }

  /// DataRate magnitude in bps; unresolved = [0, INT64_MAX] (possibly
  /// zero until proven otherwise).
  EvalResult eval_rate(std::size_t b, std::size_t e, const State* st) {
    trim(&b, &e);
    EvalResult r;
    if (b < e && eval_factory(b, e, VKind::kRate, st, &r) && r.known) {
      return r;
    }
    if (b < e && e - b == 1 && is_ident(tok(b)) && st != nullptr) {
      const std::size_t l = dfc->find(tok(b).text);
      if (l != npos && kinds[l] == VKind::kRate) {
        auto it = st->find(l);
        if (it != st->end()) {
          return known_value(it->second, false, true);
        }
      }
    }
    return known_value(IntInterval::range(0, kI64Max), false, true);
  }

  // -- transfer ------------------------------------------------------------

  void apply_def(const DefSite& d, std::size_t at, State* st) {
    const Local& local = dfc->locals[d.local];
    const VKind kind = kinds[d.local];
    if (d.rhs_begin >= d.rhs_end) {  // compound / ++ / -- : unknown
      st->erase(d.local);
      return;
    }
    EvalResult v;
    switch (kind) {
      case VKind::kInt:
        v = eval_int_st(d.rhs_begin, d.rhs_end, st);
        break;
      case VKind::kChrono:
        v = eval_chrono(d.rhs_begin, d.rhs_end, st);
        break;
      case VKind::kRate:
        v = eval_rate(d.rhs_begin, d.rhs_end, st);
        break;
      default:
        return;
    }
    if (kind == VKind::kInt && v.known &&
        (unit_tainted(v) || bounded(v.iv))) {
      std::int64_t lo = 0, hi = 0;
      std::string pretty;
      if (narrow_range(local.type_text, &lo, &hi, &pretty) &&
          !v.iv.is_bottom() && (v.iv.lo < lo || v.iv.hi > hi)) {
        std::vector<FixIt> fixes;
        if (d.is_decl) fixes = widen_type_fixit(at);
        report("units/lossy-narrowing", at,
               "value interval " + show(v.iv) + " does not fit " + pretty +
                   " '" + local.name +
                   "' — nanosecond magnitudes wrap a 32-bit int after "
                   "~2.1 s. Keep the std::int64_t.",
               std::move(fixes));
      }
    }
    if (v.known) {
      (*st)[d.local] = v.iv;
    } else {
      st->erase(d.local);
    }
  }

  /// Fix-it replacing the narrow type token just before the declared name.
  std::vector<FixIt> widen_type_fixit(std::size_t name_tok) const {
    static const std::set<std::string> kNarrow = {
        "int",      "int32_t",  "uint32_t", "short",
        "int16_t",  "uint16_t", "unsigned", "float"};
    const std::size_t lo = name_tok > 6 ? name_tok - 6 : 0;
    for (std::size_t k = name_tok; k-- > lo;) {
      if (is_ident(tok(k)) && kNarrow.count(tok(k).text)) {
        FixIt fix;
        fix.description = "widen to std::int64_t";
        fix.line = tok(k).line;
        fix.col = tok(k).col;
        fix.end_line = tok(k).line;
        fix.end_col = tok(k).col + static_cast<int>(tok(k).text.size());
        fix.replacement = "std::int64_t";
        return {fix};
      }
    }
    return {};
  }

  void transfer_stmt(const CfgStmt& s, State* st) {
    for (std::size_t i = s.begin; i < s.end; ++i) {
      auto d = def_at.find(i);
      if (d != def_at.end()) apply_def(d->second, i, st);
    }
  }

  // -- conditions ----------------------------------------------------------

  /// The local a comparison side refines, if any: a bare tracked name, or
  /// `name.ns()` / `name.bps()`.
  std::size_t refine_target(std::size_t b, std::size_t e) const {
    if (e - b == 1 && is_ident(tok(b))) {
      const std::size_t l = dfc->find(tok(b).text);
      if (l != npos && kinds[l] != VKind::kNone) return l;
      return npos;
    }
    if (e - b == 5 && is_ident(tok(b)) &&
        (tok(b + 1).is_punct(".") || tok(b + 1).is_punct("->")) &&
        is_ident(tok(b + 2)) && tok(b + 3).is_punct("(") &&
        tok(b + 4).is_punct(")")) {
      const std::string& fn = tok(b + 2).text;
      const std::size_t l = dfc->find(tok(b).text);
      if (l == npos) return npos;
      if (fn == "ns" && kinds[l] == VKind::kChrono) return l;
      if (fn == "bps" && kinds[l] == VKind::kRate) return l;
    }
    return npos;
  }

  IntInterval default_interval(VKind k) const {
    if (k == VKind::kRate) return IntInterval::range(0, kI64Max);
    return IntInterval::top();
  }

  void refine(std::size_t l, const std::string& op, const IntInterval& rhs,
              State* st) const {
    auto it = st->find(l);
    IntInterval cur =
        it != st->end() ? it->second : default_interval(kinds[l]);
    IntInterval next = cur;
    if (op == "<") next = cur.refine_lt(rhs.hi);
    else if (op == "<=") next = cur.refine_le(rhs.hi);
    else if (op == ">") next = cur.refine_gt(rhs.lo);
    else if (op == ">=") next = cur.refine_ge(rhs.lo);
    else if (op == "==") {
      if (rhs.lo == rhs.hi) next = cur.refine_eq(rhs.lo);
    } else if (op == "!=") {
      if (rhs.lo == rhs.hi) next = cur.refine_ne(rhs.lo);
    }
    (*st)[l] = next;
  }

  static std::string negate_op(const std::string& op) {
    if (op == "<") return ">=";
    if (op == "<=") return ">";
    if (op == ">") return "<=";
    if (op == ">=") return "<";
    if (op == "==") return "!=";
    return "==";
  }
  static std::string mirror_op(const std::string& op) {
    if (op == "<") return ">";
    if (op == "<=") return ">=";
    if (op == ">") return "<";
    if (op == ">=") return "<=";
    return op;
  }

  void transfer_cond(const CfgStmt& s, bool branch_true, State* st) {
    std::size_t b = s.begin, e = s.end;
    trim(&b, &e);
    if (b >= e) return;
    // `!cond` flips which branch the refinement lands on.
    while (b < e && tok(b).is_punct("!") &&
           !(b + 1 < e && tok(b + 1).is_punct("="))) {
      branch_true = !branch_true;
      ++b;
      trim(&b, &e);
    }
    if (b >= e) return;

    // `name.is_zero()` — refine the receiver to/away from zero.
    if (e - b == 5 && is_ident(tok(b)) &&
        (tok(b + 1).is_punct(".") || tok(b + 1).is_punct("->")) &&
        is_ident(tok(b + 2)) && tok(b + 2).text == "is_zero" &&
        tok(b + 3).is_punct("(") && tok(b + 4).is_punct(")")) {
      const std::size_t l = dfc->find(tok(b).text);
      if (l != npos && kinds[l] != VKind::kNone) {
        refine(l, branch_true ? "==" : "!=", IntInterval::constant(0), st);
      }
      return;
    }
    // Bare tracked name in boolean context.
    if (e - b == 1 && is_ident(tok(b))) {
      const std::size_t l = dfc->find(tok(b).text);
      if (l != npos && kinds[l] == VKind::kInt) {
        refine(l, branch_true ? "!=" : "==", IntInterval::constant(0), st);
      }
      return;
    }

    // Comparison: lhs OP rhs, relationals arriving as 1–2 punct tokens.
    int depth = 0;
    for (std::size_t k = b; k < e; ++k) {
      const Token& t = tok(k);
      if (t.is_punct("(") || t.is_punct("[")) ++depth;
      if (t.is_punct(")") || t.is_punct("]")) --depth;
      if (depth != 0 || t.kind != TokKind::kPunct) continue;
      std::string op;
      std::size_t rhs_b = k + 1;
      const bool next_eq = k + 1 < e && tok(k + 1).is_punct("=");
      if (t.text == "<" || t.text == ">") {
        op = t.text;
        if (next_eq) {
          op += "=";
          rhs_b = k + 2;
        }
      } else if ((t.text == "=" || t.text == "!") && next_eq) {
        op = t.text == "=" ? "==" : "!=";
        rhs_b = k + 2;
      } else {
        continue;
      }

      const std::string eff = branch_true ? op : negate_op(op);
      const std::size_t lhs_l = refine_target(b, k);
      if (lhs_l != npos) {
        const EvalResult rhs = eval_for_kind(lhs_l, b, k, rhs_b, e, st);
        if (rhs.known) refine(lhs_l, eff, rhs.iv, st);
        return;
      }
      const std::size_t rhs_l = refine_target(rhs_b, e);
      if (rhs_l != npos) {
        const EvalResult lhs = eval_for_kind(rhs_l, rhs_b, e, b, k, st);
        if (lhs.known) refine(rhs_l, mirror_op(eff), lhs.iv, st);
      }
      return;
    }
  }

  /// Evaluate the comparison's other side in the refined local's domain:
  /// bare chrono locals compare against Duration expressions, `.ns()`
  /// unwraps and plain ints against integer expressions.
  EvalResult eval_for_kind(std::size_t l, std::size_t lhs_b,
                           std::size_t lhs_e, std::size_t b, std::size_t e,
                           const State* st) {
    const bool bare = lhs_e - lhs_b == 1;
    switch (kinds[l]) {
      case VKind::kChrono:
        return bare ? eval_chrono(b, e, st) : eval_int_st(b, e, st);
      case VKind::kRate:
        return bare ? eval_rate(b, e, st) : eval_int_st(b, e, st);
      default:
        return eval_int_st(b, e, st);
    }
  }

  /// Replay hook for condition expressions: run the checks (div-by-zero
  /// inside a condition) exactly once per cond block.
  void check_cond_expr(const CfgStmt& s, const State* st) {
    std::size_t b = s.begin, e = s.end;
    trim(&b, &e);
    if (b < e) eval_int_st(b, e, st);
  }
};

VKind classify(const Local& local) {
  const std::string& t = local.type_text;
  if (t.find('*') != std::string::npos) return VKind::kNone;
  if (word_in(t, "DataRate")) return VKind::kRate;
  if (word_in(t, "Duration") || word_in(t, "Time")) return VKind::kChrono;
  if (word_in(t, "double") || word_in(t, "bool") || word_in(t, "char")) {
    return VKind::kNone;
  }
  if (word_in(t, "int64_t") || word_in(t, "uint64_t") || word_in(t, "int") ||
      word_in(t, "int32_t") || word_in(t, "uint32_t") ||
      word_in(t, "size_t") || word_in(t, "long") || word_in(t, "short") ||
      word_in(t, "int16_t") || word_in(t, "uint16_t") ||
      word_in(t, "unsigned") || word_in(t, "float")) {
    return VKind::kInt;
  }
  return VKind::kNone;
}

/// `auto` declarations take their kind from the initializer's leading
/// factory tokens, defaulting to plain int tracking.
VKind classify_auto(const Local& local, const std::vector<Token>& toks) {
  if (local.defs.empty()) return VKind::kNone;
  std::size_t b = local.defs.front().rhs_begin;
  const std::size_t e = local.defs.front().rhs_end;
  while (b + 1 < e && is_ident(toks[b]) && toks[b + 1].is_punct("::") &&
         (toks[b].text == "sim" || toks[b].text == "net" ||
          toks[b].text == "quicsteps")) {
    b += 2;
  }
  if (b < e && is_ident(toks[b])) {
    if (toks[b].text == "Duration" || toks[b].text == "Time") {
      return VKind::kChrono;
    }
    if (toks[b].text == "DataRate") return VKind::kRate;
  }
  return VKind::kInt;
}

/// Flow-insensitive unit taint: a plain-int local is chrono-derived (resp.
/// rate-derived) when any def RHS mentions a chrono unwrap / factory /
/// chrono local (resp. the rate equivalents), transitively through other
/// int locals. Compound defs (`x += ...`) record an empty RHS, so their
/// statement tail up to `;` is scanned instead.
void compute_unit_taint(const CallableDataflow& dfc,
                        const std::vector<VKind>& kinds,
                        const std::vector<Token>& toks,
                        std::vector<std::uint8_t>* chrono,
                        std::vector<std::uint8_t>* rate) {
  chrono->assign(dfc.locals.size(), 0);
  rate->assign(dfc.locals.size(), 0);
  const auto scan = [&](std::size_t b, std::size_t e, std::uint8_t* c,
                        std::uint8_t* r) {
    for (std::size_t i = b; i < e && i < toks.size(); ++i) {
      const Token& t = toks[i];
      if ((t.is_punct(".") || t.is_punct("->")) && i + 2 < e &&
          toks[i + 1].kind == TokKind::kIdentifier &&
          toks[i + 2].is_punct("(")) {
        const std::string& fn = toks[i + 1].text;
        if (fn == "ns" || fn == "us" || fn == "ms") *c = 1;
        if (fn == "bps") *r = 1;
      }
      if (t.kind != TokKind::kIdentifier) continue;
      if (t.text == "Duration" || t.text == "Time" ||
          t.text == "saturating_add_ns") {
        *c = 1;
      }
      if (t.text == "DataRate") *r = 1;
      const std::size_t l2 = dfc.find(t.text);
      if (l2 == npos) continue;
      if (kinds[l2] == VKind::kChrono || (*chrono)[l2]) *c = 1;
      if (kinds[l2] == VKind::kRate || (*rate)[l2]) *r = 1;
    }
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t l = 0; l < dfc.locals.size(); ++l) {
      if (kinds[l] != VKind::kInt) continue;
      std::uint8_t c = (*chrono)[l], r = (*rate)[l];
      for (const Def& d : dfc.locals[l].defs) {
        std::size_t b = d.rhs_begin, e = d.rhs_end;
        if (b >= e) {  // compound / ++ / -- : scan to end of statement
          b = d.tok + 1;
          e = b;
          int depth = 0;
          while (e < toks.size() && e < b + 64) {
            const Token& t = toks[e];
            if (t.is_punct("(") || t.is_punct("[")) ++depth;
            if (t.is_punct(")") || t.is_punct("]")) --depth;
            if (depth <= 0 && (t.is_punct(";") || t.is_punct("{") ||
                               t.is_punct("}"))) {
              break;
            }
            ++e;
          }
        }
        scan(b, e, &c, &r);
      }
      if (c != (*chrono)[l] || r != (*rate)[l]) {
        (*chrono)[l] = c;
        (*rate)[l] = r;
        changed = true;
      }
    }
  }
}

}  // namespace

void run_interval_rules(const Model& model, const SemanticModel& sem,
                        std::vector<Finding>* out) {
  if (sem.cfgs == nullptr || sem.flow == nullptr || sem.index == nullptr) {
    return;
  }
  for (const Cfg& cfg : sem.cfgs->cfgs) {
    const Symbol& sym = sem.index->symbols[cfg.symbol];
    const CallableDataflow* dfc = sem.flow->for_symbol(cfg.symbol);
    if (dfc == nullptr || sym.file >= model.files.size()) continue;
    const SourceFile& sf = model.files[sym.file];

    IntervalDomain dom;
    dom.toks = &sf.lex.tokens;
    dom.dfc = dfc;
    dom.file = &sf;
    dom.out = out;
    dom.kinds.resize(dfc->locals.size(), VKind::kNone);
    bool any = false;
    for (std::size_t l = 0; l < dfc->locals.size(); ++l) {
      const Local& local = dfc->locals[l];
      dom.kinds[l] = word_in(local.type_text, "auto")
                         ? classify_auto(local, sf.lex.tokens)
                         : classify(local);
      if (dom.kinds[l] != VKind::kNone) any = true;
      if (dom.kinds[l] == VKind::kNone) continue;
      for (const Def& d : local.defs) {
        DefSite site;
        site.local = l;
        site.rhs_begin = d.rhs_begin;
        site.rhs_end = d.rhs_end;
        site.is_decl = d.tok == local.decl_tok;
        dom.def_at[d.tok] = site;
      }
    }
    if (!any) continue;
    compute_unit_taint(*dfc, dom.kinds, sf.lex.tokens, &dom.prov_chrono,
                       &dom.prov_rate);

    auto solved = solve_absint(cfg, dom);
    dom.reporting = true;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!solved.reachable[b]) continue;
      IntervalDomain::State st = solved.in[b];
      const CfgBlock& block = cfg.blocks[b];
      if (block.is_cond) {
        if (!block.stmts.empty()) {
          dom.check_cond_expr(block.stmts.front(), &st);
        }
        continue;
      }
      for (const CfgStmt& s : block.stmts) dom.transfer_stmt(s, &st);
    }
  }
}

}  // namespace quicsteps::analyze
