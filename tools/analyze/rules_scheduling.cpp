// Scheduling hygiene: a lambda handed to EventLoop::schedule_at /
// schedule_after outlives the current stack frame by construction — the
// loop runs it later. Capturing locals by reference is therefore a
// dangling-callback bug waiting for a reordering; capture by value (or a
// pointer/this) instead. This is a heuristic: code where the referent
// provably outlives the loop can baseline the finding.
#include "rule.hpp"

namespace quicsteps::analyze {

namespace {

bool match_paren(const std::vector<Token>& toks, std::size_t open,
                 std::size_t* close) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].is_punct("(")) ++depth;
    if (toks[i].is_punct(")")) {
      --depth;
      if (depth == 0) {
        *close = i;
        return true;
      }
    }
  }
  return false;
}

bool match_bracket(const std::vector<Token>& toks, std::size_t open,
                   std::size_t* close) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].is_punct("[")) ++depth;
    if (toks[i].is_punct("]")) {
      --depth;
      if (depth == 0) {
        *close = i;
        return true;
      }
    }
  }
  return false;
}

}  // namespace

void run_scheduling_rules(const Model& model, std::vector<Finding>* out) {
  for (const auto& f : model.files) {
    const auto& toks = f.lex.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (!(toks[i].is_id("schedule_at") || toks[i].is_id("schedule_after")))
        continue;
      if (i + 1 >= toks.size() || !toks[i + 1].is_punct("(")) continue;
      std::size_t args_end = 0;
      if (!match_paren(toks, i + 1, &args_end)) continue;

      for (std::size_t j = i + 2; j < args_end; ++j) {
        if (!toks[j].is_punct("[")) continue;
        std::size_t cap_end = 0;
        if (!match_bracket(toks, j, &cap_end) || cap_end >= args_end) break;
        // Lambda introducer iff the bracket is followed by a parameter
        // list or body; a subscript like flows[1] is followed by ., =, etc.
        const bool is_lambda =
            cap_end + 1 < toks.size() && (toks[cap_end + 1].is_punct("(") ||
                                          toks[cap_end + 1].is_punct("{"));
        if (is_lambda) {
          for (std::size_t k = j + 1; k < cap_end; ++k) {
            if (toks[k].is_punct("&")) {
              out->push_back(
                  {"scheduling/ref-capture", f.rel_path, toks[k].line,
                   toks[k].col,
                   "lambda passed to " + toks[i].text +
                       " captures by reference; the callback runs after "
                       "this frame returns — capture by value or pointer",
                   false,
                   {}});
              break;
            }
          }
        }
        j = cap_end;  // skip past this bracket group either way
      }
    }
  }
}

}  // namespace quicsteps::analyze
