// lifetime/* — flow-sensitive slab-handle invalidation.
//
// The runtime half of this contract lives in net/packet_slab.hpp: every
// PacketRef carries a generation tag and QUICSTEPS_AUDIT builds abort on a
// stale deref. This file is the static twin. A reference or pointer local
// initialized from a borrow method of a generation-checked container
// (manifest `generation_checked`, e.g. PacketSlab::peek) is tracked
// through the callable's CFG with a three-point lattice
//
//   kNone < kBorrowed < kDead
//
// joined pointwise (max) at merges. A call to an invalidate method on the
// same container object kills the borrow (kDead); so does a call to a
// free function that transitively reaches an invalidate method (call-graph
// closure) while a matching container is in scope. Any later read of a
// dead handle is lifetime/use-after-recycle on that path.
//
// lifetime/ref-escape is the deferred variant: a live borrow named inside
// a lambda that is handed to a scheduling entry point (schedule_*, or
// assigned into a std::function) outlives the statement, and slots may
// recycle before the callback runs.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "absint.hpp"
#include "callgraph.hpp"
#include "cfg.hpp"
#include "dataflow.hpp"
#include "rule.hpp"
#include "symbols.hpp"

namespace quicsteps::analyze {

namespace {

constexpr std::size_t npos = static_cast<std::size_t>(-1);

bool is_ident(const Token& t) { return t.kind == TokKind::kIdentifier; }

/// Whole-word match of `type` inside a joined type_text ("net::PacketSlab&"
/// mentions "PacketSlab"; "PacketSlabPool" does not).
bool type_mentions(const std::string& text, const std::string& type) {
  std::size_t at = 0;
  while ((at = text.find(type, at)) != std::string::npos) {
    const bool l_ok =
        at == 0 || (!std::isalnum(static_cast<unsigned char>(text[at - 1])) &&
                    text[at - 1] != '_');
    const std::size_t after = at + type.size();
    const bool r_ok = after >= text.size() ||
                      (!std::isalnum(static_cast<unsigned char>(text[after])) &&
                       text[after] != '_');
    if (l_ok && r_ok) return true;
    at = after;
  }
  return false;
}

bool is_ref_or_ptr(const std::string& type_text) {
  return type_text.find('&') != std::string::npos ||
         type_text.find('*') != std::string::npos;
}

bool in_list(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

/// Names of the deferral sinks a lambda can escape into. Matches the
/// EventLoop surface; assignment into a std::function local is handled
/// separately.
bool deferred_sink(const std::string& name) {
  return name.rfind("schedule", 0) == 0 || name == "post_drain_at" ||
         name == "defer" || name == "async";
}

enum : std::uint8_t { kNone = 0, kBorrowed = 1, kDead = 2 };

struct BorrowAt {
  std::size_t local = npos;
  std::string container;  // receiver spelling at the borrow site
};

/// Per-callable analysis context + the absint Domain.
struct LifetimeDomain {
  using State = std::vector<std::uint8_t>;  // per local, kNone/kBorrowed/kDead

  const std::vector<Token>* toks = nullptr;
  const CallableDataflow* dfc = nullptr;
  // def token -> borrow binding (RHS calls container.borrow(...)).
  std::map<std::size_t, BorrowAt> borrow_defs;
  // def token -> local reset to kNone (reassigned from a non-borrow RHS).
  std::map<std::size_t, std::size_t> plain_defs;
  // Container spelling each local last borrowed from (message + matching).
  std::vector<std::string> container_of;
  // Locals (by index) whose spelling names a generation-checked container.
  std::set<std::string> slab_names;
  // Free-function call sites (token of the name) that transitively reach
  // an invalidate method; kills every live borrow.
  std::set<std::size_t> killer_sites;
  // invalidate-method names per manifest, flattened.
  std::set<std::string> invalidate_names;

  bool reporting = false;
  const SourceFile* file = nullptr;
  std::vector<Finding>* out = nullptr;
  std::set<std::size_t> reported;  // token -> already reported

  State entry_state() const {
    return State(dfc->locals.size(), kNone);
  }
  bool join(State* into, const State& s) const {
    bool changed = false;
    for (std::size_t i = 0; i < into->size() && i < s.size(); ++i) {
      if (s[i] > (*into)[i]) {
        (*into)[i] = s[i];
        changed = true;
      }
    }
    return changed;
  }
  void widen(State*, const State&) const {}  // finite lattice

  const Token& tok(std::size_t i) const { return (*toks)[i]; }

  void report(const char* rule, std::size_t at, std::string msg) {
    if (!reporting || !reported.insert(at).second) return;
    Finding f;
    f.rule_id = rule;
    f.file = file->rel_path;
    f.line = tok(at).line;
    f.col = tok(at).col;
    f.message = std::move(msg);
    out->push_back(std::move(f));
  }

  /// A bare (non-member-qualified) mention of a tracked local.
  bool bare_mention(std::size_t i, std::size_t begin) const {
    if (!is_ident(tok(i))) return false;
    if (i > begin && (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->") ||
                      tok(i - 1).is_punct("::"))) {
      return false;
    }
    return true;
  }

  void transfer_range(std::size_t begin, std::size_t end, State* st) {
    for (std::size_t i = begin; i < end; ++i) {
      // Borrow / reassignment defs recorded up front.
      auto b = borrow_defs.find(i);
      if (b != borrow_defs.end()) {
        (*st)[b->second.local] = kBorrowed;
        container_of[b->second.local] = b->second.container;
        continue;
      }
      auto p = plain_defs.find(i);
      if (p != plain_defs.end()) {
        (*st)[p->second] = kNone;
        continue;
      }
      if (!bare_mention(i, begin)) continue;
      const std::string& name = tok(i).text;
      // Invalidate call on a container object: `slab.put(..)`,
      // `slab_->take(..)`. Kills borrows from the same spelling.
      if (i + 3 < end &&
          (tok(i + 1).is_punct(".") || tok(i + 1).is_punct("->")) &&
          is_ident(tok(i + 2)) && invalidate_names.count(tok(i + 2).text) &&
          i + 3 < (*toks).size() && tok(i + 3).is_punct("(")) {
        for (std::size_t l = 0; l < st->size(); ++l) {
          if ((*st)[l] == kBorrowed && container_of[l] == name) {
            (*st)[l] = kDead;
          }
        }
        continue;
      }
      // Interprocedural kill: free-function call that reaches put/take.
      if (killer_sites.count(i)) {
        for (auto& s : *st) {
          if (s == kBorrowed) s = kDead;
        }
        continue;
      }
      // Use of a tracked local.
      const std::size_t l = dfc->find(name);
      if (l == npos || l >= st->size()) continue;
      if ((*st)[l] == kDead) {
        report("lifetime/use-after-recycle", i,
               "'" + name + "' borrows from generation-checked container '" +
                   container_of[l] +
                   "', and a path to here calls an allocate/recycle method "
                   "after the borrow — the slot may have been reused. "
                   "Re-borrow after the mutation or copy the value out "
                   "first.");
      }
    }
  }

  void transfer_stmt(const CfgStmt& s, State* st) {
    transfer_range(s.begin, s.end, st);
  }
  void transfer_cond(const CfgStmt& s, bool, State* st) {
    transfer_range(s.begin, s.end, st);
  }
};

}  // namespace

void run_lifetime_rules(const Model& model, const LayerManifest& manifest,
                        const SemanticModel& sem, std::vector<Finding>* out) {
  if (manifest.generation_checked.empty() || sem.cfgs == nullptr ||
      sem.flow == nullptr || sem.index == nullptr) {
    return;
  }
  const SymbolIndex& index = *sem.index;

  std::set<std::string> invalidate_names, borrow_names;
  for (const auto& gc : manifest.generation_checked) {
    for (const auto& m : gc.invalidate) invalidate_names.insert(m);
    for (const auto& m : gc.borrow) borrow_names.insert(m);
  }

  // Call-graph closure: callables that may allocate/recycle. Seeds are the
  // invalidate methods themselves (matched by name + owning type in the
  // qualified name); the tag propagates callee -> caller to a fixpoint.
  std::vector<bool> may_invalidate(index.symbols.size(), false);
  for (std::size_t s = 0; s < index.symbols.size(); ++s) {
    const Symbol& sym = index.symbols[s];
    if (!sym.is_callable()) continue;
    for (const auto& gc : manifest.generation_checked) {
      if (in_list(gc.invalidate, sym.name) &&
          type_mentions(sym.qual_name, gc.type)) {
        may_invalidate[s] = true;
      }
    }
  }
  if (sem.graph != nullptr) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const CallSite& site : sem.graph->sites) {
        if (site.caller == npos || may_invalidate[site.caller]) continue;
        for (const std::size_t callee : site.callees) {
          if (may_invalidate[callee]) {
            may_invalidate[site.caller] = true;
            changed = true;
            break;
          }
        }
      }
    }
  }

  for (const Cfg& cfg : sem.cfgs->cfgs) {
    const Symbol& sym = index.symbols[cfg.symbol];
    const CallableDataflow* dfc = sem.flow->for_symbol(cfg.symbol);
    if (dfc == nullptr || sym.file >= model.files.size()) continue;
    const SourceFile& sf = model.files[sym.file];
    const std::vector<Token>& toks = sf.lex.tokens;

    // Resolve the declared type of a receiver spelling: a local first,
    // then a field/global with that name (same file preferred).
    auto receiver_type = [&](const std::string& name) -> std::string {
      const std::size_t l = dfc->find(name);
      if (l != npos) return dfc->locals[l].type_text;
      std::string any;
      for (const Symbol& v : index.symbols) {
        if (v.kind != Symbol::Kind::kField &&
            v.kind != Symbol::Kind::kGlobal) {
          continue;
        }
        if (v.name != name) continue;
        if (v.file == sym.file) return v.type_text;
        if (any.empty()) any = v.type_text;
      }
      return any;
    };
    auto is_slab = [&](const std::string& name) {
      const std::string t = receiver_type(name);
      for (const auto& gc : manifest.generation_checked) {
        if (type_mentions(t, gc.type)) return true;
      }
      return false;
    };

    LifetimeDomain dom;
    dom.toks = &toks;
    dom.dfc = dfc;
    dom.file = &sf;
    dom.out = out;
    dom.invalidate_names = invalidate_names;
    dom.container_of.assign(dfc->locals.size(), "");

    // Pre-scan defs: which ones bind a borrow, which reset the local.
    bool any_borrow = false;
    for (std::size_t l = 0; l < dfc->locals.size(); ++l) {
      const Local& local = dfc->locals[l];
      if (!is_ref_or_ptr(local.type_text)) continue;
      for (const Def& d : local.defs) {
        BorrowAt ba;
        for (std::size_t k = d.rhs_begin;
             k + 3 < d.rhs_end && k + 3 < toks.size(); ++k) {
          if (is_ident(toks[k]) &&
              (toks[k + 1].is_punct(".") || toks[k + 1].is_punct("->")) &&
              is_ident(toks[k + 2]) && borrow_names.count(toks[k + 2].text) &&
              toks[k + 3].is_punct("(") && is_slab(toks[k].text)) {
            ba.local = l;
            ba.container = toks[k].text;
            break;
          }
        }
        if (ba.local != npos) {
          dom.borrow_defs[d.tok] = ba;
          any_borrow = true;
        } else {
          dom.plain_defs[d.tok] = l;
        }
      }
    }
    if (!any_borrow) continue;  // nothing to track in this callable

    // Free-function call sites reaching an invalidate method, with a
    // container spelling in their argument list (passing the slab along).
    if (sem.graph != nullptr) {
      for (const CallSite& site : sem.graph->sites) {
        if (site.caller != cfg.symbol) continue;
        if (site.tok > 0 && (toks[site.tok - 1].is_punct(".") ||
                             toks[site.tok - 1].is_punct("->"))) {
          continue;  // member calls are handled by receiver matching
        }
        bool reaches = false;
        for (const std::size_t callee : site.callees) {
          if (may_invalidate[callee]) reaches = true;
        }
        if (!reaches) continue;
        for (std::size_t a = site.args_begin; a < site.args_end; ++a) {
          if (is_ident(toks[a]) && is_slab(toks[a].text)) {
            dom.killer_sites.insert(site.tok);
            break;
          }
        }
      }
    }

    // Solve silently, then replay each reachable block once to report.
    auto solved = solve_absint(cfg, dom);
    dom.reporting = true;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      if (!solved.reachable[b]) continue;
      LifetimeDomain::State st = solved.in[b];
      for (const CfgStmt& s : cfg.blocks[b].stmts) {
        dom.transfer_range(s.begin, s.end, &st);
        // Escape check: a live borrow named inside a deferred lambda that
        // starts in this statement.
        for (std::size_t lam = 0; lam < index.symbols.size(); ++lam) {
          const Symbol& ls = index.symbols[lam];
          if (ls.kind != Symbol::Kind::kLambda || ls.parent != cfg.symbol) {
            continue;
          }
          if (ls.cap_begin < s.begin || ls.cap_begin >= s.end) continue;
          // Deferred? Argument of a schedule-like call, or assigned into a
          // std::function-typed local.
          bool deferred = false;
          if (ls.cap_begin >= 2 && (toks[ls.cap_begin - 1].is_punct("(") ||
                                    toks[ls.cap_begin - 1].is_punct(","))) {
            int depth = 0;
            for (std::size_t k = ls.cap_begin - 1; k > s.begin; --k) {
              if (toks[k].is_punct(")")) ++depth;
              if (toks[k].is_punct("(")) {
                if (depth == 0) {
                  if (is_ident(toks[k - 1]) && deferred_sink(toks[k - 1].text)) {
                    deferred = true;
                  }
                  break;
                }
                --depth;
              }
            }
          } else if (ls.cap_begin >= 1 && toks[ls.cap_begin - 1].is_punct("=")) {
            for (const auto& [dtok, l] : dom.plain_defs) {
              if (dtok + 2 == ls.cap_begin &&
                  dfc->locals[l].type_text.find("function") !=
                      std::string::npos) {
                deferred = true;
              }
            }
          }
          if (!deferred) continue;
          const std::size_t lam_end =
              ls.body_end < toks.size() ? ls.body_end : toks.size();
          for (std::size_t k = ls.cap_begin; k < lam_end; ++k) {
            if (!is_ident(toks[k])) continue;
            if (k > 0 && (toks[k - 1].is_punct(".") ||
                          toks[k - 1].is_punct("->") ||
                          toks[k - 1].is_punct("::"))) {
              continue;
            }
            const std::size_t l = dfc->find(toks[k].text);
            if (l == npos || l >= st.size()) continue;
            if (st[l] == kBorrowed || st[l] == kDead) {
              dom.report(
                  "lifetime/ref-escape", k,
                  "'" + toks[k].text +
                      "' borrows from generation-checked container '" +
                      dom.container_of[l] +
                      "' and escapes into a deferred callback — slots may "
                      "recycle before it runs. Capture the ref/ticket and "
                      "re-borrow inside the callback.");
            }
          }
        }
      }
    }
  }
}

}  // namespace quicsteps::analyze
