// Layering rules: the architecture DAG is data (tools/analyze/layers.json),
// and every quoted #include is checked against it. An upward include (sim/
// reaching into framework/) or an include cycle is how "implementation
// drift" starts; both are rejected at lint time instead of being
// discovered as an unexplainable figure later.
#include <algorithm>

#include "json.hpp"
#include "rule.hpp"

namespace quicsteps::analyze {

bool load_layer_manifest(const std::string& json_text, LayerManifest* out,
                         std::string* error) {
  std::string parse_error;
  auto doc = parse_json(json_text, &parse_error);
  if (!doc) {
    *error = "layers.json: " + parse_error;
    return false;
  }
  const JsonValue* layers = doc->find("layers");
  if (layers == nullptr || !layers->is_object()) {
    *error = "layers.json: missing \"layers\" object";
    return false;
  }
  for (const auto& [name, deps] : layers->object) {
    if (!deps.is_array()) {
      *error = "layers.json: layer \"" + name + "\" must map to an array";
      return false;
    }
    std::vector<std::string> dep_names;
    for (const auto& d : deps.array) {
      if (!d.is_string()) {
        *error = "layers.json: layer \"" + name + "\" has a non-string dep";
        return false;
      }
      dep_names.push_back(d.str);
    }
    out->allow.emplace_back(name, std::move(dep_names));
  }
  if (const JsonValue* universal = doc->find("universal")) {
    if (!universal->is_array()) {
      *error = "layers.json: \"universal\" must be an array";
      return false;
    }
    for (const auto& u : universal->array) {
      if (!u.is_string() || !out->declared(u.str)) {
        *error = "layers.json: universal layer \"" +
                 (u.is_string() ? u.str : std::string("?")) +
                 "\" is not declared under \"layers\"";
        return false;
      }
      out->universal.push_back(u.str);
    }
  }

  if (const JsonValue* hot = doc->find("hot_path")) {
    if (!hot->is_array()) {
      *error = "layers.json: \"hot_path\" must be an array";
      return false;
    }
    for (const auto& h : hot->array) {
      if (!h.is_string()) {
        *error = "layers.json: \"hot_path\" has a non-string entry";
        return false;
      }
      out->hot_path.push_back(h.str);
    }
  }

  if (const JsonValue* entries = doc->find("parallel_entries")) {
    if (!entries->is_array()) {
      *error = "layers.json: \"parallel_entries\" must be an array";
      return false;
    }
    for (const auto& e : entries->array) {
      if (!e.is_string()) {
        *error = "layers.json: \"parallel_entries\" has a non-string entry";
        return false;
      }
      out->parallel_entries.push_back(e.str);
    }
  } else {
    out->parallel_entries.push_back("parallel_for");
  }

  if (const JsonValue* gen = doc->find("generation_checked")) {
    if (!gen->is_array()) {
      *error = "layers.json: \"generation_checked\" must be an array";
      return false;
    }
    for (const auto& entry : gen->array) {
      const JsonValue* type = entry.find("type");
      if (!entry.is_object() || type == nullptr || !type->is_string()) {
        *error =
            "layers.json: generation_checked entries need a \"type\" string";
        return false;
      }
      GenerationChecked gc;
      gc.type = type->str;
      auto read_names = [&](const char* key, std::vector<std::string>* dst) {
        const JsonValue* arr = entry.find(key);
        if (arr == nullptr) return true;
        if (!arr->is_array()) return false;
        for (const auto& n : arr->array) {
          if (!n.is_string()) return false;
          dst->push_back(n.str);
        }
        return true;
      };
      if (!read_names("borrow", &gc.borrow) ||
          !read_names("invalidate", &gc.invalidate)) {
        *error = "layers.json: generation_checked \"" + gc.type +
                 "\" has a malformed borrow/invalidate list";
        return false;
      }
      out->generation_checked.push_back(std::move(gc));
    }
  }

  if (const JsonValue* ts = doc->find("typestate")) {
    if (!ts->is_array()) {
      *error = "layers.json: \"typestate\" must be an array";
      return false;
    }
    for (const auto& entry : ts->array) {
      TypestateProtocol proto;
      const JsonValue* name = entry.find("name");
      const JsonValue* type = entry.find("type");
      const JsonValue* start = entry.find("start");
      if (!entry.is_object() || name == nullptr || !name->is_string() ||
          type == nullptr || !type->is_string() || start == nullptr ||
          !start->is_string()) {
        *error =
            "layers.json: typestate entries need \"name\", \"type\" and "
            "\"start\" strings";
        return false;
      }
      proto.name = name->str;
      proto.type = type->str;
      proto.start = start->str;
      if (const JsonValue* states = entry.find("states")) {
        if (!states->is_array()) {
          *error = "layers.json: typestate \"" + proto.name +
                   "\": \"states\" must be an array";
          return false;
        }
        for (const auto& s : states->array) {
          if (!s.is_string()) {
            *error = "layers.json: typestate \"" + proto.name +
                     "\" has a non-string state";
            return false;
          }
          proto.states.push_back(s.str);
        }
      }
      auto known_state = [&](const std::string& s) {
        for (const auto& st : proto.states) {
          if (st == s) return true;
        }
        return false;
      };
      if (!known_state(proto.start)) {
        *error = "layers.json: typestate \"" + proto.name +
                 "\": start state \"" + proto.start +
                 "\" is not in \"states\"";
        return false;
      }
      if (const JsonValue* trans = entry.find("transitions")) {
        if (!trans->is_array()) {
          *error = "layers.json: typestate \"" + proto.name +
                   "\": \"transitions\" must be an array";
          return false;
        }
        for (const auto& t : trans->array) {
          const JsonValue* on = t.find("on");
          const JsonValue* to = t.find("to");
          if (!t.is_object() || on == nullptr || !on->is_string() ||
              to == nullptr || !to->is_string() || !known_state(to->str)) {
            *error = "layers.json: typestate \"" + proto.name +
                     "\" has a malformed transition (need \"on\" and a "
                     "declared \"to\" state)";
            return false;
          }
          TypestateTransition tt;
          tt.event = on->str;
          tt.to = to->str;
          if (const JsonValue* from = t.find("from")) {
            if (!from->is_string() || !known_state(from->str)) {
              *error = "layers.json: typestate \"" + proto.name +
                       "\" transition \"from\" must be a declared state";
              return false;
            }
            tt.from = from->str;
          }
          proto.transitions.push_back(std::move(tt));
        }
      }
      if (const JsonValue* checks = entry.find("requires")) {
        if (!checks->is_array()) {
          *error = "layers.json: typestate \"" + proto.name +
                   "\": \"requires\" must be an array";
          return false;
        }
        for (const auto& c : checks->array) {
          const JsonValue* on = c.find("on");
          const JsonValue* forbid = c.find("forbid");
          const JsonValue* message = c.find("message");
          if (!c.is_object() || on == nullptr || !on->is_string() ||
              forbid == nullptr || !forbid->is_array() ||
              message == nullptr || !message->is_string()) {
            *error = "layers.json: typestate \"" + proto.name +
                     "\" has a malformed requires entry (need \"on\", "
                     "\"forbid\", \"message\")";
            return false;
          }
          TypestateRequire req;
          req.event = on->str;
          req.message = message->str;
          for (const auto& s : forbid->array) {
            if (!s.is_string() || !known_state(s.str)) {
              *error = "layers.json: typestate \"" + proto.name +
                       "\" requires entry forbids an undeclared state";
              return false;
            }
            req.forbid.push_back(s.str);
          }
          if (const JsonValue* when = c.find("when")) {
            if (!when->is_string() ||
                (when->str != "may" && when->str != "must")) {
              *error = "layers.json: typestate \"" + proto.name +
                       "\" requires \"when\" must be \"may\" or \"must\"";
              return false;
            }
            req.must = when->str == "must";
          }
          proto.checks.push_back(std::move(req));
        }
      }
      if (const JsonValue* po = entry.find("pointer_only")) {
        if (po->kind != JsonValue::Kind::kBool) {
          *error = "layers.json: typestate \"" + proto.name +
                   "\": \"pointer_only\" must be a boolean";
          return false;
        }
        proto.pointer_only = po->boolean;
      }
      if (const JsonValue* ps = entry.find("param_start")) {
        if (!ps->is_string() || !known_state(ps->str)) {
          *error = "layers.json: typestate \"" + proto.name +
                   "\": \"param_start\" must be a declared state";
          return false;
        }
        proto.param_start = ps->str;
      }
      out->typestate.push_back(std::move(proto));
    }
  }

  // Every dep must itself be declared (or the "*" wildcard).
  for (const auto& [name, deps] : out->allow) {
    for (const auto& d : deps) {
      if (d != "*" && !out->declared(d)) {
        *error = "layers.json: layer \"" + name + "\" depends on \"" + d +
                 "\", which is not declared";
        return false;
      }
    }
  }

  // The declared graph over non-universal layers must be acyclic —
  // otherwise "upward" has no meaning. Universal layers sit outside the
  // stack by design (the audit spine is includable from anywhere), so
  // they are exempt from the DAG requirement but still constrain their
  // own includes through their dep list.
  enum class Mark { kWhite, kGrey, kBlack };
  std::vector<Mark> marks(out->allow.size(), Mark::kWhite);
  auto index_of = [&](const std::string& name) -> std::size_t {
    for (std::size_t i = 0; i < out->allow.size(); ++i) {
      if (out->allow[i].first == name) return i;
    }
    return static_cast<std::size_t>(-1);
  };
  std::string cycle_at;
  auto dfs = [&](auto&& self, std::size_t i) -> bool {
    if (out->is_universal(out->allow[i].first)) return true;
    if (marks[i] == Mark::kGrey) {
      cycle_at = out->allow[i].first;
      return false;
    }
    if (marks[i] == Mark::kBlack) return true;
    marks[i] = Mark::kGrey;
    for (const auto& d : out->allow[i].second) {
      if (d == "*") continue;
      const std::size_t j = index_of(d);
      if (!out->is_universal(d) && !self(self, j)) return false;
    }
    marks[i] = Mark::kBlack;
    return true;
  };
  for (std::size_t i = 0; i < out->allow.size(); ++i) {
    if (!dfs(dfs, i)) {
      *error = "layers.json: declared dependency graph has a cycle through "
               "layer \"" +
               cycle_at + "\"";
      return false;
    }
  }
  return true;
}

namespace {

/// First path component of an include ("sim/time.hpp" -> "sim"); empty
/// for flat includes ("bench_common.hpp").
std::string include_layer(const std::string& path) {
  const auto slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

void check_layer_edges(const Model& model, const LayerManifest& manifest,
                       std::vector<Finding>* out) {
  for (const auto& f : model.files) {
    // Flat files (no directory component anywhere) carry no layer; files
    // outside the include base still do, via rel_path (self-hosting).
    if (f.include_key.empty() && f.layer.empty()) continue;
    if (!f.layer.empty() && !manifest.declared(f.layer)) {
      out->push_back(
          {"layering/unknown-layer", f.rel_path, 1, 1,
           "directory '" + f.layer +
               "' is not declared in layers.json; declare its place in the "
               "stack before adding code to it",
           false,
           {}});
      continue;
    }
    if (f.layer.empty()) continue;  // flat files carry no layer
    const std::vector<std::string>* deps = manifest.deps_of(f.layer);
    for (const auto& inc : f.lex.includes) {
      if (inc.angle) continue;  // system headers are not layer edges
      const std::string target = include_layer(inc.path);
      if (target.empty() || !manifest.declared(target)) continue;
      if (target == f.layer || manifest.is_universal(target)) continue;
      const bool allowed =
          deps != nullptr &&
          std::any_of(deps->begin(), deps->end(), [&](const std::string& d) {
            return d == "*" || d == target;
          });
      if (!allowed) {
        out->push_back(
            {"layering/upward-include", f.rel_path, inc.line, 1,
             "layer '" + f.layer + "' may not include \"" + inc.path +
                 "\" (layer '" + target +
                 "'); the declared stack in tools/analyze/layers.json only "
                 "allows downward includes",
             false,
             {}});
      }
    }
  }
}

/// Tarjan SCC over the resolved include graph; any component with more
/// than one file (or a self-include) is a cycle.
struct CycleFinder {
  const Model& model;
  std::vector<int> index, lowlink;
  std::vector<bool> on_stack;
  std::vector<std::size_t> stack;
  int next_index = 0;
  std::vector<std::vector<std::size_t>> cycles;

  explicit CycleFinder(const Model& m)
      : model(m),
        index(m.files.size(), -1),
        lowlink(m.files.size(), -1),
        on_stack(m.files.size(), false) {}

  void strongconnect(std::size_t v) {
    index[v] = lowlink[v] = next_index++;
    stack.push_back(v);
    on_stack[v] = true;
    bool self_loop = false;
    for (const auto& inc : model.files[v].lex.includes) {
      if (inc.angle) continue;
      const std::size_t w = model.resolve(inc.path);
      if (w == Model::npos) continue;
      if (w == v) self_loop = true;
      if (index[w] < 0) {
        strongconnect(w);
        lowlink[v] = std::min(lowlink[v], lowlink[w]);
      } else if (on_stack[w]) {
        lowlink[v] = std::min(lowlink[v], index[w]);
      }
    }
    if (lowlink[v] == index[v]) {
      std::vector<std::size_t> component;
      std::size_t w;
      do {
        w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        component.push_back(w);
      } while (w != v);
      if (component.size() > 1 || self_loop) {
        std::sort(component.begin(), component.end(),
                  [&](std::size_t a, std::size_t b) {
                    return model.files[a].rel_path < model.files[b].rel_path;
                  });
        cycles.push_back(std::move(component));
      }
    }
  }
};

void check_cycles(const Model& model, std::vector<Finding>* out) {
  CycleFinder finder(model);
  for (std::size_t i = 0; i < model.files.size(); ++i) {
    if (finder.index[i] < 0) finder.strongconnect(i);
  }
  std::sort(finder.cycles.begin(), finder.cycles.end(),
            [&](const auto& a, const auto& b) {
              return model.files[a.front()].rel_path <
                     model.files[b.front()].rel_path;
            });
  for (const auto& component : finder.cycles) {
    const SourceFile& anchor = model.files[component.front()];
    // Anchor the finding at the anchor file's include that stays inside
    // the component.
    int line = 1;
    for (const auto& inc : anchor.lex.includes) {
      const std::size_t w = model.resolve(inc.path);
      if (w != Model::npos &&
          std::find(component.begin(), component.end(), w) !=
              component.end()) {
        line = inc.line;
        break;
      }
    }
    std::string members;
    for (const auto& idx : component) {
      if (!members.empty()) members += " -> ";
      members += model.files[idx].include_key.empty()
                     ? model.files[idx].rel_path
                     : model.files[idx].include_key;
    }
    out->push_back({"layering/cycle", anchor.rel_path, line, 1,
                    "include cycle: " + members, false, {}});
  }
}

}  // namespace

void run_layering_rules(const Model& model, const LayerManifest& manifest,
                        std::vector<Finding>* out) {
  check_layer_edges(model, manifest, out);
  check_cycles(model, out);
}

}  // namespace quicsteps::analyze
