// Per-file token streams plus the project-level include graph.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "token.hpp"

namespace quicsteps::analyze {

struct SourceFile {
  std::string abs_path;     // as opened
  std::string rel_path;     // relative to the analysis root (reported)
  std::string include_key;  // path relative to the include base; how other
                            // files' quoted #includes name this file
                            // ("sim/time.hpp"); empty when outside the base
  std::string layer;        // first directory of include_key; "" when flat
  bool is_header = false;
  std::uint64_t content_hash = 0;  // FNV-1a 64 of the file bytes; feeds the
                                   // whole-analysis result-cache key
  LexResult lex;
};

/// The whole analysis input: every scanned file plus include-graph edges
/// resolved against the scanned set (quoted includes only; system headers
/// are not edges).
struct Model {
  std::vector<SourceFile> files;
  /// include_key -> index into files.
  std::map<std::string, std::size_t> by_include_key;

  /// Resolves a quoted include path to a scanned file, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t resolve(const std::string& include_path) const {
    auto it = by_include_key.find(include_path);
    return it == by_include_key.end() ? npos : it->second;
  }
};

class TokenCache;

/// Loads and lexes every C++ source under `paths` (files or directories,
/// recursive; .hpp/.h/.cpp/.cc), skipping directories named "testdata" —
/// fixture trees hold deliberate violations and must never leak into a
/// real run (the self-tests pass fixture dirs explicitly, which still
/// works: only directories *inside* a scanned tree are skipped). `root`
/// anchors rel_path, `include_base` anchors include_key; files outside
/// the include base derive their layer from rel_path's first component so
/// self-hosted trees (tools/analyze) still carry a layer. Files are
/// sorted by rel_path so every downstream artifact (text report, SARIF,
/// baseline matching) is order-stable. When `cache` is non-null, lexing
/// goes through it (cache.hpp). Returns false and sets `*error` when a
/// path does not exist.
bool build_model(const std::vector<std::string>& paths,
                 const std::string& root, const std::string& include_base,
                 Model* model, std::string* error,
                 TokenCache* cache = nullptr);

}  // namespace quicsteps::analyze
