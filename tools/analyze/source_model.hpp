// Per-file token streams plus the project-level include graph.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "token.hpp"

namespace quicsteps::analyze {

struct SourceFile {
  std::string abs_path;     // as opened
  std::string rel_path;     // relative to the analysis root (reported)
  std::string include_key;  // path relative to the include base; how other
                            // files' quoted #includes name this file
                            // ("sim/time.hpp"); empty when outside the base
  std::string layer;        // first directory of include_key; "" when flat
  bool is_header = false;
  LexResult lex;
};

/// The whole analysis input: every scanned file plus include-graph edges
/// resolved against the scanned set (quoted includes only; system headers
/// are not edges).
struct Model {
  std::vector<SourceFile> files;
  /// include_key -> index into files.
  std::map<std::string, std::size_t> by_include_key;

  /// Resolves a quoted include path to a scanned file, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t resolve(const std::string& include_path) const {
    auto it = by_include_key.find(include_path);
    return it == by_include_key.end() ? npos : it->second;
  }
};

/// Loads and lexes every C++ source under `paths` (files or directories,
/// recursive; .hpp/.h/.cpp/.cc). `root` anchors rel_path, `include_base`
/// anchors include_key. Files are sorted by rel_path so every downstream
/// artifact (text report, SARIF, baseline matching) is order-stable.
/// Returns false and sets `*error` when a path does not exist.
bool build_model(const std::vector<std::string>& paths,
                 const std::string& root, const std::string& include_base,
                 Model* model, std::string* error);

}  // namespace quicsteps::analyze
