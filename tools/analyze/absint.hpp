// Worklist abstract interpretation over the analyzer's CFGs (cfg.hpp).
//
// The framework is a classic monotone-dataflow solver: per-block input
// states, reverse post-order seeded worklist, join at merge points, and
// widening at loop heads after a bounded number of visits so infinite-
// ascending-chain domains (intervals) terminate. Rules instantiate it
// with a small domain type:
//
//   struct Domain {
//     using State = ...;                       // the lattice element
//     State entry_state();                     // at Cfg::kEntry
//     bool join(State* into, const State& s);  // true when *into changed
//     void widen(State* into, const State& prev);   // loop-head widening
//     void transfer_stmt(const CfgStmt&, State*);   // plain statement
//     // Condition blocks are edge-sensitive: the same atomic condition
//     // produces one state for the true edge and one for the false edge,
//     // which is how `if (bus)` / `if (rate > 0)` guards refine state.
//     void transfer_cond(const CfgStmt&, bool branch_true, State*);
//   };
//
// solve() returns the fixed per-block input states; rules then replay
// transfer_stmt over each reachable block (with the block's solved input)
// to check and report at statement granularity.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "cfg.hpp"

namespace quicsteps::analyze {

/// Visits of a loop head before join is replaced by widening. Three trips
/// lets a two-phase loop (schedule on iteration 1, use on iteration 2)
/// stabilize precisely before the hammer comes down.
inline constexpr int kWidenAfterVisits = 3;

template <typename Domain>
struct AbsintResult {
  using State = typename Domain::State;
  std::vector<State> in;          // per block, solved input state
  std::vector<bool> reachable;    // block ever entered the worklist
};

template <typename Domain>
AbsintResult<Domain> solve_absint(const Cfg& cfg, Domain& domain) {
  using State = typename Domain::State;
  AbsintResult<Domain> result;
  const std::size_t n = cfg.blocks.size();
  result.in.assign(n, State{});
  result.reachable.assign(n, false);

  std::vector<int> visits(n, 0);
  std::vector<bool> queued(n, false);
  std::deque<std::size_t> worklist;

  result.in[Cfg::kEntry] = domain.entry_state();
  result.reachable[Cfg::kEntry] = true;
  worklist.push_back(Cfg::kEntry);
  queued[Cfg::kEntry] = true;

  // Hard iteration backstop: no heuristic domain is worth a hang. The
  // bound is generous — widening converges long before it on real code.
  std::size_t budget = 64 * n + 256;

  while (!worklist.empty() && budget-- > 0) {
    const std::size_t b = worklist.front();
    worklist.pop_front();
    queued[b] = false;
    const CfgBlock& block = cfg.blocks[b];

    // Propagate to each successor; condition blocks split per edge.
    auto propagate = [&](std::size_t succ, const State& out_state) {
      State incoming = out_state;
      bool changed;
      if (!result.reachable[succ]) {
        result.in[succ] = incoming;
        result.reachable[succ] = true;
        changed = true;
      } else if (cfg.blocks[succ].is_loop_head &&
                 visits[succ] >= kWidenAfterVisits) {
        State widened = result.in[succ];
        domain.join(&widened, incoming);
        domain.widen(&widened, result.in[succ]);
        changed = domain.join(&result.in[succ], widened);
      } else {
        changed = domain.join(&result.in[succ], incoming);
      }
      if (changed && !queued[succ]) {
        ++visits[succ];
        worklist.push_back(succ);
        queued[succ] = true;
      }
    };

    if (block.is_cond) {
      // stmts holds the atomic condition (possibly empty for `for(;;)`).
      if (block.succs.size() >= 2) {
        State on_true = result.in[b];
        State on_false = result.in[b];
        if (!block.stmts.empty()) {
          domain.transfer_cond(block.stmts.front(), true, &on_true);
          domain.transfer_cond(block.stmts.front(), false, &on_false);
        }
        propagate(block.succs[0], on_true);
        propagate(block.succs[1], on_false);
      }
      continue;
    }

    State out = result.in[b];
    for (const CfgStmt& stmt : block.stmts) {
      domain.transfer_stmt(stmt, &out);
    }
    for (const std::size_t succ : block.succs) {
      propagate(succ, out);
    }
  }
  return result;
}

// ---------------------------------------------------------------------------
// Integer interval lattice (units/time-interval rules)
// ---------------------------------------------------------------------------

/// A [lo, hi] interval over int64 with saturating arithmetic, mirroring
/// sim::Time's sentinel semantics: INT64_MAX is "infinite"/saturated, so
/// an interval reaching it models "may be at the sentinel". Bottom
/// (empty) is lo > hi.
struct IntInterval {
  std::int64_t lo = 0;
  std::int64_t hi = -1;  // default-constructed = bottom (empty)

  static IntInterval top();
  static IntInterval constant(std::int64_t v);
  static IntInterval range(std::int64_t lo, std::int64_t hi);

  bool is_bottom() const { return lo > hi; }
  bool contains(std::int64_t v) const { return !is_bottom() && lo <= v && v <= hi; }

  /// Union hull; returns true when *this changed.
  bool join(const IntInterval& o);
  /// Classic interval widening against the previous iterate: bounds that
  /// grew jump to the respective infinity.
  void widen(const IntInterval& prev);

  /// Saturating interval arithmetic (never UB; saturates at int64 range).
  IntInterval add(const IntInterval& o) const;
  IntInterval sub(const IntInterval& o) const;
  IntInterval mul(const IntInterval& o) const;
  IntInterval div(const IntInterval& o) const;  // conservative; 0 divisor -> top

  /// Refinements from comparisons: the subinterval satisfying `x OP k`.
  IntInterval refine_lt(std::int64_t k) const;
  IntInterval refine_le(std::int64_t k) const;
  IntInterval refine_gt(std::int64_t k) const;
  IntInterval refine_ge(std::int64_t k) const;
  IntInterval refine_eq(std::int64_t k) const;
  IntInterval refine_ne(std::int64_t k) const;

  bool operator==(const IntInterval& o) const {
    return (is_bottom() && o.is_bottom()) || (lo == o.lo && hi == o.hi);
  }
};

/// True when `a * b` can exceed the int64 range (the overflow the
/// saturating sentinel arithmetic exists to prevent happens BEFORE the
/// value is wrapped — this is what units/interval-overflow reports).
bool mul_may_overflow(const IntInterval& a, const IntInterval& b);
bool add_may_overflow(const IntInterval& a, const IntInterval& b);

}  // namespace quicsteps::analyze
