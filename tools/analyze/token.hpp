// Token model for the quicsteps static analyzer.
//
// The analyzer never parses C++ properly (that would need a real frontend);
// it works on a comment- and literal-aware token stream. Each token carries
// its 1-based line/column so findings anchor exactly where an editor or the
// SARIF viewer expects them.
#pragma once

#include <string>
#include <vector>

namespace quicsteps::analyze {

enum class TokKind {
  kIdentifier,   // foo, int64_t, std
  kNumber,       // 42, 0x1f, 1'000'000, 2.0e9
  kString,       // "..." including raw strings (text is the body)
  kCharLit,      // 'a'
  kPunct,        // one of the operator/punctuator spellings
  kIncludePath,  // the path of an #include directive ("sim/time.hpp" or
                 // <vector>); text is the path without quotes/brackets
};

struct Token {
  TokKind kind;
  std::string text;
  int line = 0;  // 1-based
  int col = 0;   // 1-based
  bool in_pp = false;        // token is part of a preprocessor directive
  bool angle_include = false;  // kIncludePath only: <...> form

  bool is_id(const char* s) const {
    return kind == TokKind::kIdentifier && text == s;
  }
  bool is_punct(const char* s) const {
    return kind == TokKind::kPunct && text == s;
  }
};

/// One #include directive, extracted during lexing.
struct IncludeDirective {
  std::string path;  // as written, without the quotes / angle brackets
  bool angle = false;
  int line = 0;
};

/// Everything lexing one translation unit produces.
struct LexResult {
  std::vector<Token> tokens;
  std::vector<IncludeDirective> includes;
  bool has_pragma_once = false;
};

}  // namespace quicsteps::analyze
