// determinism/unordered-taint: unordered iteration order flowing to sinks.
//
// Rule 14 (determinism/exporter-unordered) only sees an unordered_* token
// spelled inside an exporter file. This family follows the order itself:
// a local, parameter, or call result typed unordered_* is a taint source;
// range-for bindings over a tainted container and copies/assignments from
// tainted values propagate (intraprocedurally, over the dataflow
// skeleton); a declaration with an explicitly ordered container type
// (map/set without unordered_) launders — the usual "accumulate into a
// std::map, then emit" pattern stays silent. A tainted value reaching a
// sink — an argument to a call whose name looks like an exporter / hash /
// report operation, or a `<<` stream — is the finding: the bytes published
// there depend on allocator state, not on (config, seed).
//
// Returns are covered without cross-call propagation: a callee's unordered
// return type taints `auto x = f();` at the caller, and an unordered
// parameter is tainted from entry inside the callee.
#include <algorithm>

#include "callgraph.hpp"
#include "dataflow.hpp"
#include "rule.hpp"
#include "symbols.hpp"

namespace quicsteps::analyze {

namespace {

constexpr std::size_t npos = Symbol::npos;

bool is_unordered_type(const std::string& type_text) {
  return type_text.find("unordered_") != std::string::npos;
}

/// Explicitly ordered declaration types launder taint: iterating a
/// std::map copy of an unordered container is deterministic.
bool is_ordered_type(const std::string& type_text) {
  if (is_unordered_type(type_text)) return false;
  for (const char* t : {"map", "set", "vector", "array", "deque"}) {
    if (type_text.find(t) != std::string::npos) return true;
  }
  return false;
}

bool is_sink_name(const std::string& name) {
  static const char* kSinks[] = {
      "write", "print",  "emit", "publish", "export", "qlog",
      "csv",   "json",   "hash", "combine", "record", "append",
      "row",   "report", "dump", "serialize",
  };
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  for (const char* s : kSinks) {
    if (lower.find(s) != std::string::npos) return true;
  }
  return false;
}

/// Does token range [begin, end) mention local `name` outside member
/// access?
bool range_mentions(const std::vector<Token>& toks, std::size_t begin,
                    std::size_t end, const std::string& name) {
  for (std::size_t k = begin; k < end && k < toks.size(); ++k) {
    if (toks[k].in_pp || toks[k].kind != TokKind::kIdentifier ||
        toks[k].text != name) {
      continue;
    }
    if (k > 0 && (toks[k - 1].is_punct(".") || toks[k - 1].is_punct("->") ||
                  toks[k - 1].is_punct("::"))) {
      continue;
    }
    return true;
  }
  return false;
}

/// Does [begin, end) call a function whose (indexed) return type is
/// unordered? Resolves by name against the symbol index.
bool range_calls_unordered_returner(const std::vector<Token>& toks,
                                    std::size_t begin, std::size_t end,
                                    const SymbolIndex& index) {
  for (std::size_t k = begin; k + 1 < end && k + 1 < toks.size(); ++k) {
    if (toks[k].in_pp || toks[k].kind != TokKind::kIdentifier ||
        !toks[k + 1].is_punct("(")) {
      continue;
    }
    auto [lo, hi] = index.callables_by_name.equal_range(toks[k].text);
    for (auto it = lo; it != hi; ++it) {
      if (is_unordered_type(index.symbols[it->second].type_text)) {
        return true;
      }
    }
  }
  return false;
}

/// The source label shown in the message: the tainted local's origin.
struct TaintState {
  std::vector<bool> tainted;          // per local index
  std::vector<std::string> origin;    // per local index
};

void analyze_callable(const Model& model, const SymbolIndex& index,
                      const CallGraph& graph, const CallableDataflow& df,
                      std::vector<Finding>* out) {
  const Symbol& sym = index.symbols[df.symbol];
  const std::vector<Token>& toks = model.files[sym.file].lex.tokens;

  TaintState state;
  state.tainted.assign(df.locals.size(), false);
  state.origin.assign(df.locals.size(), "");

  // Seed: unordered-typed locals and parameters.
  for (std::size_t l = 0; l < df.locals.size(); ++l) {
    if (is_unordered_type(df.locals[l].type_text)) {
      state.tainted[l] = true;
      state.origin[l] = "'" + df.locals[l].name + "' (unordered type at line " +
                        std::to_string(df.locals[l].line) + ")";
    }
  }

  // Propagate to fixpoint: range-for over tainted, copy/assign from
  // tainted, or assignment from an unordered-returning call. Ordered
  // declaration types launder.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t l = 0; l < df.locals.size(); ++l) {
      const Local& local = df.locals[l];
      if (state.tainted[l] || is_ordered_type(local.type_text)) continue;
      std::string origin;
      if (local.is_range_for) {
        for (std::size_t o = 0; o < df.locals.size(); ++o) {
          if (state.tainted[o] &&
              range_mentions(toks, local.range_begin, local.range_end,
                             df.locals[o].name)) {
            origin = state.origin[o];
            break;
          }
        }
        if (origin.empty() &&
            range_calls_unordered_returner(toks, local.range_begin,
                                           local.range_end, index)) {
          origin = "an unordered-returning call (line " +
                   std::to_string(local.line) + ")";
        }
      }
      if (origin.empty()) {
        for (const Def& def : local.defs) {
          for (std::size_t o = 0; o < df.locals.size() && origin.empty();
               ++o) {
            if (o != l && state.tainted[o] &&
                range_mentions(toks, def.rhs_begin, def.rhs_end,
                               df.locals[o].name)) {
              origin = state.origin[o];
            }
          }
          if (origin.empty() &&
              range_calls_unordered_returner(toks, def.rhs_begin,
                                             def.rhs_end, index)) {
            origin = "an unordered-returning call (line " +
                     std::to_string(local.line) + ")";
          }
          if (!origin.empty()) break;
        }
      }
      if (!origin.empty()) {
        state.tainted[l] = true;
        state.origin[l] = origin;
        changed = true;
      }
    }
  }

  if (std::none_of(state.tainted.begin(), state.tainted.end(),
                   [](bool b) { return b; })) {
    return;
  }

  // Sinks. (1) tainted value inside the argument list of a sink-named
  // call; (2) tainted value streamed with `<<` (lexed as two '<' tokens).
  for (const CallSite& site : graph.sites) {
    if (site.caller != df.symbol || !is_sink_name(site.name)) continue;
    for (std::size_t l = 0; l < df.locals.size(); ++l) {
      if (!state.tainted[l] ||
          !range_mentions(toks, site.args_begin + 1, site.args_end,
                          df.locals[l].name)) {
        continue;
      }
      Finding finding{
          "determinism/unordered-taint",
          model.files[sym.file].rel_path,
          site.line,
          site.col,
          "unordered iteration order from " + state.origin[l] +
              " flows into sink '" + site.name + "' via '" +
              df.locals[l].name +
              "'; published bytes would depend on allocator state — use an "
              "ordered container or sort before the sink",
          false,
          {}};
      // Machine fix at the source: swap the unordered_* declaration type
      // for its ordered equivalent.
      const Local& src = df.locals[l];
      const std::size_t u = src.type_text.find("unordered_");
      if (u != std::string::npos && src.decl_tok > 0) {
        for (std::size_t k = src.decl_tok; k-- > 0;) {
          const Token& t = toks[k];
          if (t.kind == TokKind::kIdentifier &&
              t.text.rfind("unordered_", 0) == 0) {
            FixIt fix;
            const std::string ordered =
                t.text.substr(std::string("unordered_").size());
            fix.description = "replace " + t.text + " with " + ordered;
            fix.line = t.line;
            fix.col = t.col;
            fix.end_line = t.line;
            fix.end_col = t.col + static_cast<int>(t.text.size());
            fix.replacement = ordered;
            finding.fixits.push_back(fix);
            break;
          }
          if (t.is_punct(";") || t.is_punct("{") || t.is_punct("}")) break;
        }
      }
      out->push_back(std::move(finding));
      break;  // one finding per sink call site
    }
  }
  for (std::size_t l = 0; l < df.locals.size(); ++l) {
    if (!state.tainted[l]) continue;
    const Local& local = df.locals[l];
    for (const std::size_t use : local.uses) {
      const bool streamed =
          use >= 2 && toks[use - 1].is_punct("<") &&
          toks[use - 2].is_punct("<") &&
          !(use >= 3 && toks[use - 3].is_punct("<"));
      if (!streamed) continue;
      out->push_back(
          {"determinism/unordered-taint", model.files[sym.file].rel_path,
           toks[use].line, toks[use].col,
           "unordered iteration order from " + state.origin[l] +
               " is streamed with operator<< via '" + local.name +
               "'; published bytes would depend on allocator state — use an "
               "ordered container or sort before the sink",
           false,
           {}});
    }
  }
}

}  // namespace

void run_taint_rules(const Model& model, const SemanticModel& sem,
                     std::vector<Finding>* out) {
  for (const CallableDataflow& df : sem.flow->callables) {
    analyze_callable(model, *sem.index, *sem.graph, df, out);
  }
}

}  // namespace quicsteps::analyze
