// quicsteps-analyze — in-repo static analyzer for the simulation sources.
//
// Usage:
//   quicsteps-analyze [--root DIR] [--include-base DIR] [--layers FILE|-]
//                     [--baseline FILE]... [--rules fam1,fam2]
//                     [--sarif FILE] [--cache-dir DIR] [--fix-baseline]
//                     [--list-rules] [--no-exit-code] [PATHS...]
//
// Defaults: scans <root>/src and <root>/tools/analyze (self-hosting) with
// <root>/tools/analyze/layers.json and <root>/tools/analyze/baseline.txt.
// --cache-dir keys lexed tokens by content hash so unchanged files skip
// re-tokenizing; --fix-baseline rewrites the baseline file(s) in place,
// dropping stale entries. Exit status: 0 clean (baselined findings do not
// fail the run), 1 unbaselined findings, 2 bad invocation/configuration.
// --no-exit-code reports findings but exits 0 anyway — for the CI diff
// gate, which analyzes the merge base (whose findings must not fail the
// job; only NEW findings in the head do, via tools/analyze_diff.py).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--root DIR] [--include-base DIR] [--layers FILE|-]\n"
      "          [--baseline FILE]... [--rules fam1,fam2] [--sarif FILE]\n"
      "          [--cache-dir DIR] [--fix-baseline] [--list-rules]\n"
      "          [--no-exit-code] [PATHS...]\n",
      argv0);
  return 2;
}

std::vector<std::string> split_commas(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const auto comma = s.find(',', start);
    if (comma == std::string::npos) {
      if (start < s.size()) out.push_back(s.substr(start));
      break;
    }
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using quicsteps::analyze::Options;
  Options options;
  std::string sarif_path;
  bool list_rules = false;
  bool no_exit_code = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.root = v;
    } else if (arg == "--include-base") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.include_base = v;
    } else if (arg == "--layers") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.layers_file = v;
    } else if (arg == "--baseline") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.baseline_files.push_back(v);
    } else if (arg == "--rules") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      for (auto& fam : split_commas(v)) {
        options.rule_families.push_back(fam);
      }
    } else if (arg == "--sarif") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      sarif_path = v;
    } else if (arg == "--cache-dir") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      options.cache_dir = v;
    } else if (arg == "--fix-baseline") {
      options.fix_baseline = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--no-exit-code") {
      no_exit_code = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      options.paths.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : quicsteps::analyze::all_rules()) {
      std::printf("%-34s %s\n", rule.id, rule.short_description);
    }
    return 0;
  }

  const auto start = std::chrono::steady_clock::now();
  const auto result = quicsteps::analyze::run_analysis(options);
  const auto elapsed_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count();

  if (!result.error.empty()) {
    std::fprintf(stderr, "quicsteps-analyze: %s\n", result.error.c_str());
    return 2;
  }

  std::fputs(quicsteps::analyze::text_report(result.findings).c_str(),
             stdout);
  for (const auto& stale : result.unused_baseline_entries) {
    std::fprintf(stderr,
                 "quicsteps-analyze: stale baseline entry%s: %s\n",
                 result.rewritten_baselines.empty()
                     ? " (matched nothing)"
                     : " (removed by --fix-baseline)",
                 stale.c_str());
  }
  for (const auto& rewritten : result.rewritten_baselines) {
    std::fprintf(stderr, "quicsteps-analyze: rewrote %s\n",
                 rewritten.c_str());
  }

  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "quicsteps-analyze: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    out << quicsteps::analyze::sarif_report(result.findings);
  }

  std::fprintf(stderr, "%s\n",
               quicsteps::analyze::summary_line(
                   result.files_scanned, result.files_from_cache,
                   result.rules_run, result.active_count,
                   result.baselined_count, elapsed_ms)
                   .c_str());
  if (no_exit_code) return 0;
  return result.active_count > 0 ? 1 : 0;
}
