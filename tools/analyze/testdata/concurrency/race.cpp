// Seeded races for concurrency/parallel-shared-state. The self-test pins
// each finding's exact line; keep the numbering stable when editing.
#include <atomic>
#include <mutex>

int shared_hits = 0;

void bump_shared() { shared_hits = shared_hits + 1; }

void race_two_workers(int n) {
  int total = 0;
  parallel_for(n, [&](int i) {
    total += i;  // worker 1 writes the spawning frame's local
  });
  parallel_for(n, [&](int i) {
    total = total + i;  // worker 2 writes the same local
  });
}

void race_through_helper(int n) {
  parallel_for(n, [](int i) {
    bump_shared();  // reaches the global mutation via the call graph
  });
}

void guarded_patterns(int n) {
  std::atomic<int> counter(0);
  std::mutex mu;
  int guarded = 0;
  parallel_for(n, [&](int i) {
    counter.fetch_add(i);  // atomic: silent
  });
  parallel_for(n, [&](int i) {
    std::lock_guard<std::mutex> lock(mu);
    guarded += i;  // mutex-guarded: silent
  });
  parallel_for(n, [&](int i) {
    int mine = 0;
    mine += i;  // thread-private local: silent
  });
}
