// Fixture: sim/ reaching up into framework/ — layering/upward-include.
#pragma once

#include "framework/report.hpp"

inline int clock_id() { return 1; }
