// Fixture: include cycle, half one — layering/cycle.
#pragma once

#include "quic/b.hpp"

inline int a_id() { return 3; }
