// Fixture: include cycle, half two.
#pragma once

#include "quic/a.hpp"

inline int b_id() { return 4; }
