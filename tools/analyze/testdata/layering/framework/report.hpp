// Fixture: top-of-stack header; clean on its own.
#pragma once

inline int report_id() { return 2; }
