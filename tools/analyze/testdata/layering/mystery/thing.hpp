// Fixture: directory not declared in layers.json — layering/unknown-layer.
#pragma once

inline int thing_id() { return 5; }
