// CFG-builder fixture: short-circuit condition, early return, loop with
// a back edge. tests/analyze_test.cpp builds the CFG directly and asserts
// the block structure (condition blocks, loop head, edge counts).
int classify(int x) {
  if (x > 0 && x < 10) {
    return 1;
  }
  int acc = 0;
  for (int i = 0; i < x; ++i) {
    acc = acc + i;
  }
  return acc;
}
