// Seeded unordered-iteration taint for determinism/unordered-taint. The
// self-test pins each finding's exact line; keep the numbering stable.
#include <map>
#include <ostream>
#include <string>
#include <unordered_map>

void write_row(const std::string& key, int value);
void dump_counts(const std::unordered_map<std::string, int>& counts);

void publish_counts() {
  std::unordered_map<std::string, int> counts;
  counts["a"] = 1;
  for (const auto& kv : counts) {
    write_row(kv.first, kv.second);  // tainted binding reaches a sink
  }
  dump_counts(counts);  // the container itself reaches a sink
}

void stream_tainted(std::ostream& out) {
  std::unordered_map<int, int> sizes;
  for (const auto& kv : sizes) {
    out << kv.first;  // tainted binding streamed with operator<<
  }
}

void launder_through_map() {
  std::unordered_map<std::string, int> raw;
  std::map<std::string, int> ordered(raw.begin(), raw.end());
  for (const auto& kv : ordered) {
    write_row(kv.first, kv.second);  // ordered copy launders: silent
  }
}
