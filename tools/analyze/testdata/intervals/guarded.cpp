// Negative fixture for the units/* interval rules: every function here
// does the same arithmetic as overflow.cpp but through a guard, the
// saturating helper, or the __int128 escape hatch — all must stay silent.
#include <cstdint>

namespace fx {

std::int64_t guarded_by_comparison(std::int64_t bits, net::DataRate rate) {
  if (rate.bps() > 0) {
    const std::int64_t secs = bits / rate.bps();  // divisor refined [1, max]
    return secs;
  }
  return 0;
}

std::int64_t guarded_by_is_zero(std::int64_t bits, net::DataRate rate) {
  if (!rate.is_zero()) {
    const std::int64_t secs = bits / rate.bps();
    return secs;
  }
  return 0;
}

std::int64_t saturating_total(sim::Duration a, sim::Duration b) {
  const std::int64_t t = sim::detail::saturating_add_ns(a.ns(), b.ns());
  return t;
}

bool growth_check(net::DataRate bw, net::DataRate full) {
  // Widened to __int128 before the multiply: cannot overflow int64.
  if (static_cast<__int128>(bw.bps()) * 4 >=
      static_cast<__int128>(full.bps()) * 5) {
    return true;
  }
  return false;
}

std::int64_t widened_counter(std::int64_t n) {
  // Regression: the loop guard widens acc/i to [k, INT64_MAX], but plain
  // counters carry no unit provenance — `acc + i` must not be flagged.
  std::int64_t acc = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    acc = acc + i;
  }
  return acc;
}

std::int64_t bounded_factory(sim::Duration pad) {
  const sim::Duration d = sim::Duration::millis(250) + pad;
  const std::int64_t ms = d.ms();  // fits int64 trivially
  return ms;
}

}  // namespace fx
