// units/* interval-rule fixture: each seeded finding sits on a pinned
// line (tests/analyze_test.cpp asserts file:line). Token-level fixture —
// the analyzer never compiles it, so the sim/net types are spelled the
// way real call sites spell them.
#include <cstdint>

namespace fx {

sim::Duration factory_overflow() {
  // millis scales by 1'000'000 without saturating: 1e13 ms > int64 ns.
  const sim::Duration d = sim::Duration::millis(10'000'000'000'000);
  return d;
}

std::int64_t add_overflow(sim::Duration a, sim::Duration b) {
  // Both unwraps cover the full range (the sentinel is representable);
  // the raw + does not saturate.
  const std::int64_t total = a.ns() + b.ns();
  return total;
}

std::int64_t mul_overflow(sim::Duration d) {
  const std::int64_t scaled = d.ns() * 3;
  return scaled;
}

std::int64_t div_by_possibly_zero(std::int64_t bits, net::DataRate rate) {
  // No guard proves the rate nonzero: zero is the "link down" state.
  const std::int64_t secs = bits / rate.bps();
  return secs;
}

int lossy_narrowing(sim::Duration d) {
  const int ns = d.ns();
  return ns;
}

}  // namespace fx
