// Fixture: header without #pragma once -> determinism/include-guard at 1:1.
inline int answer() { return 42; }
