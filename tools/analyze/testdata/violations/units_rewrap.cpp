// Fixture: unwrap-compute-rewrap round trips.
#include "sim/time.hpp"

namespace sim = quicsteps::sim;

sim::Duration pad(sim::Duration d) {
  return sim::Duration::nanos(d.ns() + 7);  // line 7: units/unwrap-rewrap
}

sim::Time shift(sim::Time t, sim::Duration d) {
  return sim::Time::from_ns(t.ns() + d.ns());  // line 11: units/unwrap-rewrap
}

sim::Duration fine(sim::Duration d) {
  return d + sim::Duration::nanos(7);  // clean: no unwrap inside the maker
}
