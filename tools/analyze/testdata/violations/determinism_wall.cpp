// Fixture: wall-clock violations. Line numbers are pinned by
// tests/analyze_test.cpp — append, never insert.
#include <chrono>
#include <ctime>

long long host_nanos() {
  auto t = std::chrono::steady_clock::now();  // line 7: determinism/wall-clock
  (void)t;
  return time(nullptr);  // line 9: determinism/wall-clock
}

// A comment mentioning std::chrono and rand() must NOT be a violation.
const char* label() {
  return "calls time() and clock() by name";  // strings are exempt too
}

void stamp(struct timespec* ts) {
  clock_gettime(0, ts);  // line 18: determinism/wall-clock
}
