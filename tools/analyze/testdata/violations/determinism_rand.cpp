// Fixture: libc RNG violations.
#include <cstdlib>

int noise() {
  srand(7);           // line 5: determinism/libc-rand
  return rand() % 6;  // line 6: determinism/libc-rand
}

double noise_f() {
  return drand48();  // line 10: determinism/libc-rand
}

// rng.rand() is a member call, not libc — must NOT be flagged.
template <typename R>
int ok(R& rng) {
  return rng.rand();
}
