// Fixture: reference captures in scheduled lambdas.
#include "sim/event_loop.hpp"

namespace sim = quicsteps::sim;

void arm(sim::EventLoop& loop) {
  int local = 3;
  loop.schedule_after(sim::Duration::millis(1),
                      [&local] { (void)local; });  // line 9: ref-capture
  loop.schedule_at(sim::Time::zero(), [&] {});     // line 10: ref-capture
  // Value and pointer captures are clean:
  int* p = &local;
  loop.schedule_after(sim::Duration::millis(2), [p] { (void)*p; });
  loop.schedule_at(sim::Time::zero(), [local] { (void)local; });
}

struct Timers {
  sim::EventLoop* loop;
  int hits = 0;
  void arm_member() {
    // [this] is a pointer capture — clean.
    loop->schedule_after(sim::Duration::millis(1), [this] { ++hits; });
  }
};

void subscripts(sim::EventLoop& loop, int (&starts)[2], bool a, bool b) {
  // Subscript brackets and && inside them must not read as captures.
  loop.schedule_after(sim::Duration::millis(starts[a && b ? 0 : 1]),
                      [] {});
}
