// Fixture: random_device / unordered container / thread sleep.
#include <random>
#include <thread>
#include <unordered_map>

unsigned seed() {
  std::random_device rd;  // line 7: determinism/random-device
  return rd();
}

int lookup(int k) {
  std::unordered_map<int, int> m;  // line 12: determinism/unordered-container
  return m[k];
}

void nap() {
  std::this_thread::sleep_for(  // line 17: determinism/thread-sleep
      std::chrono::milliseconds(1));  // line 18: determinism/wall-clock
}
