// Fixture: raw numeric declarations with unit-suffixed names.
#include <cstdint>

struct Sample {
  std::int64_t stamp_ns = 0;  // line 5: units/raw-time-type
  double rate_bps = 0.0;      // line 6: units/raw-rate-type
  std::int64_t count = 0;     // no suffix: clean
};

void push(std::uint64_t gap_us);  // line 10: units/raw-time-type (parameter)

// Accessor *named* like a unit is the strong-type idiom, not a raw value.
struct Wrapped {
  std::int64_t value_ns() const { return 0; }  // clean: function declaration
};
