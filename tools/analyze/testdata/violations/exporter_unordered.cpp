// Fixture: an exporter-path file (name contains "exporter") naming an
// unordered container without std:: qualification — the aliased import
// the qualified-only rule cannot see.
using namespace std;

void write_rows() {
  unordered_map<int, int> rows;  // line 7: determinism/exporter-unordered
  rows[1] = 2;
}
