// protocol/typestate fixture: one seeded violation per protocol, on
// pinned lines. The types are token-level stand-ins for sim::EventLoop,
// obs::TraceBus and framework::MultiFlowConfig (layers.json in this tree
// declares the protocols).
#include <cstdint>

namespace fx {

int run_empty_loop() {
  sim::EventLoop loop;
  return loop.run();
}

void publish_unchecked(TraceBus* bus, SpanEvent e) {
  bus->publish(e);
}

void mutate_after_run(MultiFlowConfig cfg) {
  run_flows(cfg);
  cfg.flows.push_back(make_flow());
}

}  // namespace fx
