// Negative fixture for protocol/typestate: correct use of all three
// protocols, including the join cases the may/must polarity exists for.
// The analyzer must stay silent on this file.
#include <cstdint>

namespace fx {

int scheduled_loop() {
  sim::EventLoop loop;
  loop.schedule_after(micros(1), tick);
  return loop.run();  // armed on every path
}

int loop_handed_to_component() {
  sim::EventLoop loop;
  Driver d(loop);     // escape: the component may schedule
  return loop.run();
}

void guarded_publish(TraceBus* bus, SpanEvent e) {
  if (bus != nullptr) {
    bus->publish(e);  // dominated by the null check
  }
}

void early_return_guard(TraceBus* bus, SpanEvent e) {
  if (!bus) {
    return;
  }
  bus->publish(e);    // the unchecked path already returned
}

void mutate_before_run(MultiFlowConfig cfg) {
  cfg.flows.push_back(make_flow());  // still building
  run_flows(cfg);
}

void sweep_loop(MultiFlowConfig cfg) {
  for (int i = 0; i < 3; ++i) {
    cfg.flows.push_back(make_flow());  // join {building, frozen}: must-silent
    run_flows(cfg);
  }
}

void rebuilt_config(MultiFlowConfig cfg) {
  run_flows(cfg);
  cfg = MultiFlowConfig();           // whole-object reset to building
  cfg.flows.push_back(make_flow());
}

}  // namespace fx
