// Symbol-index / call-graph golden fixture. The self-test pins symbol
// kinds, classification, nesting, and edges; keep the shape stable.
#include <atomic>
#include <mutex>

namespace demo {

int global_counter = 0;
const int kLimit = 8;
std::atomic<int> atomic_hits;
std::mutex gate;

struct Widget {
  int size() const { return n_; }
  int n_ = 0;
};

int helper(int x) { return x + 1; }

int entry(int x) {
  static int calls = 0;
  calls = calls + 1;
  auto bump = [&](int d) { return helper(d) + x; };
  return bump(x) + helper(x);
}

}  // namespace demo
