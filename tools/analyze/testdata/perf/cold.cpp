// Perf fixture (cold): the same patterns as hot.cpp, but this file is NOT
// tagged hot_path — the rule must stay silent here.
void cold() {
  auto* p = new Packet();
  auto u = std::make_unique<Packet>();
  queue.push_back(p);
  loop.schedule_at(t, cb);
}
