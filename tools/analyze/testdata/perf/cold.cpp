// Perf fixture (cold): the same patterns as hot.cpp, but this file is NOT
// tagged hot_path — cold() is unreachable from the hot set and must stay
// silent. alloc_helper() IS called from hot(), so the call graph pulls it
// into the hot set and its allocation on line 13 is flagged.
void cold() {
  auto* p = new Packet();
  auto u = std::make_unique<Packet>();
  queue.push_back(p);
  loop.schedule_at(t, cb);
}

void alloc_helper() {
  auto q = std::make_unique<Packet>();
}
