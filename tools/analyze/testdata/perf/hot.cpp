// Perf fixture (hot): tagged under "hot_path" in the sibling layers.json,
// so every pattern below must be flagged on its pinned line. The call to
// alloc_helper() drags that cold-file callable into the hot set
// transitively — its allocation is flagged over in cold.cpp.
void hot() {
  auto* p = new Packet();
  auto u = std::make_unique<Packet>();
  auto s = std::make_shared<Packet>();
  queue.push_back(p);
  queue.emplace_back();
  loop.schedule_at(t, cb);
  loop.schedule_after(d, cb);
  alloc_helper();
}
