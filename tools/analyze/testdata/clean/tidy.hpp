// Fixture: a file the analyzer must pass untouched.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace quicsteps_fixture {

struct Tidy {
  std::int64_t count = 0;       // no unit suffix
  std::vector<int> values;
  std::map<int, int> ordered;   // ordered container is fine

  std::int64_t total_ns() const { return count; }  // accessor idiom
};

}  // namespace quicsteps_fixture
