// Negative fixture for lifetime/*: every borrow here is used only while
// live, re-borrowed after mutation, or copied out before the recycle —
// the analyzer must stay silent on this file.
#include <cstdint>

namespace fx {

struct Packet {
  std::size_t size_bytes;
};

struct PacketSlab {
  Packet store[8];
  int next = 0;
  const Packet& peek(int h) { return store[h]; }
  void put(int h) { next = h; }
  int take() { return next; }
};

struct CleanPool {
  PacketSlab slab;

  std::size_t copy_then_recycle(int h, int dead) {
    const Packet& pkt = slab.peek(h);
    const std::size_t n = pkt.size_bytes;  // use while borrowed: fine
    slab.put(dead);
    return n;
  }

  std::size_t reborrow_after_recycle(int h, int dead) {
    const Packet& first = slab.peek(h);
    const std::size_t a = first.size_bytes;
    slab.put(dead);
    const Packet& fresh = slab.peek(h);    // re-borrow: live again
    return a + fresh.size_bytes;
  }

  void value_capture(EventLoop& loop, int h) {
    const Packet& pkt = slab.peek(h);
    const std::size_t size = pkt.size_bytes;
    loop.schedule_after(micros(5), [size] { consume(size); });
  }
};

}  // namespace fx
