// lifetime/* fixture: borrows from a generation-checked container that
// die on paths through allocate/recycle calls. Self-contained token-level
// model of the net::PacketSlab surface (layers.json in this tree declares
// the contract).
#include <cstdint>

namespace fx {

struct Packet {
  std::size_t size_bytes;
};

struct PacketSlab {
  Packet store[8];
  int next = 0;
  const Packet& peek(int h) { return store[h]; }
  void put(int h) { next = h; }
  int take() { return next; }
};

void recycle_helper(PacketSlab& s) { s.take(); }

struct Pool {
  PacketSlab slab;

  std::size_t use_after_put(int h, int dead) {
    const Packet& pkt = slab.peek(h);
    slab.put(dead);       // invalidates every borrow from `slab`
    return pkt.size_bytes;
  }

  std::size_t use_after_interproc_kill(PacketSlab& s2, int h) {
    const Packet& pkt = s2.peek(h);
    recycle_helper(s2);   // free function reaching take() with the slab
    return pkt.size_bytes;
  }

  std::size_t branch_sensitive(int h, int dead, bool flush) {
    const Packet& pkt = slab.peek(h);
    if (flush) {
      slab.put(dead);
    }
    return pkt.size_bytes;  // dead on the flush path: still an error
  }

  void escapes_into_callback(EventLoop& loop, int h) {
    const Packet& pkt = slab.peek(h);
    loop.schedule_after(micros(5), [&] { consume(pkt.size_bytes); });
  }
};

}  // namespace fx
