// Static race detection for the serial==parallel invariant.
//
// The repo's reproducibility story rests on ParallelRunner producing
// bit-identical wire_hash values to the serial path. That only holds while
// worker thunks touch no unsynchronized shared state. This family roots at
// the manifest's parallel_entries functions (default: parallel_for),
// collects every worker entry point (lambdas passed to such a call, plus
// the pool worker defined inside the entry function itself), walks the
// call graph from each, and flags mutations of:
//   * by-reference captures whose owning callable is NOT itself reachable
//     from the worker — i.e. state that lives on the spawning thread's
//     stack. (A lambda defined inside worker-reachable code mutating its
//     own enclosing locals is thread-private and stays silent.)
//   * non-const namespace-scope globals and function-local statics reached
//     from any worker-reachable callable.
// Exemptions: the variable's declared type is std::atomic or a mutex/lock
// type, or a lock_guard/scoped_lock/unique_lock is declared earlier in the
// mutating callable's body (scope-insensitive — a lock anywhere before the
// mutation in the same body counts).
#include <algorithm>
#include <set>

#include "callgraph.hpp"
#include "dataflow.hpp"
#include "rule.hpp"
#include "symbols.hpp"

namespace quicsteps::analyze {

namespace {

constexpr std::size_t npos = Symbol::npos;

bool is_mutator_method(const std::string& s) {
  static const char* kMutators[] = {
      "push_back", "emplace_back", "pop_back", "insert",    "erase",
      "clear",     "resize",       "store",    "fetch_add", "fetch_sub",
      "exchange",  "assign",       "append",   "emplace",   "push",
      "pop",       "reset",
  };
  for (const char* m : kMutators) {
    if (s == m) return true;
  }
  return false;
}

bool match_bracket(const std::vector<Token>& toks, std::size_t open,
                   std::size_t* close) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].in_pp) continue;
    if (toks[i].is_punct("[")) ++depth;
    if (toks[i].is_punct("]")) {
      --depth;
      if (depth == 0) {
        *close = i;
        return true;
      }
    }
  }
  return false;
}

/// Is `= <rhs>` (assignment) at `k`, as opposed to `==` (the lexer splits
/// == into two `=` tokens)?
bool is_assign_at(const std::vector<Token>& toks, std::size_t k) {
  return k < toks.size() && toks[k].is_punct("=") &&
         !(k + 1 < toks.size() && toks[k + 1].is_punct("=")) &&
         !(k > 0 && toks[k - 1].is_punct("=")) &&
         !(k > 0 && (toks[k - 1].is_punct("!") || toks[k - 1].is_punct("<") ||
                     toks[k - 1].is_punct(">")));
}

/// True when the identifier at `i` is written through: `x = `, `x += `,
/// `++x` / `x++`, `x[..] = `, or `x.push_back(..)`-style mutator calls.
bool is_mutation(const std::vector<Token>& toks, std::size_t i,
                 std::string* how) {
  const auto compound_op = [&](std::size_t k) {
    return k < toks.size() &&
           (toks[k].is_punct("+") || toks[k].is_punct("-") ||
            toks[k].is_punct("*") || toks[k].is_punct("/") ||
            toks[k].is_punct("%") || toks[k].is_punct("|") ||
            toks[k].is_punct("^") || toks[k].is_punct("&"));
  };
  if (is_assign_at(toks, i + 1)) {
    *how = "assigned";
    return true;
  }
  if (compound_op(i + 1) && i + 2 < toks.size() &&
      toks[i + 2].is_punct("=") &&
      !(i + 3 < toks.size() && toks[i + 3].is_punct("="))) {
    // `x += 1` lexes as x + = 1. (`x && = ...` cannot occur: && is one
    // token.)
    *how = "updated in place";
    return true;
  }
  if ((i + 2 < toks.size() && toks[i + 1].is_punct("+") &&
       toks[i + 2].is_punct("+")) ||
      (i + 2 < toks.size() && toks[i + 1].is_punct("-") &&
       toks[i + 2].is_punct("-")) ||
      (i >= 2 && toks[i - 1].is_punct("+") && toks[i - 2].is_punct("+")) ||
      (i >= 2 && toks[i - 1].is_punct("-") && toks[i - 2].is_punct("-"))) {
    *how = "incremented";
    return true;
  }
  if (i + 1 < toks.size() && toks[i + 1].is_punct("[")) {
    std::size_t close = 0;
    if (match_bracket(toks, i + 1, &close)) {
      // Chained subscripts: results[a][b] = ...
      while (close + 1 < toks.size() && toks[close + 1].is_punct("[")) {
        std::size_t next_close = 0;
        if (!match_bracket(toks, close + 1, &next_close)) break;
        close = next_close;
      }
      if (is_assign_at(toks, close + 1)) {
        *how = "written through operator[]";
        return true;
      }
    }
  }
  if (i + 2 < toks.size() &&
      (toks[i + 1].is_punct(".") || toks[i + 1].is_punct("->")) &&
      toks[i + 2].kind == TokKind::kIdentifier &&
      is_mutator_method(toks[i + 2].text) && i + 3 < toks.size() &&
      toks[i + 3].is_punct("(")) {
    *how = "mutated via ." + toks[i + 2].text + "()";
    return true;
  }
  return false;
}

/// Capture-list classification for one lambda.
struct Captures {
  bool default_ref = false;              // [&] or [&, ...]
  std::vector<std::string> by_ref;       // [&name]
  std::vector<std::string> by_value;     // [name], [name = expr]
};

Captures parse_captures(const std::vector<Token>& toks, const Symbol& sym) {
  Captures caps;
  for (std::size_t k = sym.cap_begin + 1; k < sym.cap_end; ++k) {
    const Token& t = toks[k];
    if (t.in_pp) continue;
    if (t.is_punct("&")) {
      const bool next_is_name = k + 1 < sym.cap_end &&
                                toks[k + 1].kind == TokKind::kIdentifier &&
                                toks[k + 1].text != "this";
      if (next_is_name) {
        caps.by_ref.push_back(toks[k + 1].text);
        ++k;
      } else {
        caps.default_ref = true;
      }
    } else if (t.kind == TokKind::kIdentifier && t.text != "this") {
      caps.by_value.push_back(t.text);
      // `[name = expr]` init-captures own their state; skip the expr.
      while (k + 1 < sym.cap_end && !toks[k + 1].is_punct(",")) ++k;
    }
  }
  return caps;
}

struct RuleContext {
  const Model& model;
  const SymbolIndex& index;
  const CallGraph& graph;
  const Dataflow& flow;
  // Deduplication across overlapping worker reachable sets: one finding
  // per mutation site, attributed to the first (lowest-id) worker entry.
  std::set<std::pair<std::size_t, std::pair<int, int>>> seen;
  std::vector<Finding>* out;

  /// Lock types among `callable`'s locals declared before token `before`.
  bool lock_held_before(std::size_t callable, std::size_t before) const {
    const CallableDataflow* df = flow.for_symbol(callable);
    if (df == nullptr) return false;
    for (const Local& local : df->locals) {
      if (local.decl_tok < before &&
          type_text_is_mutex(local.type_text)) {
        return true;
      }
    }
    return false;
  }

  void report(std::size_t file, const Token& at, const std::string& message) {
    const auto key = std::make_pair(file, std::make_pair(at.line, at.col));
    if (!seen.insert(key).second) return;
    out->push_back({"concurrency/parallel-shared-state",
                    model.files[file].rel_path, at.line, at.col, message,
                    false,
                    {}});
  }

  /// Nearest ancestor callable (following Symbol::parent) owning a local
  /// or parameter named `name`; npos when none.
  std::size_t capture_owner(std::size_t lambda, const std::string& name,
                            const Local** local_out) const {
    for (std::size_t up = index.symbols[lambda].parent; up != npos;
         up = index.symbols[up].parent) {
      const CallableDataflow* df = flow.for_symbol(up);
      if (df == nullptr) continue;
      const std::size_t l = df->find(name);
      if (l != npos) {
        *local_out = &df->locals[l];
        return up;
      }
    }
    return npos;
  }

  void scan_callable(std::size_t id, const Symbol& entry,
                     const std::set<std::size_t>& reach);
};

void RuleContext::scan_callable(std::size_t id, const Symbol& entry,
                                const std::set<std::size_t>& reach) {
  const Symbol& sym = index.symbols[id];
  if (sym.body_begin == npos || sym.body_end == npos) return;
  const std::vector<Token>& toks = model.files[sym.file].lex.tokens;

  Captures caps;
  const CallableDataflow* own_flow = flow.for_symbol(id);
  if (sym.kind == Symbol::Kind::kLambda) caps = parse_captures(toks, sym);

  for (std::size_t i = sym.body_begin + 1; i < sym.body_end; ++i) {
    const Token& t = toks[i];
    if (t.in_pp || t.kind != TokKind::kIdentifier) continue;
    // Tokens of a nested lambda are scanned under that lambda (it is in
    // the reachable set via the containment edge).
    if (index.enclosing_callable(sym.file, i) != id) continue;
    // `obj.name` / `p->name` / `A::name` is a member, not this variable.
    if (i > 0 && (toks[i - 1].is_punct(".") || toks[i - 1].is_punct("->") ||
                  toks[i - 1].is_punct("::"))) {
      continue;
    }
    std::string how;
    if (!is_mutation(toks, i, &how)) continue;

    // (a) By-reference capture owned by a callable outside the worker's
    // reachable region: that state lives on the spawning thread.
    if (sym.kind == Symbol::Kind::kLambda) {
      const bool ref_captured =
          std::find(caps.by_ref.begin(), caps.by_ref.end(), t.text) !=
              caps.by_ref.end() ||
          (caps.default_ref &&
           std::find(caps.by_value.begin(), caps.by_value.end(), t.text) ==
               caps.by_value.end());
      const bool shadowed =
          own_flow != nullptr && own_flow->find(t.text) != npos;
      if (ref_captured && !shadowed) {
        const Local* owner_local = nullptr;
        const std::size_t owner = capture_owner(id, t.text, &owner_local);
        if (owner != npos && reach.count(owner) == 0 &&
            !type_text_is_atomic(owner_local->type_text) &&
            !type_text_is_mutex(owner_local->type_text) &&
            !lock_held_before(id, i)) {
          report(sym.file, t,
                 "worker '" + entry.qual_name + "' " + how +
                     " by-ref capture '" + t.text + "' (declared at line " +
                     std::to_string(owner_local->line) +
                     ") without a lock; cross-thread writes must be atomic "
                     "or mutex-guarded to keep serial==parallel");
        }
      }
    }

    // (b) Non-const globals and static locals: shared whatever thread
    // declared them.
    auto [lo, hi] = index.variables_by_name.equal_range(t.text);
    for (auto it = lo; it != hi; ++it) {
      const Symbol& var = index.symbols[it->second];
      if (var.is_const || var.is_atomic || var.is_mutex) continue;
      // Prefer same-file resolution; cross-file globals only bind when the
      // name is unique project-wide.
      if (var.file != sym.file &&
          index.variables_by_name.count(t.text) > 1) {
        continue;
      }
      if (lock_held_before(id, i)) break;
      const std::string what =
          var.kind == Symbol::Kind::kStaticLocal ? "static local" : "global";
      report(sym.file, t,
             "worker '" + entry.qual_name + "' reaches '" + sym.qual_name +
                 "', which " + how + " non-const " + what + " '" + t.text +
                 "' (declared at " + model.files[var.file].rel_path + ":" +
                 std::to_string(var.line) +
                 ") without a lock; make it atomic, guard it, or move it "
                 "into per-task state");
      break;
    }
  }
}

}  // namespace

void run_concurrency_rules(const Model& model, const LayerManifest& manifest,
                           const SemanticModel& sem,
                           std::vector<Finding>* out) {
  const SymbolIndex& index = *sem.index;
  const CallGraph& graph = *sem.graph;
  const std::vector<std::size_t> entries =
      worker_entries(index, graph, manifest.parallel_entries);
  RuleContext ctx{model, index, graph, *sem.flow, {}, out};
  for (const std::size_t entry : entries) {
    // Reachable set: the worker plus everything its calls can run.
    std::set<std::size_t> reach;
    std::vector<std::size_t> frontier{entry};
    reach.insert(entry);
    while (!frontier.empty()) {
      const std::size_t at = frontier.back();
      frontier.pop_back();
      for (const std::size_t next : graph.edges[at]) {
        if (reach.insert(next).second) frontier.push_back(next);
      }
    }
    for (const std::size_t id : reach) {
      ctx.scan_callable(id, index.symbols[entry], reach);
    }
  }
}

}  // namespace quicsteps::analyze
