#include "dataflow.hpp"

namespace quicsteps::analyze {

namespace {

constexpr std::size_t npos = Symbol::npos;

bool is_control_keyword(const std::string& s) {
  return s == "if" || s == "else" || s == "for" || s == "while" ||
         s == "switch" || s == "do" || s == "try" || s == "catch";
}

bool is_decl_stopper(const std::string& s) {
  return s == "return" || s == "using" || s == "typedef" || s == "throw" ||
         s == "delete" || s == "goto" || s == "case" || s == "break" ||
         s == "continue" || s == "co_return" || s == "co_yield" ||
         is_control_keyword(s);
}

bool is_type_keyword(const std::string& s) {
  return s == "auto" || s == "const" || s == "constexpr" || s == "static" ||
         s == "unsigned" || s == "signed" || s == "int" || s == "long" ||
         s == "short" || s == "char" || s == "bool" || s == "double" ||
         s == "float" || s == "void" || s == "size_t";
}

bool match_paren(const std::vector<Token>& toks, std::size_t open,
                 std::size_t* close) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].in_pp) continue;
    if (toks[i].is_punct("(")) ++depth;
    if (toks[i].is_punct(")")) {
      --depth;
      if (depth == 0) {
        *close = i;
        return true;
      }
    }
  }
  return false;
}

std::string join_tokens(const std::vector<Token>& toks, std::size_t begin,
                        std::size_t end) {
  std::string out;
  for (std::size_t i = begin; i < end && i < toks.size(); ++i) {
    if (toks[i].in_pp) continue;
    if (!out.empty() && toks[i].kind == TokKind::kIdentifier &&
        toks[i - 1].kind == TokKind::kIdentifier) {
      out += ' ';
    }
    out += toks[i].text;
  }
  return out;
}

class BodyScanner {
 public:
  BodyScanner(const std::vector<Token>& toks, const Symbol& sym,
              CallableDataflow* out)
      : toks_(toks), sym_(sym), out_(out) {}

  void run() {
    collect_params();
    collect_locals();
    collect_defs_and_uses();
  }

 private:
  const Token& tok(std::size_t i) const { return toks_[i]; }

  void add_param(std::size_t begin, std::size_t end) {
    // `Type name`, `Type name = default` — the name is the last identifier
    // before the end / `=`.
    std::size_t stop = end;
    for (std::size_t k = begin; k < end; ++k) {
      if (tok(k).is_punct("=")) {
        stop = k;
        break;
      }
    }
    std::size_t name_tok = npos;
    for (std::size_t k = stop; k-- > begin;) {
      if (tok(k).in_pp) continue;
      if (tok(k).kind == TokKind::kIdentifier && !is_type_keyword(tok(k).text)) {
        // Skip template-argument identifiers: require the name outside <>.
        int angle = 0;
        for (std::size_t j = k + 1; j < stop; ++j) {
          if (tok(j).is_punct(">")) ++angle;
          if (tok(j).is_punct("<")) --angle;
        }
        if (angle != 0) continue;
        name_tok = k;
        break;
      }
      break;  // ends with `&`, `*`, `...` etc: unnamed parameter
    }
    if (name_tok == npos || name_tok == begin) return;
    Local local;
    local.name = tok(name_tok).text;
    local.decl_tok = name_tok;
    local.line = tok(name_tok).line;
    local.col = tok(name_tok).col;
    local.type_text = join_tokens(toks_, begin, name_tok);
    local.is_param = true;
    local.is_const = local.type_text.find("const") != std::string::npos;
    out_->locals.push_back(std::move(local));
  }

  void collect_params() {
    if (sym_.params_begin == npos || sym_.params_end == npos) return;
    std::size_t piece = sym_.params_begin + 1;
    int depth = 0;
    for (std::size_t k = piece; k <= sym_.params_end; ++k) {
      if (tok(k).in_pp) continue;
      if (tok(k).is_punct("(") || tok(k).is_punct("<") ||
          tok(k).is_punct("[") || tok(k).is_punct("{")) {
        ++depth;
      }
      if (tok(k).is_punct(")") || tok(k).is_punct(">") ||
          tok(k).is_punct("]") || tok(k).is_punct("}")) {
        --depth;
      }
      const bool at_end = k == sym_.params_end;
      if ((tok(k).is_punct(",") && depth == 0) || at_end) {
        if (k > piece) add_param(piece, k);
        piece = k + 1;
      }
    }
  }

  /// Declaration heuristic over one statement: `Type name = ...`,
  /// `Type name(...)`, `Type name{...}`, `Type name;`.
  void maybe_local_decl(std::size_t begin, std::size_t end) {
    bool is_const = false;
    std::size_t name_tok = npos;
    int paren = 0, bracket = 0;
    for (std::size_t k = begin; k < end; ++k) {
      if (tok(k).in_pp) continue;
      const Token& t = tok(k);
      if (t.is_punct("(")) ++paren;
      if (t.is_punct(")")) --paren;
      if (t.is_punct("[")) ++bracket;
      if (t.is_punct("]")) --bracket;
      if (t.kind != TokKind::kIdentifier) continue;
      if (is_decl_stopper(t.text) || t.text == "operator" ||
          t.text == "template" || t.text == "namespace") {
        return;
      }
      if ((t.text == "const" || t.text == "constexpr") && name_tok == npos) {
        is_const = true;
      }
      if (paren > 0 || bracket > 0 || name_tok != npos) continue;
      if (is_type_keyword(t.text) && t.text != "auto") continue;
      if (k == begin) continue;
      const Token& prev = tok(k - 1);
      const bool typed_before =
          (prev.kind == TokKind::kIdentifier &&
           prev.text != "return" && !is_control_keyword(prev.text)) ||
          prev.is_punct(">") || prev.is_punct("*") || prev.is_punct("&");
      if (!typed_before) continue;
      const bool ends_decl =
          k + 1 == end || tok(k + 1).is_punct("=") ||
          tok(k + 1).is_punct("{") || tok(k + 1).is_punct("(") ||
          tok(k + 1).is_punct("[");
      if (!ends_decl) continue;
      // `a == b` and `a <= b` are comparisons.
      if (k + 2 < end && tok(k + 1).is_punct("=") && tok(k + 2).is_punct("=")) {
        continue;
      }
      name_tok = k;
    }
    if (name_tok == npos) return;

    Local local;
    local.name = tok(name_tok).text;
    local.decl_tok = name_tok;
    local.line = tok(name_tok).line;
    local.col = tok(name_tok).col;
    local.type_text = join_tokens(toks_, begin, name_tok);
    local.is_const = is_const;
    // Initializer counts as the first def: `auto x = f();`.
    if (name_tok + 1 < end && (tok(name_tok + 1).is_punct("=") ||
                               tok(name_tok + 1).is_punct("(") ||
                               tok(name_tok + 1).is_punct("{"))) {
      Def def;
      def.tok = name_tok;
      def.rhs_begin = name_tok + 2;
      def.rhs_end = end;
      local.defs.push_back(def);
    }
    out_->locals.push_back(std::move(local));
  }

  /// `for (T x : range)` — bind x, remember the range expression.
  /// `for (init; cond; step)` — run the decl heuristic on init.
  void handle_for(std::size_t open, std::size_t close) {
    std::size_t colon = npos, semi = npos;
    int depth = 0;
    for (std::size_t k = open + 1; k < close; ++k) {
      if (tok(k).in_pp) continue;
      if (tok(k).is_punct("(") || tok(k).is_punct("[") ||
          tok(k).is_punct("{")) {
        ++depth;
      }
      if (tok(k).is_punct(")") || tok(k).is_punct("]") ||
          tok(k).is_punct("}")) {
        --depth;
      }
      if (depth != 0) continue;
      if (tok(k).is_punct(":") && colon == npos &&
          !(k > 0 && tok(k - 1).is_punct(":")) &&
          !(k + 1 < close && tok(k + 1).is_punct(":"))) {
        colon = k;
      }
      if (tok(k).is_punct(";") && semi == npos) semi = k;
    }
    if (colon != npos && semi == npos) {
      // Range-for: name is the identifier right before the ':'.
      std::size_t name_tok = npos;
      for (std::size_t k = colon; k-- > open + 1;) {
        if (tok(k).in_pp) continue;
        if (tok(k).kind == TokKind::kIdentifier) name_tok = k;
        break;
      }
      if (name_tok == npos) return;
      Local local;
      local.name = tok(name_tok).text;
      local.decl_tok = name_tok;
      local.line = tok(name_tok).line;
      local.col = tok(name_tok).col;
      local.type_text = join_tokens(toks_, open + 1, name_tok);
      local.is_const =
          local.type_text.find("const") != std::string::npos;
      local.is_range_for = true;
      local.range_begin = colon + 1;
      local.range_end = close;
      out_->locals.push_back(std::move(local));
    } else if (semi != npos) {
      maybe_local_decl(open + 1, semi);
    }
  }

  void collect_locals() {
    std::size_t stmt_start = sym_.body_begin + 1;
    for (std::size_t i = sym_.body_begin + 1; i < sym_.body_end; ++i) {
      const Token& t = tok(i);
      if (t.in_pp) {
        stmt_start = i + 1;
        continue;
      }
      if (t.is_punct("{") || t.is_punct("}")) {
        stmt_start = i + 1;
        continue;
      }
      if (t.is_punct(";")) {
        maybe_local_decl(stmt_start, i);
        stmt_start = i + 1;
        continue;
      }
      if (t.is_id("for") && i + 1 < sym_.body_end &&
          tok(i + 1).is_punct("(")) {
        std::size_t close = 0;
        if (match_paren(toks_, i + 1, &close) && close < sym_.body_end) {
          handle_for(i + 1, close);
          i = close;
          stmt_start = i + 1;
        }
        continue;
      }
      if (t.is_punct("(") && i > stmt_start) {
        // Skip argument lists so their ';' (impossible) or ',' never split
        // statements; condition parens of if/while are fine to walk.
        continue;
      }
    }
  }

  void collect_defs_and_uses() {
    for (std::size_t i = sym_.body_begin + 1; i < sym_.body_end; ++i) {
      const Token& t = tok(i);
      if (t.in_pp || t.kind != TokKind::kIdentifier) continue;
      const std::size_t local_id = out_->find(t.text);
      if (local_id == npos) continue;
      Local& local = out_->locals[local_id];
      if (i == local.decl_tok) continue;
      // Member access `obj.x` / `p->x` / `A::x` is not this local.
      if (i > 0 && (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->") ||
                    tok(i - 1).is_punct("::"))) {
        continue;
      }
      const bool next_eq = i + 1 < sym_.body_end && tok(i + 1).is_punct("=");
      const bool next_next_eq =
          i + 2 < sym_.body_end && tok(i + 2).is_punct("=");
      if (next_eq && !next_next_eq) {
        // Plain assignment; find the statement end for the RHS range.
        std::size_t end = i + 2;
        int depth = 0;
        while (end < sym_.body_end) {
          if (tok(end).is_punct("(") || tok(end).is_punct("[") ||
              tok(end).is_punct("{")) {
            ++depth;
          }
          if (tok(end).is_punct(")") || tok(end).is_punct("]") ||
              tok(end).is_punct("}")) {
            if (depth == 0) break;
            --depth;
          }
          if (tok(end).is_punct(";") && depth == 0) break;
          ++end;
        }
        Def def;
        def.tok = i;
        def.rhs_begin = i + 2;
        def.rhs_end = end;
        local.defs.push_back(def);
        continue;
      }
      // Compound assignment lexes as two puncts: `x += 1` is x + = 1.
      const bool compound =
          i + 2 < sym_.body_end && next_next_eq &&
          (tok(i + 1).is_punct("+") || tok(i + 1).is_punct("-") ||
           tok(i + 1).is_punct("*") || tok(i + 1).is_punct("/") ||
           tok(i + 1).is_punct("%") || tok(i + 1).is_punct("&") ||
           tok(i + 1).is_punct("|") || tok(i + 1).is_punct("^"));
      const bool inc_dec =
          (i + 2 < sym_.body_end && tok(i + 1).is_punct("+") &&
           tok(i + 2).is_punct("+")) ||
          (i + 2 < sym_.body_end && tok(i + 1).is_punct("-") &&
           tok(i + 2).is_punct("-")) ||
          (i >= 2 && tok(i - 1).is_punct("+") && tok(i - 2).is_punct("+")) ||
          (i >= 2 && tok(i - 1).is_punct("-") && tok(i - 2).is_punct("-"));
      if (compound || inc_dec) {
        Def def;
        def.tok = i;
        def.rhs_begin = i;
        def.rhs_end = i;
        local.defs.push_back(def);
        continue;
      }
      local.uses.push_back(i);
    }
  }

  const std::vector<Token>& toks_;
  const Symbol& sym_;
  CallableDataflow* out_;
};

}  // namespace

std::size_t CallableDataflow::find(const std::string& name) const {
  for (std::size_t i = 0; i < locals.size(); ++i) {
    if (locals[i].name == name) return i;
  }
  return Symbol::npos;
}

const CallableDataflow* Dataflow::for_symbol(std::size_t symbol) const {
  auto it = by_symbol.find(symbol);
  return it == by_symbol.end() ? nullptr : &callables[it->second];
}

Dataflow build_dataflow(const Model& model, const SymbolIndex& index) {
  Dataflow flow;
  for (std::size_t id = 0; id < index.symbols.size(); ++id) {
    const Symbol& sym = index.symbols[id];
    if (!sym.is_callable() || sym.body_begin == Symbol::npos ||
        sym.body_end == Symbol::npos) {
      continue;
    }
    CallableDataflow df;
    df.symbol = id;
    BodyScanner(model.files[sym.file].lex.tokens, sym, &df).run();
    flow.by_symbol[id] = flow.callables.size();
    flow.callables.push_back(std::move(df));
  }
  return flow;
}

}  // namespace quicsteps::analyze
