#!/bin/sh
# tools/check.sh — the one-command correctness gate.
#
# Builds and runs the full matrix, stopping at the first failure:
#
#   1. -Werror build (audits ON)      -> tier-1 ctest + full determinism
#                                        hash gate (test_check) + the
#                                        ParallelRunner framework suite
#   2. ASan + UBSan build             -> ctest -L tier1-asan
#   3. TSan build                     -> ctest -L tier1-tsan (tier-1 plus
#                                        the worker-pool framework tests)
#   4. static analysis                -> quicsteps-analyze over src/ AND
#                                        its own sources (self-hosting):
#                                        layering / units / determinism /
#                                        scheduling / perf / concurrency,
#                                        plus the legacy lint wrapper CLI
#   5. clang-tidy (when installed)    -> `tidy` target, .clang-tidy profile
#
# Build trees live in build-check/, build-asan/, build-tsan/ next to the
# usual build/ so the gate never dirties a developer tree; re-runs are
# incremental. Override parallelism with JOBS=<n>.
set -eu

ROOT=$(cd "$(dirname "$0")/.." && pwd)
JOBS=${JOBS:-$(nproc)}
SUPP="$ROOT/tools/sanitizers"

# halt_on_error everywhere: the first corruption stops the run. UBSan also
# halts via -fno-sanitize-recover baked into the build flags.
ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:suppressions=$SUPP/asan.supp"
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1:suppressions=$SUPP/ubsan.supp"
TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1:suppressions=$SUPP/tsan.supp"
export ASAN_OPTIONS UBSAN_OPTIONS TSAN_OPTIONS

step() {
    printf '\n=== check.sh: %s ===\n' "$*"
}

configure_and_build() {
    dir=$1
    shift
    cmake -B "$ROOT/$dir" -S "$ROOT" -DQUICSTEPS_WERROR=ON "$@"
    cmake --build "$ROOT/$dir" -j "$JOBS"
}

step "1/5 -Werror build + tier-1 + determinism/framework gates"
configure_and_build build-check -DQUICSTEPS_AUDIT=ON
ctest --test-dir "$ROOT/build-check" -L tier1 --output-on-failure --no-tests=error -j "$JOBS"
# tier1 already includes test_check's serial==parallel hash gate over the
# full stack x seed grid; the framework label adds the worker-pool and
# end-to-end suites.
ctest --test-dir "$ROOT/build-check" -L framework --output-on-failure --no-tests=error -j "$JOBS"

step "2/5 ASan + UBSan tier-1"
configure_and_build build-asan "-DQUICSTEPS_SANITIZE=address;undefined"
ctest --test-dir "$ROOT/build-asan" -L tier1-asan --output-on-failure --no-tests=error -j "$JOBS"

step "3/5 TSan tier-1 + ParallelRunner framework tests"
configure_and_build build-tsan "-DQUICSTEPS_SANITIZE=thread"
ctest --test-dir "$ROOT/build-tsan" -L tier1-tsan --output-on-failure --no-tests=error -j "$JOBS"

step "4/5 static analysis (quicsteps-analyze + lint wrapper)"
cmake --build "$ROOT/build-check" --target analyze
# The legacy lint CLI is now a thin wrapper over the analyzer's
# determinism family; run it too so its interface stays covered.
cmake --build "$ROOT/build-check" --target lint

step "5/5 clang-tidy (no-op when not installed)"
cmake --build "$ROOT/build-check" --target tidy

step "all gates passed"
