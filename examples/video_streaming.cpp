// Video streaming scenario (the paper's motivating application).
//
// A DASH-like player fetches media segments over QUIC; each segment is one
// request on a fresh connection (worst case for slow start, as with CDN
// connection churn). We compare stacks and pacing setups on the metrics a
// streaming service cares about: segment download time (rebuffer risk),
// burstiness on the wire (set-top-box and home-router queue pressure), and
// loss at the access-link bottleneck.
//
// Usage: video_streaming [segment_MiB] [segments]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/quicsteps.hpp"

using namespace quicsteps;

namespace {

struct StreamVerdict {
  std::string label;
  double mean_segment_seconds = 0;
  double worst_segment_seconds = 0;
  double burst_share = 0;  // packets in trains > 5
  double drops_per_segment = 0;
};

StreamVerdict stream(const std::string& label, framework::StackKind stack,
                     cc::CcAlgorithm cca, framework::QdiscKind qdisc,
                     std::int64_t segment_bytes, int segments) {
  StreamVerdict verdict;
  verdict.label = label;
  double total = 0;
  for (int seg = 0; seg < segments; ++seg) {
    framework::ExperimentConfig config;
    config.label = label;
    config.stack = stack;
    config.cca = cca;
    config.topology.server_qdisc = qdisc;
    config.payload_bytes = segment_bytes;
    auto run = framework::Runner::run_once(config, 100 + seg);
    const double seconds = run.goodput.elapsed.to_seconds();
    total += seconds;
    verdict.worst_segment_seconds =
        std::max(verdict.worst_segment_seconds, seconds);
    verdict.burst_share += 1.0 - run.trains.fraction_in_trains_up_to(5);
    verdict.drops_per_segment += static_cast<double>(run.dropped_packets);
  }
  verdict.mean_segment_seconds = total / segments;
  verdict.burst_share /= segments;
  verdict.drops_per_segment /= segments;
  return verdict;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t segment_bytes =
      (argc > 1 ? std::atoll(argv[1]) : 4) * 1024 * 1024;
  const int segments = argc > 2 ? std::atoi(argv[2]) : 3;

  std::printf(
      "video streaming scenario: %lld MiB segments x %d, 40 Mbit/s access "
      "link, 40 ms RTT\n(a 4 MiB segment is ~4 s of 8 Mbit/s video; "
      "download time near or above\nsegment duration means rebuffering)\n\n",
      static_cast<long long>(segment_bytes / (1024 * 1024)), segments);

  std::vector<StreamVerdict> verdicts = {
      stream("quiche (default)", framework::StackKind::kQuiche,
             cc::CcAlgorithm::kCubic, framework::QdiscKind::kFqCodel,
             segment_bytes, segments),
      stream("quiche + FQ + SF", framework::StackKind::kQuicheSf,
             cc::CcAlgorithm::kCubic, framework::QdiscKind::kFq,
             segment_bytes, segments),
      stream("picoquic + BBR", framework::StackKind::kPicoquic,
             cc::CcAlgorithm::kBbr, framework::QdiscKind::kFqCodel,
             segment_bytes, segments),
      stream("ngtcp2", framework::StackKind::kNgtcp2,
             cc::CcAlgorithm::kCubic, framework::QdiscKind::kFqCodel,
             segment_bytes, segments),
  };

  std::printf("%-18s %12s %12s %14s %12s\n", "configuration", "mean [s]",
              "worst [s]", "bursty pkts", "drops/seg");
  std::printf("%s\n", std::string(74, '-').c_str());
  for (const auto& v : verdicts) {
    std::printf("%-18s %12.2f %12.2f %13.1f%% %12.1f\n", v.label.c_str(),
                v.mean_segment_seconds, v.worst_segment_seconds,
                100.0 * v.burst_share, v.drops_per_segment);
  }

  std::printf(
      "\nreading: picoquic+BBR and quiche+FQ keep the wire smooth (low "
      "bursty share)\nwhile matching download times; ngtcp2's conservative "
      "client caps throughput\nand risks rebuffering on larger segments — "
      "the per-application trade-offs the\npaper's conclusion points at.\n");
  return 0;
}
