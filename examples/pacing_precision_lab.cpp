// Pacing precision lab: a low-level tour of the library. Builds the
// topology by hand, attaches different senders (the ideal reference server
// vs. the stack models), dials OS timing quality up and down, and measures
// what reaches the wire — the experiment you'd run to answer "how good can
// user-space pacing get on my host?".
//
// Usage: pacing_precision_lab [payload_MiB]
#include <cstdio>
#include <cstdlib>

#include "core/quicsteps.hpp"

using namespace quicsteps;
using namespace quicsteps::sim::literals;

namespace {

struct LabResult {
  double precision_ms;
  double trains_up_to_3;
  double goodput_mbps;
};

/// Runs the ideal reference server (perfect timers, waits for the pacer)
/// over a hand-built topology with the given OS timing quality.
LabResult run_ideal(std::int64_t payload, kernel::OsTimingConfig os_timing) {
  sim::EventLoop loop;
  sim::Rng rng(42);
  framework::TopologyConfig tcfg;
  tcfg.server_qdisc = framework::QdiscKind::kFifo;  // no kernel help
  tcfg.server_os = os_timing;
  framework::Topology topo(loop, tcfg, rng);

  quic::Connection::Config conn_cfg;
  conn_cfg.total_payload_bytes = payload;
  quic::ReferenceServer server(loop, conn_cfg, topo.server_egress());
  // Pacer sleeps go through the host's timer quality (50 us slack on the
  // RT host, more on the noisy one).
  kernel::TimerService::Config timer_cfg;
  timer_cfg.slack_max = os_timing.wakeup_latency_mean * 6.0 +
                        sim::Duration::micros(20);
  kernel::TimerService timers(loop, topo.server_os(), timer_cfg);
  server.set_pacer_timers(&timers);
  quic::Client client(loop, {.ack = {}, .expected_payload_bytes = payload},
                      topo.client_egress());
  topo.set_client_handler([&](net::Packet pkt) { client.on_datagram(pkt); });
  topo.set_server_handler([&](net::Packet pkt) { server.on_datagram(pkt); });

  server.start();
  loop.run_until(sim::Time::zero() + 600_s);

  LabResult result;
  result.precision_ms =
      metrics::PrecisionAnalyzer().analyze(topo.tap().capture()).precision_ms;
  result.trains_up_to_3 = metrics::TrainAnalyzer()
                              .analyze(topo.tap().capture())
                              .fraction_in_trains_up_to(3);
  result.goodput_mbps =
      metrics::compute_goodput(client.stats().payload_bytes_received,
                               client.stats().first_packet_time,
                               client.stats().completion_time)
          .goodput.mbps();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t payload =
      (argc > 1 ? std::atoll(argv[1]) : 5) * 1024 * 1024;

  std::printf("pacing precision lab — how good can user-space pacing get?\n\n");

  // 1. The ideal sender on hosts of varying timing quality.
  struct OsVariant {
    const char* label;
    kernel::OsTimingConfig timing;
  };
  kernel::OsTimingConfig rt;  // tuned RT host (defaults)
  kernel::OsTimingConfig noisy;
  noisy.wakeup_latency_mean = 60_us;
  noisy.wakeup_latency_stddev = 80_us;
  noisy.syscall_base = 8_us;
  noisy.syscall_jitter_mean = 6_us;
  noisy.syscall_jitter_cap = 300_us;
  kernel::OsTimingConfig perfect;
  perfect.wakeup_latency_mean = sim::Duration::zero();
  perfect.wakeup_latency_stddev = sim::Duration::zero();
  perfect.syscall_base = sim::Duration::zero();
  perfect.syscall_jitter_mean = sim::Duration::zero();

  std::printf("ideal sender (waits for its pacer, fires timers exactly), "
              "no kernel help:\n");
  std::printf("%-22s %16s %14s %12s\n", "host timing", "precision [ms]",
              "trains <=3", "goodput");
  std::printf("%s\n", std::string(68, '-').c_str());
  for (const OsVariant& variant :
       {OsVariant{"perfect host", perfect}, OsVariant{"RT-tuned host", rt},
        OsVariant{"noisy host", noisy}}) {
    auto r = run_ideal(payload, variant.timing);
    std::printf("%-22s %16.3f %13.1f%% %9.2f Mb\n", variant.label,
                r.precision_ms, 100.0 * r.trains_up_to_3, r.goodput_mbps);
  }

  // 2. The measured stacks on the RT host for contrast.
  std::printf("\nstack models on the RT-tuned host (baseline qdisc):\n");
  std::printf("%-22s %16s %14s %12s\n", "stack", "precision [ms]",
              "trains <=3", "goodput");
  std::printf("%s\n", std::string(68, '-').c_str());
  const framework::StackKind stacks[] = {framework::StackKind::kQuicheSf,
                                         framework::StackKind::kPicoquic,
                                         framework::StackKind::kNgtcp2};
  for (auto stack : stacks) {
    framework::ExperimentConfig config;
    config.label = framework::to_string(stack);
    config.stack = stack;
    config.payload_bytes = payload;
    auto run = framework::Runner::run_once(config, 42);
    std::printf("%-22s %16.3f %13.1f%% %9.2f Mb\n",
                framework::to_string(stack), run.precision.precision_ms,
                100.0 * run.trains.fraction_in_trains_up_to(3),
                run.goodput.goodput.mbps());
  }

  std::printf(
      "\nreading: with ideal discipline, user-space pacing is limited only "
      "by host\ntiming quality — the paper's conclusion that 'accurate "
      "pacing can be entirely\ndone from user-space' (picoquic+BBR) holds; "
      "the stacks' gaps come from their\nevent-loop disciplines, not from "
      "an inherent user-space limit.\n");
  return 0;
}
