// Qdisc shootout: one stack (quiche + SF), every server-side queueing
// discipline the library models. Shows where kernel help matters: the
// txtime-honoring qdiscs (FQ, ETF) turn quiche's burst-writes into paced
// wire traffic, the defaults pass the bursts through.
//
// Usage: qdisc_shootout [payload_MiB]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/quicsteps.hpp"

using namespace quicsteps;

int main(int argc, char** argv) {
  const std::int64_t payload =
      (argc > 1 ? std::atoll(argv[1]) : 10) * 1024 * 1024;

  const framework::QdiscKind qdiscs[] = {
      framework::QdiscKind::kFifo, framework::QdiscKind::kFqCodel,
      framework::QdiscKind::kFq, framework::QdiscKind::kEtf,
      framework::QdiscKind::kEtfOffload};

  std::printf("qdisc shootout: quiche+SF, CUBIC, %lld MiB over the paper "
              "topology\n\n",
              static_cast<long long>(payload / (1024 * 1024)));
  std::printf("%-16s %12s %14s %14s %16s\n", "qdisc", "goodput",
              "pkts in <=5", "back-to-back", "precision [ms]");
  std::printf("%s\n", std::string(76, '-').c_str());

  std::vector<framework::Aggregate> rows;
  for (auto qdisc : qdiscs) {
    framework::ExperimentConfig config;
    config.label = framework::to_string(qdisc);
    config.stack = framework::StackKind::kQuicheSf;
    config.topology.server_qdisc = qdisc;
    config.payload_bytes = payload;
    config.repetitions = 3;
    auto agg = framework::aggregate(config.label,
                                    framework::Runner::run_all(config));
    std::printf("%-16s %9.2f Mb %13.1f%% %13.1f%% %16s\n",
                agg.label.c_str(), agg.goodput_mbps.mean,
                100.0 * agg.fraction_in_trains_up_to(5),
                100.0 * agg.back_to_back_fraction.mean,
                agg.precision_ms.to_string(3).c_str());
    rows.push_back(std::move(agg));
  }

  std::fputs(framework::render_gap_figure(rows,
                                          "inter-packet gaps per qdisc",
                                          sim::Duration::millis(2))
                 .c_str(),
             stdout);
  return 0;
}
