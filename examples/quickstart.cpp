// Quickstart: run the paper's baseline configuration (default qdisc, CUBIC,
// no GSO) for all four stacks over the Figure-1 topology and print the
// Table 1 / Figure 2 / Figure 3 style summaries.
//
// Usage: quickstart [payload_MiB] [repetitions]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/quicsteps.hpp"

using namespace quicsteps;

int main(int argc, char** argv) {
  std::int64_t payload = 5ll * 1024 * 1024;
  int reps = 2;
  if (argc > 1) payload = std::atoll(argv[1]) * 1024 * 1024;
  if (argc > 2) reps = std::atoi(argv[2]);

  std::printf("quicsteps %s — baseline demo: %lld MiB, %d repetition(s)\n",
              kVersion, static_cast<long long>(payload / (1024 * 1024)),
              reps);

  const framework::StackKind stacks[] = {
      framework::StackKind::kQuiche, framework::StackKind::kPicoquic,
      framework::StackKind::kNgtcp2, framework::StackKind::kTcpTls};

  std::vector<framework::Aggregate> aggregates;
  for (auto stack : stacks) {
    framework::ExperimentConfig config;
    config.label = framework::to_string(stack);
    config.stack = stack;
    config.cca = cc::CcAlgorithm::kCubic;
    config.payload_bytes = payload;
    config.repetitions = reps;
    auto runs = framework::Runner::run_all(config);
    aggregates.push_back(framework::aggregate(config.label, runs));
  }

  std::cout << framework::render_goodput_table(
      aggregates, "Baseline goodput and loss (Table 1 shape)");
  std::cout << framework::render_gap_figure(
      aggregates, "Inter-packet gaps (Figure 2 shape)");
  std::cout << framework::render_train_figure(
      aggregates, "Packet trains (Figure 3 shape)");
  return 0;
}
