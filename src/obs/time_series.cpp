#include "obs/time_series.hpp"

#include <algorithm>

namespace quicsteps::obs {

TimeSeries::TimeSeries(sim::Duration width, std::size_t capacity,
                       SnapshotFn snapshot, void* snapshot_ctx)
    : width_ns_(std::max<std::int64_t>(width.ns(), 1)),
      cap_(static_cast<std::int64_t>(std::max<std::size_t>(capacity, 2))),
      snapshot_fn_(snapshot),
      snapshot_ctx_(snapshot_ctx) {
  ring_.resize(static_cast<std::size_t>(cap_));
}

void TimeSeries::close_open_window() {
  // Attribute the bottleneck counter movement since the last close to the
  // window being closed. After finalize() the counters are static, so
  // span-only extensions must not re-snapshot — they would overwrite the
  // final window's drain delta with zeros.
  if (finalized_ || snapshot_fn_ == nullptr) return;
  const Snapshot now = snapshot_fn_(snapshot_ctx_);
  Window& w = slot(end_ord_ - 1);
  w.delivered_packets = now.delivered_packets - last_snapshot_.delivered_packets;
  w.dropped_packets = now.dropped_packets - last_snapshot_.dropped_packets;
  w.backlog_packets = now.backlog_packets;
  last_snapshot_ = now;
}

void TimeSeries::roll_to(std::int64_t ord) {
  std::int64_t from = ord;
  if (end_ord_ != begin_ord_) {
    if (ord < end_ord_) return;  // still inside the open window
    close_open_window();
    from = end_ord_;
  } else {
    begin_ord_ = ord;
    end_ord_ = ord;
  }
  if (ord - from + 1 > cap_) {
    // The gap alone overflows the ring: everything currently retained and
    // every gap ordinal below the surviving range evicts wholesale
    // instead of being materialized one slot at a time.
    const std::int64_t new_begin = ord - cap_ + 1;
    evicted_ += new_begin - begin_ord_;
    begin_ord_ = new_begin;
    end_ord_ = new_begin;
    from = new_begin;
  }
  for (std::int64_t o = from; o <= ord; ++o) {
    Window& w = slot(o);
    w = Window{};
    w.index = o;
    end_ord_ = o + 1;
    if (end_ord_ - begin_ord_ > cap_) {
      ++evicted_;
      ++begin_ord_;
    }
  }
}

void TimeSeries::finalize() {
  if (finalized_ || end_ord_ == begin_ord_) {
    finalized_ = true;
    return;
  }
  close_open_window();
  finalized_ = true;
}

void TimeSeries::fold_spans(const std::vector<SpanEvent>& events) {
  for (const SpanEvent& ev : events) {
    if (ev.intended.ns() == 0) continue;  // no pacer intent to diff against
    const std::int64_t ord = ev.at.ns() / width_ns_;
    if (end_ord_ == begin_ord_ || ord >= end_ord_) roll_to(ord);
    if (ord < begin_ord_) continue;  // window already evicted
    Window& w = slot(ord);
    const std::size_t stage = static_cast<std::size_t>(ev.stage);
    ++w.stage_count[stage];
    w.stage_error_sum_us[stage] += (ev.at - ev.intended).us();
  }
}

std::string TimeSeries::to_csv() const {
  std::string out =
      "window,start_us,wire_packets,wire_bytes,delivered_packets,"
      "dropped_packets,backlog_packets";
  for (std::size_t s = 0; s < kTraceStageCount; ++s) {
    const std::string stage = to_string(static_cast<TraceStage>(s));
    out += ",n_" + stage + ",err_us_" + stage;
  }
  out += '\n';
  for (std::int64_t o = begin_ord_; o < end_ord_; ++o) {
    const Window& w = window(o);
    out += std::to_string(o) + ',' +
           std::to_string(o * width_ns_ / 1'000) + ',' +
           std::to_string(w.wire_packets) + ',' +
           std::to_string(w.wire_bytes) + ',' +
           std::to_string(w.delivered_packets) + ',' +
           std::to_string(w.dropped_packets) + ',' +
           std::to_string(w.backlog_packets);
    for (std::size_t s = 0; s < kTraceStageCount; ++s) {
      out += ',' + std::to_string(w.stage_count[s]) + ',' +
             std::to_string(w.stage_error_sum_us[s]);
    }
    out += '\n';
  }
  return out;
}

}  // namespace quicsteps::obs
