#include "obs/trace.hpp"

namespace quicsteps::obs {

const char* to_string(TraceStage stage) {
  switch (stage) {
    case TraceStage::kPacerRelease:
      return "transport:pacer_release";
    case TraceStage::kSocketWrite:
      return "kernel:socket_write";
    case TraceStage::kQdiscEnqueue:
      return "kernel:qdisc_enqueue";
    case TraceStage::kQdiscDequeue:
      return "kernel:qdisc_dequeue";
    case TraceStage::kQdiscDrop:
      return "kernel:qdisc_drop";
    case TraceStage::kGsoSegment:
      return "kernel:gso_segment";
    case TraceStage::kNicTx:
      return "kernel:nic_tx";
    case TraceStage::kWire:
      return "wire:packet_departure";
    case TraceStage::kDelivery:
      return "transport:datagram_received";
  }
  return "transport:pacer_release";
}

}  // namespace quicsteps::obs
