// MetricsRegistry: one deterministic sink for everything a run measures
// about itself.
//
// net::Counters snapshots (per-component packet/byte books), gauges (queue
// depth high-water marks, loop max-pending), counters (events executed per
// class, pacer releases), and histograms (pacing error per path stage) all
// land here and are emitted through the same sorted-name discipline as
// net::CountersTable: rows are rendered in ascending metric-name order, so
// output is identical across runs and job counts regardless of insertion
// order. Ordered std::map storage makes the walk itself deterministic —
// the analyzer's determinism/exporter-unordered rule keeps it that way.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/counters.hpp"

namespace quicsteps::obs {

/// Fixed-bound histogram over microsecond-scale values (pacing errors).
/// Bounds are inclusive upper edges; one implicit overflow bucket catches
/// the rest. Integer counts plus an exact integer sum keep rendering
/// deterministic (no float accumulation-order dependence).
class Histogram {
 public:
  /// Default edges for pacing-error distributions, in microseconds.
  static std::vector<std::int64_t> pacing_error_bounds_us();

  Histogram() : Histogram(pacing_error_bounds_us()) {}
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t value);

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return min_; }
  std::int64_t max() const { return max_; }
  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// bucket_counts()[i] counts values <= bounds()[i]; the final entry is
  /// the overflow bucket.
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }

  /// "count=5 sum=120 min=-3 max=60 le10=2 le100=3 ..." — sorted-edge,
  /// fixed-format rendering.
  std::string to_string() const;

 private:
  std::vector<std::int64_t> bounds_;  // ascending upper edges
  std::vector<std::int64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

class MetricsRegistry {
 public:
  /// Sets a point-in-time value (last write wins).
  void set_gauge(const std::string& name, std::int64_t value);
  /// Accumulates into a monotonic counter.
  void add_counter(const std::string& name, std::int64_t delta);
  /// Returns the named histogram, creating it with default pacing-error
  /// bounds on first use.
  Histogram& histogram(const std::string& name);

  /// Folds a whole counters table in: each row becomes gauges under
  /// "<prefix><row>/..." (in, out, dropped, queue_peak).
  void add_counters_table(const std::string& prefix,
                          const net::CountersTable& table);

  const std::map<std::string, std::int64_t>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// One "name: value" line per metric, ascending name order across all
  /// three kinds (gauge / counter / histogram annotated by kind).
  std::string to_string() const;

 private:
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace quicsteps::obs
