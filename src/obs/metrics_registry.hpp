// MetricsRegistry: one deterministic sink for everything a run measures
// about itself.
//
// net::Counters snapshots (per-component packet/byte books), gauges (queue
// depth high-water marks, loop max-pending), counters (events executed per
// class, pacer releases), histograms (pacing error per path stage), and
// quantile sketches (fleet tails) all land here and are emitted through
// the same sorted-name discipline as net::CountersTable: rows are rendered
// in ascending metric-name order, so output is identical across runs and
// job counts regardless of insertion order. Ordered std::map storage makes
// the walk itself deterministic — the analyzer's determinism/
// exporter-unordered rule keeps it that way.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/counters.hpp"
#include "obs/quantile_sketch.hpp"

namespace quicsteps::obs {

/// Fixed-bound histogram over microsecond-scale values (pacing errors).
/// Bounds are inclusive upper edges. Out-of-range samples are never
/// silently clipped: values above the highest edge land in an explicit
/// overflow bucket, values below the lowest edge in an explicit underflow
/// counter, and both are emitted by to_string(). Integer counts plus an
/// exact integer sum keep rendering deterministic (no float
/// accumulation-order dependence).
class Histogram {
 public:
  /// Default edges for pacing-error distributions, in microseconds.
  static std::vector<std::int64_t> pacing_error_bounds_us();

  Histogram() : Histogram(pacing_error_bounds_us()) {}
  explicit Histogram(std::vector<std::int64_t> bounds);

  void observe(std::int64_t value);

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return min_; }
  std::int64_t max() const { return max_; }
  /// Samples strictly below the lowest edge / above the highest edge.
  /// Both are included in count()/sum()/min()/max().
  std::int64_t underflow() const { return underflow_; }
  std::int64_t overflow() const { return counts_.back(); }
  const std::vector<std::int64_t>& bounds() const { return bounds_; }
  /// bucket_counts()[i] counts values <= bounds()[i] (and above the
  /// previous edge); the final entry is the overflow bucket. Underflow
  /// samples are NOT in any bucket — see underflow().
  const std::vector<std::int64_t>& bucket_counts() const { return counts_; }

  /// "count=5 sum=120 min=-3 max=60 under=1 le10=2 le100=3 ... over=0" —
  /// sorted-edge, fixed-format rendering with the out-of-range mass
  /// explicit at both ends.
  std::string to_string() const;

 private:
  std::vector<std::int64_t> bounds_;  // ascending upper edges
  std::vector<std::int64_t> counts_;  // bounds_.size() + 1 (overflow)
  std::int64_t underflow_ = 0;
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

/// Pre-resolved counter for hot loops: one map lookup at wiring time,
/// then a bare int64 add per touch. The handle points into the owning
/// MetricsRegistry's node-stable map storage — valid for the registry's
/// lifetime (moving the registry itself moves the map nodes with it, so
/// handles resolved before a run must not outlive the run's registry
/// instance).
class CounterHandle {
 public:
  CounterHandle() = default;

  /// Const: the handle itself is immutable (it mutates the counter it
  /// points at), so by-value lambda captures work without `mutable`.
  void add(std::int64_t delta) const { *value_ += delta; }

 private:
  friend class MetricsRegistry;
  explicit CounterHandle(std::int64_t* value) : value_(value) {}
  // Null only for a default-constructed handle; MetricsRegistry::counter
  // always binds. A default handle must be re-resolved before use.
  std::int64_t* value_ = nullptr;
};

class MetricsRegistry {
 public:
  /// Sets a point-in-time value (last write wins).
  void set_gauge(const std::string& name, std::int64_t value);
  /// Accumulates into a monotonic counter.
  void add_counter(const std::string& name, std::int64_t delta);
  /// Resolves a pre-bound handle to the named counter (created at zero on
  /// first use) — the per-packet call-site API; add_counter is the cold
  /// path.
  CounterHandle counter(const std::string& name);
  /// Returns the named histogram, creating it with default pacing-error
  /// bounds on first use.
  Histogram& histogram(const std::string& name);
  /// Returns the named quantile sketch, creating it empty on first use.
  QuantileSketch& sketch(const std::string& name);

  /// Folds a whole counters table in: each row becomes gauges under
  /// "<prefix><row>/..." (in, out, dropped, queue_peak).
  void add_counters_table(const std::string& prefix,
                          const net::CountersTable& table);

  const std::map<std::string, std::int64_t>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::int64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, QuantileSketch>& sketches() const {
    return sketches_;
  }

  /// One "name: value" line per metric, ascending name order across all
  /// four kinds (gauge / counter / histogram / sketch annotated by kind).
  std::string to_string() const;

 private:
  std::map<std::string, std::int64_t> gauges_;
  std::map<std::string, std::int64_t> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, QuantileSketch> sketches_;
};

}  // namespace quicsteps::obs
