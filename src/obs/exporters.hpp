// Trace exporters: path-qlog JSONL and CSV.
//
// Path-qlog extends the connection qlog's JSON-SEQ flavor with the
// kernel-path event vocabulary (obs::TraceStage names): one header record
// carrying the component table, then one JSON object per span. Times are
// exact decimal microseconds (sim::Time::to_micros_string) — the whole
// point of tracing is the sub-millisecond signal a 6-sig-fig double would
// round away. Output is byte-deterministic: spans are emitted in
// publication order and every lookup walks a vector, never a hash map
// (the analyzer's determinism/exporter-unordered rule enforces this
// family-wide).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/trace.hpp"

namespace quicsteps::obs {

/// Writes the path-qlog header plus every span in `data`, all flows.
void write_path_qlog(std::ostream& out, const TraceData& data,
                     const std::string& title);

/// Single-flow variant (per-flow artifact files in multi-flow runs).
void write_path_qlog(std::ostream& out, const TraceData& data,
                     const std::string& title, std::uint32_t flow);

/// CSV: flow,packet_number,packet_id,stage,component,time_us,intended_us,
/// size_bytes — one row per span, publication order.
void write_trace_csv(std::ostream& out, const TraceData& data);

}  // namespace quicsteps::obs
