// QuantileSketch: HDR-style log-linear quantile sketch for fleet tails.
//
// The fixed-bound obs::Histogram answers the paper's whole-run questions
// (decade buckets around zero) but cannot produce p99/p999 at fleet
// scale: its bounds clip and its resolution is a decade. This sketch
// buckets |value| log-linearly — each power-of-two octave is split into
// 32 linear sub-buckets (kSubBits = 5), so any representative is within
// a 1/32 ≈ 3.1% relative error of the true value — over the full signed
// int64 range, with an exact region for small magnitudes (|v| < 64, one
// bucket per integer). Pacing errors in microseconds and flow-completion
// times both fit: microsecond-exact near zero, 3% at the tail.
//
// Determinism and merging: buckets hold integer counts, so merging is an
// elementwise add — commutative and associative — and a sketch merged
// from per-flow shards is bit-identical to one built serially, in any
// merge order. quantile() walks buckets from the most negative magnitude
// upward and returns the bucket's inclusive upper edge, a pure function
// of the counts. No floats touch the state; doubles appear only in the
// final rank arithmetic, identically on every platform we build for.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace quicsteps::obs {

class QuantileSketch {
 public:
  /// Linear sub-buckets per octave: 2^5 = 32 — relative error <= 1/32.
  static constexpr int kSubBits = 5;
  static constexpr std::int64_t kSubBuckets = std::int64_t{1} << kSubBits;

  QuantileSketch() = default;

  void observe(std::int64_t value) {
    if (count_ == 0 || value < min_) min_ = value;
    if (count_ == 0 || value > max_) max_ = value;
    ++count_;
    sum_ += value;
    if (value < 0) {
      bump(neg_, bucket_index(magnitude_of(value)));
    } else {
      bump(pos_, bucket_index(static_cast<std::uint64_t>(value)));
    }
  }

  /// Elementwise-add merge; the result is independent of merge order.
  void merge(const QuantileSketch& other);

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }

  /// Inclusive upper edge of the bucket holding the rank-ceil(q*count)
  /// value (negative buckets report their most-negative edge). 0 when
  /// empty. q is clamped to [0, 1].
  std::int64_t quantile(double q) const;

  /// Signed bucket ordinal of `value` — equal ordinals = same bucket,
  /// adjacent ordinals = adjacent buckets. Tests use this to assert a
  /// sketch quantile lands within one bucket of the exact percentile.
  static std::int64_t bucket_of(std::int64_t value) {
    if (value < 0) {
      return -1 - static_cast<std::int64_t>(bucket_index(magnitude_of(value)));
    }
    return static_cast<std::int64_t>(
        bucket_index(static_cast<std::uint64_t>(value)));
  }

  /// "count=N sum=S min=m max=M p50=a p90=b p99=c p999=d" — fixed-format,
  /// integer-only rendering (registry/report emission).
  std::string to_string() const;

 private:
  /// |value| without the INT64_MIN negation UB: two's-complement
  /// magnitude in uint64.
  static std::uint64_t magnitude_of(std::int64_t value) {
    return value < 0 ? 0ull - static_cast<std::uint64_t>(value)
                     : static_cast<std::uint64_t>(value);
  }

  /// Log-linear bucket of a magnitude: exact below 2*kSubBuckets, then
  /// 32 linear sub-buckets per octave. Monotone in `mag`.
  static std::size_t bucket_index(std::uint64_t mag) {
    if (mag < static_cast<std::uint64_t>(2 * kSubBuckets)) {
      return static_cast<std::size_t>(mag);  // one bucket per integer
    }
    const int msb = 63 - std::countl_zero(mag);  // floor(log2), >= kSubBits+1
    const int shift = msb - kSubBits;            // >= 1
    return static_cast<std::size_t>(shift) * kSubBuckets +
           static_cast<std::size_t>(mag >> shift);
  }

  /// Inclusive upper edge of bucket `index` (the quantile representative),
  /// saturating at INT64_MAX for the top octaves.
  static std::int64_t bucket_upper_edge(std::size_t index);

  /// Counts grow on demand to the highest touched bucket (pacing errors
  /// rarely leave the first few octaves, so an idle sketch stays tiny).
  static void bump(std::vector<std::int64_t>& side, std::size_t index) {
    if (index >= side.size()) side.resize(index + 1, 0);
    ++side[index];
  }

  std::vector<std::int64_t> pos_;  // bucket counts for value >= 0
  std::vector<std::int64_t> neg_;  // bucket counts for value < 0, by |value|
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace quicsteps::obs
