// TimeSeries: fixed-window, bounded-memory telemetry over simulated time.
//
// The paper's analysis is end-of-run aggregates; the ROADMAP's LTE/churn
// items need the time axis back: per-window throughput, qdisc backlog,
// drop rate, and per-stage pacing error, so a rate collapse or a
// mid-run stall is visible as *when*, not just a skewed total. The
// engine is fed from the wire-tap packet callback (the serial event
// core, so serial and sharded runs see byte-identical series) plus a
// counter snapshot taken every time a window closes; per-stage pacing
// errors are folded in post-run from the trace spine's span stream.
//
// Memory is bounded by a preallocated ring of `capacity` windows —
// nothing on the per-packet path allocates (the ring is sized in the
// constructor; tools/analyze/layers.json lists this header as hot
// path). When a run outlives the ring, the oldest windows are evicted
// and counted, never silently dropped.
//
// Attribution semantics, chosen for determinism over precision:
//   * wire packets/bytes land in the window of their tap timestamp;
//   * bottleneck counter deltas (delivered, dropped) are attributed to
//     the window being CLOSED when the next packet rolls the clock
//     forward — idle gap windows therefore report zeros, which is
//     exactly what the stall detector wants;
//   * finalize() closes the open window with one last snapshot, so the
//     post-run drain (queue emptying through netem) lands in the final
//     active window instead of an artificial deadline-length tail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace quicsteps::obs {

class TimeSeries {
 public:
  /// Cumulative shared-bottleneck counters, read through a raw function
  /// pointer (std::function would put a heap closure on the hot path).
  struct Snapshot {
    std::int64_t delivered_packets = 0;  // cumulative packets_out
    std::int64_t dropped_packets = 0;    // cumulative drops
    std::int64_t backlog_packets = 0;    // live queue depth
  };
  using SnapshotFn = Snapshot (*)(void* ctx);

  struct Window {
    std::int64_t index = 0;  // absolute ordinal: window start = index*width
    std::int64_t wire_packets = 0;
    std::int64_t wire_bytes = 0;
    std::int64_t delivered_packets = 0;
    std::int64_t dropped_packets = 0;
    std::int64_t backlog_packets = 0;
    std::int64_t stage_count[kTraceStageCount] = {};
    std::int64_t stage_error_sum_us[kTraceStageCount] = {};

    bool idle() const { return wire_packets == 0 && delivered_packets == 0; }
  };

  /// `width` is the window length (clamped to >= 1 ns), `capacity` the
  /// ring size (clamped to >= 2). `snapshot` may be null (all counter
  /// fields stay zero — unit tests and span-only folds).
  TimeSeries(sim::Duration width, std::size_t capacity, SnapshotFn snapshot,
             void* snapshot_ctx);

  /// Per-packet hot path: rolls the window clock forward when `at`
  /// crosses a boundary, then counts the packet. Allocation-free.
  void on_wire_packet(sim::Time at, std::int64_t bytes) {
    const std::int64_t ord = at.ns() / width_ns_;
    if (__builtin_expect(end_ord_ == begin_ord_ || ord >= end_ord_, 0)) {
      roll_to(ord);
    }
    Window& w = slot(ord);
    ++w.wire_packets;
    w.wire_bytes += bytes;
  }

  /// Closes the open window with a final counter snapshot (the post-run
  /// queue drain lands here). Call once, after the event loop returns
  /// and before fold_spans/to_csv.
  void finalize();

  /// Folds per-stage pacing errors (span time minus pacer intent, whole
  /// microseconds) into the windows of their span timestamps. Spans
  /// without a pacer intent are skipped; spans in evicted windows are
  /// dropped (already accounted in evicted_windows()). Call after
  /// finalize() — windows created here are span-only extensions.
  void fold_spans(const std::vector<SpanEvent>& events);

  sim::Duration width() const { return sim::Duration::nanos(width_ns_); }
  /// Retained ordinal range [begin_ordinal, end_ordinal).
  std::int64_t begin_ordinal() const { return begin_ord_; }
  std::int64_t end_ordinal() const { return end_ord_; }
  std::size_t size() const {
    return static_cast<std::size_t>(end_ord_ - begin_ord_);
  }
  bool empty() const { return end_ord_ == begin_ord_; }
  /// Windows that fell off the ring (including idle-gap ordinals that
  /// were never materialized).
  std::int64_t evicted_windows() const { return evicted_; }

  const Window& window(std::int64_t ordinal) const {
    return ring_[static_cast<std::size_t>(ordinal % cap_)];
  }

  /// Byte-deterministic CSV: one row per retained window in ordinal
  /// order, fixed column set (all nine stages, even when empty).
  std::string to_csv() const;

 private:
  void roll_to(std::int64_t ord);  // cold: window close + gap fill
  void close_open_window();

  Window& slot(std::int64_t ord) {
    return ring_[static_cast<std::size_t>(ord % cap_)];
  }

  std::vector<Window> ring_;
  std::int64_t width_ns_;
  std::int64_t cap_;
  std::int64_t begin_ord_ = 0;  // empty while begin_ord_ == end_ord_
  std::int64_t end_ord_ = 0;
  std::int64_t evicted_ = 0;
  bool finalized_ = false;
  SnapshotFn snapshot_fn_;
  void* snapshot_ctx_;
  Snapshot last_snapshot_;
};

}  // namespace quicsteps::obs
