// Per-packet path reconstruction from a finished trace.
//
// Groups a TraceData's spans by (flow, packet id) into one timeline per
// wire packet, in path order, and derives the study's core quantity: the
// pacing error at every stage — span time minus the pacer's intended send
// time — so "where did the schedule slip" is answerable per layer, not
// just at the tap (metrics::PrecisionReport measures only the wire stage;
// the wire-stage statistics here must and do agree with it).
#pragma once

#include <cstdint>
#include <vector>

#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"

namespace quicsteps::obs {

/// One packet's journey, spans in publication (= simulated time) order.
struct PacketTimeline {
  std::uint32_t flow = 0;
  std::uint64_t packet_id = 0;
  std::uint64_t packet_number = 0;
  sim::Time intended;  // pacer intent (zero when the packet had none)
  std::vector<SpanEvent> spans;

  bool has_stage(TraceStage stage) const;
  /// Time of the first span at `stage`, or Time::infinite() when absent.
  sim::Time stage_time(TraceStage stage) const;
  /// A chain that starts at the pacer and ends at delivery.
  bool complete() const {
    return has_stage(TraceStage::kPacerRelease) &&
           has_stage(TraceStage::kDelivery);
  }
  bool dropped() const { return has_stage(TraceStage::kQdiscDrop); }
};

/// Per-stage pacing-error aggregation (microseconds).
struct StageErrorReport {
  TraceStage stage = TraceStage::kPacerRelease;
  Histogram error_us;
  double mean_us() const {
    return error_us.count() == 0
               ? 0.0
               : static_cast<double>(error_us.sum()) /
                     static_cast<double>(error_us.count());
  }
};

/// Timelines for every packet in `data` (all flows; filter with the
/// overload below), sorted by (flow, first span time, packet id) — a
/// deterministic order independent of map internals.
std::vector<PacketTimeline> build_timelines(const TraceData& data);
std::vector<PacketTimeline> build_timelines(const TraceData& data,
                                            std::uint32_t flow);

/// Pacing error per stage across all timelines that carry a pacer intent,
/// stages in path order. Only stages that observed at least one such
/// packet appear.
std::vector<StageErrorReport> stage_errors(
    const std::vector<PacketTimeline>& timelines);

/// Timelines that start at the pacer and end at delivery.
std::int64_t count_complete(const std::vector<PacketTimeline>& timelines);

/// The per-run trace digest the metrics registry publishes: complete-chain
/// count plus per-stage pacing errors, computed in two passes straight off
/// the span stream. Aggregate-identical to running count_complete and
/// stage_errors over build_timelines(data), without materializing a
/// timeline per packet — the traced hot path uses this.
struct TraceSummary {
  std::int64_t complete_chains = 0;
  std::vector<StageErrorReport> errors;
};
TraceSummary summarize_trace(const TraceData& data);

}  // namespace quicsteps::obs
