#include "obs/path_timeline.hpp"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace quicsteps::obs {

bool PacketTimeline::has_stage(TraceStage stage) const {
  for (const SpanEvent& ev : spans) {
    if (ev.stage == stage) return true;
  }
  return false;
}

sim::Time PacketTimeline::stage_time(TraceStage stage) const {
  for (const SpanEvent& ev : spans) {
    if (ev.stage == stage) return ev.at;
  }
  return sim::Time::infinite();
}

namespace {

std::vector<PacketTimeline> build(const TraceData& data, bool filter,
                                  std::uint32_t flow) {
  // Packet ids are unique per sender packet; retransmissions reuse a
  // packet number under a fresh id, so id is the grouping key and the
  // number is carried along for display.
  //
  // Flat grouping in O(spans): an open-addressed hash table maps (flow,
  // id) to a group ordinal, a counting pass sizes the groups, and a
  // scatter lays each group out contiguously in publication order. Group
  // DISCOVERY order is irrelevant — the final sort below alone fixes the
  // output order — so no comparison sort over spans is needed (the
  // stable_sort this replaces dominated traced-run overhead in
  // BENCH_micro; ids cannot feed a counting sort because ACK ids embed
  // the flow in their high bits).
  const std::vector<SpanEvent>& evs = data.events;
  std::vector<std::uint32_t> order;
  order.reserve(evs.size());
  for (std::uint32_t i = 0; i < evs.size(); ++i) {
    if (filter && evs[i].flow != flow) continue;
    order.push_back(i);
  }
  std::size_t table_size = 16;
  while (table_size < 2 * order.size()) table_size *= 2;
  std::vector<std::uint32_t> table(table_size, 0);  // 0 = empty, else g + 1
  struct GroupKey {
    std::uint64_t id;
    std::uint32_t flow;
  };
  std::vector<GroupKey> groups;
  std::vector<std::uint32_t> group_of(order.size());
  std::vector<std::uint32_t> counts;  // per-group span counts
  for (std::size_t k = 0; k < order.size(); ++k) {
    const SpanEvent& ev = evs[order[k]];
    std::size_t h = (ev.packet_id * 0x9E3779B97F4A7C15ull ^
                     ev.flow * 0xC2B2AE3D27D4EB4Full) &
                    (table_size - 1);
    std::uint32_t g;
    for (;;) {
      if (table[h] == 0) {
        g = static_cast<std::uint32_t>(groups.size());
        groups.push_back({ev.packet_id, ev.flow});
        counts.push_back(0);
        table[h] = g + 1;
        break;
      }
      g = table[h] - 1;
      if (groups[g].id == ev.packet_id && groups[g].flow == ev.flow) break;
      h = (h + 1) & (table_size - 1);
    }
    group_of[k] = g;
    ++counts[g];
  }
  std::vector<std::uint32_t> offsets(groups.size() + 1, 0);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    offsets[g + 1] = offsets[g] + counts[g];
  }
  std::vector<std::uint32_t> grouped(order.size());
  {
    std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (std::size_t k = 0; k < order.size(); ++k) {
      grouped[cursor[group_of[k]]++] = order[k];
    }
  }
  order = std::move(grouped);

  std::vector<PacketTimeline> out;
  std::size_t start = 0;
  while (start < order.size()) {
    const SpanEvent& first = evs[order[start]];
    std::size_t end = start + 1;
    while (end < order.size() && evs[order[end]].flow == first.flow &&
           evs[order[end]].packet_id == first.packet_id) {
      ++end;
    }
    PacketTimeline tl;
    tl.flow = first.flow;
    tl.packet_id = first.packet_id;
    tl.packet_number = first.packet_number;
    tl.spans.reserve(end - start);
    for (std::size_t i = start; i < end; ++i) {
      const SpanEvent& ev = evs[order[i]];
      if (tl.intended.ns() == 0 && ev.intended.ns() != 0) {
        tl.intended = ev.intended;
      }
      tl.spans.push_back(ev);
    }
    out.push_back(std::move(tl));
    start = end;
  }

  std::sort(out.begin(), out.end(),
            [](const PacketTimeline& a, const PacketTimeline& b) {
              if (a.flow != b.flow) return a.flow < b.flow;
              const sim::Time ta = a.spans.front().at;
              const sim::Time tb = b.spans.front().at;
              if (ta != tb) return ta < tb;
              return a.packet_id < b.packet_id;
            });
  return out;
}

}  // namespace

std::vector<PacketTimeline> build_timelines(const TraceData& data) {
  return build(data, false, 0);
}

std::vector<PacketTimeline> build_timelines(const TraceData& data,
                                            std::uint32_t flow) {
  return build(data, true, flow);
}

std::vector<StageErrorReport> stage_errors(
    const std::vector<PacketTimeline>& timelines) {
  std::vector<StageErrorReport> reports(kTraceStageCount);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    reports[i].stage = static_cast<TraceStage>(i);
  }
  for (const PacketTimeline& tl : timelines) {
    if (tl.intended.ns() == 0) continue;  // no pacer intent to diff against
    for (const SpanEvent& ev : tl.spans) {
      reports[static_cast<std::size_t>(ev.stage)].error_us.observe(
          (ev.at - tl.intended).us());
    }
  }
  std::vector<StageErrorReport> out;
  for (StageErrorReport& report : reports) {
    if (report.error_us.count() > 0) out.push_back(std::move(report));
  }
  return out;
}

TraceSummary summarize_trace(const TraceData& data) {
  // Pass 1: hash spans into (flow, id) groups, recording each group's
  // pacer intent (first non-zero in publication order) and stage mask.
  // Pass 2: fold every span of every intent-carrying group into the
  // per-stage error histograms. Aggregates are order-independent, so the
  // result matches stage_errors(build_timelines(data)) exactly.
  const std::vector<SpanEvent>& evs = data.events;
  std::size_t table_size = 16;
  while (table_size < 2 * evs.size()) table_size *= 2;
  std::vector<std::uint32_t> table(table_size, 0);  // 0 = empty, else g + 1
  struct Group {
    std::uint64_t id;
    sim::Time intended;
    std::uint32_t flow;
    std::uint16_t stage_mask;
  };
  std::vector<Group> groups;
  std::vector<std::uint32_t> group_of(evs.size());
  for (std::size_t k = 0; k < evs.size(); ++k) {
    const SpanEvent& ev = evs[k];
    std::size_t h = (ev.packet_id * 0x9E3779B97F4A7C15ull ^
                     ev.flow * 0xC2B2AE3D27D4EB4Full) &
                    (table_size - 1);
    std::uint32_t g;
    for (;;) {
      if (table[h] == 0) {
        g = static_cast<std::uint32_t>(groups.size());
        groups.push_back({ev.packet_id, sim::Time::zero(), ev.flow, 0});
        table[h] = g + 1;
        break;
      }
      g = table[h] - 1;
      if (groups[g].id == ev.packet_id && groups[g].flow == ev.flow) break;
      h = (h + 1) & (table_size - 1);
    }
    if (groups[g].intended.ns() == 0) groups[g].intended = ev.intended;
    groups[g].stage_mask |=
        static_cast<std::uint16_t>(1u << static_cast<unsigned>(ev.stage));
    group_of[k] = g;
  }

  TraceSummary summary;
  constexpr std::uint16_t kCompleteMask =
      (1u << static_cast<unsigned>(TraceStage::kPacerRelease)) |
      (1u << static_cast<unsigned>(TraceStage::kDelivery));
  for (const Group& g : groups) {
    if ((g.stage_mask & kCompleteMask) == kCompleteMask) {
      ++summary.complete_chains;
    }
  }

  std::vector<StageErrorReport> reports(kTraceStageCount);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    reports[i].stage = static_cast<TraceStage>(i);
  }
  for (std::size_t k = 0; k < evs.size(); ++k) {
    const sim::Time intended = groups[group_of[k]].intended;
    if (intended.ns() == 0) continue;
    const SpanEvent& ev = evs[k];
    reports[static_cast<std::size_t>(ev.stage)].error_us.observe(
        (ev.at - intended).us());
  }
  for (StageErrorReport& report : reports) {
    if (report.error_us.count() > 0) {
      summary.errors.push_back(std::move(report));
    }
  }
  return summary;
}

std::int64_t count_complete(const std::vector<PacketTimeline>& timelines) {
  std::int64_t n = 0;
  for (const PacketTimeline& tl : timelines) {
    if (tl.complete()) ++n;
  }
  return n;
}

}  // namespace quicsteps::obs
