#include "obs/path_timeline.hpp"

#include <algorithm>
#include <map>
#include <utility>

namespace quicsteps::obs {

bool PacketTimeline::has_stage(TraceStage stage) const {
  for (const SpanEvent& ev : spans) {
    if (ev.stage == stage) return true;
  }
  return false;
}

sim::Time PacketTimeline::stage_time(TraceStage stage) const {
  for (const SpanEvent& ev : spans) {
    if (ev.stage == stage) return ev.at;
  }
  return sim::Time::infinite();
}

namespace {

std::vector<PacketTimeline> build(const TraceData& data, bool filter,
                                  std::uint32_t flow) {
  // Packet ids are unique per sender packet; retransmissions reuse a
  // packet number under a fresh id, so id is the grouping key and the
  // number is carried along for display. Ordered map = deterministic walk.
  std::map<std::pair<std::uint32_t, std::uint64_t>, PacketTimeline> by_key;
  for (const SpanEvent& ev : data.events) {
    if (filter && ev.flow != flow) continue;
    PacketTimeline& tl = by_key[{ev.flow, ev.packet_id}];
    if (tl.spans.empty()) {
      tl.flow = ev.flow;
      tl.packet_id = ev.packet_id;
      tl.packet_number = ev.packet_number;
    }
    if (tl.intended.ns() == 0 && ev.intended.ns() != 0) {
      tl.intended = ev.intended;
    }
    tl.spans.push_back(ev);
  }

  std::vector<PacketTimeline> out;
  out.reserve(by_key.size());
  for (auto& [key, tl] : by_key) out.push_back(std::move(tl));
  std::sort(out.begin(), out.end(),
            [](const PacketTimeline& a, const PacketTimeline& b) {
              if (a.flow != b.flow) return a.flow < b.flow;
              const sim::Time ta = a.spans.front().at;
              const sim::Time tb = b.spans.front().at;
              if (ta != tb) return ta < tb;
              return a.packet_id < b.packet_id;
            });
  return out;
}

}  // namespace

std::vector<PacketTimeline> build_timelines(const TraceData& data) {
  return build(data, false, 0);
}

std::vector<PacketTimeline> build_timelines(const TraceData& data,
                                            std::uint32_t flow) {
  return build(data, true, flow);
}

std::vector<StageErrorReport> stage_errors(
    const std::vector<PacketTimeline>& timelines) {
  std::vector<StageErrorReport> reports(kTraceStageCount);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    reports[i].stage = static_cast<TraceStage>(i);
  }
  for (const PacketTimeline& tl : timelines) {
    if (tl.intended.ns() == 0) continue;  // no pacer intent to diff against
    for (const SpanEvent& ev : tl.spans) {
      reports[static_cast<std::size_t>(ev.stage)].error_us.observe(
          (ev.at - tl.intended).us());
    }
  }
  std::vector<StageErrorReport> out;
  for (StageErrorReport& report : reports) {
    if (report.error_us.count() > 0) out.push_back(std::move(report));
  }
  return out;
}

std::int64_t count_complete(const std::vector<PacketTimeline>& timelines) {
  std::int64_t n = 0;
  for (const PacketTimeline& tl : timelines) {
    if (tl.complete()) ++n;
  }
  return n;
}

}  // namespace quicsteps::obs
