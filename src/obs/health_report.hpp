// HealthReport: a deterministic, machine-checkable verdict on a run.
//
// Fleet runs produce too much telemetry to eyeball; CI needs one JSON
// artifact that says whether the run behaved and, when it did not,
// points at the windows where it went wrong. The report is derived
// entirely from already-deterministic inputs (the TimeSeries ring, the
// fleet quantile sketches, the counters table), so its JSON is
// byte-identical between serial and sharded runs of one config — a
// golden-testable artifact, not a log.
//
// Detectors:
//   * stalls        — maximal runs of windows with neither wire activity
//                     nor delivery, strictly between the first and last
//                     active window, longer than k*RTT (a dead bottleneck
//                     mid-run; leading/trailing idle time is not a stall);
//   * pacing spikes — windows whose mean wire-stage pacing error exceeds
//                     a threshold (the pacer's intent collapsed);
//   * drop bursts   — windows where the bottleneck dropped at least
//                     `min_drops` packets AND more than `fraction` of
//                     what it handled (loss concentrated in time);
//   * conservation  — counter rows still holding packets at the end of
//                     the run (in != out + dropped; in-flight leftovers).
//
// healthy() is the CI gate: no stalls, no spikes, no bursts, and every
// flow completed. Conservation deltas are reported but informational —
// a deadline-terminated run legitimately leaves packets queued.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/counters.hpp"
#include "obs/quantile_sketch.hpp"
#include "obs/time_series.hpp"
#include "sim/time.hpp"

namespace quicsteps::obs {

struct HealthThresholds {
  /// A no-activity gap longer than this many RTTs is a stall.
  double stall_rtt_multiple = 4.0;
  /// Windows whose |mean wire-stage pacing error| exceeds this are spikes.
  std::int64_t spike_mean_error_us = 50'000;
  /// Drop-burst window: at least `min_drops` drops and more than
  /// `fraction` of the packets the bottleneck handled that window.
  double drop_burst_fraction = 0.05;
  std::int64_t drop_burst_min_drops = 8;
};

/// Everything the builder needs that is not in the telemetry structures
/// themselves: the path RTT the stall scale hangs off, the thresholds,
/// and the fleet summary the caller already computed.
struct HealthContext {
  sim::Duration rtt;
  HealthThresholds thresholds;
  std::int64_t flows = 0;
  std::int64_t completed_flows = 0;
  double fairness = 0.0;
};

struct HealthReport {
  struct Stall {
    std::int64_t begin_window = 0;  // first idle ordinal of the run
    std::int64_t end_window = 0;    // last idle ordinal (inclusive)
    std::int64_t duration_us = 0;
  };
  struct Spike {
    std::int64_t window = 0;
    std::int64_t mean_error_us = 0;
    std::int64_t samples = 0;
  };
  struct DropBurst {
    std::int64_t window = 0;
    std::int64_t dropped = 0;
    std::int64_t delivered = 0;
  };
  struct ConservationDelta {
    std::string stage;
    std::int64_t queued = 0;
  };
  struct SketchSummary {
    std::int64_t count = 0;
    std::int64_t p50 = 0;
    std::int64_t p90 = 0;
    std::int64_t p99 = 0;
    std::int64_t p999 = 0;
  };

  std::int64_t flows = 0;
  std::int64_t completed_flows = 0;
  double fairness = 0.0;
  std::int64_t window_us = 0;
  std::int64_t windows = 0;
  std::int64_t evicted_windows = 0;
  std::int64_t wire_packets = 0;
  std::int64_t delivered_packets = 0;
  std::int64_t dropped_packets = 0;
  SketchSummary pacing_error_us;
  SketchSummary fct_us;
  std::vector<Stall> stalls;
  std::vector<Spike> pacing_spikes;
  std::vector<DropBurst> drop_bursts;
  std::vector<ConservationDelta> conservation;

  bool healthy() const {
    return stalls.empty() && pacing_spikes.empty() && drop_bursts.empty() &&
           completed_flows == flows;
  }

  /// Fixed-key-order, fixed-precision JSON — byte-deterministic for one
  /// logical report.
  std::string to_json() const;
};

/// Builds the report. `series`, `pacing_error_us`, and `fct_us` may be
/// null (the corresponding sections stay zero/empty); `counters` rows
/// with a nonzero queued balance become conservation deltas.
HealthReport build_health_report(const HealthContext& context,
                                 const TimeSeries* series,
                                 const QuantileSketch* pacing_error_us,
                                 const QuantileSketch* fct_us,
                                 const net::CountersTable& counters);

}  // namespace quicsteps::obs
