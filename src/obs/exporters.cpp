#include "obs/exporters.hpp"

namespace quicsteps::obs {

namespace {

const std::string& component_name(const TraceData& data,
                                  std::uint16_t component) {
  static const std::string kUnknown = "?";
  if (component < data.components.size()) return data.components[component];
  return kUnknown;
}

void write_event(std::ostream& out, const TraceData& data,
                 const SpanEvent& ev) {
  out << "{\"time\":" << ev.at.to_micros_string() << ",\"name\":\""
      << to_string(ev.stage) << "\",\"data\":{\"component\":\""
      << component_name(data, ev.component) << "\",\"flow\":" << ev.flow
      << ",\"packet_number\":" << ev.packet_number
      << ",\"packet_id\":" << ev.packet_id << ",\"size\":" << ev.size_bytes;
  if (ev.intended.ns() != 0) {
    out << ",\"intended_us\":" << ev.intended.to_micros_string();
  }
  out << "}}\n";
}

void write_header(std::ostream& out, const TraceData& data,
                  const std::string& title) {
  out << "{\"qlog_format\":\"JSON-SEQ\",\"qlog_version\":\"0.4\","
         "\"title\":\""
      << title << "\",\"generator\":\"quicsteps\",\"trace\":{"
                  "\"time_unit\":\"us\",\"components\":[";
  for (std::size_t i = 0; i < data.components.size(); ++i) {
    if (i != 0) out << ',';
    out << '"' << data.components[i] << '"';
  }
  out << "]}}\n";
}

}  // namespace

void write_path_qlog(std::ostream& out, const TraceData& data,
                     const std::string& title) {
  write_header(out, data, title);
  for (const SpanEvent& ev : data.events) {
    write_event(out, data, ev);
  }
}

void write_path_qlog(std::ostream& out, const TraceData& data,
                     const std::string& title, std::uint32_t flow) {
  write_header(out, data, title);
  for (const SpanEvent& ev : data.events) {
    if (ev.flow == flow) write_event(out, data, ev);
  }
}

void write_trace_csv(std::ostream& out, const TraceData& data) {
  out << "flow,packet_number,packet_id,stage,component,time_us,"
         "intended_us,size_bytes\n";
  for (const SpanEvent& ev : data.events) {
    out << ev.flow << ',' << ev.packet_number << ',' << ev.packet_id << ','
        << to_string(ev.stage) << ',' << component_name(data, ev.component)
        << ',' << ev.at.to_micros_string() << ','
        << (ev.intended.ns() != 0 ? ev.intended.to_micros_string() : "")
        << ',' << ev.size_bytes << '\n';
  }
}

}  // namespace quicsteps::obs
