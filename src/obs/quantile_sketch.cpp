#include "obs/quantile_sketch.hpp"

#include <algorithm>
#include <limits>

namespace quicsteps::obs {

void QuantileSketch::merge(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (other.pos_.size() > pos_.size()) pos_.resize(other.pos_.size(), 0);
  if (other.neg_.size() > neg_.size()) neg_.resize(other.neg_.size(), 0);
  for (std::size_t i = 0; i < other.pos_.size(); ++i) {
    pos_[i] += other.pos_[i];
  }
  for (std::size_t i = 0; i < other.neg_.size(); ++i) {
    neg_[i] += other.neg_[i];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (count_ == 0 || other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::int64_t QuantileSketch::bucket_upper_edge(std::size_t index) {
  if (index < static_cast<std::size_t>(2 * kSubBuckets)) {
    return static_cast<std::int64_t>(index);
  }
  const std::size_t shift = index / static_cast<std::size_t>(kSubBuckets) - 1;
  const std::uint64_t base =
      static_cast<std::uint64_t>(index) -
      shift * static_cast<std::uint64_t>(kSubBuckets);  // in [32, 64)
  constexpr std::uint64_t kMax =
      static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
  if (base + 1 > (kMax >> shift)) {
    return std::numeric_limits<std::int64_t>::max();
  }
  return static_cast<std::int64_t>(((base + 1) << shift) - 1);
}

std::int64_t QuantileSketch::quantile(double q) const {
  if (count_ == 0) return 0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  // Rank of the requested quantile, 1-based: smallest rank whose
  // cumulative count covers q of the population.
  std::int64_t target =
      static_cast<std::int64_t>(clamped * static_cast<double>(count_));
  if (static_cast<double>(target) < clamped * static_cast<double>(count_)) {
    ++target;  // ceil without float round-trip surprises
  }
  target = std::clamp<std::int64_t>(target, 1, count_);

  std::int64_t cumulative = 0;
  // Negative side first, most negative magnitude downward.
  for (std::size_t i = neg_.size(); i-- > 0;) {
    cumulative += neg_[i];
    if (cumulative >= target) return -bucket_upper_edge(i);
  }
  for (std::size_t i = 0; i < pos_.size(); ++i) {
    cumulative += pos_[i];
    if (cumulative >= target) return bucket_upper_edge(i);
  }
  // Unreachable when the counts are consistent; max() is the safe answer.
  return max_;
}

std::string QuantileSketch::to_string() const {
  return "count=" + std::to_string(count_) + " sum=" + std::to_string(sum_) +
         " min=" + std::to_string(min()) + " max=" + std::to_string(max()) +
         " p50=" + std::to_string(quantile(0.50)) +
         " p90=" + std::to_string(quantile(0.90)) +
         " p99=" + std::to_string(quantile(0.99)) +
         " p999=" + std::to_string(quantile(0.999));
}

}  // namespace quicsteps::obs
