#include "obs/health_report.hpp"

#include <cstdio>

namespace quicsteps::obs {

namespace {

/// Fixed six-decimal rendering for the few fractional fields — snprintf,
/// not ostream, so locale and precision state cannot leak in.
std::string fixed6(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6f", value);
  return buf;
}

HealthReport::SketchSummary summarize(const QuantileSketch* sketch) {
  HealthReport::SketchSummary out;
  if (sketch == nullptr || sketch->count() == 0) return out;
  out.count = sketch->count();
  out.p50 = sketch->quantile(0.50);
  out.p90 = sketch->quantile(0.90);
  out.p99 = sketch->quantile(0.99);
  out.p999 = sketch->quantile(0.999);
  return out;
}

void append_sketch(std::string& out, const char* key,
                   const HealthReport::SketchSummary& s) {
  out += std::string("  \"") + key + "\": {\"count\": " +
         std::to_string(s.count) + ", \"p50\": " + std::to_string(s.p50) +
         ", \"p90\": " + std::to_string(s.p90) +
         ", \"p99\": " + std::to_string(s.p99) +
         ", \"p999\": " + std::to_string(s.p999) + "},\n";
}

}  // namespace

std::string HealthReport::to_json() const {
  std::string out = "{\n";
  out += "  \"schema\": \"quicsteps-health-v1\",\n";
  out += "  \"flows\": " + std::to_string(flows) + ",\n";
  out += "  \"completed_flows\": " + std::to_string(completed_flows) + ",\n";
  out += "  \"fairness\": " + fixed6(fairness) + ",\n";
  out += "  \"window_us\": " + std::to_string(window_us) + ",\n";
  out += "  \"windows\": " + std::to_string(windows) + ",\n";
  out += "  \"evicted_windows\": " + std::to_string(evicted_windows) + ",\n";
  out += "  \"wire_packets\": " + std::to_string(wire_packets) + ",\n";
  out += "  \"delivered_packets\": " + std::to_string(delivered_packets) +
         ",\n";
  out += "  \"dropped_packets\": " + std::to_string(dropped_packets) + ",\n";
  const double handled =
      static_cast<double>(delivered_packets + dropped_packets);
  out += "  \"drop_rate\": " +
         fixed6(handled > 0.0 ? static_cast<double>(dropped_packets) / handled
                              : 0.0) +
         ",\n";
  append_sketch(out, "pacing_error_us", pacing_error_us);
  append_sketch(out, "fct_us", fct_us);

  out += "  \"stalls\": [";
  for (std::size_t i = 0; i < stalls.size(); ++i) {
    const Stall& s = stalls[i];
    out += std::string(i == 0 ? "\n" : ",\n") +
           "    {\"begin_window\": " + std::to_string(s.begin_window) +
           ", \"end_window\": " + std::to_string(s.end_window) +
           ", \"duration_us\": " + std::to_string(s.duration_us) + "}";
  }
  out += stalls.empty() ? "],\n" : "\n  ],\n";

  out += "  \"pacing_spikes\": [";
  for (std::size_t i = 0; i < pacing_spikes.size(); ++i) {
    const Spike& s = pacing_spikes[i];
    out += std::string(i == 0 ? "\n" : ",\n") +
           "    {\"window\": " + std::to_string(s.window) +
           ", \"mean_error_us\": " + std::to_string(s.mean_error_us) +
           ", \"samples\": " + std::to_string(s.samples) + "}";
  }
  out += pacing_spikes.empty() ? "],\n" : "\n  ],\n";

  out += "  \"drop_bursts\": [";
  for (std::size_t i = 0; i < drop_bursts.size(); ++i) {
    const DropBurst& b = drop_bursts[i];
    const double window_handled =
        static_cast<double>(b.dropped + b.delivered);
    out += std::string(i == 0 ? "\n" : ",\n") +
           "    {\"window\": " + std::to_string(b.window) +
           ", \"dropped\": " + std::to_string(b.dropped) +
           ", \"delivered\": " + std::to_string(b.delivered) +
           ", \"fraction\": " +
           fixed6(window_handled > 0.0
                      ? static_cast<double>(b.dropped) / window_handled
                      : 0.0) +
           "}";
  }
  out += drop_bursts.empty() ? "],\n" : "\n  ],\n";

  out += "  \"conservation\": [";
  for (std::size_t i = 0; i < conservation.size(); ++i) {
    const ConservationDelta& d = conservation[i];
    out += std::string(i == 0 ? "\n" : ",\n") + "    {\"stage\": \"" +
           d.stage + "\", \"queued\": " + std::to_string(d.queued) + "}";
  }
  out += conservation.empty() ? "],\n" : "\n  ],\n";

  out += std::string("  \"healthy\": ") + (healthy() ? "true" : "false") +
         "\n}\n";
  return out;
}

HealthReport build_health_report(const HealthContext& context,
                                 const TimeSeries* series,
                                 const QuantileSketch* pacing_error_us,
                                 const QuantileSketch* fct_us,
                                 const net::CountersTable& counters) {
  HealthReport report;
  report.flows = context.flows;
  report.completed_flows = context.completed_flows;
  report.fairness = context.fairness;
  report.pacing_error_us = summarize(pacing_error_us);
  report.fct_us = summarize(fct_us);

  for (const auto& [name, row] : counters.rows()) {
    if (row.packets_queued() != 0) {
      report.conservation.push_back({name, row.packets_queued()});
    }
  }

  if (series == nullptr || series->empty()) return report;

  report.window_us = series->width().us();
  report.windows = static_cast<std::int64_t>(series->size());
  report.evicted_windows = series->evicted_windows();

  // One ordinal walk: totals, the active range, spikes, and bursts.
  const HealthThresholds& t = context.thresholds;
  std::int64_t first_active = -1;
  std::int64_t last_active = -1;
  for (std::int64_t o = series->begin_ordinal(); o < series->end_ordinal();
       ++o) {
    const TimeSeries::Window& w = series->window(o);
    report.wire_packets += w.wire_packets;
    report.delivered_packets += w.delivered_packets;
    report.dropped_packets += w.dropped_packets;
    if (!w.idle()) {
      if (first_active < 0) first_active = o;
      last_active = o;
    }
    const std::size_t wire_stage =
        static_cast<std::size_t>(TraceStage::kWire);
    if (w.stage_count[wire_stage] > 0) {
      const std::int64_t mean =
          w.stage_error_sum_us[wire_stage] / w.stage_count[wire_stage];
      if (mean > t.spike_mean_error_us || mean < -t.spike_mean_error_us) {
        report.pacing_spikes.push_back(
            {o, mean, w.stage_count[wire_stage]});
      }
    }
    const std::int64_t handled = w.dropped_packets + w.delivered_packets;
    if (w.dropped_packets >= t.drop_burst_min_drops && handled > 0 &&
        static_cast<double>(w.dropped_packets) >
            t.drop_burst_fraction * static_cast<double>(handled)) {
      report.drop_bursts.push_back({o, w.dropped_packets,
                                    w.delivered_packets});
    }
  }

  // Stall scan: maximal idle runs strictly inside the active range.
  const std::int64_t stall_ns = static_cast<std::int64_t>(
      t.stall_rtt_multiple * static_cast<double>(context.rtt.ns()));
  const std::int64_t width_ns = series->width().ns();
  std::int64_t run_begin = -1;
  for (std::int64_t o = first_active; o >= 0 && o <= last_active; ++o) {
    const bool idle = series->window(o).idle();
    if (idle && run_begin < 0) run_begin = o;
    if ((!idle || o == last_active) && run_begin >= 0) {
      const std::int64_t run_end = idle ? o : o - 1;
      const std::int64_t gap_ns = (run_end - run_begin + 1) * width_ns;
      if (gap_ns > stall_ns) {
        report.stalls.push_back({run_begin, run_end, gap_ns / 1'000});
      }
      run_begin = -1;
    }
  }
  return report;
}

}  // namespace quicsteps::obs
