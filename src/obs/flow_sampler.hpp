// FlowSampler: deterministic, seed-keyed 1-in-N flow sampling.
//
// At fabric scale (10k flows) tracing every flow is the per-packet-
// overhead trap "QUIC is not Quick Enough over Fast Internet" warns
// about: unbounded span memory and a measurable hot-path tax. Sampling
// keeps the trace spine honest — a 1-in-N subset of flows is traced in
// full (complete pacer->delivery chains, so per-stage pacing error stays
// exact for the sampled population) and every other flow pays nothing.
//
// Determinism: whether a flow is sampled is a pure function of
// (seed, flow id) — a splitmix64-style avalanche over the pair, reduced
// mod N. No run state, no iteration order, no RNG stream consumed: the
// same config samples the same flows in serial, parallel, and sharded
// runs, and adding flows never changes the verdict for existing ids
// (unlike `index % N == 0`, which reshuffles under insertion).
#pragma once

#include <cstdint>

namespace quicsteps::obs {

class FlowSampler {
 public:
  /// Samples everything (every <= 1 keeps all flows).
  FlowSampler() = default;

  FlowSampler(std::uint64_t seed, std::uint32_t every)
      : seed_(seed), every_(every == 0 ? 1 : every) {}

  /// True when `flow` is in the traced subset. O(1), allocation-free —
  /// cheap enough to sit on the shared-path publish filter.
  bool sampled(std::uint32_t flow) const {
    if (every_ <= 1) return true;
    return mix(seed_, flow) % every_ == 0;
  }

  /// The sampling period (1 = everything).
  std::uint32_t every() const { return every_; }

 private:
  /// splitmix64 finalizer over the (seed, flow) pair: full avalanche, so
  /// consecutive flow ids land in the sampled set independently.
  static std::uint64_t mix(std::uint64_t seed, std::uint32_t flow) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (flow + 1ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint64_t seed_ = 0;
  std::uint32_t every_ = 1;
};

}  // namespace quicsteps::obs
