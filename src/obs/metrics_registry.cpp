#include "obs/metrics_registry.hpp"

#include <algorithm>
#include <utility>

namespace quicsteps::obs {

std::vector<std::int64_t> Histogram::pacing_error_bounds_us() {
  // Symmetric decades around zero: early releases are as interesting as
  // late ones, and the paper's precision spreads live between 1 us and a
  // few ms.
  return {-10'000, -1'000, -100, -10, 0, 10, 100, 1'000, 10'000, 100'000};
}

Histogram::Histogram(std::vector<std::int64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(std::int64_t value) {
  if (count_ == 0 || value < min_) min_ = value;
  if (count_ == 0 || value > max_) max_ = value;
  ++count_;
  sum_ += value;
  if (value < bounds_.front()) {
    // Below every edge: an explicit underflow counter instead of
    // silently widening the first bucket (which made a -10 s outlier
    // indistinguishable from a -10 ms one).
    ++underflow_;
    return;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
}

std::string Histogram::to_string() const {
  std::string out = "count=" + std::to_string(count_) +
                    " sum=" + std::to_string(sum_) +
                    " min=" + std::to_string(min_) +
                    " max=" + std::to_string(max_) +
                    " under=" + std::to_string(underflow_);
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    out += " le" + std::to_string(bounds_[i]) + "=" +
           std::to_string(counts_[i]);
  }
  out += " over=" + std::to_string(counts_.back());
  return out;
}

void MetricsRegistry::set_gauge(const std::string& name, std::int64_t value) {
  gauges_[name] = value;
}

void MetricsRegistry::add_counter(const std::string& name,
                                  std::int64_t delta) {
  counters_[name] += delta;
}

CounterHandle MetricsRegistry::counter(const std::string& name) {
  // std::map nodes are pointer-stable under later insertions, so the
  // handle survives any number of other metrics being registered.
  return CounterHandle(&counters_[name]);
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  return histograms_[name];
}

QuantileSketch& MetricsRegistry::sketch(const std::string& name) {
  return sketches_[name];
}

void MetricsRegistry::add_counters_table(const std::string& prefix,
                                         const net::CountersTable& table) {
  for (const auto& [name, counters] : table.rows()) {
    const std::string base = prefix + name;
    set_gauge(base + "/packets_in", counters.packets_in);
    set_gauge(base + "/packets_out", counters.packets_out);
    set_gauge(base + "/packets_dropped", counters.packets_dropped);
    set_gauge(base + "/queue_peak", counters.packets_queued_peak);
  }
}

std::string MetricsRegistry::to_string() const {
  // Merge the three ordered maps into one name-sorted emission; the kind
  // tag keeps a gauge and a counter of the same name distinguishable.
  std::vector<std::pair<std::string, std::string>> lines;
  lines.reserve(gauges_.size() + counters_.size() + histograms_.size() +
                sketches_.size());
  for (const auto& [name, value] : gauges_) {
    lines.emplace_back(name, name + ": gauge " + std::to_string(value));
  }
  for (const auto& [name, value] : counters_) {
    lines.emplace_back(name, name + ": counter " + std::to_string(value));
  }
  for (const auto& [name, hist] : histograms_) {
    lines.emplace_back(name, name + ": histogram " + hist.to_string());
  }
  for (const auto& [name, sk] : sketches_) {
    lines.emplace_back(name, name + ": sketch " + sk.to_string());
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& [name, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace quicsteps::obs
