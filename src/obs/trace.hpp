// Cross-layer path tracing: the TraceBus and its span vocabulary.
//
// The paper's thesis is that a pacer's intent is reshaped by every layer
// below it — qdisc, GSO, NIC offload — yet qlog goes blind at the socket.
// The TraceBus restores sight: each component on the path publishes a typed
// SpanEvent per packet (pacer release, socket write, qdisc enqueue/dequeue/
// drop, GSO segmentation, NIC serialization, wire-tap departure, receiver
// delivery), keyed by flow id + packet number, so a packet's full journey
// can be reconstructed and diffed against its intended txtime
// (obs/path_timeline.hpp) and exported as path-qlog JSONL or CSV
// (obs/exporters.hpp).
//
// Cost discipline, mirroring check/audit.hpp:
//   * compile-time gate — every QUICSTEPS_TRACE_SPAN() site compiles to
//     nothing unless the build defines QUICSTEPS_TRACE_ENABLED (CMake
//     option QUICSTEPS_TRACE, default ON);
//   * runtime sink check — an instrumented component holds a TraceBus
//     pointer that is null unless a run opted in (ExperimentConfig::trace),
//     so a compiled-in-but-disabled site costs one predictable branch.
// BENCH_micro's trace_overhead section quantifies both states.
//
// Determinism: spans are appended in event-loop execution order, which is a
// pure function of the seed; component ids are assigned in wiring order.
// Serial and parallel runs of one (config, seed) therefore produce
// byte-identical exports (tests/check_test.cpp pins this).
//
// Layer position: obs is "universal" in tools/analyze/layers.json (like
// check/) — includable from net and kernel without new DAG edges. The
// publish path is header-only so those layers need no link dependency.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "obs/flow_sampler.hpp"
#include "sim/time.hpp"

namespace quicsteps::obs {

#ifdef QUICSTEPS_TRACE_ENABLED
inline constexpr bool kTraceEnabled = true;
#else
inline constexpr bool kTraceEnabled = false;
#endif

/// Where on the path a span was recorded. Stage order is the nominal path
/// order of a data packet; a reconstructed timeline need not visit every
/// stage (the ideal server has no socket, ACKs skip the sender qdisc).
enum class TraceStage : std::uint8_t {
  kPacerRelease = 0,  // user space: the pacer let the packet go
  kSocketWrite,       // sendmsg/sendmmsg/GSO buffer entered the kernel
  kQdiscEnqueue,      // accepted by a queueing discipline
  kQdiscDequeue,      // released downstream by a queueing discipline
  kQdiscDrop,         // dropped by a queueing discipline
  kGsoSegment,        // split out of a GSO super-packet at the NIC
  kNicTx,             // NIC began serializing the packet at line rate
  kWire,              // passed the optical tap (departure timestamp)
  kDelivery,          // handed to the receiving stack after its wakeup
};

inline constexpr std::size_t kTraceStageCount = 9;

/// Stable identifier used in exports ("kernel:qdisc_enqueue", ...). The
/// kernel-path stages extend qlog's event vocabulary under a `kernel:`
/// namespace; user-space and wire stages use `transport:` / `wire:`.
const char* to_string(TraceStage stage);

/// One observation of one packet at one stage. 48-byte value type; spans
/// carry ids, never pointers into component state, so a TraceData outlives
/// the network that produced it.
struct SpanEvent {
  sim::Time at;        // simulated instant of the observation
  sim::Time intended;  // the pacer's intent (expected_send_time; 0 = none)
  std::uint64_t packet_id = 0;
  std::uint64_t packet_number = 0;
  std::int64_t size_bytes = 0;
  std::uint32_t flow = 0;
  TraceStage stage = TraceStage::kPacerRelease;
  std::uint16_t component = 0;  // index into TraceData::components
};

/// A completed trace: the component name table plus every span, in
/// publication (= event-loop execution) order.
struct TraceData {
  std::vector<std::string> components;
  std::vector<SpanEvent> events;
};

/// The per-run span sink. One bus per run_flows invocation; components
/// publish through a raw pointer that is null when tracing is off, so the
/// bus itself needs no enabled flag. Not thread-safe — a run owns its loop,
/// its network, and its bus (parallelism is across runs, never within one).
class TraceBus {
 public:
  /// Registers a component under `name` and returns its span id. Called
  /// during wiring, in deterministic construction order.
  std::uint16_t register_component(std::string name) {
    data_.components.push_back(std::move(name));
    return static_cast<std::uint16_t>(data_.components.size() - 1);
  }

  void publish(const SpanEvent& ev) { data_.events.push_back(ev); }

  /// Appends a whole span train in one call — one capacity check and one
  /// contiguous copy instead of a push_back per span. The GSO expansion in
  /// publish_packet_span uses this so a segment train costs one flush.
  void publish_train(const SpanEvent* evs, std::size_t n) {
    data_.events.insert(data_.events.end(), evs, evs + n);
  }

  /// Pre-sizes the span store (run_flows hints with the expected packet
  /// count so a traced run never reallocates mid-flight).
  void reserve(std::size_t n) { data_.events.reserve(n); }

  /// Installs 1-in-N flow sampling. Sender-side components of unsampled
  /// flows get a null bus at wiring time (zero cost); shared-path
  /// components see every flow's packets, so publish_packet_span asks
  /// accepts() per packet — one splitmix hash, far cheaper than storing
  /// the span. Default: everything accepted.
  void set_sampler(const FlowSampler& sampler) { sampler_ = sampler; }
  const FlowSampler& sampler() const { return sampler_; }

  /// True when `flow`'s spans belong on this bus.
  bool accepts(std::uint32_t flow) const { return sampler_.sampled(flow); }

  const std::vector<std::string>& component_names() const {
    return data_.components;
  }
  const std::vector<SpanEvent>& events() const { return data_.events; }

  /// Moves the finished trace out (the bus is empty afterwards).
  TraceData take() { return std::exchange(data_, TraceData{}); }

 private:
  TraceData data_;
  FlowSampler sampler_;  // default-constructed: sample everything
};

inline SpanEvent make_span(TraceStage stage, std::uint16_t component,
                           sim::Time at, const net::Packet& pkt) {
  SpanEvent ev;
  ev.at = at;
  ev.intended = pkt.expected_send_time;
  ev.packet_id = pkt.id;
  ev.packet_number = pkt.packet_number;
  ev.size_bytes = pkt.size_bytes;
  ev.flow = pkt.flow;
  ev.stage = stage;
  ev.component = component;
  return ev;
}

/// Publishes one span per wire packet: a GSO super-packet is expanded into
/// its segments so every delivered packet's chain stays complete even
/// through stages that handle the buffer as one unit (socket, qdiscs).
/// The segment train is buffered on the stack and flushed with one
/// publish_train call.
inline void publish_packet_span(TraceBus* bus, TraceStage stage,
                                std::uint16_t component, sim::Time at,
                                const net::Packet& pkt) {
  // Null bus = tracing disabled. The QUICSTEPS_TRACE_SPAN macro checks
  // before calling, but direct callers reach here unguarded.
  if (bus == nullptr) return;
  // Sampled-out flow: drop the span before it costs memory. GSO segments
  // always share their carrier's flow, so one check covers the train.
  if (!bus->accepts(pkt.flow)) return;
  if (pkt.is_gso_buffer()) {
    constexpr std::size_t kTrainBuf = 64;
    SpanEvent train[kTrainBuf];
    std::size_t n = 0;
    for (const net::Packet& seg : *pkt.gso_segments) {
      train[n++] = make_span(stage, component, at, seg);
      if (n == kTrainBuf) {
        bus->publish_train(train, n);
        n = 0;
      }
    }
    if (n > 0) bus->publish_train(train, n);
    return;
  }
  bus->publish(make_span(stage, component, at, pkt));
}

/// Mixin giving a component its trace hookup. The default state (null bus)
/// is the runtime "tracing off" check; set_trace() is called once during
/// wiring with the id register_component() handed out for this component.
class TraceSource {
 public:
  void set_trace(TraceBus* bus, std::uint16_t component) {
    trace_bus_ = bus;
    trace_component_ = component;
  }

 protected:
  TraceBus* trace_bus_ = nullptr;
  std::uint16_t trace_component_ = 0;
};

#ifdef QUICSTEPS_TRACE_ENABLED
/// Publishes a span for `pkt` at stage `stage`. Compiled to nothing when
/// the build disables QUICSTEPS_TRACE. Otherwise the bus pointer is read
/// once into a local and tested with a single branch predicted not-taken:
/// a compiled-in-but-disabled site is one load + one never-taken jump,
/// with the publish call laid out out-of-line off the fast path.
#define QUICSTEPS_TRACE_SPAN(bus, stage, component, at, pkt)               \
  do {                                                                     \
    ::quicsteps::obs::TraceBus* const qs_span_bus_ = (bus);                \
    if (__builtin_expect(qs_span_bus_ != nullptr, 0)) {                    \
      ::quicsteps::obs::publish_packet_span(qs_span_bus_, (stage),         \
                                            (component), (at), (pkt));     \
    }                                                                      \
  } while (false)
#else
#define QUICSTEPS_TRACE_SPAN(bus, stage, component, at, pkt) \
  do {                                                       \
  } while (false)
#endif

}  // namespace quicsteps::obs
