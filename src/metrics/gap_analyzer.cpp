#include "metrics/gap_analyzer.hpp"

namespace quicsteps::metrics {

bool GapAnalyzer::relevant(const net::Packet& pkt) const {
  if (pkt.flow != config_.flow) return false;
  return pkt.kind == net::PacketKind::kQuicData ||
         pkt.kind == net::PacketKind::kTcpData;
}

std::vector<sim::Time> GapAnalyzer::data_times(
    const std::vector<net::Packet>& capture) const {
  std::vector<sim::Time> times;
  times.reserve(capture.size());
  for (const auto& pkt : capture) {
    if (relevant(pkt)) times.push_back(pkt.wire_time);
  }
  return times;
}

GapReport GapAnalyzer::analyze(const std::vector<net::Packet>& capture) const {
  GapReport report;
  const auto times = data_times(capture);
  if (times.size() < 2) return report;

  report.gaps_ms.reserve(times.size() - 1);
  std::size_t b2b = 0;
  std::size_t below_1500 = 0;
  for (std::size_t i = 1; i < times.size(); ++i) {
    const sim::Duration gap = times[i] - times[i - 1];
    report.gaps_ms.push_back(gap.to_millis());
    if (gap <= config_.back_to_back_bound) ++b2b;
    if (gap < sim::Duration::micros(1500)) ++below_1500;
  }
  const double n = static_cast<double>(report.gaps_ms.size());
  report.back_to_back_fraction = static_cast<double>(b2b) / n;
  report.below_1500us_fraction = static_cast<double>(below_1500) / n;
  report.summary_ms = summarize(report.gaps_ms);
  return report;
}

}  // namespace quicsteps::metrics
