#include "metrics/capture_analysis.hpp"

#include <algorithm>

namespace quicsteps::metrics {

void CaptureAnalyzer::add(const net::Packet& pkt) {
  if (pkt.flow != config_.flow) return;
  if (pkt.kind != net::PacketKind::kQuicData &&
      pkt.kind != net::PacketKind::kTcpData) {
    return;
  }

  // Precision offset (PrecisionAnalyzer semantics: GSO segments beyond the
  // first carry no per-packet expectation and are skipped).
  if (!(pkt.gso_buffer_id != 0 && pkt.gso_segment_index != 0)) {
    const sim::Duration offset = pkt.wire_time - pkt.expected_send_time;
    if (config_.lite) {
      offset_stream_.push(offset.to_millis());
    } else {
      offsets_ms_.push_back(offset.to_millis());
    }
  }

  if (data_packets_ > 0) {
    const sim::Duration gap = pkt.wire_time - last_time_;
    if (config_.lite) {
      gap_stream_.push(gap.to_millis());
    } else {
      gaps_ms_.push_back(gap.to_millis());
    }
    if (gap <= config_.back_to_back_bound) ++b2b_gaps_;
    if (gap < sim::Duration::micros(1500)) ++below_1500us_gaps_;
    if (gap < config_.train_threshold) {
      ++current_train_;
    } else {
      if (!config_.lite) train_lengths_.push_back(current_train_);
      packets_by_length_[current_train_] +=
          static_cast<std::int64_t>(current_train_);
      current_train_ = 1;
    }
  } else {
    current_train_ = 1;
  }
  last_time_ = pkt.wire_time;
  ++data_packets_;
}

CaptureAnalysis CaptureAnalyzer::finish() const {
  CaptureAnalysis out;

  const std::size_t gap_count =
      config_.lite ? gap_stream_.count() : gaps_ms_.size();
  out.gaps.gaps_ms = gaps_ms_;  // empty in lite mode
  if (gap_count > 0) {
    const double n = static_cast<double>(gap_count);
    out.gaps.back_to_back_fraction = static_cast<double>(b2b_gaps_) / n;
    out.gaps.below_1500us_fraction =
        static_cast<double>(below_1500us_gaps_) / n;
    out.gaps.summary_ms =
        config_.lite ? gap_stream_.summary() : summarize(out.gaps.gaps_ms);
  }

  out.trains.train_lengths = train_lengths_;  // empty in lite mode
  out.trains.packets_by_length = packets_by_length_;
  if (data_packets_ > 0) {
    // Close the open train without disturbing the incremental state.
    if (!config_.lite) out.trains.train_lengths.push_back(current_train_);
    out.trains.packets_by_length[current_train_] +=
        static_cast<std::int64_t>(current_train_);
  }
  out.trains.total_packets = data_packets_;

  out.precision.offsets_ms = offsets_ms_;  // empty in lite mode
  if (config_.lite) {
    out.precision.samples = offset_stream_.count();
    out.precision.summary_ms = offset_stream_.summary();
  } else {
    out.precision.samples = out.precision.offsets_ms.size();
    out.precision.summary_ms = summarize(out.precision.offsets_ms);
  }
  out.precision.precision_ms = out.precision.summary_ms.stddev;

  out.wire_data_packets = data_packets_;
  return out;
}

CaptureAnalysis CaptureAnalyzer::analyze(
    const std::vector<net::Packet>& capture) const {
  CaptureAnalyzer pass(config_);
  for (const auto& pkt : capture) pass.add(pkt);
  return pass.finish();
}

std::size_t FlowCaptureDemux::add_flow(std::uint32_t flow,
                                       CaptureAnalyzer::Config config) {
  config.flow = flow;
  slots_.push_back(Slot{flow, CaptureAnalyzer(config)});
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size() - 1);
  const auto pos = std::lower_bound(
      index_.begin(), index_.end(), flow,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (pos == index_.end() || pos->first != flow) {
    // Duplicate registrations keep routing to the first slot, as the old
    // linear scan did.
    index_.insert(pos, {flow, slot});
  }
  return slot;
}

int FlowCaptureDemux::add(const net::Packet& pkt) {
  // Burst cache: wire packets arrive in per-flow trains.
  if (last_hit_ < slots_.size() && slots_[last_hit_].flow == pkt.flow) {
    slots_[last_hit_].analyzer.add(pkt);
    return static_cast<int>(last_hit_);
  }
  // Branchless binary search over the sorted (flow -> slot) index.
  std::size_t lo = 0;
  std::size_t len = index_.size();
  while (len > 1) {
    const std::size_t half = len / 2;
    lo += index_[lo + half - 1].first < pkt.flow ? half : 0;
    len -= half;
  }
  if (len == 1 && index_[lo].first == pkt.flow) {
    const std::size_t slot = index_[lo].second;
    last_hit_ = slot;
    slots_[slot].analyzer.add(pkt);
    return static_cast<int>(slot);
  }
  return -1;
}

void FlowCaptureDemux::analyze(const std::vector<net::Packet>& capture) {
  for (const auto& pkt : capture) add(pkt);
}

}  // namespace quicsteps::metrics
