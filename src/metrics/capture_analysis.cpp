#include "metrics/capture_analysis.hpp"

namespace quicsteps::metrics {

void CaptureAnalyzer::add(const net::Packet& pkt) {
  if (pkt.flow != config_.flow) return;
  if (pkt.kind != net::PacketKind::kQuicData &&
      pkt.kind != net::PacketKind::kTcpData) {
    return;
  }

  // Precision offset (PrecisionAnalyzer semantics: GSO segments beyond the
  // first carry no per-packet expectation and are skipped).
  if (!(pkt.gso_buffer_id != 0 && pkt.gso_segment_index != 0)) {
    offsets_ms_.push_back(
        (pkt.wire_time - pkt.expected_send_time).to_millis());
  }

  if (data_packets_ > 0) {
    const sim::Duration gap = pkt.wire_time - last_time_;
    gaps_ms_.push_back(gap.to_millis());
    if (gap <= config_.back_to_back_bound) ++b2b_gaps_;
    if (gap < sim::Duration::micros(1500)) ++below_1500us_gaps_;
    if (gap < config_.train_threshold) {
      ++current_train_;
    } else {
      train_lengths_.push_back(current_train_);
      packets_by_length_[current_train_] +=
          static_cast<std::int64_t>(current_train_);
      current_train_ = 1;
    }
  } else {
    current_train_ = 1;
  }
  last_time_ = pkt.wire_time;
  ++data_packets_;
}

CaptureAnalysis CaptureAnalyzer::finish() const {
  CaptureAnalysis out;

  out.gaps.gaps_ms = gaps_ms_;
  if (!gaps_ms_.empty()) {
    const double n = static_cast<double>(gaps_ms_.size());
    out.gaps.back_to_back_fraction = static_cast<double>(b2b_gaps_) / n;
    out.gaps.below_1500us_fraction =
        static_cast<double>(below_1500us_gaps_) / n;
    out.gaps.summary_ms = summarize(out.gaps.gaps_ms);
  }

  out.trains.train_lengths = train_lengths_;
  out.trains.packets_by_length = packets_by_length_;
  if (data_packets_ > 0) {
    // Close the open train without disturbing the incremental state.
    out.trains.train_lengths.push_back(current_train_);
    out.trains.packets_by_length[current_train_] +=
        static_cast<std::int64_t>(current_train_);
  }
  out.trains.total_packets = data_packets_;

  out.precision.offsets_ms = offsets_ms_;
  out.precision.samples = out.precision.offsets_ms.size();
  out.precision.summary_ms = summarize(out.precision.offsets_ms);
  out.precision.precision_ms = out.precision.summary_ms.stddev;

  out.wire_data_packets = data_packets_;
  return out;
}

CaptureAnalysis CaptureAnalyzer::analyze(
    const std::vector<net::Packet>& capture) const {
  CaptureAnalyzer pass(config_);
  for (const auto& pkt : capture) pass.add(pkt);
  return pass.finish();
}

std::size_t FlowCaptureDemux::add_flow(std::uint32_t flow,
                                       CaptureAnalyzer::Config config) {
  config.flow = flow;
  slots_.push_back(Slot{flow, CaptureAnalyzer(config)});
  return slots_.size() - 1;
}

int FlowCaptureDemux::add(const net::Packet& pkt) {
  if (last_hit_ < slots_.size() && slots_[last_hit_].flow == pkt.flow) {
    slots_[last_hit_].analyzer.add(pkt);
    return static_cast<int>(last_hit_);
  }
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].flow == pkt.flow) {
      last_hit_ = i;
      slots_[i].analyzer.add(pkt);
      return static_cast<int>(i);
    }
  }
  return -1;
}

void FlowCaptureDemux::analyze(const std::vector<net::Packet>& capture) {
  for (const auto& pkt : capture) add(pkt);
}

}  // namespace quicsteps::metrics
