// Pacing precision (paper Section 4.4).
//
// The paper compares the sender's intended per-packet send timestamp
// (logged by the quiche server) with the actual wire timestamp from the
// sniffer, and reports the STANDARD DEVIATION of the differences — the
// mean is meaningless because server and sniffer clocks are unsynchronized
// there. Our simulated clocks ARE synchronized, but we keep the same
// metric for comparability.
#pragma once

#include <vector>

#include "metrics/stats.hpp"
#include "net/packet.hpp"

namespace quicsteps::metrics {

struct PrecisionReport {
  /// wire_time - expected_send_time per packet, in milliseconds.
  std::vector<double> offsets_ms;
  Summary summary_ms;
  /// The paper's headline number: stddev of the offsets.
  double precision_ms = 0.0;
  std::size_t samples = 0;
};

class PrecisionAnalyzer {
 public:
  struct Config {
    std::uint32_t flow = 1;
  };

  PrecisionAnalyzer() : PrecisionAnalyzer(Config{}) {}
  explicit PrecisionAnalyzer(Config config) : config_(config) {}

  PrecisionReport analyze(const std::vector<net::Packet>& capture) const;

 private:
  Config config_;
};

}  // namespace quicsteps::metrics
