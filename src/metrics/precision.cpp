#include "metrics/precision.hpp"

namespace quicsteps::metrics {

PrecisionReport PrecisionAnalyzer::analyze(
    const std::vector<net::Packet>& capture) const {
  PrecisionReport report;
  for (const auto& pkt : capture) {
    if (pkt.flow != config_.flow) continue;
    if (pkt.kind != net::PacketKind::kQuicData &&
        pkt.kind != net::PacketKind::kTcpData) {
      continue;
    }
    // GSO hides per-packet expectations (one timestamp per buffer), so the
    // paper measures precision without GSO; segments beyond the first are
    // skipped to honor that.
    if (pkt.gso_buffer_id != 0 && pkt.gso_segment_index != 0) continue;
    report.offsets_ms.push_back(
        (pkt.wire_time - pkt.expected_send_time).to_millis());
  }
  report.samples = report.offsets_ms.size();
  report.summary_ms = summarize(report.offsets_ms);
  report.precision_ms = report.summary_ms.stddev;
  return report;
}

}  // namespace quicsteps::metrics
