#include "metrics/train_analyzer.hpp"

#include <algorithm>

namespace quicsteps::metrics {

double TrainReport::fraction_in_trains_up_to(std::size_t n) const {
  if (total_packets == 0) return 0.0;
  std::int64_t covered = 0;
  for (const auto& [len, packets] : packets_by_length) {
    if (len <= n) covered += packets;
  }
  return static_cast<double>(covered) / static_cast<double>(total_packets);
}

std::size_t TrainReport::max_train_length() const {
  return packets_by_length.empty() ? 0 : packets_by_length.rbegin()->first;
}

double TrainReport::mean_train_length() const {
  if (train_lengths.empty()) return 0.0;
  std::int64_t sum = 0;
  for (auto len : train_lengths) sum += static_cast<std::int64_t>(len);
  return static_cast<double>(sum) /
         static_cast<double>(train_lengths.size());
}

Cdf TrainReport::packet_train_cdf() const {
  std::vector<double> per_packet;
  per_packet.reserve(static_cast<std::size_t>(total_packets));
  for (const auto& [len, packets] : packets_by_length) {
    for (std::int64_t i = 0; i < packets; ++i) {
      per_packet.push_back(static_cast<double>(len));
    }
  }
  return Cdf(std::move(per_packet));
}

TrainReport TrainAnalyzer::analyze(
    const std::vector<net::Packet>& capture) const {
  GapAnalyzer::Config gap_cfg;
  gap_cfg.flow = config_.flow;
  return analyze_times(GapAnalyzer(gap_cfg).data_times(capture));
}

TrainReport TrainAnalyzer::analyze_times(
    const std::vector<sim::Time>& times) const {
  TrainReport report;
  if (times.empty()) return report;

  std::size_t current = 1;
  auto close_train = [&report](std::size_t len) {
    report.train_lengths.push_back(len);
    report.packets_by_length[len] += static_cast<std::int64_t>(len);
  };
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] - times[i - 1] < config_.threshold) {
      ++current;
    } else {
      close_train(current);
      current = 1;
    }
  }
  close_train(current);
  report.total_packets = static_cast<std::int64_t>(times.size());
  return report;
}

}  // namespace quicsteps::metrics
