// Inter-packet gap analysis (paper Figures 2, 4, 5, 6, left panels).
//
// Operates on the sniffer capture: wire timestamps of the server's DATA
// packets only (ACKs flow the other way and handshake packets are not part
// of the steady transfer).
#pragma once

#include <vector>

#include "metrics/stats.hpp"
#include "net/packet.hpp"

namespace quicsteps::metrics {

struct GapReport {
  /// All inter-packet gaps in milliseconds, capture order.
  std::vector<double> gaps_ms;
  /// Fraction of gaps at or below the back-to-back bound (serialization
  /// delay plus measurement slack).
  double back_to_back_fraction = 0.0;
  /// Fraction of gaps below 1.5 ms (the paper's "majority" observation).
  double below_1500us_fraction = 0.0;
  Summary summary_ms;

  Cdf cdf() const { return Cdf(gaps_ms); }
};

class GapAnalyzer {
 public:
  struct Config {
    /// Gaps at/below this bound count as back-to-back. The theoretical
    /// minimum at 1 Gbit/s is ~12 us; 30 us absorbs timestamp jitter.
    sim::Duration back_to_back_bound = sim::Duration::micros(30);
    /// Only packets of this flow and kind are analyzed.
    std::uint32_t flow = 1;
  };

  GapAnalyzer() : GapAnalyzer(Config{}) {}
  explicit GapAnalyzer(Config config) : config_(config) {}

  /// Analyzes a wire capture (must be in wire order, as WireTap records).
  GapReport analyze(const std::vector<net::Packet>& capture) const;

  /// Extracts the data-packet wire times this analyzer would use.
  std::vector<sim::Time> data_times(
      const std::vector<net::Packet>& capture) const;

 private:
  bool relevant(const net::Packet& pkt) const;

  Config config_;
};

}  // namespace quicsteps::metrics
