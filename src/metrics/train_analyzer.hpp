// Packet-train analysis (paper Figures 3, 4, 5, 6, right panels).
//
// Definition from the paper: all consecutive packets with an inter-packet
// gap below 0.1 ms each form one packet train; a single isolated packet is
// a train of length one. The headline metric is the distribution of
// PACKETS across train lengths (not the distribution of trains), which is
// how the paper weights its percentages ("packet trains consisting of five
// packets or less contain 99.9 % of the packets").
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "metrics/gap_analyzer.hpp"
#include "net/packet.hpp"

namespace quicsteps::metrics {

struct TrainReport {
  /// packets_in_trains[L] = number of PACKETS that sit in trains of
  /// length L.
  std::map<std::size_t, std::int64_t> packets_by_length;
  std::vector<std::size_t> train_lengths;  // one entry per train
  std::int64_t total_packets = 0;

  /// Fraction of packets in trains of length <= n.
  double fraction_in_trains_up_to(std::size_t n) const;
  std::size_t max_train_length() const;
  /// Mean train length (packet-weighted = paper's view when false).
  double mean_train_length() const;
  /// CDF over per-packet train lengths.
  Cdf packet_train_cdf() const;
};

class TrainAnalyzer {
 public:
  struct Config {
    /// The paper's threshold: gaps < 0.1 ms chain packets into one train.
    sim::Duration threshold = sim::Duration::micros(100);
    std::uint32_t flow = 1;
  };

  TrainAnalyzer() : TrainAnalyzer(Config{}) {}
  explicit TrainAnalyzer(Config config) : config_(config) {}

  TrainReport analyze(const std::vector<net::Packet>& capture) const;
  /// Analyze a pre-extracted, ordered timestamp series.
  TrainReport analyze_times(const std::vector<sim::Time>& times) const;

 private:
  Config config_;
};

}  // namespace quicsteps::metrics
