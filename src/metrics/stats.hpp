// Small statistics toolkit: summaries (mean ± std, the paper's table
// format) and empirical CDFs (the paper's figure format).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace quicsteps::metrics {

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  std::size_t count = 0;

  /// "12.34 ± 0.56" rendering used by the table reports.
  std::string to_string(int precision = 2) const;
};

Summary summarize(const std::vector<double>& values);

/// Streaming Summary: Welford's algorithm over a sample stream, producing
/// mean/stddev/min/max/count without retaining the samples. The lite
/// capture-analysis mode uses this at fabric scale (10k flows cannot each
/// keep every gap and offset); numerically it is the textbook single-pass
/// update, not bit-identical to summarize()'s two-pass result, but
/// deterministic for a given stream.
class StreamingSummary {
 public:
  void push(double x) {
    ++count_;
    if (count_ == 1) {
      min_ = max_ = x;
    } else {
      if (x < min_) min_ = x;
      if (x > max_) max_ = x;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
  }

  std::size_t count() const { return count_; }
  Summary summary() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Empirical CDF over a sample set.
class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  /// Fraction of samples <= x.
  double fraction_below(double x) const;
  /// Smallest sample value v such that fraction_below(v) >= p.
  double quantile(double p) const;

  std::size_t count() const { return sorted_.size(); }
  const std::vector<double>& sorted_samples() const { return sorted_; }

  /// Evenly spaced (x, F(x)) points for plotting/reporting.
  std::vector<std::pair<double, double>> curve(std::size_t points) const;

 private:
  std::vector<double> sorted_;
};

/// Renders a fixed-width ASCII plot of one or more CDF curves over a shared
/// x-range (used by the figure benches to reproduce the paper's plots in
/// terminal form). Values map sample -> x; labels index series.
std::string render_ascii_cdf(
    const std::vector<std::pair<std::string, const Cdf*>>& series,
    double x_min, double x_max, int width = 72, int height = 16,
    const std::string& x_label = "");

}  // namespace quicsteps::metrics
