#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace quicsteps::metrics {

std::string Summary::to_string(int precision) const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%.*f ± %.*f", precision, mean,
                precision, stddev);
  return buf;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double sq = 0.0;
    for (double v : values) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(values.size() - 1));
  }
  return s;
}

Summary StreamingSummary::summary() const {
  Summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.mean = mean_;
  s.min = min_;
  s.max = max_;
  if (count_ > 1) {
    s.stddev = std::sqrt(m2_ / static_cast<double>(count_ - 1));
  }
  return s;
}

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::fraction_below(double x) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Cdf::quantile(double p) const {
  if (sorted_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_.size() - 1) + 0.5);
  return sorted_[std::min(idx, sorted_.size() - 1)];
}

std::vector<std::pair<double, double>> Cdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points < 2) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, fraction_below(x));
  }
  return out;
}

std::string render_ascii_cdf(
    const std::vector<std::pair<std::string, const Cdf*>>& series,
    double x_min, double x_max, int width, int height,
    const std::string& x_label) {
  static const char kMarks[] = {'*', 'o', '+', 'x', '#', '@'};
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));

  for (std::size_t s = 0; s < series.size(); ++s) {
    const Cdf* cdf = series[s].second;
    if (cdf == nullptr || cdf->count() == 0) continue;
    const char mark = kMarks[s % sizeof(kMarks)];
    for (int col = 0; col < width; ++col) {
      const double x = x_min + (x_max - x_min) * col / (width - 1);
      const double f = cdf->fraction_below(x);
      int row = static_cast<int>((1.0 - f) * (height - 1) + 0.5);
      row = std::clamp(row, 0, height - 1);
      grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
    }
  }

  std::string out;
  for (int row = 0; row < height; ++row) {
    const double f = 1.0 - static_cast<double>(row) / (height - 1);
    char label[16];
    std::snprintf(label, sizeof(label), "%4.2f |", f);
    out += label;
    out += grid[static_cast<std::size_t>(row)];
    out += '\n';
  }
  out += "     +";
  out += std::string(static_cast<std::size_t>(width), '-');
  out += '\n';
  char axis[128];
  std::snprintf(axis, sizeof(axis), "      %-10.3g%*s%10.3g  %s\n", x_min,
                width - 20, "", x_max, x_label.c_str());
  out += axis;
  for (std::size_t s = 0; s < series.size(); ++s) {
    char legend[96];
    std::snprintf(legend, sizeof(legend), "      [%c] %s\n",
                  kMarks[s % sizeof(kMarks)], series[s].first.c_str());
    out += legend;
  }
  return out;
}

}  // namespace quicsteps::metrics
