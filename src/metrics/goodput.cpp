#include "metrics/goodput.hpp"

namespace quicsteps::metrics {

GoodputReport compute_goodput(std::int64_t payload_bytes,
                              sim::Time first_packet, sim::Time completion) {
  GoodputReport report;
  report.payload_bytes = payload_bytes;
  if (completion.is_infinite() || first_packet.is_infinite() ||
      completion <= first_packet) {
    return report;
  }
  report.elapsed = completion - first_packet;
  report.goodput = net::DataRate::bytes_per(payload_bytes, report.elapsed);
  return report;
}

}  // namespace quicsteps::metrics
