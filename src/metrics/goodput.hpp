// Goodput accounting (paper Tables 1 and 2): application payload delivered
// per unit time, measured at the client between the first received packet
// and transfer completion.
#pragma once

#include "net/data_rate.hpp"
#include "sim/time.hpp"

namespace quicsteps::metrics {

struct GoodputReport {
  net::DataRate goodput;
  std::int64_t payload_bytes = 0;
  sim::Duration elapsed;
};

GoodputReport compute_goodput(std::int64_t payload_bytes,
                              sim::Time first_packet,
                              sim::Time completion);

}  // namespace quicsteps::metrics
