// Single-pass capture analysis.
//
// Runner::run_once needs four reports from the same tap capture: inter-
// packet gaps, packet trains, pacing precision, and the wire data-packet
// count. The standalone analyzers each re-walk the capture (and two of
// them re-extract the data timestamps), so a large transfer was scanned
// four times. CaptureAnalyzer folds all four into one incremental pass:
// feed packets with add() — directly from WireTap::set_on_packet, or via
// analyze() over a stored capture — and collect every report at the end
// with finish(). Each report is bit-identical to its standalone analyzer's
// output for the same configuration.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "metrics/gap_analyzer.hpp"
#include "metrics/precision.hpp"
#include "metrics/stats.hpp"
#include "metrics/train_analyzer.hpp"
#include "net/packet.hpp"

namespace quicsteps::metrics {

/// All per-run capture reports, computed together.
struct CaptureAnalysis {
  GapReport gaps;
  TrainReport trains;
  PrecisionReport precision;
  std::int64_t wire_data_packets = 0;
};

class CaptureAnalyzer {
 public:
  struct Config {
    /// Only packets of this flow (and data kind) are analyzed.
    std::uint32_t flow = 1;
    /// Gaps at/below this bound count as back-to-back (GapAnalyzer).
    sim::Duration back_to_back_bound = sim::Duration::micros(30);
    /// Gaps below this threshold chain packets into a train (TrainAnalyzer).
    sim::Duration train_threshold = sim::Duration::micros(100);
    /// Lite mode: stream gap/offset samples through Welford accumulators
    /// instead of retaining them — O(1) memory per flow, for fabric-scale
    /// (10k-flow) runs where N full sample vectors don't fit. The finished
    /// reports keep every aggregate (summaries, fractions, train length
    /// histogram, counts) but their raw sample vectors stay empty, so CDFs
    /// are unavailable.
    bool lite = false;
  };

  CaptureAnalyzer() : CaptureAnalyzer(Config{}) {}
  explicit CaptureAnalyzer(Config config) : config_(config) {}

  /// Feeds one packet in wire order (e.g. from WireTap::set_on_packet).
  void add(const net::Packet& pkt);

  /// Builds every report from the packets seen so far. Non-destructive:
  /// more packets can be added and finish() called again.
  CaptureAnalysis finish() const;

  /// One-shot convenience: single pass over a stored capture.
  CaptureAnalysis analyze(const std::vector<net::Packet>& capture) const;

 private:
  Config config_;

  // Incremental state, updated per data packet. Lite mode fills the
  // streaming accumulators instead of the sample vectors.
  std::vector<double> gaps_ms_;
  std::vector<double> offsets_ms_;
  StreamingSummary gap_stream_;
  StreamingSummary offset_stream_;
  std::vector<std::size_t> train_lengths_;   // closed trains only
  std::map<std::size_t, std::int64_t> packets_by_length_;
  std::size_t b2b_gaps_ = 0;
  std::size_t below_1500us_gaps_ = 0;
  std::size_t current_train_ = 0;  // open train length (0 = no packet yet)
  std::int64_t data_packets_ = 0;
  sim::Time last_time_;
};

/// N-flow single-pass demultiplexer over a shared tap.
//
// A shared bottleneck interleaves every flow's packets in one capture; the
// old competing-flow path re-scanned the whole capture once per flow (N
// full passes, each discarding the (N-1)/N of packets it doesn't own).
// FlowCaptureDemux keeps one CaptureAnalyzer per registered flow and
// routes each packet to its analyzer as it arrives, so an N-flow capture
// is walked exactly once regardless of N. Each flow's finished report is
// bit-identical to a standalone CaptureAnalyzer filtering on that flow.
class FlowCaptureDemux {
 public:
  /// Registers a flow; `config.flow` is overwritten with `flow`. Returns
  /// the flow's slot index (stable; also returned by add()).
  std::size_t add_flow(std::uint32_t flow, CaptureAnalyzer::Config config = {});

  /// Feeds one packet in wire order. Returns the owning flow's slot index,
  /// or -1 when no registered flow matches (the packet is ignored —
  /// whether that is an error is the caller's policy, not the metric's).
  int add(const net::Packet& pkt);

  std::size_t flow_count() const { return slots_.size(); }
  std::uint32_t flow_at(std::size_t slot) const { return slots_[slot].flow; }

  /// Per-flow reports, by slot index. Non-destructive, like
  /// CaptureAnalyzer::finish().
  CaptureAnalysis finish(std::size_t slot) const {
    return slots_[slot].analyzer.finish();
  }

  /// One-shot convenience: single pass over a stored capture.
  void analyze(const std::vector<net::Packet>& capture);

 private:
  struct Slot {
    std::uint32_t flow = 0;
    CaptureAnalyzer analyzer;
  };
  /// In registration order (slot indices are stable); add() remembers the
  /// last hit because wire packets arrive in per-flow trains, and falls
  /// back to a branchless binary search over the sorted (flow -> slot)
  /// index — the old linear rescan made every cold dispatch O(N), which is
  /// the difference between O(P) and O(P*N) over a 10k-flow capture.
  std::vector<Slot> slots_;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> index_;  // sorted
  std::size_t last_hit_ = 0;
};

}  // namespace quicsteps::metrics
