// Single-pass capture analysis.
//
// Runner::run_once needs four reports from the same tap capture: inter-
// packet gaps, packet trains, pacing precision, and the wire data-packet
// count. The standalone analyzers each re-walk the capture (and two of
// them re-extract the data timestamps), so a large transfer was scanned
// four times. CaptureAnalyzer folds all four into one incremental pass:
// feed packets with add() — directly from WireTap::set_on_packet, or via
// analyze() over a stored capture — and collect every report at the end
// with finish(). Each report is bit-identical to its standalone analyzer's
// output for the same configuration.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "metrics/gap_analyzer.hpp"
#include "metrics/precision.hpp"
#include "metrics/train_analyzer.hpp"
#include "net/packet.hpp"

namespace quicsteps::metrics {

/// All per-run capture reports, computed together.
struct CaptureAnalysis {
  GapReport gaps;
  TrainReport trains;
  PrecisionReport precision;
  std::int64_t wire_data_packets = 0;
};

class CaptureAnalyzer {
 public:
  struct Config {
    /// Only packets of this flow (and data kind) are analyzed.
    std::uint32_t flow = 1;
    /// Gaps at/below this bound count as back-to-back (GapAnalyzer).
    sim::Duration back_to_back_bound = sim::Duration::micros(30);
    /// Gaps below this threshold chain packets into a train (TrainAnalyzer).
    sim::Duration train_threshold = sim::Duration::micros(100);
  };

  CaptureAnalyzer() : CaptureAnalyzer(Config{}) {}
  explicit CaptureAnalyzer(Config config) : config_(config) {}

  /// Feeds one packet in wire order (e.g. from WireTap::set_on_packet).
  void add(const net::Packet& pkt);

  /// Builds every report from the packets seen so far. Non-destructive:
  /// more packets can be added and finish() called again.
  CaptureAnalysis finish() const;

  /// One-shot convenience: single pass over a stored capture.
  CaptureAnalysis analyze(const std::vector<net::Packet>& capture) const;

 private:
  Config config_;

  // Incremental state, updated per data packet.
  std::vector<double> gaps_ms_;
  std::vector<double> offsets_ms_;
  std::vector<std::size_t> train_lengths_;   // closed trains only
  std::map<std::size_t, std::int64_t> packets_by_length_;
  std::size_t b2b_gaps_ = 0;
  std::size_t below_1500us_gaps_ = 0;
  std::size_t current_train_ = 0;  // open train length (0 = no packet yet)
  std::int64_t data_packets_ = 0;
  sim::Time last_time_;
};

}  // namespace quicsteps::metrics
