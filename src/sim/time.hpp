// Strong types for simulated time.
//
// All simulation time is kept as signed 64-bit nanosecond counts. Two distinct
// types are used so that absolute instants (Time) and spans (Duration) cannot
// be mixed up: Time - Time = Duration, Time + Duration = Time, and so on.
// Both types are trivially copyable and fit in a register.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace quicsteps::sim {

namespace detail {
/// Additions involving the infinite sentinel (INT64_MAX) must stay at the
/// sentinel instead of wrapping — Time::infinite() + rtt is "never", not a
/// huge negative instant. Plain overflow saturates the same way (any sum
/// past the sentinel IS the sentinel), and underflow clamps at INT64_MIN,
/// so the operation is UB-free for every input.
constexpr std::int64_t saturating_add_ns(std::int64_t a, std::int64_t b) {
  constexpr std::int64_t kMax = std::numeric_limits<std::int64_t>::max();
  constexpr std::int64_t kMin = std::numeric_limits<std::int64_t>::min();
  if (b > 0 && a > kMax - b) return kMax;
  if (b < 0 && a < kMin - b) return kMin;
  return a + b;
}
}  // namespace detail

/// A span of simulated time. Nanosecond resolution, may be negative.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration nanos(std::int64_t ns) { return Duration(ns); }
  static constexpr Duration micros(std::int64_t us) {
    return Duration(us * 1'000);
  }
  static constexpr Duration millis(std::int64_t ms) {
    return Duration(ms * 1'000'000);
  }
  static constexpr Duration seconds(std::int64_t s) {
    return Duration(s * 1'000'000'000);
  }
  /// Fractional seconds, rounded to the nearest nanosecond.
  static constexpr Duration seconds_f(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5)));
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration infinite() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr std::int64_t us() const { return ns_ / 1'000; }
  constexpr std::int64_t ms() const { return ns_ / 1'000'000; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr double to_micros() const { return static_cast<double>(ns_) / 1e3; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<std::int64_t>::max();
  }

  /// Saturates at the infinite sentinel: infinite() + x == infinite().
  constexpr Duration operator+(Duration o) const {
    return Duration(detail::saturating_add_ns(ns_, o.ns_));
  }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  /// Scaling: one overload only (int promotes to double; the mantissa
  /// covers every plausible simulated duration exactly).
  constexpr Duration operator*(double k) const {
    return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(std::int64_t k) const { return Duration(ns_ / k); }
  constexpr double operator/(Duration o) const {
    return static_cast<double>(ns_) / static_cast<double>(o.ns_);
  }
  Duration& operator+=(Duration o) {
    ns_ = detail::saturating_add_ns(ns_, o.ns_);
    return *this;
  }
  Duration& operator-=(Duration o) {
    ns_ -= o.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  /// "12.3ms"-style rendering for logs and reports.
  std::string to_string() const;

  /// Exact microsecond rendering ("1234.567", always three fractional
  /// digits) for qlog/trace output, where ostream's 6-significant-digit
  /// double default would destroy the sub-millisecond pacing signal.
  std::string to_micros_string() const;

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulated clock (ns since simulation start).
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time from_ns(std::int64_t ns) { return Time(ns); }
  static constexpr Time zero() { return Time(0); }
  static constexpr Time infinite() {
    return Time(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) / 1e6; }
  constexpr bool is_infinite() const {
    return ns_ == std::numeric_limits<std::int64_t>::max();
  }

  /// Saturates at the infinite sentinel: infinite() + d == infinite().
  constexpr Time operator+(Duration d) const {
    return Time(detail::saturating_add_ns(ns_, d.ns()));
  }
  constexpr Time operator-(Duration d) const { return Time(ns_ - d.ns()); }
  constexpr Duration operator-(Time o) const {
    return Duration::nanos(ns_ - o.ns_);
  }
  Time& operator+=(Duration d) {
    ns_ = detail::saturating_add_ns(ns_, d.ns());
    return *this;
  }
  constexpr auto operator<=>(const Time&) const = default;

  std::string to_string() const;

  /// Exact microsecond rendering ("1234.567"); see Duration.
  std::string to_micros_string() const;

 private:
  constexpr explicit Time(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

constexpr Time max(Time a, Time b) { return a < b ? b : a; }
constexpr Time min(Time a, Time b) { return a < b ? a : b; }
constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }
constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) {
  return Duration::nanos(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_us(unsigned long long v) {
  return Duration::micros(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_ms(unsigned long long v) {
  return Duration::millis(static_cast<std::int64_t>(v));
}
constexpr Duration operator""_s(unsigned long long v) {
  return Duration::seconds(static_cast<std::int64_t>(v));
}
}  // namespace literals

}  // namespace quicsteps::sim
