#include "sim/event_loop.hpp"

#include <utility>

namespace quicsteps::sim {

void EventHandle::cancel() {
  if (alive_ && *alive_) {
    *alive_ = false;
    if (cancelled_count_) ++*cancelled_count_;
  }
}

bool EventHandle::pending() const { return alive_ && *alive_; }

EventHandle EventLoop::schedule_at(Time at, std::function<void()> fn) {
  if (at < now_) at = now_;
  auto alive = std::make_shared<bool>(true);
  queue_.push(Entry{at, next_seq_++, std::move(fn), alive});
  return EventHandle(std::move(alive), cancelled_count_);
}

EventHandle EventLoop::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::skim() const {
  while (!queue_.empty() && !*queue_.top().alive) {
    queue_.pop();
    --*cancelled_count_;
  }
}

bool EventLoop::run_one() {
  skim();
  if (queue_.empty()) return false;
  // Move the entry out before running: the callback may schedule or cancel.
  Entry entry = queue_.top();
  queue_.pop();
  *entry.alive = false;  // Executed events are no longer cancellable.
  now_ = entry.at;
  entry.fn();
  return true;
}

std::size_t EventLoop::run() {
  std::size_t n = 0;
  while (run_one()) ++n;
  return n;
}

std::size_t EventLoop::run_until(Time deadline) {
  std::size_t n = 0;
  for (;;) {
    skim();
    if (queue_.empty() || queue_.top().at > deadline) break;
    run_one();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

Time EventLoop::next_event_time() const {
  skim();
  if (queue_.empty()) return Time::infinite();
  return queue_.top().at;
}

}  // namespace quicsteps::sim
