#include "sim/event_loop.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "check/audit.hpp"

namespace quicsteps::sim {

const char* to_string(EventClass cls) {
  switch (cls) {
    case EventClass::kGeneral:
      return "general";
    case EventClass::kTimer:
      return "timer";
    case EventClass::kTransmit:
      return "transmit";
    case EventClass::kQueue:
      return "queue";
    case EventClass::kDelay:
      return "delay";
    case EventClass::kWakeup:
      return "wakeup";
    case EventClass::kTransport:
      return "transport";
    case EventClass::kApp:
      return "app";
  }
  return "general";
}

void EventHandle::cancel() {
  if (loop_ != nullptr) loop_->cancel_slot(slot_, gen_);
}

bool EventHandle::pending() const {
  return loop_ != nullptr && loop_->slot_live(slot_, gen_);
}

EventLoop::EventLoop() : wheel_(kBuckets) {}

std::uint32_t EventLoop::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].payload;
    return slot;
  }
  const std::uint32_t slot = static_cast<std::uint32_t>(slots_.size());
  slots_.emplace_back();
  return slot;
}

EventHandle EventLoop::schedule_at(Time at, EventClass cls,
                                   std::function<void()> fn) {
  if (at < now_) at = now_;

  const std::uint32_t slot = acquire_slot();
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.live = true;

  const Rec rec{at.ns(), next_seq_++, slot,
                static_cast<std::uint16_t>(cls)};
  ++live_count_;
  if constexpr (kLoopProfilingEnabled) {
    ++stats_.scheduled[static_cast<std::size_t>(cls)];
    if (live_count_ > stats_.max_pending) stats_.max_pending = live_count_;
  }
  if (bucket_index(rec.at_ns) < base_idx_ + kBuckets) {
    wheel_insert(rec);
  } else {
    if constexpr (kLoopProfilingEnabled) ++stats_.overflow_scheduled;
    overflow_.push_back(rec);
    std::push_heap(overflow_.begin(), overflow_.end(), rec_after);
  }
  return EventHandle(this, slot, s.gen);
}

EventHandle EventLoop::schedule_after(Duration delay, EventClass cls,
                                      std::function<void()> fn) {
  if (delay < Duration::zero()) delay = Duration::zero();
  return schedule_at(now_ + delay, cls, std::move(fn));
}

DrainId EventLoop::register_drain(EventClass cls, DrainFn fn, void* ctx) {
  QUICSTEPS_AUDIT(drains_.size() <= kTrainChannelMask,
                  "drain channel id space exhausted");
  drains_.push_back(DrainChannel{fn, ctx, cls});
  return static_cast<DrainId>(drains_.size() - 1);
}

EventHandle EventLoop::schedule_drain_at(Time at, DrainId ch,
                                         std::uint32_t payload) {
  if (at < now_) at = now_;
  QUICSTEPS_AUDIT(ch < drains_.size(), "drain channel not registered");

  const std::uint32_t slot = acquire_slot();
  // Recycled slots come back with fn already null (run_one moves it out,
  // cancel_slot clears it), so a drain record touches no std::function.
  Slot& s = slots_[slot];
  s.payload = payload;
  s.live = true;

  const Rec rec{at.ns(), next_seq_++, slot,
                static_cast<std::uint16_t>(kTrainClsBit | ch)};
  ++live_count_;
  if constexpr (kLoopProfilingEnabled) {
    ++stats_.scheduled[static_cast<std::size_t>(drains_[ch].cls)];
    if (live_count_ > stats_.max_pending) stats_.max_pending = live_count_;
  }
  if (bucket_index(rec.at_ns) < base_idx_ + kBuckets) {
    wheel_insert(rec);
  } else {
    if constexpr (kLoopProfilingEnabled) ++stats_.overflow_scheduled;
    overflow_.push_back(rec);
    std::push_heap(overflow_.begin(), overflow_.end(), rec_after);
  }
  return EventHandle(this, slot, s.gen);
}

void EventLoop::post_drain_at(Time at, DrainId ch, std::uint32_t payload) {
  if (at < now_) at = now_;
  QUICSTEPS_AUDIT(ch < drains_.size(), "drain channel not registered");

  const Rec rec{at.ns(), next_seq_++, payload,
                static_cast<std::uint16_t>(kTrainClsBit | kPostClsBit | ch)};
  ++live_count_;
  if constexpr (kLoopProfilingEnabled) {
    ++stats_.scheduled[static_cast<std::size_t>(drains_[ch].cls)];
    if (live_count_ > stats_.max_pending) stats_.max_pending = live_count_;
  }
  if (bucket_index(rec.at_ns) < base_idx_ + kBuckets) {
    wheel_insert(rec);
  } else {
    if constexpr (kLoopProfilingEnabled) ++stats_.overflow_scheduled;
    overflow_.push_back(rec);
    std::push_heap(overflow_.begin(), overflow_.end(), rec_after);
  }
}

void EventLoop::deactivate_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  QUICSTEPS_AUDIT(s.live, "slab slot deactivated twice");
  s.live = false;
  ++s.gen;  // outstanding handles go inert
  --live_count_;
}

void EventLoop::cancel_slot(std::uint32_t slot, std::uint32_t gen) {
  if (!slot_live(slot, gen)) return;
  slots_[slot].fn = nullptr;  // release captured state eagerly
  deactivate_slot(slot);
  if constexpr (kLoopProfilingEnabled) ++stats_.cancelled;
  // The queue record became a tombstone; wheel tombstones are pruned when
  // the cursor reaches them, the overflow top is kept live eagerly.
  clean_overflow_top();
}

void EventLoop::wheel_insert(const Rec& rec) {
  const std::uint64_t idx = bucket_index(rec.at_ns);
  wheel_[idx & kMask].push_back(rec);
  set_bit(idx);
  ++wheel_count_;
  if (idx < hint_idx_) hint_idx_ = idx;
  if (idx == active_idx_) active_sorted_ = false;
}

void EventLoop::clean_overflow_top() {
  while (!overflow_.empty() && !rec_live(overflow_.front())) {
    release_slot(overflow_.front().slot);
    std::pop_heap(overflow_.begin(), overflow_.end(), rec_after);
    overflow_.pop_back();
  }
}

std::uint64_t EventLoop::next_occupied(std::uint64_t from) const {
  const std::uint64_t end = base_idx_ + kBuckets;
  std::uint64_t idx = std::max(from, base_idx_);
  while (idx < end) {
    std::uint64_t word = occupied_[(idx & kMask) >> 6];
    word &= ~std::uint64_t{0} << (idx & 63);
    // Do not run past the window end within this word.
    const std::uint64_t word_base = idx - (idx & 63);
    if (word != 0) {
      const std::uint64_t found =
          word_base + static_cast<std::uint64_t>(std::countr_zero(word));
      if (found >= end) return kNoBucket;
      return found;
    }
    idx = word_base + 64;
  }
  return kNoBucket;
}

void EventLoop::advance_now(Time to) {
  QUICSTEPS_AUDIT(to >= now_, "simulated clock moved backwards");
  now_ = to;
  const std::uint64_t nb = bucket_index(now_.ns());
  if (nb <= base_idx_) return;
  base_idx_ = nb;
  if (hint_idx_ < base_idx_) hint_idx_ = base_idx_;
  // Overflow records that entered the horizon move into the wheel. Every
  // live record here is >= now(), so it lands in [base_idx_, base_idx_ +
  // kBuckets); dead ones are discarded.
  while (!overflow_.empty() &&
         bucket_index(overflow_.front().at_ns) < base_idx_ + kBuckets) {
    const Rec rec = overflow_.front();
    std::pop_heap(overflow_.begin(), overflow_.end(), rec_after);
    overflow_.pop_back();
    if (rec_live(rec)) {
      wheel_insert(rec);
    } else {
      release_slot(rec.slot);
    }
  }
  clean_overflow_top();
}

bool EventLoop::locate_next(bool* from_overflow) {
  for (;;) {
    if (live_count_ == 0) return false;
    if (wheel_count_ > 0) {
      const std::uint64_t found = next_occupied(hint_idx_);
      if (found != kNoBucket) {
        hint_idx_ = found;
        std::vector<Rec>& b = wheel_[found & kMask];
        if (found != active_idx_ || !active_sorted_) {
          // Prune tombstones, then sort latest-first so draining pops the
          // earliest record off the back.
          std::size_t kept = 0;
          for (const Rec& rec : b) {
            if (rec_live(rec)) {
              b[kept++] = rec;
            } else {
              release_slot(rec.slot);
            }
          }
          wheel_count_ -= b.size() - kept;
          b.resize(kept);
          std::sort(b.begin(), b.end(), rec_after);
          active_idx_ = found;
          active_sorted_ = true;
        } else {
          // Sorted earlier; records cancelled since then pile up dead at
          // arbitrary positions — only the back needs to be live.
          while (!b.empty() && !rec_live(b.back())) {
            release_slot(b.back().slot);
            b.pop_back();
            --wheel_count_;
          }
        }
        if (b.empty()) {
          clear_bit(found);
          active_idx_ = kNoBucket;
          continue;
        }
        *from_overflow = false;
        return true;
      }
      // The hint can overshoot tombstone buckets stranded behind it by a
      // time jump (their ring slots alias earlier window positions).
      // Rescan from the base: every set bit is visible from there, and
      // each tombstone bucket found gets pruned, so this terminates.
      hint_idx_ = base_idx_;
      continue;
    }
    clean_overflow_top();
    if (!overflow_.empty()) {
      *from_overflow = true;
      return true;
    }
  }
}

bool EventLoop::run_one() {
  Rec rec;
  bool have = false;
  // Fast path: the cursor run_one/drain_trains left behind is still pinned
  // on the sorted active bucket (the same invariant drain_trains relies
  // on: an earlier insert lowers hint_idx_, an insert into the bucket
  // clears active_sorted_), so the earliest live record is its back — no
  // bitmap scan needed. Overflow records sit beyond the wheel horizon by
  // construction, so they can never beat a wheel record.
  if (active_idx_ != kNoBucket && active_sorted_ && hint_idx_ == active_idx_) {
    std::vector<Rec>& b = wheel_[active_idx_ & kMask];
    while (!b.empty() && !rec_live(b.back())) {
      release_slot(b.back().slot);
      b.pop_back();
      --wheel_count_;
    }
    if (!b.empty()) {
      rec = b.back();
      b.pop_back();
      --wheel_count_;
      have = true;
    }
    if (b.empty()) {
      clear_bit(active_idx_);
      active_idx_ = kNoBucket;
    }
  }
  if (!have) {
    bool from_overflow = false;
    if (!locate_next(&from_overflow)) return false;
    if (from_overflow) {
      rec = overflow_.front();
      std::pop_heap(overflow_.begin(), overflow_.end(), rec_after);
      overflow_.pop_back();
      clean_overflow_top();
    } else {
      std::vector<Rec>& b = wheel_[active_idx_ & kMask];
      rec = b.back();
      b.pop_back();
      --wheel_count_;
      if (b.empty()) {
        clear_bit(active_idx_);
        active_idx_ = kNoBucket;
      }
    }
  }

  QUICSTEPS_AUDIT(rec.at_ns >= now_.ns(),
                  "calendar queue surfaced an event before now()");
  QUICSTEPS_AUDIT((rec.cls & kPostClsBit) != 0 ||
                      (rec.slot < slots_.size() && slots_[rec.slot].live),
                  "calendar queue surfaced a record for a dead slab slot");
  if (rec.cls & kTrainClsBit) {
    execute_train(rec);
    return true;
  }
  // Move the callback out before running: it may schedule new events into
  // this very slot (recycled via the free list) or cancel others.
  std::function<void()> fn = std::move(slots_[rec.slot].fn);
  deactivate_slot(rec.slot);
  release_slot(rec.slot);
  if constexpr (kLoopProfilingEnabled) {
    ++stats_.executed[rec.cls % kEventClassCount];
  }
  advance_now(Time::from_ns(rec.at_ns));
  fn();
  return true;
}

void EventLoop::execute_train(const Rec& rec) {
  // Copy the channel out: drains_ never shrinks, but the callback may
  // register more channels and reallocate the vector.
  const DrainChannel ch = drains_[rec.cls & kTrainChannelMask];
  std::uint32_t payload;
  if (rec.cls & kPostClsBit) {
    payload = rec.slot;  // slotless: the payload rides in the record
    --live_count_;
  } else {
    payload = slots_[rec.slot].payload;
    deactivate_slot(rec.slot);
    release_slot(rec.slot);
  }
  if constexpr (kLoopProfilingEnabled) {
    ++stats_.executed[static_cast<std::size_t>(ch.cls)];
    ++stats_.drain_executed;
  }
  advance_now(Time::from_ns(rec.at_ns));
  ch.fn(ch.ctx, payload);
}

std::size_t EventLoop::drain_trains(Time deadline) {
  std::size_t n = 0;
  for (;;) {
    // The fast path is only sound while the cursor state run_one left
    // behind is provably untouched: the active bucket is still the sorted
    // front (an insert into an earlier bucket moves hint_idx_ below it; an
    // insert into the bucket itself clears active_sorted_).
    if (active_idx_ == kNoBucket || !active_sorted_) break;
    if (hint_idx_ != active_idx_) break;
    std::vector<Rec>& b = wheel_[active_idx_ & kMask];
    if (b.empty()) break;
    const Rec rec = b.back();
    if (!(rec.cls & kTrainClsBit)) break;
    if (!rec_live(rec)) break;  // cancelled since the sort
    if (rec.at_ns > deadline.ns()) break;
    b.pop_back();
    --wheel_count_;
    ++n;
    if constexpr (kLoopProfilingEnabled) ++stats_.drain_batched;
    if (b.empty()) {
      clear_bit(active_idx_);
      active_idx_ = kNoBucket;
      execute_train(rec);
      // The bucket is drained but the train may continue in the next one:
      // re-position the cursor (locate_next prunes and sorts exactly as it
      // would for run_one) and let the loop conditions decide. When the
      // next record is a closure, past the deadline, or from the overflow
      // heap, the cursor state is left for run_one to consume.
      bool from_overflow = false;
      if (!locate_next(&from_overflow) || from_overflow) break;
      continue;
    }
    execute_train(rec);
  }
  return n;
}

std::size_t EventLoop::run() {
  std::size_t n = 0;
  while (run_one()) {
    ++n;
    n += drain_trains(Time::infinite());
  }
  return n;
}

std::size_t EventLoop::run_until(Time deadline) {
  std::size_t n = 0;
  bool from_overflow = false;
  while (locate_next(&from_overflow)) {
    const std::int64_t at = from_overflow
                                ? overflow_.front().at_ns
                                : wheel_[active_idx_ & kMask].back().at_ns;
    if (at > deadline.ns()) break;
    run_one();
    ++n;
    n += drain_trains(deadline);
  }
  if (now_ < deadline) advance_now(deadline);
  return n;
}

Time EventLoop::next_event_time() const {
  if (live_count_ == 0) return Time::infinite();
  // Earliest live wheel record: scan occupied buckets from the front and
  // take the min over live records of the first bucket that has any
  // (buckets partition time, so no later bucket can beat it).
  std::uint64_t idx = std::max(base_idx_, hint_idx_);
  while ((idx = next_occupied(idx)) != kNoBucket) {
    const std::vector<Rec>& b = wheel_[idx & kMask];
    const Rec* best = nullptr;
    for (const Rec& rec : b) {
      if (!rec_live(rec)) continue;
      if (best == nullptr || rec_before(rec, *best)) best = &rec;
    }
    if (best != nullptr) return Time::from_ns(best->at_ns);
    ++idx;  // tombstone-only bucket; the next pop sweeps it
  }
  // clean_overflow_top() keeps the overflow top live.
  if (!overflow_.empty()) return Time::from_ns(overflow_.front().at_ns);
  return Time::infinite();
}

}  // namespace quicsteps::sim
