// Deterministic discrete-event scheduler.
//
// Events live in a calendar queue: a ring of fixed-width time buckets (the
// wheel) for the near future plus a min-heap for events beyond the wheel
// horizon. Scheduling appends a 24-byte POD record to its bucket in O(1);
// draining sorts each bucket once when the cursor reaches it. Events at the
// same instant run in scheduling order (a global sequence number breaks
// ties), which makes every run of a given seed bit-for-bit reproducible.
//
// Callbacks are kept in a slab of reusable slots, recycled through a free
// list, so steady-state scheduling performs no allocations (callbacks that
// fit std::function's small-buffer optimisation never touch the heap).
// Cancellation through the returned handle is amortized O(1): the slot's
// generation counter is bumped and the stale queue record is skipped when
// it surfaces.
//
// Drain channels are the batched-datapath fast lane: a component registers
// a raw function pointer once and then schedules 32-bit payloads (packet
// slab refs, see net/packet_slab.hpp) instead of closures. A drain record
// costs no std::function construction when scheduled and no indirect
// closure teardown when it runs, and run()/run_until() execute consecutive
// drain records off the sorted active bucket in a tight train loop without
// re-entering the cursor search. Drain records share the global sequence
// counter with closure events, so a datapath that switches a schedule site
// from closures to drains preserves execution order bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace quicsteps::sim {

class EventLoop;

/// Coarse classification of scheduled callbacks, for the loop profile the
/// observability layer reports (executed-event counts per class). The tag
/// rides in the queue record's padding bytes, so carrying it is free; the
/// per-class counters themselves are only maintained when the build defines
/// QUICSTEPS_TRACE_ENABLED (CMake option QUICSTEPS_TRACE, default ON).
enum class EventClass : std::uint8_t {
  kGeneral = 0,  // untagged schedule calls
  kTimer,        // timer-service / loss-timer wakeups
  kTransmit,     // NIC serialization completions
  kQueue,        // qdisc watchdogs and timed releases
  kDelay,        // netem propagation-delay deliveries
  kWakeup,       // receive-side epoll/GRO wakeups
  kTransport,    // stack event-loop iterations (yield, ACK batches)
  kApp,          // application source arrivals
};

inline constexpr std::size_t kEventClassCount = 8;

/// Stable lower-case name for reports ("general", "timer", ...).
const char* to_string(EventClass cls);

#ifdef QUICSTEPS_TRACE_ENABLED
inline constexpr bool kLoopProfilingEnabled = true;
#else
inline constexpr bool kLoopProfilingEnabled = false;
#endif

/// Deterministic loop profile: pure functions of the executed event
/// sequence (no wall clocks), so serial and parallel runs of one seed
/// produce identical profiles. All zeros when profiling is compiled out.
struct LoopStats {
  std::array<std::uint64_t, kEventClassCount> scheduled{};
  std::array<std::uint64_t, kEventClassCount> executed{};
  std::uint64_t cancelled = 0;
  /// Records that missed the wheel horizon and took the overflow heap.
  std::uint64_t overflow_scheduled = 0;
  /// High-water mark of live pending events.
  std::uint64_t max_pending = 0;
  /// Drain-channel records executed (subset of `executed`), and how many
  /// of those rode the run() train loop instead of a full cursor search.
  std::uint64_t drain_executed = 0;
  std::uint64_t drain_batched = 0;
};

/// Handle to a scheduled event. Default-constructed handles are inert.
/// A handle is a (slot, generation) ticket into the owning loop's slab:
/// once the event runs or is cancelled, the slot's generation moves on and
/// every outstanding handle to it becomes inert — including handles to
/// slots that have since been recycled for newer events.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the callback from running. Safe to call repeatedly, on expired
  /// events, and on default-constructed handles.
  void cancel();

  /// True while the event is still pending (scheduled and not cancelled).
  bool pending() const;

 private:
  friend class EventLoop;
  EventHandle(EventLoop* loop, std::uint32_t slot, std::uint32_t gen)
      : loop_(loop), slot_(slot), gen_(gen) {}
  EventLoop* loop_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// A drain callback: `payload` is whatever 32-bit value the scheduling
/// site passed (by convention a net::PacketSlab ref). Plain function
/// pointer + context, so dispatch is one indirect call with no closure
/// storage behind it.
using DrainFn = void (*)(void* ctx, std::uint32_t payload);

/// Identifier handed out by EventLoop::register_drain.
using DrainId = std::uint16_t;

class EventLoop {
 public:
  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at`. Times in the past are
  /// clamped to `now()` (the event still runs, immediately-next).
  EventHandle schedule_at(Time at, std::function<void()> fn) {
    return schedule_at(at, EventClass::kGeneral, std::move(fn));
  }

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to now.
  EventHandle schedule_after(Duration delay, std::function<void()> fn) {
    return schedule_after(delay, EventClass::kGeneral, std::move(fn));
  }

  /// Tagged variants: identical semantics, plus the event-class label the
  /// loop profile aggregates by.
  EventHandle schedule_at(Time at, EventClass cls, std::function<void()> fn);
  EventHandle schedule_after(Duration delay, EventClass cls,
                             std::function<void()> fn);

  /// Registers a drain channel. Called once per component during wiring;
  /// `cls` is the event class its records are profiled under. The channel
  /// lives as long as the loop.
  DrainId register_drain(EventClass cls, DrainFn fn, void* ctx);

  /// Schedules `payload` to be handed to channel `ch` at absolute time
  /// `at` (clamped to now() like schedule_at). Fully interleaves with
  /// closure events: both draw from one sequence counter, so relative
  /// execution order matches an equivalent schedule_at call exactly.
  EventHandle schedule_drain_at(Time at, DrainId ch, std::uint32_t payload);

  /// Fire-and-forget variant of schedule_drain_at: the payload rides in
  /// the queue record itself, so no slab slot is touched on schedule or
  /// execute — but there is no handle and the record cannot be cancelled.
  /// This is the cheapest way through the loop; use it for records that
  /// are never cancelled (NIC completions, propagation-delay deliveries,
  /// receive wakeups). Ordering is identical to the other schedule calls
  /// (same sequence counter).
  void post_drain_at(Time at, DrainId ch, std::uint32_t payload);

  /// Runs events until the queue is empty. Returns the number executed.
  std::size_t run();

  /// Runs events with time <= deadline; afterwards now() == deadline (or
  /// later if the last event was exactly at the deadline).
  std::size_t run_until(Time deadline);

  /// Executes at most one pending event. Returns false if queue is empty.
  bool run_one();

  /// Number of live (non-cancelled) pending events.
  std::size_t pending_count() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  /// Time of the earliest pending event, or Time::infinite() when empty.
  Time next_event_time() const;

  /// Deterministic loop profile (all zeros when QUICSTEPS_TRACE is off).
  const LoopStats& stats() const { return stats_; }

 private:
  friend class EventHandle;

  static constexpr int kWidthBits = 13;   // 8.192 us per bucket
  static constexpr int kBucketBits = 11;  // 2048 buckets -> ~16.8 ms horizon
  static constexpr std::uint64_t kBuckets = std::uint64_t{1} << kBucketBits;
  static constexpr std::uint64_t kMask = kBuckets - 1;
  static constexpr std::uint64_t kNoBucket = ~std::uint64_t{0};

  /// Callback storage, recycled through a free list. `gen` advances every
  /// time the slot's event runs or is cancelled, invalidating old handles.
  /// Drain records use a slot too (for the shared liveness/cancellation
  /// machinery) but leave `fn` null and carry their payload here instead —
  /// scheduling one never constructs a std::function. The free list is
  /// intrusive: a released slot's `payload` field (dead while free) links
  /// to the next free slot, so recycling needs no side vector at all.
  struct Slot {
    std::function<void()> fn;
    std::uint32_t payload = 0;
    std::uint32_t gen = 0;
    bool live = false;
  };
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// 24-byte POD queue record. A record whose slot is no longer live is a
  /// tombstone and is dropped when it surfaces. The event-class tag lives
  /// in bytes that were padding before, so profiling does not grow it.
  /// Records with kTrainClsBit set are drain records: the low cls bits are
  /// the DrainId and the slot's payload goes to the channel's function.
  /// Records that also carry kPostClsBit are slotless (post_drain_at): the
  /// `slot` field IS the payload, the record is always live, and no slab
  /// slot is consulted on any path.
  struct Rec {
    std::int64_t at_ns;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint16_t cls;
  };
  static_assert(sizeof(Rec) == 24, "Rec must stay a 24-byte POD");

  static constexpr std::uint16_t kTrainClsBit = 0x8000;
  static constexpr std::uint16_t kPostClsBit = 0x4000;
  static constexpr std::uint16_t kTrainChannelMask = 0x3fff;

  struct DrainChannel {
    DrainFn fn = nullptr;
    void* ctx = nullptr;
    EventClass cls = EventClass::kGeneral;
  };

  static bool rec_before(const Rec& a, const Rec& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    return a.seq < b.seq;
  }
  /// Comparator for the overflow min-heap (std::push_heap wants max-first).
  static bool rec_after(const Rec& a, const Rec& b) {
    return rec_before(b, a);
  }
  static std::uint64_t bucket_index(std::int64_t at_ns) {
    return static_cast<std::uint64_t>(at_ns) >> kWidthBits;
  }

  bool slot_live(std::uint32_t slot, std::uint32_t gen) const {
    return slot < slots_.size() && slots_[slot].live &&
           slots_[slot].gen == gen;
  }
  /// Liveness of a queue record: slotless drain records are always live
  /// (nothing can cancel them); everything else defers to its slot. A dead
  /// record is therefore always slotted, so pruning may release its slot
  /// unconditionally.
  bool rec_live(const Rec& rec) const {
    return (rec.cls & kPostClsBit) != 0 || slots_[rec.slot].live;
  }
  void cancel_slot(std::uint32_t slot, std::uint32_t gen);
  /// Marks a slot's event as done (executed or cancelled): handles go inert.
  void deactivate_slot(std::uint32_t slot);
  /// Returns a slot whose queue record is gone to the free list.
  void release_slot(std::uint32_t slot) {
    slots_[slot].payload = free_head_;
    free_head_ = slot;
  }
  /// Pops a free slot, growing storage only past the high-water mark.
  std::uint32_t acquire_slot();

  void set_bit(std::uint64_t idx) {
    occupied_[(idx & kMask) >> 6] |= std::uint64_t{1} << (idx & 63);
  }
  void clear_bit(std::uint64_t idx) {
    occupied_[(idx & kMask) >> 6] &= ~(std::uint64_t{1} << (idx & 63));
  }
  /// First occupied bucket with absolute index in [from, base_idx_ +
  /// kBuckets), or kNoBucket. (Tombstone-only buckets count as occupied.)
  std::uint64_t next_occupied(std::uint64_t from) const;

  void wheel_insert(const Rec& rec);
  /// Drops dead records off the overflow heap top so the top, if any, is
  /// live (keeps next_event_time() exact without mutation).
  void clean_overflow_top();
  /// Moves now() (and the wheel base) forward, pulling overflow records
  /// that entered the horizon into their buckets.
  void advance_now(Time to);
  /// Positions the cursor on the earliest live record, pruning tombstones
  /// on the way. Returns false when no live events remain; otherwise the
  /// record is wheel_[active_idx_ & kMask].back() (when *from_overflow is
  /// false) or overflow_.front().
  bool locate_next(bool* from_overflow);

  /// Runs one surfaced drain record: payload out, slot recycled, channel
  /// function called (the drain-path analogue of run_one's tail).
  void execute_train(const Rec& rec);
  /// Train loop: executes consecutive drain records (time <= deadline)
  /// off the back of the sorted active bucket without re-entering
  /// locate_next, stopping the moment a callback perturbs cursor state or
  /// a closure record surfaces. Returns the number executed.
  std::size_t drain_trains(Time deadline);

  std::vector<Slot> slots_;
  std::vector<DrainChannel> drains_;
  std::uint32_t free_head_ = kNoSlot;  // intrusive free list through payload
  std::vector<std::vector<Rec>> wheel_;
  std::array<std::uint64_t, kBuckets / 64> occupied_{};
  std::vector<Rec> overflow_;  // min-heap on rec_after
  std::uint64_t base_idx_ = 0;        // bucket holding now()
  std::uint64_t hint_idx_ = 0;        // scans start here (<= first occupied)
  std::uint64_t active_idx_ = kNoBucket;  // bucket sorted for draining
  bool active_sorted_ = false;
  std::size_t wheel_count_ = 0;  // records in the wheel, incl. tombstones
  std::size_t live_count_ = 0;
  Time now_;
  std::uint64_t next_seq_ = 0;
  LoopStats stats_;
};

}  // namespace quicsteps::sim
