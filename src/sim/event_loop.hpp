// Deterministic discrete-event scheduler.
//
// The loop owns a priority queue of (time, sequence, callback) entries.
// Events at the same instant run in scheduling order, which makes every run
// of a given seed bit-for-bit reproducible. Scheduled events can be
// cancelled through the returned handle; cancellation is O(1) (the entry is
// tombstoned and skipped at pop time).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace quicsteps::sim {

class EventLoop;

/// Handle to a scheduled event. Default-constructed handles are inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the callback from running. Safe to call repeatedly, on expired
  /// events, and on default-constructed handles.
  void cancel();

  /// True while the event is still pending (scheduled and not cancelled).
  bool pending() const;

 private:
  friend class EventLoop;
  EventHandle(std::shared_ptr<bool> alive,
              std::shared_ptr<std::size_t> cancelled_count)
      : alive_(std::move(alive)), cancelled_count_(std::move(cancelled_count)) {}
  std::shared_ptr<bool> alive_;
  std::shared_ptr<std::size_t> cancelled_count_;
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at`. Times in the past are
  /// clamped to `now()` (the event still runs, immediately-next).
  EventHandle schedule_at(Time at, std::function<void()> fn);

  /// Schedules `fn` to run `delay` from now. Negative delays clamp to now.
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Runs events until the queue is empty. Returns the number executed.
  std::size_t run();

  /// Runs events with time <= deadline; afterwards now() == deadline (or
  /// later if the last event was exactly at the deadline).
  std::size_t run_until(Time deadline);

  /// Executes at most one pending event. Returns false if queue is empty.
  bool run_one();

  /// Number of live (non-cancelled) pending events.
  std::size_t pending_count() const { return queue_.size() - *cancelled_count_; }
  bool empty() const { return pending_count() == 0; }

  /// Time of the earliest pending event, or Time::infinite() when empty.
  Time next_event_time() const;

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;

    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  // Pops tombstoned entries off the top of the queue.
  void skim() const;

  // mutable so const accessors can drop tombstones they encounter.
  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  std::shared_ptr<std::size_t> cancelled_count_ =
      std::make_shared<std::size_t>(0);
  Time now_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace quicsteps::sim
