// Deterministic randomness for the simulation.
//
// Every source of modelled noise (OS scheduling jitter, syscall cost
// variation, timer slack, NIC clock wander) draws from one of these
// generators. All experiment repetitions derive their generator from the
// experiment seed plus the repetition index, so runs are reproducible and
// repetitions are independent.
#pragma once

#include <cstdint>
#include <random>

#include "sim/time.hpp"

namespace quicsteps::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent child generator; `salt` distinguishes siblings.
  Rng fork(std::uint64_t salt);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Bernoulli draw.
  bool chance(double p);

  /// Uniform duration in [lo, hi].
  Duration uniform_duration(Duration lo, Duration hi);

  /// Normal-distributed duration, truncated below at `floor`.
  Duration normal_duration(Duration mean, Duration stddev,
                           Duration floor = Duration::zero());

  /// Exponentially distributed duration with the given mean, truncated below
  /// at zero (always true) and above at `cap` if non-infinite.
  Duration exponential_duration(Duration mean,
                                Duration cap = Duration::infinite());

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace quicsteps::sim
