#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace quicsteps::sim {

namespace {

std::string format_ns(std::int64_t ns) {
  char buf[64];
  const double abs_ns = std::abs(static_cast<double>(ns));
  if (abs_ns >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3fs", static_cast<double>(ns) / 1e9);
  } else if (abs_ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3fms", static_cast<double>(ns) / 1e6);
  } else if (abs_ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns));
  }
  return buf;
}

/// Exact decimal microseconds: integer part is ns/1000, the three
/// fractional digits are the remaining nanoseconds. No floating point —
/// every nanosecond-resolution instant renders losslessly.
std::string format_micros(std::int64_t ns) {
  const bool negative = ns < 0;
  const std::uint64_t magnitude =
      negative ? std::uint64_t{0} - static_cast<std::uint64_t>(ns)
               : static_cast<std::uint64_t>(ns);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%llu.%03llu", negative ? "-" : "",
                static_cast<unsigned long long>(magnitude / 1000),
                static_cast<unsigned long long>(magnitude % 1000));
  return buf;
}

}  // namespace

std::string Duration::to_string() const {
  if (is_infinite()) return "inf";
  return format_ns(ns_);
}

std::string Time::to_string() const {
  if (is_infinite()) return "inf";
  return format_ns(ns_);
}

std::string Duration::to_micros_string() const { return format_micros(ns_); }

std::string Time::to_micros_string() const { return format_micros(ns_); }

}  // namespace quicsteps::sim
