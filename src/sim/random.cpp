#include "sim/random.hpp"

#include <algorithm>

namespace quicsteps::sim {

Rng Rng::fork(std::uint64_t salt) {
  // splitmix64-style mix of a fresh draw with the salt gives independent
  // child streams without correlating consecutive forks.
  std::uint64_t x = engine_() ^ (salt * 0x9E3779B97F4A7C15ULL);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return Rng(x);
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform01() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

Duration Rng::uniform_duration(Duration lo, Duration hi) {
  if (hi < lo) std::swap(lo, hi);
  return Duration::nanos(uniform(lo.ns(), hi.ns()));
}

Duration Rng::normal_duration(Duration mean, Duration stddev, Duration floor) {
  if (stddev <= Duration::zero()) return max(mean, floor);
  std::normal_distribution<double> dist(static_cast<double>(mean.ns()),
                                        static_cast<double>(stddev.ns()));
  auto draw = Duration::nanos(static_cast<std::int64_t>(dist(engine_)));
  return max(draw, floor);
}

Duration Rng::exponential_duration(Duration mean, Duration cap) {
  if (mean <= Duration::zero()) return Duration::zero();
  std::exponential_distribution<double> dist(1.0 /
                                             static_cast<double>(mean.ns()));
  auto draw = Duration::nanos(static_cast<std::int64_t>(dist(engine_)));
  return cap.is_infinite() ? draw : min(draw, cap);
}

}  // namespace quicsteps::sim
