#include "quic/server.hpp"

namespace quicsteps::quic {

void ReferenceServer::attempt_send() {
  const sim::Time now = loop_.now();
  while (connection_.has_data_to_send()) {
    if (connection_.congestion_blocked()) {
      planned_release_ = sim::Time::infinite();
      return;  // an ACK will wake us
    }
    sim::Time intended = connection_.pacer_release_time(now);
    // If we armed a timer for this packet, keep the pre-sleep intent even
    // when the wakeup landed late (that lateness IS the precision error).
    if (!planned_release_.is_infinite() && planned_release_ <= now) {
      intended = planned_release_;
      planned_release_ = sim::Time::infinite();
    }
    if (intended > now) {
      if (!send_timer_.pending()) {
        planned_release_ = intended;
        send_timer_ =
            timers_ != nullptr
                ? timers_->arm(intended, [this] { attempt_send(); })
                : loop_.schedule_at(intended, sim::EventClass::kTransport,
                                    [this] { attempt_send(); });
      }
      return;
    }
    net::Packet pkt = connection_.build_packet(now, intended);
    QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kPacerRelease,
                         trace_component_, now, pkt);
    rearm_loss_timer();
    if (egress_ != nullptr) egress_->deliver(std::move(pkt));
  }
  planned_release_ = sim::Time::infinite();
  connection_.set_app_limited();
}

void ReferenceServer::rearm_loss_timer() {
  const sim::Time deadline = connection_.next_timer_deadline();
  if (loss_timer_.pending()) {
    // Lazy re-arm (same discipline as StackServer): a deadline that only
    // moved later keeps the armed timer; the fire handler re-checks.
    if (deadline >= armed_loss_deadline_) return;
    loss_timer_.cancel();
  }
  if (deadline.is_infinite()) return;
  armed_loss_deadline_ = deadline;
  loss_timer_ = loop_.schedule_at(deadline, sim::EventClass::kTimer,
                                  [this] { on_loss_timer(); });
}

void ReferenceServer::on_loss_timer() {
  const sim::Time deadline = connection_.next_timer_deadline();
  if (deadline.is_infinite()) return;
  if (loop_.now() < deadline) {
    armed_loss_deadline_ = deadline;
    loss_timer_ = loop_.schedule_at(deadline, sim::EventClass::kTimer,
                                    [this] { on_loss_timer(); });
    return;
  }
  connection_.on_timer(loop_.now());
  rearm_loss_timer();
  attempt_send();
}

}  // namespace quicsteps::quic
