#include "quic/server.hpp"

namespace quicsteps::quic {

void ReferenceServer::attempt_send() {
  const sim::Time now = loop_.now();
  while (connection_.has_data_to_send()) {
    if (connection_.congestion_blocked()) {
      planned_release_ = sim::Time::infinite();
      return;  // an ACK will wake us
    }
    sim::Time intended = connection_.pacer_release_time(now);
    // If we armed a timer for this packet, keep the pre-sleep intent even
    // when the wakeup landed late (that lateness IS the precision error).
    if (!planned_release_.is_infinite() && planned_release_ <= now) {
      intended = planned_release_;
      planned_release_ = sim::Time::infinite();
    }
    if (intended > now) {
      if (!send_timer_.pending()) {
        planned_release_ = intended;
        send_timer_ =
            timers_ != nullptr
                ? timers_->arm(intended, [this] { attempt_send(); })
                : loop_.schedule_at(intended, sim::EventClass::kTransport,
                                    [this] { attempt_send(); });
      }
      return;
    }
    net::Packet pkt = connection_.build_packet(now, intended);
    QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kPacerRelease,
                         trace_component_, now, pkt);
    rearm_loss_timer();
    if (egress_ != nullptr) egress_->deliver(std::move(pkt));
  }
  planned_release_ = sim::Time::infinite();
  connection_.set_app_limited();
}

void ReferenceServer::rearm_loss_timer() {
  loss_timer_.cancel();
  const sim::Time deadline = connection_.next_timer_deadline();
  if (deadline.is_infinite()) return;
  loss_timer_ = loop_.schedule_at(deadline, sim::EventClass::kTimer, [this] {
    connection_.on_timer(loop_.now());
    rearm_loss_timer();
    attempt_send();
  });
}

}  // namespace quicsteps::quic
