// Receiver-side acknowledgment policy (RFC 9000 §13.2): ACK every second
// ack-eliciting packet, or after max_ack_delay, whichever first. The ACK
// frequency shapes ACK clocking on the sender and thus pacing behavior —
// the paper's background section flags this interaction explicitly.
#pragma once

#include <cstdint>
#include <memory>

#include "net/packet.hpp"
#include "quic/frames.hpp"
#include "sim/time.hpp"

namespace quicsteps::quic {

class AckManager {
 public:
  struct Config {
    int ack_eliciting_threshold = 2;  // RFC 9000 recommendation
    sim::Duration max_ack_delay = sim::Duration::millis(25);
    std::size_t max_ack_blocks = 32;
  };

  AckManager() : AckManager(Config{}) {}
  explicit AckManager(Config config) : config_(config) {}

  /// Records an incoming packet. Returns true if it was new (not a dup).
  bool on_packet_received(std::uint64_t pn, bool ack_eliciting, sim::Time now);

  /// True when the threshold forces an immediate ACK.
  bool ack_due_now() const {
    return pending_ack_eliciting_ >= config_.ack_eliciting_threshold;
  }
  /// Deadline of the delayed-ACK timer; infinite when nothing is pending.
  sim::Time ack_deadline() const;

  bool has_pending() const { return pending_ack_eliciting_ > 0; }
  std::uint64_t largest_received() const { return received_.largest(); }

  /// Builds the ACK payload and clears the pending state.
  std::shared_ptr<const net::TransportAck> build_ack(sim::Time now);

  const Config& config() const { return config_; }

 private:
  Config config_;
  PacketNumberSet received_;
  int pending_ack_eliciting_ = 0;
  sim::Time largest_recv_time_;
  sim::Time first_pending_time_ = sim::Time::infinite();
};

}  // namespace quicsteps::quic
