#include "quic/client.hpp"

namespace quicsteps::quic {

void Client::on_datagram(const net::Packet& pkt) {
  if (pkt.kind != net::PacketKind::kQuicData) return;
  const sim::Time now = loop_.now();

  if (stats_.first_packet_time.is_infinite()) {
    stats_.first_packet_time = now;
  }
  stats_.last_packet_time = now;

  const bool fresh =
      ack_manager_.on_packet_received(pkt.packet_number, true, now);
  if (!fresh) {
    ++stats_.duplicate_packets;
  } else {
    ++stats_.data_packets_received;
    if (pkt.stream_offset >= 0) {
      stats_.payload_bytes_received +=
          received_.add(pkt.stream_offset, pkt.stream_length);
    }
    if (complete() && stats_.completion_time.is_infinite()) {
      stats_.completion_time = now;
    }
  }

  if (ack_manager_.ack_due_now()) {
    send_ack_now();
  } else {
    arm_ack_timer();
  }
}

void Client::send_ack_now() {
  ack_timer_.cancel();
  if (!ack_manager_.has_pending()) return;
  const sim::Time now = loop_.now();

  net::Packet ack;
  ack.id = (std::uint64_t{config_.flow} << 40) + next_ack_id_++;
  ack.flow = config_.flow;
  ack.kind = net::PacketKind::kQuicAck;
  ack.size_bytes = kAckPacketSize;
  auto payload = ack_manager_.build_ack(now);
  if (config_.flow_control_credit > 0) {
    // The example clients consume data as it arrives, so the grant is
    // contiguous-consumed + static credit.
    auto granted = std::make_shared<net::TransportAck>(*payload);
    granted->max_data =
        received_.contiguous_prefix() + config_.flow_control_credit;
    ack.ack = std::move(granted);
  } else {
    ack.ack = std::move(payload);
  }
  ++stats_.acks_sent;
  if (ack_egress_ != nullptr) ack_egress_->deliver(std::move(ack));
}

void Client::arm_ack_timer() {
  if (ack_timer_.pending()) return;
  const sim::Time deadline = ack_manager_.ack_deadline();
  if (deadline.is_infinite()) return;
  ack_timer_ = loop_.schedule_at(deadline, [this] { send_ack_now(); });
}

}  // namespace quicsteps::quic
