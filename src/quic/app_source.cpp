#include "quic/app_source.hpp"

#include <algorithm>

namespace quicsteps::quic {

const char* to_string(SourceKind kind) {
  switch (kind) {
    case SourceKind::kBulk:
      return "bulk";
    case SourceKind::kChunked:
      return "chunked";
    case SourceKind::kCbr:
      return "cbr";
  }
  return "?";
}

AppSource::AppSource(sim::EventLoop& loop, Connection& connection,
                     SourceConfig config, std::function<void()> on_new_data)
    : loop_(loop),
      connection_(connection),
      config_(config),
      on_new_data_(std::move(on_new_data)) {}

void AppSource::start() {
  const std::int64_t total = connection_.config().total_payload_bytes;
  if (config_.kind == SourceKind::kBulk) {
    connection_.set_available_bytes(total);
    released_ = total;
    if (on_new_data_) on_new_data_();
    return;
  }
  // Chunked and CBR start with nothing buffered; the first release is due
  // immediately (first segment / first frame at t=0).
  release_next();
}

void AppSource::release_next() {
  const std::int64_t total = connection_.config().total_payload_bytes;
  if (released_ >= total) return;

  std::int64_t grant = 0;
  sim::Duration next = sim::Duration::zero();
  if (config_.kind == SourceKind::kChunked) {
    grant = config_.chunk_bytes;
    next = config_.period;
  } else {  // kCbr
    grant = config_.rate.bytes_in(config_.frame_interval);
    next = config_.frame_interval;
  }
  released_ = std::min(total, released_ + grant);
  connection_.set_available_bytes(released_);
  if (on_new_data_) on_new_data_();
  if (released_ < total) {
    loop_.schedule_after(next, sim::EventClass::kApp,
                         [this] { release_next(); });
  }
}

}  // namespace quicsteps::quic
