// Sender-side QUIC connection: one bulk stream (the paper's file download),
// packet numbering, ACK processing, RFC 9002 loss recovery, a pluggable
// congestion controller, and a pluggable pacer.
//
// The connection is deliberately passive about *when* packets go out: stack
// models (quiche/picoquic/ngtcp2 profiles) drive it, because the paper's
// findings are precisely about those driving disciplines. The connection
// answers "may I send?", builds packets, and digests ACKs and timers.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "cc/cc_factory.hpp"
#include "net/packet.hpp"
#include "pacing/pacer.hpp"
#include "quic/ack_manager.hpp"
#include "quic/frames.hpp"
#include "quic/loss_detection.hpp"
#include "quic/rtt_estimator.hpp"
#include "quic/sent_packet_map.hpp"

namespace quicsteps::quic {

/// Observer interface the Connection reports its lifecycle through
/// (structured tracing; see quic/qlog.hpp for the qlog JSON writer).
class ConnectionObserver {
 public:
  virtual ~ConnectionObserver() = default;
  virtual void on_packet_sent(sim::Time now, const net::Packet& pkt) = 0;
  virtual void on_ack_processed(sim::Time now, std::uint64_t largest_acked,
                                std::int64_t acked_bytes) = 0;
  virtual void on_packets_lost(sim::Time now, std::int64_t lost_packets,
                               std::int64_t lost_bytes) = 0;
  virtual void on_metrics(sim::Time now, std::int64_t cwnd,
                          std::int64_t bytes_in_flight,
                          sim::Duration smoothed_rtt,
                          net::DataRate pacing_rate) = 0;
};

class Connection {
 public:
  struct Config {
    std::int64_t total_payload_bytes = 10 * 1024 * 1024;
    std::uint32_t flow = 1;
    cc::CcConfig cc;
    pacing::PacerConfig pacer;
    /// Pacing-rate headroom over cwnd/srtt (the paper notes all stacks
    /// compute the rate the same way; RFC 9002 suggests ~1.25). The ngtcp2
    /// profile uses 1.0 (no headroom).
    double pacing_rate_factor = 1.25;
    /// Connection flow-control credit granted by the peer (MAX_DATA =
    /// consumed + credit). <=0 means effectively unlimited. Static,
    /// conservative credits cap throughput at credit/RTT — the mechanism
    /// behind the ngtcp2 example's low, perfectly stable goodput.
    std::int64_t flow_control_credit = 0;
    /// When true the connection starts with ZERO available bytes and an
    /// AppSource feeds availability over time (chunked / CBR workloads).
    bool app_limited_source = false;
    sim::Duration max_ack_delay = sim::Duration::millis(25);
    LossDetection::Config loss;
  };

  struct Stats {
    std::int64_t packets_sent = 0;
    std::int64_t bytes_sent = 0;
    std::int64_t packets_declared_lost = 0;
    std::int64_t bytes_declared_lost = 0;
    std::int64_t packets_retransmitted = 0;
    std::int64_t acks_received = 0;
    std::int64_t pto_fired = 0;
    sim::Time completion_time = sim::Time::infinite();
  };

  explicit Connection(Config config);

  // --- send path ----------------------------------------------------------
  /// More stream data (new or retransmission) waits to be packetized.
  bool has_data_to_send() const;
  /// True when only the peer's MAX_DATA blocks further NEW data (a window
  /// update will unblock; retransmissions are never blocked).
  bool flow_control_blocked() const;
  /// True when cwnd blocks a full-sized packet right now.
  bool congestion_blocked() const;
  /// Current pacing rate (infinite before the first RTT sample so the
  /// initial window leaves as the burst real stacks emit).
  net::DataRate pacing_rate() const;
  /// Earliest release instant the pacer permits for the next packet.
  sim::Time pacer_release_time(sim::Time now);

  /// Builds the next packet. `send_time` is when the packet is (planned to
  /// be) handed to the kernel; it is recorded as the CC/loss send time.
  /// `pacer_commit_time` is what the pacer schedule advances from — quiche
  /// commits the planned txtime, waiters commit the actual send instant.
  net::Packet build_packet(sim::Time send_time, sim::Time pacer_commit_time);

  /// Marks the sender application-limited (nothing more to send while the
  /// window still has room) — BBR discounts bandwidth samples from such
  /// periods.
  void set_app_limited() { app_limited_ = true; }

  /// Application data availability (app-limited workloads): only bytes
  /// below this watermark may be packetized. Defaults to the full payload
  /// (bulk transfer). Monotone; used by quic::AppSource for chunked/CBR
  /// workloads.
  void set_available_bytes(std::int64_t available) {
    available_bytes_ = std::max(available_bytes_, available);
  }
  std::int64_t available_bytes() const { return available_bytes_; }
  /// True when only data availability blocks sending (source starved).
  bool source_blocked() const {
    return retransmit_queue_.empty() &&
           next_offset_ < config_.total_payload_bytes &&
           next_offset_ >= available_bytes_;
  }

  // --- receive path ---------------------------------------------------------
  /// Processes an incoming ACK packet.
  void on_ack_packet(const net::Packet& pkt, sim::Time now);

  // --- timers -----------------------------------------------------------------
  /// Earliest of the loss timer and the PTO; infinite when nothing is
  /// outstanding.
  sim::Time next_timer_deadline() const;
  /// Fires due timers: runs time-threshold loss detection and/or PTO.
  void on_timer(sim::Time now);

  // --- observers -----------------------------------------------------------
  bool transfer_complete() const {
    return acked_.covered_bytes() >= config_.total_payload_bytes;
  }
  const Stats& stats() const { return stats_; }
  const cc::CongestionController& controller() const { return *cc_; }
  const RttEstimator& rtt() const { return rtt_; }
  std::int64_t bytes_in_flight() const { return sent_.bytes_in_flight(); }
  std::int64_t cwnd_bytes() const { return cc_->cwnd_bytes(); }
  const Config& config() const { return config_; }
  pacing::Pacer& pacer() { return *pacer_; }
  const pacing::Pacer& pacer() const { return *pacer_; }

  /// Trace hook invoked after every CC-relevant event with (time, cwnd,
  /// bytes_in_flight) — feeds the Fig. 7 congestion-window plots.
  using CwndTracer =
      std::function<void(sim::Time, std::int64_t, std::int64_t)>;
  void set_cwnd_tracer(CwndTracer tracer) { tracer_ = std::move(tracer); }

  /// Structured event observer (qlog); optional, may be null.
  void set_observer(ConnectionObserver* observer) { observer_ = observer; }

 private:
  struct Chunk {
    std::int64_t offset;
    std::int64_t length;
    bool fin;
  };

  Chunk next_chunk();
  void handle_lost(std::vector<SentPacket> lost, bool persistent,
                   sim::Time now);
  void trace(sim::Time now);

  Config config_;
  std::unique_ptr<cc::CongestionController> cc_;
  std::unique_ptr<pacing::Pacer> pacer_;
  SentPacketMap sent_;
  RttEstimator rtt_;
  LossDetection loss_;

  std::uint64_t next_pn_ = 1;
  std::uint64_t next_packet_id_ = 1;
  std::int64_t next_offset_ = 0;
  std::int64_t available_bytes_ = 0;  // app-limited availability watermark
  std::int64_t peer_max_data_ = 0;  // highest MAX_DATA seen
  std::deque<Chunk> retransmit_queue_;
  ByteIntervalSet acked_;
  std::uint64_t largest_acked_ = 0;
  bool has_acked_anything_ = false;

  // Delivery-rate estimator state.
  std::int64_t delivered_bytes_ = 0;
  sim::Time delivered_time_;
  bool app_limited_ = false;

  sim::Time loss_timer_ = sim::Time::infinite();
  int pto_count_ = 0;

  Stats stats_;
  CwndTracer tracer_;
  ConnectionObserver* observer_ = nullptr;
};

}  // namespace quicsteps::quic
