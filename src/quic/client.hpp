// Receiver-side QUIC endpoint (the paper's downloading client).
//
// Consumes data packets, maintains the reassembly intervals, and runs the
// delayed-ACK policy: an ACK goes out after every second ack-eliciting
// packet or when max_ack_delay expires. ACKs leave through the client's
// egress path (netem +20 ms back to the server).
#pragma once

#include <cstdint>
#include <functional>

#include "net/packet.hpp"
#include "quic/ack_manager.hpp"
#include "quic/frames.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::quic {

class Client : public net::PacketSink {
 public:
  struct Config {
    std::uint32_t flow = 1;
    AckManager::Config ack;
    std::int64_t expected_payload_bytes = 0;  // 0 = unknown
    /// Flow-control credit the client grants (MAX_DATA = consumed +
    /// credit, piggybacked on every ACK). <=0 = effectively unlimited.
    std::int64_t flow_control_credit = 0;
  };

  struct Stats {
    std::int64_t data_packets_received = 0;
    std::int64_t duplicate_packets = 0;
    std::int64_t payload_bytes_received = 0;
    std::int64_t acks_sent = 0;
    sim::Time first_packet_time = sim::Time::infinite();
    sim::Time last_packet_time;
    sim::Time completion_time = sim::Time::infinite();
  };

  /// `ack_egress` transmits ACK packets toward the server.
  Client(sim::EventLoop& loop, Config config, net::PacketSink* ack_egress)
      : loop_(loop), config_(config), ack_manager_(config.ack),
        ack_egress_(ack_egress) {}

  /// Feed one received datagram (wired to the client UdpReceiver handler).
  void on_datagram(const net::Packet& pkt);

  /// PacketSink ingress (flow-table routing targets the client directly).
  void deliver(net::Packet pkt) override { on_datagram(pkt); }

  bool complete() const {
    return config_.expected_payload_bytes > 0 &&
           received_.covered_bytes() >= config_.expected_payload_bytes;
  }
  const Stats& stats() const { return stats_; }
  const ByteIntervalSet& received() const { return received_; }

 private:
  void send_ack_now();
  void arm_ack_timer();

  sim::EventLoop& loop_;
  Config config_;
  AckManager ack_manager_;
  net::PacketSink* ack_egress_;
  ByteIntervalSet received_;
  Stats stats_;
  sim::EventHandle ack_timer_;
  std::uint64_t next_ack_id_ = 1;
};

}  // namespace quicsteps::quic
