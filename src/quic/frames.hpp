// QUIC frame-level helpers.
//
// The simulator does not serialize wire images; packets carry structured
// metadata instead (see net::Packet). This header defines the constants and
// small helpers shared by the QUIC sender and receiver: datagram sizing and
// the received-packet-number interval set the ACK manager maintains.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.hpp"

namespace quicsteps::quic {

/// Wire size of a full QUIC datagram in these experiments.
inline constexpr std::int64_t kDatagramSize = 1500;
/// Application payload per full datagram (wire size minus IP/UDP/QUIC
/// header and AEAD overhead); sets the goodput ceiling:
/// 40 Mbit/s * 1402/1500 = 37.4 Mbit/s, matching the paper's topline.
inline constexpr std::int64_t kPayloadPerDatagram = 1402;
/// Wire size of a pure ACK datagram.
inline constexpr std::int64_t kAckPacketSize = 60;

/// Ordered set of received packet numbers, kept as disjoint inclusive
/// intervals (the receiver state behind QUIC ACK ranges).
class PacketNumberSet {
 public:
  /// Inserts pn; returns false if it was already present (duplicate).
  bool insert(std::uint64_t pn);
  bool contains(std::uint64_t pn) const;

  /// Highest received packet number (0 if empty — check empty() first).
  std::uint64_t largest() const;
  bool empty() const { return intervals_.empty(); }
  std::size_t interval_count() const { return intervals_.size(); }

  /// Renders the newest-first ACK blocks, at most `max_blocks`.
  std::vector<net::AckBlock> to_ack_blocks(std::size_t max_blocks) const;

 private:
  // key = interval start, value = interval end (inclusive); disjoint and
  // non-adjacent.
  std::map<std::uint64_t, std::uint64_t> intervals_;
};

/// Ordered set of received byte ranges (stream reassembly bookkeeping on
/// the client; completion = one interval covering [0, total)).
class ByteIntervalSet {
 public:
  /// Adds [offset, offset + length); returns the number of NEW bytes.
  std::int64_t add(std::int64_t offset, std::int64_t length);
  std::int64_t covered_bytes() const { return covered_; }
  /// Contiguous prefix [0, n) fully received.
  std::int64_t contiguous_prefix() const;
  std::size_t interval_count() const { return intervals_.size(); }

 private:
  std::map<std::int64_t, std::int64_t> intervals_;  // start -> end (excl.)
  std::int64_t covered_ = 0;
};

}  // namespace quicsteps::quic
