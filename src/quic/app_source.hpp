// Application data sources — the workloads the paper's introduction
// motivates beyond the bulk download its evaluation uses:
//   kBulk     the whole payload is available at t=0 (the paper's 100 MiB
//             HTTP download);
//   kChunked  a media segment of `chunk_bytes` becomes available every
//             `period` (DASH-style video-on-demand);
//   kCbr      bytes accrue continuously at `rate` (a real-time video
//             call / live stream).
//
// App-limited sources are where pacing strategies differ most: every idle
// period restarts the pacer, and credit-based pacers (picoquic's bucket)
// answer a refilled bucket with a burst.
#pragma once

#include <cstdint>
#include <functional>

#include "net/data_rate.hpp"
#include "quic/connection.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::quic {

enum class SourceKind : std::uint8_t { kBulk, kChunked, kCbr };

const char* to_string(SourceKind kind);

struct SourceConfig {
  SourceKind kind = SourceKind::kBulk;
  /// kChunked: segment size and release period.
  std::int64_t chunk_bytes = 512 * 1024;
  sim::Duration period = sim::Duration::seconds(1);
  /// kCbr: media bitrate; availability is granted per `frame_interval`
  /// (e.g. a 30 fps encoder hands the stack one frame every 33 ms).
  net::DataRate rate = net::DataRate::megabits_per_second(2);
  sim::Duration frame_interval = sim::Duration::millis(33);
};

/// Drives Connection::set_available_bytes over simulated time and pokes
/// the sender when new data appears.
class AppSource {
 public:
  AppSource(sim::EventLoop& loop, Connection& connection,
            SourceConfig config, std::function<void()> on_new_data);

  /// Begins releasing data (bulk releases everything immediately).
  void start();

  const SourceConfig& config() const { return config_; }

 private:
  void release_next();

  sim::EventLoop& loop_;
  Connection& connection_;
  SourceConfig config_;
  std::function<void()> on_new_data_;
  std::int64_t released_ = 0;
};

}  // namespace quicsteps::quic
