#include "quic/rtt_estimator.hpp"

namespace quicsteps::quic {

void RttEstimator::update(sim::Duration latest, sim::Duration ack_delay,
                          sim::Duration max_ack_delay) {
  latest_ = latest;
  min_ = sim::min(min_, latest);

  // Clamp the peer-reported delay and only subtract it when the result
  // stays above min_rtt (RFC 9002 §5.3).
  ack_delay = sim::min(ack_delay, max_ack_delay);
  sim::Duration adjusted = latest;
  if (adjusted - ack_delay >= min_) adjusted = adjusted - ack_delay;

  if (!has_samples_) {
    smoothed_ = adjusted;
    rttvar_ = adjusted / 2;
    has_samples_ = true;
    return;
  }
  const sim::Duration diff = smoothed_ > adjusted ? smoothed_ - adjusted
                                                  : adjusted - smoothed_;
  rttvar_ = (rttvar_ * 3 + diff) / 4;
  smoothed_ = (smoothed_ * 7 + adjusted) / 8;
}

sim::Duration RttEstimator::pto_interval(sim::Duration max_ack_delay) const {
  const sim::Duration granularity = sim::Duration::millis(1);  // kGranularity
  return smoothed_ + sim::max(rttvar_ * 4, granularity) + max_ack_delay;
}

}  // namespace quicsteps::quic
