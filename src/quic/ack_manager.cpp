#include "quic/ack_manager.hpp"

namespace quicsteps::quic {

bool AckManager::on_packet_received(std::uint64_t pn, bool ack_eliciting,
                                    sim::Time now) {
  const bool fresh = received_.insert(pn);
  if (!fresh) return false;
  if (pn >= received_.largest()) largest_recv_time_ = now;
  if (ack_eliciting) {
    if (pending_ack_eliciting_ == 0) first_pending_time_ = now;
    ++pending_ack_eliciting_;
  }
  return true;
}

sim::Time AckManager::ack_deadline() const {
  if (pending_ack_eliciting_ == 0) return sim::Time::infinite();
  if (ack_due_now()) return first_pending_time_;
  return first_pending_time_ + config_.max_ack_delay;
}

std::shared_ptr<const net::TransportAck> AckManager::build_ack(sim::Time now) {
  auto ack = std::make_shared<net::TransportAck>();
  ack->blocks = received_.to_ack_blocks(config_.max_ack_blocks);
  ack->ack_delay = now - largest_recv_time_;
  pending_ack_eliciting_ = 0;
  first_pending_time_ = sim::Time::infinite();
  return ack;
}

}  // namespace quicsteps::quic
