#include "quic/connection.hpp"

#include <algorithm>
#include <utility>

namespace quicsteps::quic {

Connection::Connection(Config config)
    : config_(config),
      cc_(cc::make_controller(config.cc)),
      pacer_(pacing::make_pacer(config.pacer)),
      loss_(config.loss) {
  peer_max_data_ = config_.flow_control_credit > 0
                       ? config_.flow_control_credit
                       : std::int64_t{1} << 60;
  available_bytes_ =
      config_.app_limited_source ? 0 : config_.total_payload_bytes;
}

bool Connection::has_data_to_send() const {
  if (!retransmit_queue_.empty()) return true;
  if (next_offset_ >= config_.total_payload_bytes) return false;
  return next_offset_ < peer_max_data_ && next_offset_ < available_bytes_;
}

bool Connection::flow_control_blocked() const {
  return retransmit_queue_.empty() &&
         next_offset_ < config_.total_payload_bytes &&
         next_offset_ >= peer_max_data_;
}

bool Connection::congestion_blocked() const {
  return sent_.bytes_in_flight() + kDatagramSize > cc_->cwnd_bytes();
}

net::DataRate Connection::pacing_rate() const {
  if (cc_->has_own_pacing_rate()) return cc_->pacing_rate();
  if (!rtt_.has_samples()) {
    // Before the first sample the initial window goes out unpaced, as the
    // real stacks do.
    return net::DataRate::infinite();
  }
  const auto srtt = sim::max(rtt_.smoothed(), sim::Duration::micros(1));
  return net::DataRate::bytes_per(cc_->cwnd_bytes(), srtt) *
         config_.pacing_rate_factor;
}

sim::Time Connection::pacer_release_time(sim::Time now) {
  return pacer_->earliest_send_time(now, kDatagramSize, pacing_rate());
}

Connection::Chunk Connection::next_chunk() {
  if (!retransmit_queue_.empty()) {
    Chunk chunk = retransmit_queue_.front();
    retransmit_queue_.pop_front();
    ++stats_.packets_retransmitted;
    return chunk;
  }
  const std::int64_t remaining =
      std::min(config_.total_payload_bytes, available_bytes_) - next_offset_;
  Chunk chunk{next_offset_, std::min<std::int64_t>(kPayloadPerDatagram,
                                                   remaining),
              false};
  next_offset_ += chunk.length;
  chunk.fin = next_offset_ >= config_.total_payload_bytes;
  return chunk;
}

net::Packet Connection::build_packet(sim::Time send_time,
                                     sim::Time pacer_commit_time) {
  const Chunk chunk = next_chunk();

  net::Packet pkt;
  pkt.id = next_packet_id_++;
  pkt.flow = config_.flow;
  pkt.kind = net::PacketKind::kQuicData;
  pkt.packet_number = next_pn_++;
  pkt.stream_offset = chunk.offset;
  pkt.stream_length = chunk.length;
  pkt.fin = chunk.fin;
  // Wire size: payload plus fixed header/AEAD overhead.
  pkt.size_bytes = chunk.length + (kDatagramSize - kPayloadPerDatagram);
  pkt.expected_send_time = pacer_commit_time;

  SentPacket sent;
  sent.pn = pkt.packet_number;
  sent.bytes = pkt.size_bytes;
  sent.time_sent = send_time;
  sent.stream_offset = chunk.offset;
  sent.stream_length = chunk.length;
  sent.fin = chunk.fin;
  sent.delivered_at_send = delivered_bytes_;
  sent.delivered_time_at_send = delivered_time_;
  sent.app_limited_at_send = app_limited_;
  const std::int64_t in_flight_before = sent_.bytes_in_flight();
  sent_.add(sent);

  cc_->on_packet_sent(send_time, pkt.packet_number, pkt.size_bytes,
                      in_flight_before);
  pacer_->on_packet_sent(pacer_commit_time, pkt.size_bytes, pacing_rate());

  // Once new data flows again the app-limited period ends.
  if (has_data_to_send()) app_limited_ = false;

  ++stats_.packets_sent;
  stats_.bytes_sent += pkt.size_bytes;
  if (observer_ != nullptr) observer_->on_packet_sent(send_time, pkt);
  return pkt;
}

void Connection::on_ack_packet(const net::Packet& pkt, sim::Time now) {
  if (pkt.ack == nullptr) return;
  ++stats_.acks_received;
  const net::TransportAck& ack = *pkt.ack;
  if (ack.max_data > 0) {
    peer_max_data_ = std::max(peer_max_data_, ack.max_data);
  }

  auto result = sent_.on_ack_blocks(ack.blocks);
  if (result.newly_acked.empty()) {
    return;  // pure duplicate
  }
  pto_count_ = 0;

  const SentPacket& largest_pkt = result.newly_acked.back();
  const bool new_largest =
      !has_acked_anything_ || largest_pkt.pn > largest_acked_;
  if (new_largest) {
    largest_acked_ = largest_pkt.pn;
    has_acked_anything_ = true;
    if (largest_pkt.ack_eliciting) {
      rtt_.update(now - largest_pkt.time_sent, ack.ack_delay,
                  config_.max_ack_delay);
    }
  }

  // Delivery-rate sample (BBR input): bytes delivered between the largest
  // acked packet's send snapshot and now.
  delivered_bytes_ += result.acked_bytes;
  net::DataRate bw_sample;
  if (delivered_time_ < now &&
      largest_pkt.delivered_time_at_send < now) {
    bw_sample = net::DataRate::bytes_per(
        delivered_bytes_ - largest_pkt.delivered_at_send,
        now - largest_pkt.delivered_time_at_send);
  }
  delivered_time_ = now;

  for (const auto& acked : result.newly_acked) {
    if (acked.stream_offset >= 0) {
      acked_.add(acked.stream_offset, acked.stream_length);
    }
  }
  if (transfer_complete() && stats_.completion_time.is_infinite()) {
    stats_.completion_time = now;
  }

  // Loss detection keyed on the new largest acked.
  auto loss_result = loss_.detect(sent_, largest_acked_, rtt_, now);
  loss_timer_ = loss_result.next_loss_time;
  if (!loss_result.lost.empty()) {
    handle_lost(std::move(loss_result.lost),
                loss_result.persistent_congestion, now);
  }

  cc::AckSample sample;
  sample.now = now;
  sample.acked_bytes = result.acked_bytes;
  sample.largest_acked_pn = largest_pkt.pn;
  sample.largest_acked_sent_time = largest_pkt.time_sent;
  sample.latest_rtt = rtt_.has_samples() ? rtt_.latest() : sim::Duration::zero();
  sample.smoothed_rtt = rtt_.smoothed();
  sample.min_rtt = rtt_.min();
  sample.bytes_in_flight = sent_.bytes_in_flight();
  sample.bandwidth_sample = bw_sample;
  sample.app_limited = largest_pkt.app_limited_at_send;
  sample.delivered_bytes = delivered_bytes_;
  cc_->on_ack(sample);
  if (observer_ != nullptr) {
    observer_->on_ack_processed(now, largest_pkt.pn, result.acked_bytes);
  }
  trace(now);
}

void Connection::handle_lost(std::vector<SentPacket> lost, bool persistent,
                             sim::Time now) {
  cc::LossSample sample;
  sample.now = now;
  sample.persistent_congestion = persistent;
  for (auto& pkt : lost) {
    sample.lost_bytes += pkt.bytes;
    ++sample.lost_packets;
    sample.largest_lost_pn = std::max(sample.largest_lost_pn, pkt.pn);
    sample.largest_lost_sent_time =
        sim::max(sample.largest_lost_sent_time, pkt.time_sent);
    if (pkt.stream_offset >= 0) {
      retransmit_queue_.push_back(
          Chunk{pkt.stream_offset, pkt.stream_length, pkt.fin});
    }
    ++stats_.packets_declared_lost;
    stats_.bytes_declared_lost += pkt.bytes;
  }
  sample.bytes_in_flight = sent_.bytes_in_flight();
  cc_->on_loss(sample);
  if (observer_ != nullptr) {
    observer_->on_packets_lost(now, sample.lost_packets, sample.lost_bytes);
  }
  trace(now);
}

sim::Time Connection::next_timer_deadline() const {
  sim::Time deadline = loss_timer_;
  if (!sent_.empty()) {
    deadline = sim::min(deadline, loss_.pto_deadline(sent_, rtt_, pto_count_));
  }
  return deadline;
}

void Connection::on_timer(sim::Time now) {
  // Time-threshold loss detection.
  if (!loss_timer_.is_infinite() && now >= loss_timer_) {
    auto result = loss_.detect(sent_, largest_acked_, rtt_, now);
    loss_timer_ = result.next_loss_time;
    if (!result.lost.empty()) {
      handle_lost(std::move(result.lost), result.persistent_congestion, now);
      return;
    }
  }
  // Probe timeout: retransmit the oldest outstanding chunk as a probe.
  if (!sent_.empty() &&
      now >= loss_.pto_deadline(sent_, rtt_, pto_count_)) {
    ++pto_count_;
    ++stats_.pto_fired;
    const SentPacket* oldest = sent_.oldest();
    if (oldest != nullptr && oldest->stream_offset >= 0) {
      retransmit_queue_.push_front(
          Chunk{oldest->stream_offset, oldest->stream_length, oldest->fin});
    }
  }
}

void Connection::trace(sim::Time now) {
  if (tracer_) tracer_(now, cc_->cwnd_bytes(), sent_.bytes_in_flight());
  if (observer_ != nullptr) {
    observer_->on_metrics(now, cc_->cwnd_bytes(), sent_.bytes_in_flight(),
                          rtt_.smoothed(), pacing_rate());
  }
}

}  // namespace quicsteps::quic
