// Sender-side bookkeeping of unacknowledged packets, including the
// delivery-rate sampling state BBR consumes (a compact version of the
// rate-sample algorithm from draft-cheng-iccrg-delivery-rate-estimation).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace quicsteps::quic {

struct SentPacket {
  std::uint64_t pn = 0;
  std::int64_t bytes = 0;
  sim::Time time_sent;
  bool ack_eliciting = true;
  bool in_flight = true;
  /// STREAM chunk carried (offset < 0 = none, e.g. a PING probe).
  std::int64_t stream_offset = -1;
  std::int64_t stream_length = 0;
  bool fin = false;
  // Delivery-rate snapshot at send time.
  std::int64_t delivered_at_send = 0;
  sim::Time delivered_time_at_send;
  bool app_limited_at_send = false;
};

class SentPacketMap {
 public:
  void add(SentPacket pkt);

  /// Removes and returns all tracked packets covered by `blocks`
  /// (ascending pn order).
  struct AckResult {
    std::vector<SentPacket> newly_acked;
    std::int64_t acked_bytes = 0;
  };
  AckResult on_ack_blocks(const std::vector<net::AckBlock>& blocks);

  /// Removes and returns the packet with number `pn` if still tracked.
  bool take(std::uint64_t pn, SentPacket* out);

  const SentPacket* find(std::uint64_t pn) const;
  bool empty() const { return packets_.empty(); }
  std::size_t size() const { return packets_.size(); }
  std::int64_t bytes_in_flight() const { return bytes_in_flight_; }
  /// Oldest unacked packet, nullptr when empty.
  const SentPacket* oldest() const;

  /// Iterates tracked packets with pn < bound (loss-detection scan).
  template <typename Fn>
  void for_each_below(std::uint64_t bound, Fn&& fn) const {
    for (const auto& [pn, pkt] : packets_) {
      if (pn >= bound) break;
      fn(pkt);
    }
  }

 private:
  std::map<std::uint64_t, SentPacket> packets_;
  std::int64_t bytes_in_flight_ = 0;
};

}  // namespace quicsteps::quic
