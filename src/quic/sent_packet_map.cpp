#include "quic/sent_packet_map.hpp"

#include <algorithm>

namespace quicsteps::quic {

void SentPacketMap::add(SentPacket pkt) {
  if (pkt.in_flight) bytes_in_flight_ += pkt.bytes;
  packets_.emplace(pkt.pn, std::move(pkt));
}

SentPacketMap::AckResult SentPacketMap::on_ack_blocks(
    const std::vector<net::AckBlock>& blocks) {
  AckResult result;
  for (const auto& block : blocks) {
    auto it = packets_.lower_bound(block.first);
    while (it != packets_.end() && it->first <= block.last) {
      if (it->second.in_flight) bytes_in_flight_ -= it->second.bytes;
      result.acked_bytes += it->second.bytes;
      result.newly_acked.push_back(std::move(it->second));
      it = packets_.erase(it);
    }
  }
  // Blocks arrive newest-first; report ascending for deterministic
  // processing.
  std::sort(result.newly_acked.begin(), result.newly_acked.end(),
            [](const SentPacket& a, const SentPacket& b) { return a.pn < b.pn; });
  return result;
}

bool SentPacketMap::take(std::uint64_t pn, SentPacket* out) {
  auto it = packets_.find(pn);
  if (it == packets_.end()) return false;
  if (it->second.in_flight) bytes_in_flight_ -= it->second.bytes;
  if (out != nullptr) *out = std::move(it->second);
  packets_.erase(it);
  return true;
}

const SentPacket* SentPacketMap::find(std::uint64_t pn) const {
  auto it = packets_.find(pn);
  return it == packets_.end() ? nullptr : &it->second;
}

const SentPacket* SentPacketMap::oldest() const {
  return packets_.empty() ? nullptr : &packets_.begin()->second;
}

}  // namespace quicsteps::quic
