// Reference QUIC server: drives a Connection with IDEAL discipline —
// perfect timers, immediate ACK processing, always waits for the pacer.
//
// This is not one of the measured stacks (those live in src/stacks with
// their timer and batching quirks); it exists to (a) validate the transport
// machinery in tests independent of stack behavior and (b) serve as the
// "perfect user-space pacing" ablation baseline.
#pragma once

#include <memory>

#include "kernel/timer_service.hpp"
#include "net/packet.hpp"
#include "obs/trace.hpp"
#include "quic/connection.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::quic {

class ReferenceServer : public net::PacketSink, public obs::TraceSource {
 public:
  ReferenceServer(sim::EventLoop& loop, Connection::Config config,
                  net::PacketSink* egress)
      : loop_(loop), connection_(config), egress_(egress) {}

  /// Routes pacer sleeps through `timers` (OS-quality wakeups) instead of
  /// the simulator's exact clock — for "how good can user-space pacing
  /// get on this host" experiments.
  void set_pacer_timers(kernel::TimerService* timers) { timers_ = timers; }

  /// Kicks off the transfer.
  void start() { attempt_send(); }

  /// Feed one received datagram (ACKs).
  void on_datagram(const net::Packet& pkt) {
    if (pkt.kind != net::PacketKind::kQuicAck) return;
    connection_.on_ack_packet(pkt, loop_.now());
    rearm_loss_timer();
    attempt_send();
  }

  /// PacketSink ingress (flow-table routing targets the server directly).
  void deliver(net::Packet pkt) override { on_datagram(pkt); }

  Connection& connection() { return connection_; }
  const Connection& connection() const { return connection_; }

 private:
  void attempt_send();
  void rearm_loss_timer();
  void on_loss_timer();

  sim::EventLoop& loop_;
  Connection connection_;
  net::PacketSink* egress_;
  kernel::TimerService* timers_ = nullptr;
  /// Intended release of the packet we armed a timer for: the wakeup may
  /// land late, but the packet's *intended* send time (what the precision
  /// metric compares against) is the pre-sleep value.
  sim::Time planned_release_ = sim::Time::infinite();
  sim::EventHandle send_timer_;
  sim::EventHandle loss_timer_;
  /// Deadline loss_timer_ is armed for (lazy re-arm; see StackServer).
  sim::Time armed_loss_deadline_ = sim::Time::infinite();
};

}  // namespace quicsteps::quic
