// RTT estimation per RFC 9002 Section 5.
#pragma once

#include "sim/time.hpp"

namespace quicsteps::quic {

class RttEstimator {
 public:
  /// Feeds one RTT sample; `ack_delay` is the peer-reported delay, applied
  /// per RFC 9002 §5.3 (subtracted only when it keeps the sample >= min).
  void update(sim::Duration latest, sim::Duration ack_delay,
              sim::Duration max_ack_delay);

  bool has_samples() const { return has_samples_; }
  sim::Duration latest() const { return latest_; }
  sim::Duration smoothed() const { return smoothed_; }
  sim::Duration rttvar() const { return rttvar_; }
  sim::Duration min() const { return min_; }

  /// PTO interval per RFC 9002 §6.2.1 (excluding the backoff multiplier).
  sim::Duration pto_interval(sim::Duration max_ack_delay) const;

 private:
  bool has_samples_ = false;
  sim::Duration latest_;
  sim::Duration smoothed_ = sim::Duration::millis(333);  // kInitialRtt
  sim::Duration rttvar_ = sim::Duration::millis(333) / 2;
  sim::Duration min_ = sim::Duration::infinite();
};

}  // namespace quicsteps::quic
