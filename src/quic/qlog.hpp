// qlog-style structured tracing (draft-ietf-quic-qlog "seq" flavor):
// newline-delimited JSON events a qvis-like tool can consume. Covers the
// event classes the pacing study cares about: packet_sent (with the
// intended txtime), acks, loss, and recovery metric updates.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "quic/connection.hpp"

namespace quicsteps::quic {

/// Writes one JSON object per line in qlog-seq style.
class QlogWriter final : public ConnectionObserver {
 public:
  explicit QlogWriter(std::ostream& out) : out_(out) {}

  /// Emits the qlog header record (file-level metadata).
  void write_header(const std::string& title);

  void on_packet_sent(sim::Time now, const net::Packet& pkt) override;
  void on_ack_processed(sim::Time now, std::uint64_t largest_acked,
                        std::int64_t acked_bytes) override;
  void on_packets_lost(sim::Time now, std::int64_t lost_packets,
                       std::int64_t lost_bytes) override;
  void on_metrics(sim::Time now, std::int64_t cwnd,
                  std::int64_t bytes_in_flight, sim::Duration smoothed_rtt,
                  net::DataRate pacing_rate) override;

  std::int64_t events_written() const { return events_; }

 private:
  void prefix(sim::Time now, const char* name);

  std::ostream& out_;
  std::int64_t events_ = 0;
};

}  // namespace quicsteps::quic
