#include "quic/qlog.hpp"

namespace quicsteps::quic {

void QlogWriter::write_header(const std::string& title) {
  out_ << "{\"qlog_format\":\"JSON-SEQ\",\"qlog_version\":\"0.4\","
          "\"title\":\""
       << title
       << "\",\"generator\":\"quicsteps\","
          "\"trace\":{\"time_unit\":\"us\"}}\n";
}

void QlogWriter::prefix(sim::Time now, const char* name) {
  // Microseconds with fixed sub-µs digits: pacing errors live well below a
  // millisecond, and ostream's default 6-significant-digit double formatting
  // would destroy them.
  out_ << "{\"time\":" << now.to_micros_string() << ",\"name\":\"" << name
       << "\",\"data\":";
}

void QlogWriter::on_packet_sent(sim::Time now, const net::Packet& pkt) {
  prefix(now, "transport:packet_sent");
  out_ << "{\"header\":{\"packet_type\":\"1RTT\",\"packet_number\":"
       << pkt.packet_number << "},\"raw\":{\"length\":" << pkt.size_bytes
       << "}";
  if (pkt.stream_offset >= 0) {
    out_ << ",\"frames\":[{\"frame_type\":\"stream\",\"offset\":"
         << pkt.stream_offset << ",\"length\":" << pkt.stream_length
         << (pkt.fin ? ",\"fin\":true" : "") << "}]";
  }
  if (pkt.has_txtime) {
    out_ << ",\"txtime_us\":" << pkt.txtime.to_micros_string();
  }
  out_ << ",\"intended_send_us\":"
       << pkt.expected_send_time.to_micros_string() << "}}\n";
  ++events_;
}

void QlogWriter::on_ack_processed(sim::Time now, std::uint64_t largest_acked,
                                  std::int64_t acked_bytes) {
  prefix(now, "transport:packet_received");
  out_ << "{\"header\":{\"packet_type\":\"1RTT\"},\"frames\":[{"
          "\"frame_type\":\"ack\",\"largest_acked\":"
       << largest_acked << ",\"acked_bytes\":" << acked_bytes << "}]}}\n";
  ++events_;
}

void QlogWriter::on_packets_lost(sim::Time now, std::int64_t lost_packets,
                                 std::int64_t lost_bytes) {
  prefix(now, "recovery:packet_lost");
  out_ << "{\"packets\":" << lost_packets << ",\"bytes\":" << lost_bytes
       << "}}\n";
  ++events_;
}

void QlogWriter::on_metrics(sim::Time now, std::int64_t cwnd,
                            std::int64_t bytes_in_flight,
                            sim::Duration smoothed_rtt,
                            net::DataRate pacing_rate) {
  prefix(now, "recovery:metrics_updated");
  out_ << "{\"congestion_window\":" << cwnd
       << ",\"bytes_in_flight\":" << bytes_in_flight
       << ",\"smoothed_rtt\":" << smoothed_rtt.to_micros_string();
  if (!pacing_rate.is_infinite() && !pacing_rate.is_zero()) {
    out_ << ",\"pacing_rate\":" << pacing_rate.bps();
  }
  out_ << "}}\n";
  ++events_;
}

}  // namespace quicsteps::quic
