// Loss detection per RFC 9002 Section 6: packet-number threshold, time
// threshold, and the probe timeout (PTO). Persistent congestion (§7.6) is
// detected across consecutive lost packets.
#pragma once

#include <cstdint>
#include <vector>

#include "quic/rtt_estimator.hpp"
#include "quic/sent_packet_map.hpp"
#include "sim/time.hpp"

namespace quicsteps::quic {

class LossDetection {
 public:
  struct Config {
    int packet_threshold = 3;          // kPacketThreshold
    double time_threshold = 9.0 / 8.0; // kTimeThreshold
    sim::Duration granularity = sim::Duration::millis(1);
    sim::Duration max_ack_delay = sim::Duration::millis(25);
    int persistent_congestion_threshold = 3;
  };

  struct Result {
    std::vector<SentPacket> lost;
    bool persistent_congestion = false;
    /// Earliest instant a still-tracked packet could be declared lost by
    /// the time threshold; infinite if none.
    sim::Time next_loss_time = sim::Time::infinite();
  };

  LossDetection() : LossDetection(Config{}) {}
  explicit LossDetection(Config config) : config_(config) {}

  /// Scans `map` for packets now considered lost given `largest_acked`.
  /// Lost packets are REMOVED from the map.
  Result detect(SentPacketMap& map, std::uint64_t largest_acked,
                const RttEstimator& rtt, sim::Time now) const;

  /// PTO deadline given the oldest outstanding ack-eliciting packet.
  sim::Time pto_deadline(const SentPacketMap& map, const RttEstimator& rtt,
                         int pto_count) const;

  const Config& config() const { return config_; }

 private:
  sim::Duration loss_delay(const RttEstimator& rtt) const;

  Config config_;
};

}  // namespace quicsteps::quic
