#include "quic/loss_detection.hpp"

#include <algorithm>

namespace quicsteps::quic {

sim::Duration LossDetection::loss_delay(const RttEstimator& rtt) const {
  const sim::Duration base = sim::max(rtt.smoothed(), rtt.latest());
  const auto delay = base * config_.time_threshold;
  return sim::max(delay, config_.granularity);
}

LossDetection::Result LossDetection::detect(SentPacketMap& map,
                                            std::uint64_t largest_acked,
                                            const RttEstimator& rtt,
                                            sim::Time now) const {
  Result result;
  const sim::Duration delay = loss_delay(rtt);
  const sim::Time lost_send_time = now - delay;

  std::vector<std::uint64_t> to_remove;
  map.for_each_below(largest_acked, [&](const SentPacket& pkt) {
    if (largest_acked >= pkt.pn + config_.packet_threshold ||
        pkt.time_sent <= lost_send_time) {
      to_remove.push_back(pkt.pn);
    } else {
      result.next_loss_time =
          sim::min(result.next_loss_time, pkt.time_sent + delay);
    }
  });
  for (std::uint64_t pn : to_remove) {
    SentPacket pkt;
    if (map.take(pn, &pkt)) result.lost.push_back(std::move(pkt));
  }

  // Persistent congestion: the span of consecutive losses exceeds
  // persistent_congestion_threshold * PTO (RFC 9002 §7.6), only meaningful
  // with RTT samples.
  if (result.lost.size() >= 2 && rtt.has_samples()) {
    const sim::Duration pto = rtt.pto_interval(config_.max_ack_delay);
    const sim::Duration span =
        result.lost.back().time_sent - result.lost.front().time_sent;
    if (span > pto * config_.persistent_congestion_threshold) {
      result.persistent_congestion = true;
    }
  }
  return result;
}

sim::Time LossDetection::pto_deadline(const SentPacketMap& map,
                                      const RttEstimator& rtt,
                                      int pto_count) const {
  const SentPacket* oldest = map.oldest();
  if (oldest == nullptr) return sim::Time::infinite();
  sim::Duration interval = rtt.pto_interval(config_.max_ack_delay);
  for (int i = 0; i < pto_count; ++i) interval = interval * 2;  // backoff
  return oldest->time_sent + interval;
}

}  // namespace quicsteps::quic
