#include "quic/frames.hpp"

#include <algorithm>

namespace quicsteps::quic {

bool PacketNumberSet::insert(std::uint64_t pn) {
  if (contains(pn)) return false;

  // Find potential neighbors to merge with.
  auto right = intervals_.lower_bound(pn);  // first interval starting > pn-?
  bool merge_left = false, merge_right = false;
  auto left = intervals_.end();
  if (right != intervals_.begin()) {
    left = std::prev(right);
    if (left->second + 1 == pn) merge_left = true;
  }
  if (right != intervals_.end() && pn + 1 == right->first) merge_right = true;

  if (merge_left && merge_right) {
    left->second = right->second;
    intervals_.erase(right);
  } else if (merge_left) {
    left->second = pn;
  } else if (merge_right) {
    const std::uint64_t end = right->second;
    intervals_.erase(right);
    intervals_.emplace(pn, end);
  } else {
    intervals_.emplace(pn, pn);
  }
  return true;
}

bool PacketNumberSet::contains(std::uint64_t pn) const {
  auto it = intervals_.upper_bound(pn);
  if (it == intervals_.begin()) return false;
  --it;
  return pn >= it->first && pn <= it->second;
}

std::uint64_t PacketNumberSet::largest() const {
  if (intervals_.empty()) return 0;
  return std::prev(intervals_.end())->second;
}

std::vector<net::AckBlock> PacketNumberSet::to_ack_blocks(
    std::size_t max_blocks) const {
  std::vector<net::AckBlock> blocks;
  if (intervals_.empty() || max_blocks == 0) return blocks;
  // Newest ranges first; the OLDEST interval always rides along (it is the
  // cumulative ACK for the TCP model and cheap insurance for QUIC).
  const auto oldest = intervals_.begin();
  for (auto it = intervals_.rbegin();
       it != intervals_.rend() && blocks.size() + 1 < max_blocks; ++it) {
    if (it->first == oldest->first) break;
    blocks.push_back(net::AckBlock{it->first, it->second});
  }
  blocks.push_back(net::AckBlock{oldest->first, oldest->second});
  return blocks;
}

std::int64_t ByteIntervalSet::add(std::int64_t offset, std::int64_t length) {
  if (length <= 0) return 0;
  std::int64_t start = offset;
  std::int64_t end = offset + length;

  // In-order fast path: back-to-back stream delivery appends at (or
  // inside) the interval with the greatest start. Extending it in place
  // skips the erase + re-insert tree rebalances of the general path. The
  // last interval has no successor, so no absorption check is needed.
  if (!intervals_.empty()) {
    auto last = std::prev(intervals_.end());
    if (start >= last->first && start <= last->second) {
      if (end <= last->second) return 0;  // fully covered already
      const std::int64_t new_bytes = end - last->second;
      last->second = end;
      covered_ += new_bytes;
      return new_bytes;
    }
  }

  // Absorb every interval overlapping or touching [start, end).
  auto it = intervals_.upper_bound(start);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second >= start) it = prev;
  }
  std::int64_t absorbed = 0;
  while (it != intervals_.end() && it->first <= end) {
    start = std::min(start, it->first);
    end = std::max(end, it->second);
    absorbed += it->second - it->first;
    it = intervals_.erase(it);
  }
  intervals_.emplace(start, end);
  const std::int64_t new_bytes = (end - start) - absorbed;
  covered_ += new_bytes;
  return new_bytes;
}

std::int64_t ByteIntervalSet::contiguous_prefix() const {
  if (intervals_.empty() || intervals_.begin()->first != 0) return 0;
  return intervals_.begin()->second;
}

}  // namespace quicsteps::quic
