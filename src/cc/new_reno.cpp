#include "cc/new_reno.hpp"

#include <algorithm>
#include <cstdio>

namespace quicsteps::cc {

void NewReno::on_packet_sent(sim::Time, std::uint64_t, std::int64_t,
                             std::int64_t) {}

void NewReno::on_ack(const AckSample& ack) {
  // No growth for packets sent before (or during) the current recovery.
  if (in_recovery(ack.largest_acked_sent_time)) return;
  if (in_slow_start()) {
    cwnd_ += ack.acked_bytes;
    return;
  }
  // Congestion avoidance: one MSS per cwnd of acked bytes.
  cwnd_ += kMaxDatagramSize * ack.acked_bytes / cwnd_;
}

void NewReno::on_congestion_event(sim::Time now, sim::Time sent_time) {
  if (in_recovery(sent_time)) return;  // once per recovery period
  recovery_start_ = now;
  cwnd_ = static_cast<std::int64_t>(static_cast<double>(cwnd_) *
                                    config_.loss_reduction_factor);
  cwnd_ = std::max(cwnd_, config_.minimum_window);
  ssthresh_ = cwnd_;
}

void NewReno::on_loss(const LossSample& loss) {
  on_congestion_event(loss.now, loss.largest_lost_sent_time);
  if (loss.persistent_congestion) {
    cwnd_ = config_.minimum_window;
  }
}

std::string NewReno::debug_state() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "newreno{cwnd=%lld ssthresh=%lld %s}",
                static_cast<long long>(cwnd_),
                static_cast<long long>(ssthresh_),
                in_slow_start() ? "ss" : "ca");
  return buf;
}

}  // namespace quicsteps::cc
