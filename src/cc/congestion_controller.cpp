#include "cc/congestion_controller.hpp"

namespace quicsteps::cc {

const char* to_string(CcAlgorithm algo) {
  switch (algo) {
    case CcAlgorithm::kNewReno:
      return "newreno";
    case CcAlgorithm::kCubic:
      return "cubic";
    case CcAlgorithm::kBbr:
      return "bbr";
  }
  return "?";
}

}  // namespace quicsteps::cc
