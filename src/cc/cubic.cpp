#include "cc/cubic.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace quicsteps::cc {

namespace {
constexpr double kMss = static_cast<double>(kMaxDatagramSize);
}

Cubic::Cubic(Config config)
    : config_(config),
      cwnd_(config.initial_window),
      hystart_(config.hystart_config) {}

void Cubic::on_packet_sent(sim::Time, std::uint64_t pn, std::int64_t,
                           std::int64_t) {
  largest_sent_pn_ = std::max(largest_sent_pn_, pn);
}

double Cubic::cubic_window_mss(sim::Duration t) const {
  const double dt = t.to_seconds() - k_seconds_;
  return config_.c * dt * dt * dt + w_max_mss_;
}

void Cubic::start_epoch(sim::Time now) {
  epoch_started_ = true;
  epoch_start_ = now;
  const double cwnd_mss = static_cast<double>(cwnd_) / kMss;
  if (cwnd_mss < w_max_mss_) {
    // K = cbrt((W_max - cwnd) / C)
    k_seconds_ = std::cbrt((w_max_mss_ - cwnd_mss) / config_.c);
  } else {
    k_seconds_ = 0.0;
    w_max_mss_ = cwnd_mss;
  }
  w_est_mss_ = cwnd_mss;
}

void Cubic::on_ack(const AckSample& ack) {
  // --- HyStart++ round & sample bookkeeping -------------------------------
  if (config_.hystart && !hystart_exited_ && in_slow_start()) {
    if (ack.largest_acked_pn >= round_end_pn_) {
      hystart_.on_round_start();
      round_end_pn_ = largest_sent_pn_ + 1;
    }
    if (ack.latest_rtt > sim::Duration::zero()) {
      hystart_.on_rtt_sample(ack.latest_rtt);
    }
    if (hystart_.done()) {
      // HyStart++ confirmed the delay increase: leave slow start here.
      hystart_exited_ = true;
      ssthresh_ = cwnd_;
    }
  }

  if (maybe_rollback(ack)) return;  // restored state verbatim, no growth

  if (in_recovery(ack.largest_acked_sent_time)) return;

  if (config_.require_cwnd_limited_growth && !in_slow_start() &&
      ack.bytes_in_flight + ack.acked_bytes < cwnd_) {
    // Congestion avoidance without being cwnd-limited: the window is not
    // validated and must not grow (slow start is exempt — the sender is
    // effectively cwnd-limited while ramping).
    return;
  }

  if (in_slow_start()) {
    cwnd_ += ack.acked_bytes /
             (hystart_.growth_divisor() * config_.slow_start_ack_divisor);
    if (!in_slow_start()) epoch_started_ = false;  // fell through to CA
    return;
  }

  // --- congestion avoidance (RFC 9438) ------------------------------------
  if (!epoch_started_) start_epoch(ack.now);
  const double cwnd_mss = static_cast<double>(cwnd_) / kMss;
  const sim::Duration t = ack.now - epoch_start_;
  const sim::Duration rtt =
      ack.smoothed_rtt > sim::Duration::zero() ? ack.smoothed_rtt
                                               : sim::Duration::millis(100);

  // Reno-friendly estimate: alpha = 3 * (1 - beta) / (1 + beta).
  const double alpha =
      3.0 * (1.0 - config_.beta) / (1.0 + config_.beta);
  w_est_mss_ +=
      alpha * static_cast<double>(ack.acked_bytes) / kMss / cwnd_mss;

  double target = cubic_window_mss(t + rtt);
  // RFC 9438: clamp the target into [cwnd, 1.5 * cwnd].
  target = std::clamp(target, cwnd_mss, 1.5 * cwnd_mss);

  double increase_mss;
  if (w_est_mss_ > target) {
    // Reno-friendly region.
    increase_mss =
        alpha * static_cast<double>(ack.acked_bytes) / kMss / cwnd_mss;
  } else if (target > cwnd_mss) {
    // Concave/convex region: approach the target within one RTT.
    increase_mss = (target - cwnd_mss) / cwnd_mss *
                   (static_cast<double>(ack.acked_bytes) / kMss);
  } else {
    // At or above the target: minimal growth (1/100 MSS per acked MSS).
    increase_mss =
        0.01 * static_cast<double>(ack.acked_bytes) / kMss / cwnd_mss;
  }
  cwnd_ += static_cast<std::int64_t>(increase_mss * kMss);
}

void Cubic::on_congestion_event(sim::Time now, sim::Time sent_time) {
  if (in_recovery(sent_time)) return;
  ++congestion_events_;
  recovery_start_ = now;

  if (config_.spurious_loss_rollback) {
    // quiche checkpoints the state *before* reducing, so a later
    // "spurious" verdict can undo the reduction wholesale.
    checkpoint_ = Checkpoint{cwnd_, ssthresh_, w_max_mss_,
                             total_lost_packets_};
  }

  hystart_.on_congestion_event();
  hystart_exited_ = true;

  double cwnd_mss = static_cast<double>(cwnd_) / kMss;
  if (config_.fast_convergence && cwnd_mss < w_max_mss_) {
    w_max_mss_ = cwnd_mss * (1.0 + config_.beta) / 2.0;
  } else {
    w_max_mss_ = cwnd_mss;
  }
  cwnd_ = static_cast<std::int64_t>(static_cast<double>(cwnd_) * config_.beta);
  cwnd_ = std::max(cwnd_, config_.minimum_window);
  ssthresh_ = cwnd_;
  epoch_started_ = false;
}

bool Cubic::maybe_rollback(const AckSample& ack) {
  if (!config_.spurious_loss_rollback || !checkpoint_) return false;
  // quiche: when an ACK arrives for a packet sent *after* the current
  // recovery period began, and the packets lost since the checkpoint stay
  // below the threshold, the loss episode is declared spurious and the
  // checkpointed state is restored.
  if (ack.largest_acked_sent_time <= recovery_start_) return false;
  const std::int64_t lost_since =
      total_lost_packets_ - checkpoint_->lost_packets_at_event;
  std::int64_t threshold = config_.rollback_threshold_packets;
  if (config_.rollback_threshold_cwnd_fraction > 0.0) {
    // Scaled against the checkpointed (pre-reduction) window.
    threshold = std::max(
        threshold,
        static_cast<std::int64_t>(config_.rollback_threshold_cwnd_fraction *
                                  static_cast<double>(checkpoint_->cwnd) /
                                  kMss));
  }
  bool rolled_back = false;
  if (std::getenv("QS_DEBUG_ROLLBACK")) {
    std::fprintf(stderr, "[rb?] lost_since=%lld threshold=%lld cwnd=%lld\n",
                 (long long)lost_since, (long long)threshold,
                 (long long)cwnd_);
  }
  if (lost_since < threshold) {
    cwnd_ = checkpoint_->cwnd;
    ssthresh_ = checkpoint_->ssthresh;
    w_max_mss_ = checkpoint_->w_max_mss;
    epoch_started_ = false;
    ++rollbacks_performed_;
    rolled_back = true;
  }
  checkpoint_.reset();
  return rolled_back;
}

void Cubic::on_loss(const LossSample& loss) {
  // Checkpoint first so the burst that *triggers* the congestion event
  // counts toward the spurious-loss threshold: baseline quiche recovers
  // because its losses arrive in large bursts, while FQ-paced losses stay
  // below the threshold and roll back (paper Section 4.2).
  on_congestion_event(loss.now, loss.largest_lost_sent_time);
  total_lost_packets_ += loss.lost_packets;
  if (loss.persistent_congestion) {
    cwnd_ = config_.minimum_window;
    epoch_started_ = false;
  }
}

std::string Cubic::debug_state() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "cubic{cwnd=%lld ssthresh=%lld wmax=%.1f k=%.3f %s rb=%lld}",
                static_cast<long long>(cwnd_),
                static_cast<long long>(ssthresh_), w_max_mss_, k_seconds_,
                in_slow_start() ? "ss" : "ca",
                static_cast<long long>(rollbacks_performed_));
  return buf;
}

}  // namespace quicsteps::cc
