#include "cc/cc_factory.hpp"

namespace quicsteps::cc {

std::unique_ptr<CongestionController> make_controller(const CcConfig& config) {
  switch (config.algorithm) {
    case CcAlgorithm::kNewReno: {
      NewReno::Config reno;
      return std::make_unique<NewReno>(reno);
    }
    case CcAlgorithm::kCubic: {
      Cubic::Config cubic;
      cubic.hystart = config.hystart;
      cubic.hystart_config = config.hystart_config;
      cubic.slow_start_ack_divisor = config.slow_start_ack_divisor;
      cubic.spurious_loss_rollback = config.spurious_loss_rollback;
      cubic.rollback_threshold_packets = config.rollback_threshold_packets;
      cubic.rollback_threshold_cwnd_fraction =
          config.rollback_threshold_cwnd_fraction;
      cubic.require_cwnd_limited_growth = config.require_cwnd_limited_growth;
      return std::make_unique<Cubic>(cubic);
    }
    case CcAlgorithm::kBbr: {
      Bbr::Config bbr;
      bbr.flavor = config.bbr_flavor;
      return std::make_unique<Bbr>(bbr);
    }
  }
  return nullptr;
}

}  // namespace quicsteps::cc
