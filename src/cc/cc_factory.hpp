// Factory assembling a congestion controller from experiment configuration.
#pragma once

#include <memory>

#include "cc/bbr.hpp"
#include "cc/congestion_controller.hpp"
#include "cc/cubic.hpp"
#include "cc/new_reno.hpp"

namespace quicsteps::cc {

struct CcConfig {
  CcAlgorithm algorithm = CcAlgorithm::kCubic;
  bool hystart = true;
  /// HyStart++ tuning; TCP uses css_rounds=0 for classic immediate exit.
  HystartPP::Config hystart_config = {};
  /// See Cubic::Config::slow_start_ack_divisor (TCP model uses 2).
  int slow_start_ack_divisor = 1;
  /// quiche's spurious-loss rollback (Section 4.2 / SF patch disables it).
  bool spurious_loss_rollback = false;
  std::int64_t rollback_threshold_packets = 5;
  /// quiche scales the spurious-loss threshold with the window: rollback
  /// when lost < max(packets, fraction * cwnd/MSS). Zero disables scaling.
  double rollback_threshold_cwnd_fraction = 0.0;
  /// ngtcp2-style cwnd validation (grow only when cwnd-limited).
  bool require_cwnd_limited_growth = false;
  BbrFlavor bbr_flavor = BbrFlavor::kV1;
};

std::unique_ptr<CongestionController> make_controller(const CcConfig& config);

}  // namespace quicsteps::cc
