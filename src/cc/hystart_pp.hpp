// HyStart++ (RFC 9406): exit slow start before the first loss by watching
// for round-trip-time inflation, with a Conservative Slow Start (CSS)
// safeguard against spurious exits.
//
// Table 2 of the paper hinges on this algorithm: bursty (stock GSO) traffic
// inflates the RTT quickly and triggers an early exit (few drops, lower
// goodput); smooth (paced / GSO-off) traffic inflates the RTT slowly, slow
// start runs into the buffer limit, and losses are ~10x higher.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace quicsteps::cc {

class HystartPP {
 public:
  struct Config {
    // RFC 9406 recommended constants.
    sim::Duration min_rtt_thresh = sim::Duration::millis(4);   // MIN_RTT_THRESH
    sim::Duration max_rtt_thresh = sim::Duration::millis(16);  // MAX_RTT_THRESH
    int n_rtt_sample = 8;                    // samples per round before check
    int css_growth_divisor = 4;              // CSS grows cwnd at 1/4 rate
    int css_rounds = 5;                      // rounds before confirming exit
    /// Delay metric per round. RFC 9406 uses the round MIN (default).
    /// Classic HyStart averages samples instead — a mean is sensitive to
    /// burst-induced queueing (the hypothesis behind the paper's Table 2
    /// GSO/HyStart++ interaction); kept as an option for ablation, see
    /// EXPERIMENTS.md.
    bool use_round_mean = false;
  };

  enum class Phase : std::uint8_t { kSlowStart, kCss, kDone };

  HystartPP() : HystartPP(Config{}) {}
  explicit HystartPP(Config config) : config_(config) {}

  /// Called when a new round starts (the transport detects round edges via
  /// packet numbers: a round ends when the first packet sent in it is
  /// acked).
  void on_round_start();

  /// Feeds one RTT sample from an ACK. Callers watch the `done()` flag:
  /// once CSS confirms the delay increase (css_rounds rounds), done()
  /// becomes true and the caller sets ssthresh = cwnd.
  void on_rtt_sample(sim::Duration rtt);

  /// Loss ends the game regardless of phase.
  void on_congestion_event() { phase_ = Phase::kDone; }

  Phase phase() const { return phase_; }
  bool done() const { return phase_ == Phase::kDone; }
  /// Divisor to apply to slow-start cwnd growth (1 in slow start proper,
  /// css_growth_divisor during CSS).
  int growth_divisor() const {
    return phase_ == Phase::kCss ? config_.css_growth_divisor : 1;
  }

  std::string debug_state() const;

 private:
  sim::Duration eta() const;

  Config config_;
  Phase phase_ = Phase::kSlowStart;
  /// Round metric under evaluation (min or mean of first N samples).
  sim::Duration round_metric() const;

  sim::Duration last_round_min_rtt_ = sim::Duration::infinite();
  sim::Duration current_round_min_rtt_ = sim::Duration::infinite();
  sim::Duration current_round_sum_;  // of the first n_rtt_sample samples
  sim::Duration css_baseline_min_rtt_ = sim::Duration::infinite();
  int rtt_sample_count_ = 0;
  int css_round_count_ = 0;
};

}  // namespace quicsteps::cc
