// BBR congestion controller (v1 state machine: STARTUP / DRAIN / PROBE_BW /
// PROBE_RTT) with a flavor knob, because the paper's stacks ship different
// BBRs with visibly different behavior:
//
//   kV1          — textbook BBRv1: ignores packet loss entirely. At a
//                  shallow (2 BDP) bottleneck this overshoots in startup
//                  and keeps poking the buffer in every probe cycle — the
//                  order-of-magnitude loss increase the paper reports for
//                  ngtcp2's BBR.
//   kLossCapped  — v1 plus a multiplicative cwnd cap on loss (quiche-like
//                  recovery handling).
//   kV2Lite      — loss-aware startup exit and probe backoff (the
//                  picoquic-style BBR whose pacing the paper praises).
//
// BBR is the one controller that owns its pacing rate (pacing_gain *
// bottleneck bandwidth); all stacks honor it through their pacers.
#pragma once

#include <cstdint>
#include <deque>

#include "cc/congestion_controller.hpp"

namespace quicsteps::cc {

enum class BbrFlavor : std::uint8_t { kV1, kLossCapped, kV2Lite };

const char* to_string(BbrFlavor flavor);

class Bbr final : public CongestionController {
 public:
  struct Config {
    BbrFlavor flavor = BbrFlavor::kV1;
    std::int64_t initial_window = kInitialWindow;
    std::int64_t minimum_window = 4 * kMaxDatagramSize;
    double startup_gain = 2.885;  // 2/ln(2)
    double drain_gain = 1.0 / 2.885;
    double cwnd_gain = 2.0;
    int bw_window_rounds = 10;
    sim::Duration min_rtt_window = sim::Duration::seconds(10);
    sim::Duration probe_rtt_duration = sim::Duration::millis(200);
    /// Loss response strength for kLossCapped / kV2Lite.
    double loss_cwnd_factor = 0.85;
  };

  Bbr() : Bbr(Config{}) {}
  explicit Bbr(Config config);

  void on_packet_sent(sim::Time now, std::uint64_t pn, std::int64_t bytes,
                      std::int64_t bytes_in_flight) override;
  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  std::int64_t cwnd_bytes() const override;
  bool in_slow_start() const override { return state_ == State::kStartup; }
  net::DataRate pacing_rate() const override;
  bool has_own_pacing_rate() const override { return true; }
  const char* name() const override { return "bbr"; }
  std::string debug_state() const override;

  enum class State : std::uint8_t { kStartup, kDrain, kProbeBw, kProbeRtt };
  State state() const { return state_; }
  net::DataRate bottleneck_bandwidth() const;
  sim::Duration min_rtt() const { return min_rtt_; }

 private:
  void update_round(const AckSample& ack);
  void update_bandwidth_filter(const AckSample& ack);
  void update_min_rtt(const AckSample& ack);
  void check_full_bandwidth();
  void advance_state_machine(const AckSample& ack);
  std::int64_t bdp_bytes(double gain) const;

  Config config_;
  State state_ = State::kStartup;
  double pacing_gain_;
  double cwnd_gain_;

  // Windowed-max bandwidth filter: (round, sample) pairs, deque kept
  // monotonically decreasing in sample.
  std::deque<std::pair<std::int64_t, net::DataRate>> bw_samples_;

  sim::Duration min_rtt_ = sim::Duration::infinite();
  sim::Time min_rtt_stamp_;

  // Round tracking via packet numbers.
  std::uint64_t largest_sent_pn_ = 0;
  std::uint64_t round_end_pn_ = 0;
  std::int64_t round_count_ = 0;
  bool round_started_ = false;

  // Startup full-bandwidth detection.
  net::DataRate full_bw_;
  int full_bw_count_ = 0;
  bool full_bw_reached_ = false;

  // PROBE_BW gain cycling.
  int cycle_index_ = 0;
  sim::Time cycle_stamp_;

  // PROBE_RTT.
  sim::Time probe_rtt_done_stamp_;
  bool probe_rtt_round_done_ = false;

  std::int64_t bytes_in_flight_ = 0;
  std::int64_t cwnd_;
  std::int64_t prior_cwnd_ = 0;

  // Loss response bookkeeping (kLossCapped / kV2Lite).
  sim::Time recovery_start_ = sim::Time::zero() - sim::Duration::nanos(1);
};

}  // namespace quicsteps::cc
