// NewReno congestion controller (RFC 9002 Appendix B).
#pragma once

#include "cc/congestion_controller.hpp"

namespace quicsteps::cc {

class NewReno final : public CongestionController {
 public:
  struct Config {
    std::int64_t initial_window = kInitialWindow;
    std::int64_t minimum_window = kMinimumWindow;
    double loss_reduction_factor = 0.5;  // kLossReductionFactor
  };

  NewReno() : NewReno(Config{}) {}
  explicit NewReno(Config config)
      : config_(config), cwnd_(config.initial_window) {}

  void on_packet_sent(sim::Time now, std::uint64_t pn, std::int64_t bytes,
                      std::int64_t bytes_in_flight) override;
  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  std::int64_t cwnd_bytes() const override { return cwnd_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  const char* name() const override { return "newreno"; }
  std::string debug_state() const override;

  std::int64_t ssthresh_bytes() const { return ssthresh_; }
  bool in_recovery(sim::Time sent_time) const {
    return sent_time <= recovery_start_;
  }

 private:
  void on_congestion_event(sim::Time now, sim::Time sent_time);

  Config config_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_ = std::int64_t{1} << 60;
  sim::Time recovery_start_ = sim::Time::zero() - sim::Duration::nanos(1);
};

}  // namespace quicsteps::cc
