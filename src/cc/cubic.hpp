// CUBIC congestion controller (RFC 9438) with:
//   * HyStart++ slow-start exit (RFC 9406) — optional;
//   * fast convergence;
//   * the quiche spurious-loss checkpoint/rollback mechanism — optional.
//
// The rollback mechanism reproduces the behavior the paper's Section 4.2
// and Appendix A dissect (and cloudflare/quiche#1411 reports): quiche
// checkpoints the controller state before each congestion event and
// restores it when the loss episode turns out to involve fewer packets
// than a threshold. With a qdisc pacing the flow, each loss cycle drops
// only a handful of packets, the threshold is never reached, and the
// congestion window oscillates between two values for seconds ("perpetual
// rollbacks"). The paper's SF patch simply disables the mechanism — so do
// we, via `spurious_loss_rollback = false`.
#pragma once

#include <optional>

#include "cc/congestion_controller.hpp"
#include "cc/hystart_pp.hpp"

namespace quicsteps::cc {

class Cubic final : public CongestionController {
 public:
  struct Config {
    std::int64_t initial_window = kInitialWindow;
    std::int64_t minimum_window = kMinimumWindow;
    double beta = 0.7;  // RFC 9438 beta_cubic
    double c = 0.4;     // RFC 9438 C
    bool fast_convergence = true;
    bool hystart = true;
    HystartPP::Config hystart_config = {};
    /// quiche's spurious-loss detection: restore the pre-congestion state
    /// when a loss episode involves fewer packets than the threshold.
    bool spurious_loss_rollback = false;
    std::int64_t rollback_threshold_packets = 5;
    double rollback_threshold_cwnd_fraction = 0.0;
    /// Slow-start growth divisor: cwnd += acked_bytes / divisor. 1 is
    /// RFC 9002 byte counting (2x per RTT); 2 models Linux TCP's
    /// packet-counting with delayed ACKs (1.5x per RTT), which is part of
    /// why kernel TCP's slow start barely overshoots.
    int slow_start_ack_divisor = 1;
    /// ngtcp2-style congestion-window validation: the window only grows
    /// when the sender is actually cwnd-limited. Combined with strict
    /// pacing this freezes the window (the mechanistic cause of ngtcp2's
    /// low baseline goodput in Table 1).
    bool require_cwnd_limited_growth = false;
  };

  Cubic() : Cubic(Config{}) {}
  explicit Cubic(Config config);

  void on_packet_sent(sim::Time now, std::uint64_t pn, std::int64_t bytes,
                      std::int64_t bytes_in_flight) override;
  void on_ack(const AckSample& ack) override;
  void on_loss(const LossSample& loss) override;

  std::int64_t cwnd_bytes() const override { return cwnd_; }
  bool in_slow_start() const override { return cwnd_ < ssthresh_; }
  const char* name() const override { return "cubic"; }
  std::string debug_state() const override;

  std::int64_t ssthresh_bytes() const { return ssthresh_; }
  bool in_recovery(sim::Time sent_time) const {
    return sent_time <= recovery_start_;
  }
  const HystartPP& hystart() const { return hystart_; }
  std::int64_t rollbacks_performed() const { return rollbacks_performed_; }
  std::int64_t congestion_events() const { return congestion_events_; }

 private:
  struct Checkpoint {
    std::int64_t cwnd;
    std::int64_t ssthresh;
    double w_max_mss;
    std::int64_t lost_packets_at_event;
  };

  void on_congestion_event(sim::Time now, sim::Time sent_time);
  void start_epoch(sim::Time now);
  double cubic_window_mss(sim::Duration t) const;
  /// Returns true when the checkpoint was restored (the caller then skips
  /// window growth for this ACK).
  bool maybe_rollback(const AckSample& ack);

  Config config_;
  std::int64_t cwnd_;
  std::int64_t ssthresh_ = std::int64_t{1} << 60;
  sim::Time recovery_start_ = sim::Time::zero() - sim::Duration::nanos(1);

  // CUBIC epoch state (MSS units, per RFC 9438 notation).
  bool epoch_started_ = false;
  sim::Time epoch_start_;
  double w_max_mss_ = 0.0;
  double k_seconds_ = 0.0;
  double w_est_mss_ = 0.0;  // Reno-friendly estimate

  HystartPP hystart_;
  bool hystart_exited_ = false;

  // Rollback bookkeeping.
  std::int64_t total_lost_packets_ = 0;
  std::optional<Checkpoint> checkpoint_;
  std::int64_t rollbacks_performed_ = 0;
  std::int64_t congestion_events_ = 0;

  // Round tracking (HyStart++ rounds).
  std::uint64_t largest_sent_pn_ = 0;
  std::uint64_t round_end_pn_ = 0;
};

}  // namespace quicsteps::cc
