#include "cc/hystart_pp.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace quicsteps::cc {

void HystartPP::on_round_start() {
  if (phase_ == Phase::kDone) return;
  if (phase_ == Phase::kCss) {
    ++css_round_count_;
    if (css_round_count_ >= config_.css_rounds) {
      // RTT stayed inflated for the full CSS window: the exit was genuine.
      phase_ = Phase::kDone;
      if (std::getenv("QS_DEBUG_HYSTART")) {
        std::fprintf(stderr, "[hs] CSS->DONE\n");
      }
      return;
    }
  }
  last_round_min_rtt_ = round_metric();
  current_round_min_rtt_ = sim::Duration::infinite();
  current_round_sum_ = sim::Duration::zero();
  rtt_sample_count_ = 0;
}

sim::Duration HystartPP::eta() const {
  // RTT_THRESH = clamp(MIN_RTT_THRESH, lastRoundMinRTT / 8, MAX_RTT_THRESH)
  return std::clamp(last_round_min_rtt_ / 8, config_.min_rtt_thresh,
                    config_.max_rtt_thresh);
}

sim::Duration HystartPP::round_metric() const {
  if (rtt_sample_count_ == 0) return sim::Duration::infinite();
  if (!config_.use_round_mean) return current_round_min_rtt_;
  // Running mean over the whole round: burst TAILS contribute, so bursty
  // traffic inflates the metric long before a standing queue exists.
  return current_round_sum_ / rtt_sample_count_;
}

void HystartPP::on_rtt_sample(sim::Duration rtt) {
  if (phase_ == Phase::kDone) return;
  current_round_min_rtt_ = sim::min(current_round_min_rtt_, rtt);
  current_round_sum_ += rtt;
  ++rtt_sample_count_;
  if (rtt_sample_count_ < config_.n_rtt_sample) return;
  if (last_round_min_rtt_.is_infinite()) return;

  if (phase_ == Phase::kSlowStart) {
    if (!round_metric().is_infinite() &&
        round_metric() >= last_round_min_rtt_ + eta()) {
      // Delay increase spotted: drop into conservative slow start. The
      // baseline is the INFLATED round-min at entry (RFC 9406): CSS is
      // abandoned only if the RTT later deflates below it.
      css_baseline_min_rtt_ = round_metric();
      phase_ = Phase::kCss;
      css_round_count_ = 0;
      if (std::getenv("QS_DEBUG_HYSTART")) {
        std::fprintf(stderr, "[hs] ->CSS metric=%s last=%s eta=%s\n",
                     round_metric().to_string().c_str(),
                     last_round_min_rtt_.to_string().c_str(),
                     eta().to_string().c_str());
      }
    }
    return;
  }

  // In CSS: if the RTT deflates back below the entry baseline, the exit
  // was spurious — return to standard slow start (RFC 9406 §4.2).
  if (round_metric() < css_baseline_min_rtt_) {
    phase_ = Phase::kSlowStart;
    css_round_count_ = 0;
    if (std::getenv("QS_DEBUG_HYSTART")) {
      std::fprintf(stderr, "[hs] CSS->SS revert metric=%s base=%s\n",
                   round_metric().to_string().c_str(),
                   css_baseline_min_rtt_.to_string().c_str());
    }
  }
}

std::string HystartPP::debug_state() const {
  char buf[128];
  const char* phase = phase_ == Phase::kSlowStart ? "ss"
                      : phase_ == Phase::kCss     ? "css"
                                                  : "done";
  std::snprintf(buf, sizeof(buf), "hystart{%s round_min=%s last=%s}", phase,
                current_round_min_rtt_.to_string().c_str(),
                last_round_min_rtt_.to_string().c_str());
  return buf;
}

}  // namespace quicsteps::cc
