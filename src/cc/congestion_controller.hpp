// Congestion-controller interface shared by the QUIC and TCP models.
//
// The controllers mirror what the measured stacks run:
//   * NewReno  — RFC 9002 Appendix B.
//   * CUBIC    — RFC 9438, with HyStart++ (RFC 9406) and, optionally, the
//                quiche spurious-loss checkpoint/rollback mechanism that
//                Section 4.2 of the paper dissects.
//   * BBR      — BBRv1 state machine with a per-stack flavor knob, because
//                the paper's three stacks ship meaningfully different BBRs.
//
// The transport feeds controllers pre-digested events (AckSample /
// LossSample) that already carry RTT statistics and a delivery-rate sample,
// so each algorithm is purely functional over its own state.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "net/data_rate.hpp"
#include "sim/time.hpp"

namespace quicsteps::cc {

/// Wire bytes of a full-sized datagram in all experiments (QUIC and TCP
/// models both send full MTU packets; the paper's metrics are per-packet).
inline constexpr std::int64_t kMaxDatagramSize = 1500;

/// RFC 9002 initial window: min(10 * max_datagram_size, ...).
inline constexpr std::int64_t kInitialWindow = 10 * kMaxDatagramSize;
inline constexpr std::int64_t kMinimumWindow = 2 * kMaxDatagramSize;

struct AckSample {
  sim::Time now;
  /// Bytes newly acknowledged by this ACK event.
  std::int64_t acked_bytes = 0;
  std::uint64_t largest_acked_pn = 0;
  sim::Time largest_acked_sent_time;
  /// Latest RTT sample (zero duration when the ACK carried none).
  sim::Duration latest_rtt;
  sim::Duration smoothed_rtt;
  sim::Duration min_rtt;
  /// Bytes in flight after removing the acked packets.
  std::int64_t bytes_in_flight = 0;
  /// Delivery-rate sample for this ACK (BBR input); zero if unavailable.
  net::DataRate bandwidth_sample;
  /// True when the sample was taken while the sender was app/pacer limited.
  bool app_limited = false;
  /// Total bytes delivered so far (BBR round counting).
  std::int64_t delivered_bytes = 0;
};

struct LossSample {
  sim::Time now;
  std::int64_t lost_bytes = 0;
  std::int64_t lost_packets = 0;
  std::uint64_t largest_lost_pn = 0;
  /// Send time of the most recently sent packet declared lost; recovery
  /// periods are keyed on send times (RFC 9002 section 7.3).
  sim::Time largest_lost_sent_time;
  std::int64_t bytes_in_flight = 0;
  /// True when the loss-detection layer deemed this persistent congestion.
  bool persistent_congestion = false;
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  virtual void on_packet_sent(sim::Time now, std::uint64_t pn,
                              std::int64_t bytes,
                              std::int64_t bytes_in_flight) = 0;
  virtual void on_ack(const AckSample& ack) = 0;
  virtual void on_loss(const LossSample& loss) = 0;

  virtual std::int64_t cwnd_bytes() const = 0;
  virtual bool in_slow_start() const = 0;

  /// BBR supplies its own pacing rate; loss-based controllers return zero
  /// and the transport derives rate = factor * cwnd / srtt.
  virtual net::DataRate pacing_rate() const { return net::DataRate::zero(); }
  virtual bool has_own_pacing_rate() const { return false; }

  virtual const char* name() const = 0;
  /// One-line internal state for traces (cwnd plots, Fig. 7).
  virtual std::string debug_state() const = 0;
};

enum class CcAlgorithm : std::uint8_t { kNewReno, kCubic, kBbr };

const char* to_string(CcAlgorithm algo);

}  // namespace quicsteps::cc
