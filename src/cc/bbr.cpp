#include "cc/bbr.hpp"

#include <algorithm>
#include <cstdio>

namespace quicsteps::cc {

namespace {
// BBRv1 PROBE_BW gain cycle.
constexpr double kProbeBwGains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr int kGainCycleLength = 8;
}  // namespace

const char* to_string(BbrFlavor flavor) {
  switch (flavor) {
    case BbrFlavor::kV1:
      return "bbr-v1";
    case BbrFlavor::kLossCapped:
      return "bbr-loss-capped";
    case BbrFlavor::kV2Lite:
      return "bbr-v2lite";
  }
  return "?";
}

Bbr::Bbr(Config config)
    : config_(config),
      pacing_gain_(config.startup_gain),
      cwnd_gain_(config.startup_gain),
      cwnd_(config.initial_window) {}

net::DataRate Bbr::bottleneck_bandwidth() const {
  if (bw_samples_.empty()) {
    // Before the first sample, assume the initial window crosses a nominal
    // RTT (RFC 9002's suggestion for an initial pacing rate).
    return net::DataRate::bytes_per(config_.initial_window,
                                    sim::Duration::millis(100));
  }
  return bw_samples_.front().second;
}

net::DataRate Bbr::pacing_rate() const {
  return bottleneck_bandwidth() * pacing_gain_;
}

std::int64_t Bbr::bdp_bytes(double gain) const {
  if (min_rtt_.is_infinite()) return config_.initial_window;
  const double bdp = bottleneck_bandwidth().bytes_per_second_f() *
                     min_rtt_.to_seconds() * gain;
  return static_cast<std::int64_t>(bdp);
}

std::int64_t Bbr::cwnd_bytes() const {
  if (state_ == State::kProbeRtt) {
    return config_.minimum_window;
  }
  return std::max(cwnd_, config_.minimum_window);
}

void Bbr::on_packet_sent(sim::Time, std::uint64_t pn, std::int64_t bytes,
                         std::int64_t bytes_in_flight) {
  largest_sent_pn_ = std::max(largest_sent_pn_, pn);
  bytes_in_flight_ = bytes_in_flight + bytes;
}

void Bbr::update_round(const AckSample& ack) {
  round_started_ = false;
  if (ack.largest_acked_pn >= round_end_pn_) {
    round_end_pn_ = largest_sent_pn_ + 1;
    ++round_count_;
    round_started_ = true;
  }
}

void Bbr::update_bandwidth_filter(const AckSample& ack) {
  if (ack.bandwidth_sample.is_zero()) return;
  // App-limited samples only count when they raise the estimate.
  if (ack.app_limited && ack.bandwidth_sample <= bottleneck_bandwidth()) {
    return;
  }
  // Evict samples older than the window.
  while (!bw_samples_.empty() &&
         bw_samples_.front().first <= round_count_ - config_.bw_window_rounds) {
    bw_samples_.pop_front();
  }
  // Monotonic deque insert.
  while (!bw_samples_.empty() &&
         bw_samples_.back().second <= ack.bandwidth_sample) {
    bw_samples_.pop_back();
  }
  bw_samples_.emplace_back(round_count_, ack.bandwidth_sample);
}

void Bbr::update_min_rtt(const AckSample& ack) {
  if (ack.latest_rtt <= sim::Duration::zero()) return;
  // Expiry does NOT refresh the stamp here — it triggers PROBE_RTT in the
  // state machine, which resets the window on exit. (Refreshing here would
  // mean a constant-RTT path never probes.)
  if (ack.latest_rtt < min_rtt_) {
    min_rtt_ = ack.latest_rtt;
    min_rtt_stamp_ = ack.now;
  } else if (state_ == State::kProbeRtt) {
    min_rtt_ = ack.latest_rtt;
    min_rtt_stamp_ = ack.now;
  }
}

void Bbr::check_full_bandwidth() {
  if (full_bw_reached_ || !round_started_) return;
  const net::DataRate bw = bottleneck_bandwidth();
  // 25% growth test in __int128: full_bw_ can hold the infinite sentinel
  // (1 << 62), so `bps * 5` would overflow int64.
  if (static_cast<__int128>(bw.bps()) * 4 >=
      static_cast<__int128>(full_bw_.bps()) * 5) {
    full_bw_ = bw;
    full_bw_count_ = 0;
    return;
  }
  if (++full_bw_count_ >= 3) full_bw_reached_ = true;
}

void Bbr::advance_state_machine(const AckSample& ack) {
  switch (state_) {
    case State::kStartup:
      check_full_bandwidth();
      if (full_bw_reached_) {
        state_ = State::kDrain;
        pacing_gain_ = config_.drain_gain;
        cwnd_gain_ = config_.startup_gain;
      }
      break;
    case State::kDrain:
      if (ack.bytes_in_flight <= bdp_bytes(1.0)) {
        state_ = State::kProbeBw;
        pacing_gain_ = kProbeBwGains[cycle_index_ = 0];
        cwnd_gain_ = config_.cwnd_gain;
        cycle_stamp_ = ack.now;
      }
      break;
    case State::kProbeBw: {
      // Advance the gain cycle once per min_rtt.
      const sim::Duration phase =
          min_rtt_.is_infinite() ? sim::Duration::millis(100) : min_rtt_;
      if (ack.now - cycle_stamp_ > phase) {
        cycle_index_ = (cycle_index_ + 1) % kGainCycleLength;
        pacing_gain_ = kProbeBwGains[cycle_index_];
        cycle_stamp_ = ack.now;
      }
      break;
    }
    case State::kProbeRtt:
      if (probe_rtt_round_done_ && ack.now >= probe_rtt_done_stamp_) {
        min_rtt_stamp_ = ack.now;
        state_ = full_bw_reached_ ? State::kProbeBw : State::kStartup;
        pacing_gain_ = full_bw_reached_ ? kProbeBwGains[cycle_index_ = 0]
                                        : config_.startup_gain;
        cwnd_gain_ =
            full_bw_reached_ ? config_.cwnd_gain : config_.startup_gain;
        cycle_stamp_ = ack.now;
        cwnd_ = std::max(cwnd_, prior_cwnd_);
      }
      break;
  }

  // Enter PROBE_RTT when the min_rtt estimate has gone stale.
  if (state_ != State::kProbeRtt && !min_rtt_.is_infinite() &&
      ack.now > min_rtt_stamp_ + config_.min_rtt_window) {
    state_ = State::kProbeRtt;
    prior_cwnd_ = cwnd_;
    pacing_gain_ = 1.0;
    probe_rtt_done_stamp_ = ack.now + config_.probe_rtt_duration;
    probe_rtt_round_done_ = false;
    round_end_pn_ = largest_sent_pn_ + 1;
  }
  if (state_ == State::kProbeRtt && round_started_) {
    probe_rtt_round_done_ = true;
  }
}

void Bbr::on_ack(const AckSample& ack) {
  bytes_in_flight_ = ack.bytes_in_flight;
  update_round(ack);
  update_bandwidth_filter(ack);
  update_min_rtt(ack);
  advance_state_machine(ack);

  // Target window: cwnd_gain * BDP (plus a 3-packet quantum for ACK
  // aggregation), approached additively outside PROBE_RTT.
  const std::int64_t target =
      bdp_bytes(cwnd_gain_) + 3 * kMaxDatagramSize;
  if (full_bw_reached_) {
    cwnd_ = std::min(cwnd_ + ack.acked_bytes, target);
  } else {
    cwnd_ += ack.acked_bytes;  // startup: grow as fast as delivery confirms
  }
  cwnd_ = std::max(cwnd_, config_.minimum_window);
}

void Bbr::on_loss(const LossSample& loss) {
  switch (config_.flavor) {
    case BbrFlavor::kV1:
      // v1 famously ignores loss — the source of its buffer-punishing
      // behavior at shallow bottlenecks.
      return;
    case BbrFlavor::kLossCapped: {
      if (loss.largest_lost_sent_time <= recovery_start_) return;
      recovery_start_ = loss.now;
      cwnd_ = std::max(
          static_cast<std::int64_t>(static_cast<double>(cwnd_) *
                                    config_.loss_cwnd_factor),
          config_.minimum_window);
      return;
    }
    case BbrFlavor::kV2Lite: {
      if (loss.largest_lost_sent_time <= recovery_start_) return;
      recovery_start_ = loss.now;
      // Loss in startup is treated as "pipe full" (v2-style).
      if (!full_bw_reached_) full_bw_reached_ = true;
      // During an up-probe, loss means the probe overran the pipe: fall
      // straight into the drain phase of the cycle.
      if (state_ == State::kProbeBw && pacing_gain_ > 1.0) {
        cycle_index_ = 1;  // the 0.75 drain phase
        pacing_gain_ = kProbeBwGains[cycle_index_];
        cycle_stamp_ = loss.now;
      }
      cwnd_ = std::max(
          static_cast<std::int64_t>(static_cast<double>(cwnd_) *
                                    config_.loss_cwnd_factor),
          config_.minimum_window);
      return;
    }
  }
}

std::string Bbr::debug_state() const {
  char buf[192];
  const char* state = state_ == State::kStartup   ? "startup"
                      : state_ == State::kDrain   ? "drain"
                      : state_ == State::kProbeBw ? "probe_bw"
                                                  : "probe_rtt";
  std::snprintf(buf, sizeof(buf),
                "bbr{%s %s bw=%s min_rtt=%s cwnd=%lld gain=%.2f}", state,
                to_string(config_.flavor),
                bottleneck_bandwidth().to_string().c_str(),
                min_rtt_.to_string().c_str(), static_cast<long long>(cwnd_),
                pacing_gain_);
  return buf;
}

}  // namespace quicsteps::cc
