// quicsteps — umbrella header.
//
// A discrete-event reproduction of "QUIC Steps: Evaluating Pacing
// Strategies in QUIC Implementations" (CoNEXT 2025): the measurement
// framework, the kernel path (qdiscs, GSO, paced GSO, LaunchTime), the
// three QUIC stack models, the TCP/TLS baseline, and the metrics.
//
// Quickstart:
//
//   #include "core/quicsteps.hpp"
//   using namespace quicsteps;
//
//   framework::ExperimentConfig config;
//   config.label = "quiche+cubic";
//   config.stack = framework::StackKind::kQuiche;
//   config.cca = cc::CcAlgorithm::kCubic;
//   auto runs = framework::Runner::run_all(config);
//   auto agg = framework::aggregate(config.label, runs);
//   std::cout << framework::render_goodput_table({agg}, "baseline");
#pragma once

#include "cc/bbr.hpp"
#include "cc/cc_factory.hpp"
#include "check/audit.hpp"
#include "check/conservation_auditor.hpp"
#include "check/determinism_hasher.hpp"
#include "cc/cubic.hpp"
#include "cc/hystart_pp.hpp"
#include "cc/new_reno.hpp"
#include "framework/aggregate.hpp"
#include "framework/artifacts.hpp"
#include "framework/duel.hpp"
#include "framework/endpoint.hpp"
#include "framework/experiment.hpp"
#include "framework/flows.hpp"
#include "framework/network.hpp"
#include "framework/parallel.hpp"
#include "framework/report.hpp"
#include "framework/runner.hpp"
#include "framework/topology.hpp"
#include "kernel/gso.hpp"
#include "kernel/nic.hpp"
#include "kernel/os_model.hpp"
#include "kernel/qdisc_etf.hpp"
#include "kernel/qdisc_fifo.hpp"
#include "kernel/qdisc_fq.hpp"
#include "kernel/qdisc_fq_codel.hpp"
#include "kernel/qdisc_netem.hpp"
#include "kernel/qdisc_tbf.hpp"
#include "kernel/udp_socket.hpp"
#include "metrics/capture_analysis.hpp"
#include "metrics/gap_analyzer.hpp"
#include "metrics/goodput.hpp"
#include "metrics/precision.hpp"
#include "metrics/stats.hpp"
#include "metrics/train_analyzer.hpp"
#include "net/data_rate.hpp"
#include "net/flow_table.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/wire_tap.hpp"
#include "obs/exporters.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/path_timeline.hpp"
#include "obs/trace.hpp"
#include "pacing/interval_pacer.hpp"
#include "pacing/leaky_bucket_pacer.hpp"
#include "pacing/pacer.hpp"
#include "quic/app_source.hpp"
#include "quic/client.hpp"
#include "quic/connection.hpp"
#include "quic/qlog.hpp"
#include "quic/server.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"
#include "stacks/event_loop_model.hpp"
#include "stacks/stack_profile.hpp"
#include "tcp/tcp_client.hpp"
#include "tcp/tcp_connection.hpp"
#include "tcp/tcp_server.hpp"

namespace quicsteps {

/// Library version.
inline constexpr const char* kVersion = "1.0.0";

}  // namespace quicsteps
