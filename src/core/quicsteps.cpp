#include "core/quicsteps.hpp"

// Umbrella target anchor.
