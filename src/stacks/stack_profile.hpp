// Behavioral profiles of the measured QUIC stacks.
//
// The shared transport (src/quic) is identical across stacks — as the paper
// notes, even the pacing-rate calculation is the same. What differs, and
// what these profiles encode, is the enforcement architecture:
//
//            pacing enforcement      credit     timers            kernel use
//  quiche    kernel (SO_TXTIME)      none       coarse loop       txtime+GSO
//  ngtcp2    application waits       none       fine (timerfd)    none
//  picoquic  application waits       bucket     coarse when idle  none
//
// plus the congestion-control quirks Section 4 dissects (quiche's spurious
// -loss rollback, ngtcp2's cwnd validation + strict rate, the different
// BBR generations).
#pragma once

#include <string>

#include "cc/cc_factory.hpp"
#include "kernel/gso.hpp"
#include "kernel/timer_service.hpp"
#include "pacing/pacer.hpp"

namespace quicsteps::stacks {

struct StackProfile {
  std::string name;

  // --- congestion control ---------------------------------------------------
  cc::CcConfig cc;

  // --- pacing architecture ---------------------------------------------------
  pacing::PacerConfig pacer;
  /// Headroom factor on cwnd/srtt (all stacks compute the rate this way).
  double pacing_rate_factor = 1.25;
  /// quiche: compute per-packet txtimes and hand them to the kernel via
  /// SO_TXTIME instead of waiting in user space.
  bool pass_txtime = false;
  /// ngtcp2/picoquic: the application sleeps until the pacer's release
  /// time. false (quiche): send as soon as cwnd allows.
  bool app_waits_for_pacer = true;
  /// Packets released per pacer expiry when waiting (ngtcp2's example
  /// writes small batches per timer fire).
  int pacing_burst_packets = 1;
  /// Cap on packets written per loop iteration in txtime mode (socket
  /// buffer / iteration budget of the quiche example); 0 = unlimited.
  int max_packets_per_iteration = 0;
  /// Offset added to every SO_TXTIME stamp (ETF users schedule ahead so
  /// the qdisc+driver path completes before the launch time). Zero for
  /// FQ-style deployments.
  sim::Duration txtime_headroom = sim::Duration::zero();

  // --- application event-loop timing ------------------------------------------
  /// Timer discipline for pacer waits (granularity quantizes the sleep).
  kernel::TimerService::Config pacer_timer;
  /// Mean event-loop iteration latency: arriving ACKs coalesce for an
  /// exponentially drawn window with this mean (capped at 8x). Zero =
  /// immediate processing. Models the example server's loop, whose tail
  /// iterations produce the longer packet trains of Figures 2/3.
  sim::Duration recv_batch_window = sim::Duration::zero();
  /// Duty-cycle loop stall (picoquic, loss-based CCAs): every `cycle`, the
  /// loop is busy for `duration`; ACKs arriving then are digested in one
  /// batch at the end — with the leaky bucket refilled, a bucket-capped
  /// burst drains ("bursts after a 5 ms idle period almost every 10 ms").
  sim::Duration loop_busy_cycle = sim::Duration::zero();
  sim::Duration loop_busy_duration = sim::Duration::zero();

  // --- peer (example client) traits --------------------------------------------
  /// Connection flow-control credit the stack's example client grants.
  /// <=0 = effectively unlimited. The ngtcp2 example pair runs with a
  /// static, conservative credit, capping throughput at credit/RTT.
  std::int64_t flow_control_credit = 0;

  // --- kernel offload ---------------------------------------------------------
  kernel::GsoMode gso = kernel::GsoMode::kOff;
  /// Max segments per GSO buffer (also the sendmmsg batch size).
  int gso_segments = 16;
  /// Batch packets into sendmmsg() calls when GSO is off: one syscall for
  /// many skbs — the kernel can still pace each packet individually
  /// (Section 4.3 contrasts this with GSO, which cannot be paced within a
  /// buffer).
  bool use_sendmmsg = false;
};

/// Options shared by the per-stack profile factories.
struct ProfileOptions {
  cc::CcAlgorithm cca = cc::CcAlgorithm::kCubic;
  kernel::GsoMode gso = kernel::GsoMode::kOff;
  int gso_segments = 16;
  /// quiche only: apply the paper's SF patch (disable spurious-loss
  /// rollback).
  bool sf_patch = false;
  /// quiche only: SO_TXTIME headroom (see StackProfile::txtime_headroom).
  sim::Duration txtime_headroom = sim::Duration::zero();
  /// quiche only: batch sends with sendmmsg (GSO must be off).
  bool use_sendmmsg = false;
};

StackProfile quiche_profile(const ProfileOptions& options = {});
StackProfile picoquic_profile(const ProfileOptions& options = {});
StackProfile ngtcp2_profile(const ProfileOptions& options = {});

}  // namespace quicsteps::stacks
