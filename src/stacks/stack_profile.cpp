#include "stacks/stack_profile.hpp"

// The three profile factories live in their own translation units
// (quiche_model.cpp, picoquic_model.cpp, ngtcp2_model.cpp); this file
// anchors the shared header.
