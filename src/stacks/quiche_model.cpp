// quiche behavioral profile.
//
// Cloudflare quiche computes an optimal send time for every packet and
// passes it to the kernel with SO_TXTIME (SCM_TXTIME); it does not wait in
// user space, so without a txtime-aware qdisc (FQ/ETF) packets leave in
// whatever bursts the tokio event loop produces. Its CUBIC ships HyStart++
// and the spurious-loss checkpoint/rollback the paper's Section 4.2
// dissects (disabled by the SF patch). GSO is supported and used by the
// Section 4.3 experiments.
#include "stacks/stack_profile.hpp"

namespace quicsteps::stacks {

StackProfile quiche_profile(const ProfileOptions& options) {
  StackProfile p;
  p.name = options.sf_patch ? "quiche-sf" : "quiche";

  p.cc.algorithm = options.cca;
  p.cc.hystart = true;
  p.cc.spurious_loss_rollback = !options.sf_patch;
  p.cc.rollback_threshold_packets = 5;
  p.cc.rollback_threshold_cwnd_fraction = 0.15;
  p.cc.bbr_flavor = cc::BbrFlavor::kLossCapped;

  p.pacer.kind = pacing::PacerKind::kInterval;
  p.pacing_rate_factor = 1.25;
  p.pass_txtime = true;
  p.app_waits_for_pacer = false;
  p.txtime_headroom = options.txtime_headroom;

  // tokio/mio loop: send decisions happen per loop iteration; arriving
  // ACKs within an iteration are digested together. Typical iterations are
  // short (ack-clocked pairs dominate: ~89 % of packets in trains <= 5);
  // tail iterations batch several ACKs and produce the even 6-20 train
  // spread of Figure 3.
  p.recv_batch_window = sim::Duration::micros(260);
  p.max_packets_per_iteration = 20;
  p.pacer_timer.granularity = sim::Duration::millis(1);
  p.pacer_timer.slack_max = sim::Duration::micros(250);

  p.gso = options.gso;
  p.gso_segments = options.gso_segments;
  p.use_sendmmsg = options.use_sendmmsg && options.gso == kernel::GsoMode::kOff;
  if (options.gso != kernel::GsoMode::kOff) {
    // GSO pairs with coarser event-loop batching (the point of GSO is
    // fewer, larger kernel handoffs), and the pacing quantum becomes the
    // whole buffer: the release schedule may run a buffer ahead.
    p.recv_batch_window = sim::Duration::micros(2500);
    p.max_packets_per_iteration = 64;  // several buffers per write pass
    p.pacer.max_schedule_ahead =
        sim::Duration::micros(3000 + 400 * options.gso_segments);
  }
  return p;
}

}  // namespace quicsteps::stacks
