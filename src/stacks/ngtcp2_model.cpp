// ngtcp2 behavioral profile.
//
// ngtcp2 never touches system clocks or kernel pacing facilities: the
// library computes interval-based release times and the example application
// sleeps until them with fine-grained (timerfd) timers, writing a small
// batch per expiry. Pacing has no headroom (rate = cwnd/sRTT) and the
// window only grows while cwnd-limited — together these keep the sender
// pacing-limited and freeze the window, the mechanistic reproduction of
// ngtcp2's low-but-rock-stable baseline goodput in Table 1. Its BBR is a
// plain v1 that ignores loss (the order-of-magnitude loss increase in
// Section 4.1).
#include "stacks/stack_profile.hpp"

namespace quicsteps::stacks {

StackProfile ngtcp2_profile(const ProfileOptions& options) {
  StackProfile p;
  p.name = "ngtcp2";

  p.cc.algorithm = options.cca;
  p.cc.hystart = true;
  p.cc.spurious_loss_rollback = false;
  p.cc.require_cwnd_limited_growth = true;
  p.cc.bbr_flavor = cc::BbrFlavor::kV1;

  p.pacer.kind = pacing::PacerKind::kInterval;
  p.pacing_rate_factor = 1.0;  // no headroom
  p.pass_txtime = false;
  p.app_waits_for_pacer = true;
  p.pacing_burst_packets = 2;  // example app writes pairs per expiry

  // The example server's event loop arms timeouts with millisecond
  // resolution: every pacer sleep rounds up to the next millisecond. Two
  // packets per expiry at ~1 ms quantization caps the send rate well below
  // the link rate once the sender is pacing-limited — combined with cwnd
  // validation this is the mechanistic reproduction of ngtcp2's low and
  // perfectly stable baseline goodput (Table 1: 15.93 +- 0.00 Mbit/s).
  p.pacer_timer.granularity = sim::Duration::millis(1);
  p.pacer_timer.slack_max = sim::Duration::micros(100);
  p.recv_batch_window = sim::Duration::zero();

  // The example client grants a static ~80 kB connection flow-control
  // credit (no window autotuning): throughput is pinned at credit/RTT =
  // 80 kB / 40 ms = 16 Mbit/s — deterministic, which is why Table 1 shows
  // ngtcp2 at 15.93 +- 0.00 Mbit/s.
  p.flow_control_credit = 81 * 1000;

  p.gso = options.gso;
  p.gso_segments = options.gso_segments;
  return p;
}

}  // namespace quicsteps::stacks
