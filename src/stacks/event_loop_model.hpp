// StackServer: the example-server event loop, parameterized by a
// StackProfile.
//
// This is where user-space pacing meets reality: coarse timers, batched ACK
// processing, per-call syscall costs, GSO batching, and the choice between
// "hand the kernel a txtime" (quiche) and "sleep until the pacer says go"
// (ngtcp2, picoquic). The same transport connection underneath produces
// the paper's per-stack wire signatures purely through these disciplines.
#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "kernel/timer_service.hpp"
#include "kernel/udp_socket.hpp"
#include "obs/trace.hpp"
#include "quic/connection.hpp"
#include "stacks/stack_profile.hpp"

namespace quicsteps::stacks {

class StackServer : public net::PacketSink, public obs::TraceSource {
 public:
  struct Stats {
    /// CPU time the sender thread spent building packets and in syscalls
    /// (the currency GSO saves).
    sim::Duration cpu_time;
    std::int64_t wakeups = 0;
    std::int64_t send_syscalls = 0;
  };

  StackServer(sim::EventLoop& loop, kernel::OsModel& os, StackProfile profile,
              quic::Connection::Config conn_config,
              net::PacketSink* kernel_egress);

  /// Kicks off the transfer.
  void start() { attempt_send(); }

  /// Wire this to the server-side UdpReceiver (delivers ACKs).
  void on_datagram(const net::Packet& pkt);

  /// PacketSink ingress (flow-table routing targets the server directly).
  void deliver(net::Packet pkt) override { on_datagram(pkt); }

  /// External wake-up (new application data became available).
  void poke() { attempt_send(); }

  /// Joins the shared slab: the socket recycles GSO segment buffers
  /// through its pool (batched datapath).
  void enable_batched(net::PacketSlab* slab) { socket_.enable_batched(slab); }

  quic::Connection& connection() { return connection_; }
  const quic::Connection& connection() const { return connection_; }
  const StackProfile& profile() const { return profile_; }
  const Stats& stats() const { return stats_; }
  const kernel::UdpSocket& socket() const { return socket_; }

  /// Installs tracing on the stack (pacer-release spans) and its socket
  /// (kernel-entry spans) in one call so both components wire together.
  void set_trace(obs::TraceBus* bus, std::uint16_t self,
                 std::uint16_t socket_component) {
    obs::TraceSource::set_trace(bus, self);
    socket_.set_trace(bus, socket_component);
  }

 private:
  void process_ack_batch();
  void attempt_send();
  void send_with_txtime();  // quiche discipline
  void send_waiting();      // ngtcp2 / picoquic discipline
  void flush_gso_batch(std::vector<net::Packet> batch);
  void rearm_loss_timer();
  void on_loss_timer();
  void charge_syscall();

  sim::EventLoop& loop_;
  kernel::OsModel& os_;
  StackProfile profile_;
  quic::Connection connection_;
  kernel::UdpSocket socket_;
  kernel::TimerService pacer_timers_;

  std::deque<net::Packet> pending_acks_;
  std::vector<net::Packet> mmsg_batch_;
  sim::EventHandle batch_timer_;
  sim::EventHandle send_timer_;
  sim::EventHandle yield_timer_;
  sim::EventHandle loss_timer_;
  /// Deadline loss_timer_ is armed for (lazy re-arm: the timer may sit at
  /// an earlier time than the connection's current deadline and silently
  /// re-arm when it fires).
  sim::Time armed_loss_deadline_ = sim::Time::infinite();

  Stats stats_;
};

}  // namespace quicsteps::stacks
