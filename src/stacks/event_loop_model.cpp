#include "stacks/event_loop_model.hpp"

#include <utility>

namespace quicsteps::stacks {

namespace {

quic::Connection::Config merge_config(quic::Connection::Config base,
                                      const StackProfile& profile) {
  base.cc = profile.cc;
  base.pacer = profile.pacer;
  base.pacing_rate_factor = profile.pacing_rate_factor;
  return base;
}

}  // namespace

StackServer::StackServer(sim::EventLoop& loop, kernel::OsModel& os,
                         StackProfile profile,
                         quic::Connection::Config conn_config,
                         net::PacketSink* kernel_egress)
    : loop_(loop),
      os_(os),
      profile_(std::move(profile)),
      connection_(merge_config(conn_config, profile_)),
      socket_(loop, os, kernel_egress),
      pacer_timers_(loop, os, profile_.pacer_timer) {}

void StackServer::charge_syscall() {
  stats_.cpu_time += os_.draw_syscall_cost();
  ++stats_.send_syscalls;
}

void StackServer::on_datagram(const net::Packet& pkt) {
  if (pkt.kind != net::PacketKind::kQuicAck) return;

  // Duty-cycle loop stall: during the busy part of the cycle the loop is
  // off doing other work; everything that arrives queues until it ends.
  const sim::Duration cycle = profile_.loop_busy_cycle;
  if (cycle > sim::Duration::zero()) {
    const std::int64_t phase = loop_.now().ns() % cycle.ns();
    if (phase < profile_.loop_busy_duration.ns()) {
      pending_acks_.push_back(pkt);
      if (!batch_timer_.pending()) {
        batch_timer_ = loop_.schedule_after(
            profile_.loop_busy_duration - sim::Duration::nanos(phase),
            sim::EventClass::kTransport, [this] { process_ack_batch(); });
      }
      return;
    }
  }

  // Stochastic iteration latency: coalesce ACKs for an exponentially drawn
  // window (short typical iterations, heavy-ish tail).
  if (!profile_.recv_batch_window.is_zero()) {
    pending_acks_.push_back(pkt);
    if (!batch_timer_.pending()) {
      const sim::Duration window = os_.rng().exponential_duration(
          profile_.recv_batch_window, profile_.recv_batch_window * 8.0);
      batch_timer_ = loop_.schedule_after(window, sim::EventClass::kTransport,
                                          [this] { process_ack_batch(); });
    }
    return;
  }

  ++stats_.wakeups;
  connection_.on_ack_packet(pkt, loop_.now());
  rearm_loss_timer();
  attempt_send();
}

void StackServer::process_ack_batch() {
  ++stats_.wakeups;
  const sim::Time now = loop_.now();
  while (!pending_acks_.empty()) {
    connection_.on_ack_packet(pending_acks_.front(), now);
    pending_acks_.pop_front();
  }
  rearm_loss_timer();
  attempt_send();
}

void StackServer::attempt_send() {
  if (profile_.pass_txtime) {
    send_with_txtime();
  } else {
    send_waiting();
  }
}

void StackServer::send_with_txtime() {
  // quiche discipline: write everything the window allows NOW; each packet
  // carries the pacer's release time as SO_TXTIME. Whether pacing actually
  // happens is the qdisc's problem (the paper's central quiche finding).
  if (yield_timer_.pending()) return;  // iteration budget cooldown
  const sim::Time now = loop_.now();
  std::vector<net::Packet> gso_batch;
  int written = 0;

  while (connection_.has_data_to_send()) {
    if (connection_.congestion_blocked()) break;
    if (profile_.max_packets_per_iteration > 0 &&
        written >= profile_.max_packets_per_iteration) {
      // Iteration budget exhausted: yield and continue next loop pass.
      // The pause covers at least the socket drain of the batch just
      // written, so consecutive iterations do not merge on the wire.
      const sim::Duration pause =
          sim::Duration::micros(450) +
          os_.rng().exponential_duration(sim::Duration::micros(200),
                                         sim::Duration::millis(2));
      yield_timer_ = loop_.schedule_after(pause, sim::EventClass::kTransport,
                                          [this] { attempt_send(); });
      break;
    }
    ++written;
    const sim::Time release = connection_.pacer_release_time(now);
    net::Packet pkt = connection_.build_packet(now, release);
    pkt.has_txtime = true;
    pkt.txtime = release + profile_.txtime_headroom;
    pkt.expected_send_time = pkt.txtime;
    stats_.cpu_time += os_.config().packet_build_cost;
    QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kPacerRelease,
                         trace_component_, now, pkt);

    if (profile_.gso == kernel::GsoMode::kOff) {
      if (profile_.use_sendmmsg) {
        mmsg_batch_.push_back(std::move(pkt));
        if (static_cast<int>(mmsg_batch_.size()) >= profile_.gso_segments) {
          charge_syscall();
          socket_.sendmmsg(std::move(mmsg_batch_));
          mmsg_batch_.clear();
        }
      } else {
        charge_syscall();
        socket_.sendmsg(std::move(pkt));
      }
    } else {
      gso_batch.push_back(std::move(pkt));
      if (static_cast<int>(gso_batch.size()) >= profile_.gso_segments) {
        flush_gso_batch(std::move(gso_batch));
        gso_batch.clear();
      }
    }
  }
  if (!gso_batch.empty()) flush_gso_batch(std::move(gso_batch));
  if (!mmsg_batch_.empty()) {
    charge_syscall();
    socket_.sendmmsg(std::move(mmsg_batch_));
    mmsg_batch_.clear();
  }
  if (!connection_.has_data_to_send()) connection_.set_app_limited();
  rearm_loss_timer();
}

void StackServer::flush_gso_batch(std::vector<net::Packet> batch) {
  charge_syscall();
  net::DataRate gso_rate;  // zero = stock (unpaced) GSO
  if (profile_.gso == kernel::GsoMode::kPaced) {
    const net::DataRate pacing = connection_.pacing_rate();
    if (!pacing.is_infinite() && !pacing.is_zero()) gso_rate = pacing;
  }
  socket_.sendmsg_gso(std::move(batch), gso_rate);
}

void StackServer::send_waiting() {
  // ngtcp2 / picoquic discipline: the application sleeps until the pacer's
  // release time, with its own timer quality.
  const sim::Time now = loop_.now();

  while (connection_.has_data_to_send()) {
    if (connection_.congestion_blocked()) {
      rearm_loss_timer();
      return;  // ACK arrivals re-enter attempt_send()
    }
    const sim::Time release = connection_.pacer_release_time(now);
    if (release > now) {
      // Sleep until the pacer allows the next packet — through the stack's
      // timer discipline (granularity + slack).
      if (!send_timer_.pending()) {
        send_timer_ = pacer_timers_.arm(release, [this] { attempt_send(); });
      }
      rearm_loss_timer();
      return;
    }
    // Release due: write a small burst (profiles with burst > 1 model
    // example apps that emit several packets per timer expiry).
    for (int i = 0; i < profile_.pacing_burst_packets; ++i) {
      if (!connection_.has_data_to_send() ||
          connection_.congestion_blocked()) {
        break;
      }
      const sim::Time r = connection_.pacer_release_time(now);
      net::Packet pkt = connection_.build_packet(now, sim::max(now, r));
      stats_.cpu_time += os_.config().packet_build_cost;
      QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kPacerRelease,
                           trace_component_, now, pkt);
      charge_syscall();
      socket_.sendmsg(std::move(pkt));
    }
  }
  if (!connection_.has_data_to_send()) connection_.set_app_limited();
  rearm_loss_timer();
}

void StackServer::rearm_loss_timer() {
  const sim::Time deadline = connection_.next_timer_deadline();
  if (loss_timer_.pending()) {
    // Lazy re-arm: every sent packet pushes the PTO deadline later, so the
    // common case is "deadline moved out" — leave the armed timer alone
    // and let the fire handler re-check. Only an earlier deadline forces a
    // reschedule. This turns the per-packet cancel + closure schedule into
    // a compare.
    if (deadline >= armed_loss_deadline_) return;
    loss_timer_.cancel();
  }
  if (deadline.is_infinite()) return;
  armed_loss_deadline_ = deadline;
  loss_timer_ = loop_.schedule_at(deadline, sim::EventClass::kTimer,
                                  [this] { on_loss_timer(); });
}

void StackServer::on_loss_timer() {
  const sim::Time deadline = connection_.next_timer_deadline();
  if (deadline.is_infinite()) return;  // everything was acked meanwhile
  if (loop_.now() < deadline) {
    // Spurious wake: the deadline moved later since arming. Re-arm
    // silently — no connection callback, so behavior (and the wire) is
    // exactly what an eagerly re-armed timer would have produced.
    armed_loss_deadline_ = deadline;
    loss_timer_ = loop_.schedule_at(deadline, sim::EventClass::kTimer,
                                    [this] { on_loss_timer(); });
    return;
  }
  connection_.on_timer(loop_.now());
  rearm_loss_timer();
  attempt_send();
}

}  // namespace quicsteps::stacks
