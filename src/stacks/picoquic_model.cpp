// picoquic behavioral profile.
//
// picoquic paces with the leaky bucket RFC 9002 proposes: credit accrues
// while the sender is idle, so after each coarse select-loop sleep a whole
// bucket of packets drains back-to-back — the 16-17 packet trains the paper
// observes with loss-based CCAs (Section 4.1, "bursts after a 5 ms idle
// period happening almost every 10 ms"). Its BBR path instead drives the
// loop with fine rate-based wakeups and a shallow bucket, which is why
// picoquic+BBR is the paper's best purely user-space pacer.
#include "stacks/stack_profile.hpp"

namespace quicsteps::stacks {

StackProfile picoquic_profile(const ProfileOptions& options) {
  StackProfile p;
  p.name = "picoquic";

  p.cc.algorithm = options.cca;
  p.cc.hystart = true;
  p.cc.spurious_loss_rollback = false;
  p.cc.bbr_flavor = cc::BbrFlavor::kV2Lite;

  p.pacer.kind = pacing::PacerKind::kLeakyBucket;
  p.pacing_rate_factor = 1.25;
  p.pass_txtime = false;
  p.app_waits_for_pacer = true;

  if (options.cca == cc::CcAlgorithm::kBbr) {
    // Rate-driven loop: precise waits, shallow bucket, short iterations.
    p.pacer.bucket_depth_bytes = 2 * 1500;
    p.pacer_timer.granularity = sim::Duration::zero();
    p.pacer_timer.slack_max = sim::Duration::micros(50);
    p.recv_batch_window = sim::Duration::zero();
  } else {
    // cwnd-driven loop: iterations stretch to several milliseconds, so
    // ACKs are digested in batches and the refilled bucket drains as one
    // 16-17 packet train (its depth is the cap) — the paper's "bursts
    // after a 5 ms idle period happening almost every 10 ms".
    p.pacer.bucket_depth_bytes = 16 * 1500;
    // Pacer waits themselves are computed precisely (select timeout in
    // microseconds); the bursts come from the busy cycle below, after
    // which the refilled bucket drains in one train.
    p.pacer_timer.granularity = sim::Duration::zero();
    p.pacer_timer.slack_max = sim::Duration::micros(100);
    p.loop_busy_cycle = sim::Duration::millis(10);
    p.loop_busy_duration = sim::Duration::millis(5);
  }

  p.gso = options.gso;
  p.gso_segments = options.gso_segments;
  return p;
}

}  // namespace quicsteps::stacks
