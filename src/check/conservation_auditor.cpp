#include "check/conservation_auditor.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "check/audit.hpp"

namespace quicsteps::check {

namespace {

std::string count_mismatch(const std::string& what, std::int64_t lhs,
                           std::int64_t rhs) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), ": %lld != %lld",
                static_cast<long long>(lhs), static_cast<long long>(rhs));
  return what + buf;
}

}  // namespace

std::size_t ConservationAuditor::add_stage(std::string name,
                                           const net::Counters& counters,
                                           BacklogFn backlog_packets) {
  stages_.push_back(
      Stage{std::move(name), &counters, std::move(backlog_packets)});
  return stages_.size() - 1;
}

void ConservationAuditor::add_edge(std::size_t upstream,
                                   std::size_t downstream) {
  edges_.push_back(Edge{upstream, downstream});
}

std::vector<std::string> ConservationAuditor::violations() const {
  std::vector<std::string> out;

  for (const Stage& stage : stages_) {
    const net::Counters& c = *stage.counters;
    if (c.packets_in < 0 || c.packets_out < 0 || c.packets_dropped < 0 ||
        c.bytes_in < 0 || c.bytes_out < 0 || c.bytes_dropped < 0) {
      out.push_back(stage.name + ": negative counter");
    }
    if (c.packets_queued() < 0) {
      out.push_back(stage.name +
                    count_mismatch(": packets out+dropped exceed packets in",
                                   c.packets_out + c.packets_dropped,
                                   c.packets_in));
    }
    const std::int64_t bytes_queued = c.bytes_in - c.bytes_out - c.bytes_dropped;
    if (bytes_queued < 0) {
      out.push_back(stage.name +
                    count_mismatch(": bytes out+dropped exceed bytes in",
                                   c.bytes_out + c.bytes_dropped, c.bytes_in));
    }
    if (stage.backlog_packets) {
      const std::int64_t backlog = stage.backlog_packets();
      if (c.packets_queued() != backlog) {
        out.push_back(stage.name +
                      count_mismatch(": counter backlog disagrees with live "
                                     "queue depth",
                                     c.packets_queued(), backlog));
      }
    }
  }

  for (const Edge& edge : edges_) {
    const Stage& up = stages_[edge.upstream];
    const Stage& down = stages_[edge.downstream];
    if (up.counters->packets_out != down.counters->packets_in) {
      out.push_back(up.name + " -> " + down.name +
                    count_mismatch(": packets lost on a synchronous edge",
                                   up.counters->packets_out,
                                   down.counters->packets_in));
    }
    if (up.counters->bytes_out != down.counters->bytes_in) {
      out.push_back(up.name + " -> " + down.name +
                    count_mismatch(": bytes lost on a synchronous edge",
                                   up.counters->bytes_out,
                                   down.counters->bytes_in));
    }
  }

  return out;
}

std::vector<std::string> ConservationAuditor::audit() const {
  std::vector<std::string> found = violations();
  for (const std::string& violation : found) {
    audit_fail(__FILE__, __LINE__, "conservation", violation);
  }
  return found;
}

std::string ConservationAuditor::to_string() const {
  std::vector<const Stage*> ordered;
  ordered.reserve(stages_.size());
  for (const Stage& stage : stages_) ordered.push_back(&stage);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Stage* a, const Stage* b) {
                     return a->name < b->name;
                   });
  std::string out;
  for (const Stage* stage : ordered) {
    const net::Counters& c = *stage->counters;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  ": in=%lld out=%lld dropped=%lld queued=%lld\n",
                  static_cast<long long>(c.packets_in),
                  static_cast<long long>(c.packets_out),
                  static_cast<long long>(c.packets_dropped),
                  static_cast<long long>(c.packets_queued()));
    out += stage->name;
    out += buf;
  }
  return out;
}

}  // namespace quicsteps::check
