#include "check/determinism_hasher.hpp"

#include <cstdio>

namespace quicsteps::check {

std::string DeterminismHasher::to_string() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash_));
  return buf;
}

}  // namespace quicsteps::check
