// Order-sensitive FNV-1a digest of a simulation's observable output.
//
// The paper's figures are functions of the wire-tap departure timestamps,
// so "two runs agree" reduces to "their timestamp streams hash equal".
// The Runner folds every tap departure into one of these and publishes the
// digest as RunResult::wire_hash; the determinism gate asserts that serial
// and parallel executions of the same (config, seed) produce identical
// hashes (tests/check_test.cpp), which pins scheduling order, packet
// count, and every timestamp at once in 8 bytes.
//
// FNV-1a over the little-endian bytes of each value: cheap (one multiply
// per byte), dependency-free, and stable across platforms — exactly what a
// reproducibility fingerprint needs. Not cryptographic, and doesn't have
// to be: the adversary is a data race, not an attacker.
#pragma once

#include <cstdint>
#include <string>

namespace quicsteps::check {

class DeterminismHasher {
 public:
  /// Folds one 64-bit value (e.g. a timestamp in ns) into the digest.
  void add_u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (value >> (8 * i)) & 0xffu;
      hash_ *= kPrime;
    }
    ++count_;
  }
  void add_i64(std::int64_t value) {
    add_u64(static_cast<std::uint64_t>(value));
  }

  std::uint64_t digest() const { return hash_; }
  /// Number of values folded in so far.
  std::uint64_t count() const { return count_; }

  /// Digest as fixed-width hex, for reports and diffs.
  std::string to_string() const;

 private:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t hash_ = kOffsetBasis;
  std::uint64_t count_ = 0;
};

}  // namespace quicsteps::check
