// Runtime invariant auditing.
//
// Every figure in the reproduced paper is a pure function of packet
// departure timestamps, so the simulator's correctness claims (monotonic
// event time, packet/byte conservation, bit-for-bit determinism) must be
// machine-checked, not hoped for. This header provides the reporting spine
// all auditors share:
//
//   * QUICSTEPS_AUDIT(cond, msg) — an assertion that compiles to nothing
//     unless the build defines QUICSTEPS_AUDIT_ENABLED (CMake option
//     QUICSTEPS_AUDIT, default ON). Both `cond` and `msg` are evaluated
//     lazily: a passing audit costs one predictable branch, a disabled
//     build costs nothing at all.
//   * audit_fail() — the failure funnel. The default handler prints the
//     violated invariant and aborts (so sanitizer runs and CI stop at the
//     first corruption); tests install a capturing handler instead.
//   * MonotonicityAuditor — the smallest useful auditor: a timestamp
//     stream that must never go backwards (event execution order, wire
//     departure order).
//
// Auditor classes themselves (this file, conservation_auditor.hpp,
// determinism_hasher.hpp) are always compiled and callable — tests drive
// them explicitly in any build; only the QUICSTEPS_AUDIT() hooks woven
// into hot paths are compile-time gated.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace quicsteps::check {

/// Everything a handler needs to report (or throw) a violated invariant.
struct AuditFailure {
  const char* file = "";
  int line = 0;
  const char* expression = "";
  std::string message;

  std::string to_string() const;
};

using AuditHandler = std::function<void(const AuditFailure&)>;

/// Installs a process-wide failure handler; an empty function restores the
/// default (print to stderr and abort). Install before spawning worker
/// threads — the handler itself may be invoked from any thread.
void set_audit_handler(AuditHandler handler);

/// Reports a violated invariant through the installed handler. Never
/// returns under the default handler.
void audit_fail(const char* file, int line, const char* expression,
                const std::string& message);

#ifdef QUICSTEPS_AUDIT_ENABLED
inline constexpr bool kAuditEnabled = true;
#define QUICSTEPS_AUDIT(cond, msg)                                        \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::quicsteps::check::audit_fail(__FILE__, __LINE__, #cond, (msg));   \
    }                                                                     \
  } while (false)
#else
inline constexpr bool kAuditEnabled = false;
#define QUICSTEPS_AUDIT(cond, msg) \
  do {                             \
  } while (false)
#endif

/// Audits that a stream of nanosecond timestamps never decreases. The
/// event loop's executed-event times and the wire tap's departure stamps
/// both feed one of these; a calendar-queue bug that resurfaces a stale
/// record out of order trips it immediately.
class MonotonicityAuditor {
 public:
  /// `what` names the stream in failure messages (not copied; pass a
  /// string literal).
  explicit MonotonicityAuditor(const char* what) : what_(what) {}

  /// Feeds the next timestamp; reports through audit_fail() when it is
  /// earlier than its predecessor. Returns true while the stream is sane.
  bool observe(std::int64_t t_ns);

  std::int64_t last_ns() const { return last_ns_; }

 private:
  const char* what_;
  std::int64_t last_ns_ = std::numeric_limits<std::int64_t>::min();
};

}  // namespace quicsteps::check
