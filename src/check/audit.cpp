#include "check/audit.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <utility>

namespace quicsteps::check {

namespace {

std::mutex handler_mutex;
AuditHandler handler;  // empty -> default print-and-abort

}  // namespace

std::string AuditFailure::to_string() const {
  std::string out = "audit failed: ";
  out += message;
  out += " [";
  out += expression;
  out += "] at ";
  out += file;
  out += ":";
  out += std::to_string(line);
  return out;
}

void set_audit_handler(AuditHandler h) {
  std::lock_guard<std::mutex> lock(handler_mutex);
  handler = std::move(h);
}

void audit_fail(const char* file, int line, const char* expression,
                const std::string& message) {
  AuditFailure failure{file, line, expression, message};
  AuditHandler h;
  {
    std::lock_guard<std::mutex> lock(handler_mutex);
    h = handler;
  }
  if (h) {
    h(failure);
    return;
  }
  std::fprintf(stderr, "quicsteps: %s\n", failure.to_string().c_str());
  std::abort();
}

bool MonotonicityAuditor::observe(std::int64_t t_ns) {
  const bool ok = t_ns >= last_ns_;
  if (!ok) {
    audit_fail(__FILE__, __LINE__, "t_ns >= last_ns_",
               std::string(what_) + " went backwards: " +
                   std::to_string(t_ns) + " ns after " +
                   std::to_string(last_ns_) + " ns");
  }
  last_ns_ = t_ns;
  return ok;
}

}  // namespace quicsteps::check
