// Packet and byte conservation auditing over a chain of counted stages.
//
// Every element of the egress path (qdisc under test, bottleneck TBF,
// netem delay) owns a net::Counters; conservation means the books balance:
//
//   per stage   packets_in == packets_out + packets_dropped + queued,
//               with queued >= 0 (same in bytes), and when the stage can
//               report its live queue depth, queued matches it exactly;
//   per edge    a stage that feeds another synchronously (no wire between
//               them) hands over every packet: downstream.in == upstream.out.
//
// A component that duplicates, leaks, or silently eats a packet breaks one
// of these equations no matter how it miscounts — the per-stage identity
// catches self-inconsistent books, the edge equation catches books that
// are internally consistent but lie about the neighbour. Violations funnel
// through check::audit_fail(), so a run under the default handler stops at
// the first unbalanced packet.
//
// The auditor reads counters only; it is wired up after a run (see
// framework::Runner) or around a unit under test (tests/check_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/counters.hpp"

namespace quicsteps::check {

class ConservationAuditor {
 public:
  /// Reports a stage's live queue depth in packets (e.g. TBF backlog,
  /// netem in-flight count) at audit time.
  using BacklogFn = std::function<std::int64_t()>;

  /// Registers a counted stage; returns its index for add_edge(). The
  /// counters must outlive the auditor. `backlog_packets` is optional —
  /// without it only sign and edge invariants apply to the stage.
  std::size_t add_stage(std::string name, const net::Counters& counters,
                        BacklogFn backlog_packets = {});

  /// Declares that `upstream` delivers directly (same-instant, no link in
  /// between) into `downstream`: every packet out of one is in the other.
  void add_edge(std::size_t upstream, std::size_t downstream);

  /// Runs every check without reporting; empty result == conservation
  /// holds. Deterministic order: stages first (registration order), then
  /// edges.
  std::vector<std::string> violations() const;

  /// Runs every check and funnels each violation through audit_fail().
  /// Returns the violations for callers that want them anyway.
  std::vector<std::string> audit() const;

  /// Per-stage counter table in sorted name order (deterministic emission
  /// regardless of registration order).
  std::string to_string() const;

 private:
  struct Stage {
    std::string name;
    const net::Counters* counters;
    BacklogFn backlog_packets;
  };
  struct Edge {
    std::size_t upstream;
    std::size_t downstream;
  };

  std::vector<Stage> stages_;
  std::vector<Edge> edges_;
};

}  // namespace quicsteps::check
