// NIC model: line-rate serializer, GSO expansion point, LaunchTime engine.
//
// This is the last element before the wire (and thus before the tap). It
//   * expands GSO super-packets into wire packets — back-to-back for stock
//     GSO, spread at the buffer's pacing rate for the paced-GSO patch;
//   * with LaunchTime enabled, holds a packet that arrives before its
//     txtime until that txtime (clipping ETF's early-dequeue error);
//   * serializes everything at the line rate, which produces the ~12 us
//     minimum inter-packet gap the paper calls out for 1 Gbit/s.
#pragma once

#include <cstdint>

#include "kernel/os_model.hpp"
#include "net/packet.hpp"
#include "net/packet_slab.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::kernel {

class Nic final : public net::PacketSink, public obs::TraceSource {
 public:
  struct Config {
    net::DataRate line_rate = net::DataRate::gigabits_per_second(1);
    bool launch_time = false;
    /// Residual error of the LaunchTime engine (I210-class hardware fires
    /// within a microsecond of the armed time).
    sim::Duration launch_jitter_max = sim::Duration::micros(1);
    /// TSN-strict behavior: a packet that reaches the NIC after its armed
    /// launch time has missed its slot and is DROPPED. Off by default (the
    /// paper's measured setup transmits such packets immediately); used by
    /// the ETF-delta ablation to show the Bosk et al. trade-off.
    bool drop_missed_launch = false;
  };

  Nic(sim::EventLoop& loop, Config config, OsModel& os,
      net::PacketSink* downstream)
      : loop_(loop), config_(config), os_(os), downstream_(downstream) {}

  void deliver(net::Packet pkt) override;

  void set_downstream(net::PacketSink* sink) { downstream_ = sink; }
  std::int64_t packets_sent() const { return packets_sent_; }
  std::int64_t missed_launch_drops() const { return missed_launch_drops_; }

  /// Switches TX completions to the batched datapath: completions become
  /// drain records carrying slab refs, and GSO segments are moved (not
  /// copied) out of a uniquely-owned buffer. Call once during wiring.
  void enable_batched(net::PacketSlab* slab);

 private:
  /// Serializes one wire packet whose transmission may start no earlier
  /// than `earliest`.
  void transmit(net::Packet pkt, sim::Time earliest);

  static void drain_tx(void* self, std::uint32_t ref);

  sim::EventLoop& loop_;
  net::PacketSlab* slab_ = nullptr;
  sim::DrainId tx_channel_ = 0;
  Config config_;
  OsModel& os_;
  net::PacketSink* downstream_;
  sim::Time busy_until_;
  std::int64_t packets_sent_ = 0;
  std::int64_t missed_launch_drops_ = 0;
};

}  // namespace quicsteps::kernel
