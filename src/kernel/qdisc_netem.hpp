// netem model: constant delay (optional jitter) with a packet-count limit.
//
// Used twice in the measurement topology, 20 ms in each direction, to build
// the 40 ms minimum RTT. Following the paper's setup, its buffer is sized
// to two bandwidth-delay products so that it never drops — drops must only
// happen at the TBF bottleneck.
#pragma once

#include <cstdint>

#include "kernel/qdisc.hpp"
#include "net/packet_slab.hpp"
#include "sim/random.hpp"

namespace quicsteps::kernel {

class NetemQdisc final : public Qdisc {
 public:
  struct Config {
    sim::Duration delay = sim::Duration::millis(20);
    sim::Duration jitter = sim::Duration::zero();
    std::int64_t limit_packets = 100000;
    /// Random independent loss probability (tc netem `loss`).
    double loss_probability = 0.0;
    /// Probability that a packet is re-ordered by being delivered with a
    /// reduced delay (tc netem `reorder` semantics: reordered packets jump
    /// the queue by `reorder_gap`).
    double reorder_probability = 0.0;
    sim::Duration reorder_gap = sim::Duration::millis(2);
  };

  NetemQdisc(sim::EventLoop& loop, Config config, sim::Rng rng,
             net::PacketSink* downstream)
      : Qdisc(loop, "netem", downstream),
        config_(config),
        rng_(std::move(rng)) {}

  void deliver(net::Packet pkt) override {
    note_arrival(pkt);
    if (in_flight_ >= config_.limit_packets) {
      drop(pkt);
      return;
    }
    if (rng_.chance(config_.loss_probability)) {
      ++random_losses_;
      drop(pkt);
      return;
    }
    ++in_flight_;
    sim::Duration d = config_.delay;
    if (config_.jitter > sim::Duration::zero()) {
      d = rng_.normal_duration(config_.delay, config_.jitter,
                               sim::Duration::zero());
    }
    if (rng_.chance(config_.reorder_probability)) {
      d = sim::max(d - config_.reorder_gap, sim::Duration::zero());
      ++reordered_;
    }
    if (slab_ != nullptr) {
      // Batched datapath: the delivery is a slotless drain record carrying
      // a slab ref (deliveries are never cancelled). Refs are
      // payload-addressed, so jitter and reorder deliveries surfacing out
      // of arrival order need no extra bookkeeping.
      loop_.post_drain_at(loop_.now() + d, delay_channel_,
                          slab_->put(std::move(pkt)));
      return;
    }
    loop_.schedule_after(d, sim::EventClass::kDelay,
                         [this, pkt = std::move(pkt)]() mutable {
                           --in_flight_;
                           forward(std::move(pkt));
                         });
  }

  /// Switches deliveries to slab-backed drain records (batched datapath).
  /// Call once during wiring.
  void enable_batched(net::PacketSlab* slab) {
    slab_ = slab;
    delay_channel_ = loop_.register_drain(sim::EventClass::kDelay,
                                          &NetemQdisc::drain_delivery, this);
  }

  std::int64_t in_flight() const { return in_flight_; }
  std::int64_t random_losses() const { return random_losses_; }
  std::int64_t reordered() const { return reordered_; }

 private:
  static void drain_delivery(void* self, std::uint32_t ref) {
    NetemQdisc* netem = static_cast<NetemQdisc*>(self);
    --netem->in_flight_;
    netem->forward(netem->slab_->take(ref));
  }

  Config config_;
  sim::Rng rng_;
  net::PacketSlab* slab_ = nullptr;
  sim::DrainId delay_channel_ = 0;
  std::int64_t in_flight_ = 0;
  std::int64_t random_losses_ = 0;
  std::int64_t reordered_ = 0;
};

}  // namespace quicsteps::kernel
