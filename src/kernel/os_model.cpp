#include "kernel/os_model.hpp"

namespace quicsteps::kernel {

sim::Duration OsModel::draw_syscall_cost() {
  return config_.syscall_base +
         rng_.exponential_duration(config_.syscall_jitter_mean,
                                   config_.syscall_jitter_cap);
}

sim::Duration OsModel::draw_kernel_release_delay() {
  sim::Duration d = rng_.normal_duration(config_.hrtimer_slack_mean,
                                         config_.hrtimer_slack_stddev);
  if (rng_.chance(config_.softirq_delay_chance)) {
    d += rng_.exponential_duration(config_.softirq_delay_mean,
                                   config_.softirq_delay_cap);
  }
  return d;
}

sim::Duration OsModel::draw_wakeup_latency() {
  return rng_.normal_duration(config_.wakeup_latency_mean,
                              config_.wakeup_latency_stddev);
}

}  // namespace quicsteps::kernel
