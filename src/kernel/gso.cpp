#include "kernel/gso.hpp"

#include <memory>
#include <utility>

namespace quicsteps::kernel {

const char* to_string(GsoMode mode) {
  switch (mode) {
    case GsoMode::kOff:
      return "gso-off";
    case GsoMode::kOn:
      return "gso-on";
    case GsoMode::kPaced:
      return "gso-paced";
  }
  return "?";
}

net::Packet make_gso_buffer(std::shared_ptr<std::vector<net::Packet>> segments,
                            std::uint64_t buffer_id,
                            net::DataRate gso_pacing_rate) {
  std::vector<net::Packet>& segs = *segments;
  net::Packet carrier;
  carrier.flow = segs.front().flow;
  carrier.kind = segs.front().kind;
  carrier.id = segs.front().id;
  carrier.packet_number = segs.front().packet_number;
  carrier.has_txtime = segs.front().has_txtime;
  carrier.txtime = segs.front().txtime;
  carrier.expected_send_time = segs.front().expected_send_time;
  carrier.gso_buffer_id = buffer_id;
  carrier.gso_segment_count = static_cast<std::uint32_t>(segs.size());
  carrier.gso_pacing_rate = gso_pacing_rate;

  std::int64_t total = 0;
  std::uint32_t index = 0;
  for (auto& seg : segs) {
    total += seg.size_bytes;
    seg.gso_buffer_id = buffer_id;
    seg.gso_segment_index = index++;
    seg.gso_segment_count = carrier.gso_segment_count;
    seg.gso_pacing_rate = gso_pacing_rate;
  }
  carrier.size_bytes = total;
  carrier.gso_segments = std::move(segments);
  return carrier;
}

}  // namespace quicsteps::kernel
