// Token Bucket Filter model.
//
// Used as the bottleneck shaper in the measurement topology (40 Mbit/s on
// the client's IFB ingress). Classic TBF semantics: tokens accrue at `rate`
// up to `burst` bytes; a packet leaves when the bucket covers it; packets
// wait in a byte-limited FIFO and are dropped (drop-tail) when the FIFO is
// full. There is no user-space interface to change the rate per packet —
// the reason the paper rules TBF out for QUIC pacing.
#pragma once

#include <cstdint>
#include <deque>

#include "kernel/qdisc.hpp"
#include "net/packet_slab.hpp"

namespace quicsteps::kernel {

class TbfQdisc final : public Qdisc {
 public:
  struct Config {
    net::DataRate rate = net::DataRate::megabits_per_second(40);
    std::int64_t burst_bytes = 16 * 1024;
    /// FIFO capacity in bytes (the paper's bottleneck buffer).
    std::int64_t limit_bytes = 200 * 1000;  // 1 BDP at 40 Mbit/s x 40 ms
  };

  TbfQdisc(sim::EventLoop& loop, Config config, net::PacketSink* downstream);

  void deliver(net::Packet pkt) override;

  /// Switches the FIFO to slab refs (batched datapath): queued packets
  /// live flat in the shared slab and the token loop reads byte sizes off
  /// the slab's hot lane. Call once during wiring, while empty.
  void enable_batched(net::PacketSlab* slab);

  std::int64_t backlog_bytes() const { return backlog_bytes_; }
  std::int64_t backlog_packets() const override {
    return static_cast<std::int64_t>(slab_ != nullptr ? ref_queue_.size()
                                                      : queue_.size());
  }

 private:
  static void drain_wake(void* self, std::uint32_t payload);

  void refill_tokens(sim::Time now);
  void try_release();

  Config config_;
  std::deque<net::Packet> queue_;        // legacy datapath
  std::deque<net::PacketSlab::Ref> ref_queue_;  // batched datapath
  net::PacketSlab* slab_ = nullptr;
  sim::DrainId wake_channel_ = 0;
  std::int64_t backlog_bytes_ = 0;
  double tokens_bytes_;
  sim::Time last_refill_;
  sim::EventHandle wake_;
};

}  // namespace quicsteps::kernel
