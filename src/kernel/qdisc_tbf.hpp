// Token Bucket Filter model.
//
// Used as the bottleneck shaper in the measurement topology (40 Mbit/s on
// the client's IFB ingress). Classic TBF semantics: tokens accrue at `rate`
// up to `burst` bytes; a packet leaves when the bucket covers it; packets
// wait in a byte-limited FIFO and are dropped (drop-tail) when the FIFO is
// full. There is no user-space interface to change the rate per packet —
// the reason the paper rules TBF out for QUIC pacing.
#pragma once

#include <cstdint>
#include <deque>

#include "kernel/qdisc.hpp"

namespace quicsteps::kernel {

class TbfQdisc final : public Qdisc {
 public:
  struct Config {
    net::DataRate rate = net::DataRate::megabits_per_second(40);
    std::int64_t burst_bytes = 16 * 1024;
    /// FIFO capacity in bytes (the paper's bottleneck buffer).
    std::int64_t limit_bytes = 200 * 1000;  // 1 BDP at 40 Mbit/s x 40 ms
  };

  TbfQdisc(sim::EventLoop& loop, Config config, net::PacketSink* downstream);

  void deliver(net::Packet pkt) override;

  std::int64_t backlog_bytes() const { return backlog_bytes_; }
  std::size_t backlog_packets() const { return queue_.size(); }

 private:
  void refill_tokens(sim::Time now);
  void try_release();

  Config config_;
  std::deque<net::Packet> queue_;
  std::int64_t backlog_bytes_ = 0;
  double tokens_bytes_;
  sim::Time last_refill_;
  sim::EventHandle wake_;
};

}  // namespace quicsteps::kernel
