#include "kernel/qdisc_tbf.hpp"

#include <algorithm>
#include <utility>

namespace quicsteps::kernel {

TbfQdisc::TbfQdisc(sim::EventLoop& loop, Config config,
                   net::PacketSink* downstream)
    : Qdisc(loop, "tbf", downstream),
      config_(config),
      tokens_bytes_(static_cast<double>(config.burst_bytes)),
      last_refill_(loop.now()) {}

void TbfQdisc::deliver(net::Packet pkt) {
  note_arrival(pkt);
  if (backlog_bytes_ + pkt.size_bytes > config_.limit_bytes) {
    // Drop-tail happens before the slab: a dropped packet never occupies
    // a slot, so a partially-dropped train leaves no stale refs behind.
    drop(pkt);
    return;
  }
  backlog_bytes_ += pkt.size_bytes;
  if (slab_ != nullptr) {
    ref_queue_.push_back(slab_->put(std::move(pkt)));
  } else {
    queue_.push_back(std::move(pkt));
  }
  try_release();
}

void TbfQdisc::enable_batched(net::PacketSlab* slab) {
  slab_ = slab;
  wake_channel_ = loop_.register_drain(sim::EventClass::kQueue,
                                       &TbfQdisc::drain_wake, this);
}

void TbfQdisc::drain_wake(void* self, std::uint32_t /*payload*/) {
  static_cast<TbfQdisc*>(self)->try_release();
}

void TbfQdisc::refill_tokens(sim::Time now) {
  const sim::Duration elapsed = now - last_refill_;
  last_refill_ = now;
  tokens_bytes_ += config_.rate.bytes_per_second_f() * elapsed.to_seconds();
  tokens_bytes_ =
      std::min(tokens_bytes_, static_cast<double>(config_.burst_bytes));
}

void TbfQdisc::try_release() {
  const sim::Time now = loop_.now();
  refill_tokens(now);

  if (slab_ != nullptr) {
    // Batched: one refill covers the whole release train; the head-of-line
    // token check reads the slab's size lane, and the packet itself is
    // only touched (moved out once) when it actually leaves.
    while (!ref_queue_.empty() &&
           tokens_bytes_ >=
               static_cast<double>(slab_->size_bytes(ref_queue_.front()))) {
      const net::PacketSlab::Ref ref = ref_queue_.front();
      ref_queue_.pop_front();
      net::Packet pkt = slab_->take(ref);
      tokens_bytes_ -= static_cast<double>(pkt.size_bytes);
      backlog_bytes_ -= pkt.size_bytes;
      forward(std::move(pkt));
    }
  } else {
    while (!queue_.empty() &&
           tokens_bytes_ >= static_cast<double>(queue_.front().size_bytes)) {
      net::Packet pkt = std::move(queue_.front());
      queue_.pop_front();
      tokens_bytes_ -= static_cast<double>(pkt.size_bytes);
      backlog_bytes_ -= pkt.size_bytes;
      forward(std::move(pkt));
    }
  }

  const bool backlog_empty =
      slab_ != nullptr ? ref_queue_.empty() : queue_.empty();
  if (backlog_empty) {
    wake_.cancel();
    return;
  }
  // Sleep until the bucket covers the head packet.
  const double head_bytes =
      slab_ != nullptr
          ? static_cast<double>(slab_->size_bytes(ref_queue_.front()))
          : static_cast<double>(queue_.front().size_bytes);
  const double deficit = head_bytes - tokens_bytes_;
  const double seconds = deficit / config_.rate.bytes_per_second_f();
  const sim::Time due =
      now + sim::Duration::nanos(static_cast<std::int64_t>(seconds * 1e9) + 1);
  if (wake_.pending()) return;  // a wakeup is already scheduled
  if (slab_ != nullptr) {
    // Batched: the wake is a payload-less drain record — no std::function
    // to build per release step, and the record can ride a drain train.
    wake_ = loop_.schedule_drain_at(due, wake_channel_, 0);
    return;
  }
  wake_ = loop_.schedule_at(due, sim::EventClass::kQueue,
                            [this] { try_release(); });
}

}  // namespace quicsteps::kernel
