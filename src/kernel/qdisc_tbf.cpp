#include "kernel/qdisc_tbf.hpp"

#include <algorithm>
#include <utility>

namespace quicsteps::kernel {

TbfQdisc::TbfQdisc(sim::EventLoop& loop, Config config,
                   net::PacketSink* downstream)
    : Qdisc(loop, "tbf", downstream),
      config_(config),
      tokens_bytes_(static_cast<double>(config.burst_bytes)),
      last_refill_(loop.now()) {}

void TbfQdisc::deliver(net::Packet pkt) {
  note_arrival(pkt);
  if (backlog_bytes_ + pkt.size_bytes > config_.limit_bytes) {
    drop(pkt);
    return;
  }
  backlog_bytes_ += pkt.size_bytes;
  queue_.push_back(std::move(pkt));
  try_release();
}

void TbfQdisc::refill_tokens(sim::Time now) {
  const sim::Duration elapsed = now - last_refill_;
  last_refill_ = now;
  tokens_bytes_ += config_.rate.bytes_per_second_f() * elapsed.to_seconds();
  tokens_bytes_ =
      std::min(tokens_bytes_, static_cast<double>(config_.burst_bytes));
}

void TbfQdisc::try_release() {
  const sim::Time now = loop_.now();
  refill_tokens(now);

  while (!queue_.empty() &&
         tokens_bytes_ >= static_cast<double>(queue_.front().size_bytes)) {
    net::Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    tokens_bytes_ -= static_cast<double>(pkt.size_bytes);
    backlog_bytes_ -= pkt.size_bytes;
    forward(std::move(pkt));
  }

  if (queue_.empty()) {
    wake_.cancel();
    return;
  }
  // Sleep until the bucket covers the head packet.
  const double deficit =
      static_cast<double>(queue_.front().size_bytes) - tokens_bytes_;
  const double seconds = deficit / config_.rate.bytes_per_second_f();
  const sim::Time due =
      now + sim::Duration::nanos(static_cast<std::int64_t>(seconds * 1e9) + 1);
  if (wake_.pending()) return;  // a wakeup is already scheduled
  wake_ = loop_.schedule_at(due, sim::EventClass::kQueue,
                            [this] { try_release(); });
}

}  // namespace quicsteps::kernel
