// UDP socket model: the boundary between a user-space QUIC stack and the
// kernel egress path.
//
// Sending charges the calling thread a syscall cost (returned to the caller,
// which models the stack's event loop occupancy) and injects the packet (or
// GSO buffer) into the egress chain. SO_TXTIME is modelled by the
// `has_txtime` field packets already carry. Receive hands datagrams to a
// callback after an epoll wakeup latency; the receive buffer is sized per
// the paper (50 MiB — large enough to never drop in these experiments, but
// enforced).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "kernel/gso.hpp"
#include "kernel/os_model.hpp"
#include "net/counters.hpp"
#include "net/packet.hpp"
#include "net/packet_slab.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::kernel {

class UdpSocket : public obs::TraceSource {
 public:
  UdpSocket(sim::EventLoop& loop, OsModel& os, net::PacketSink* egress)
      : loop_(loop), os_(os), egress_(egress) {}

  /// One sendmsg: injects the packet into the egress chain now and returns
  /// the syscall cost the calling thread spent.
  sim::Duration sendmsg(net::Packet pkt);

  /// One sendmsg with UDP_SEGMENT: all segments travel as a single GSO
  /// buffer. `gso_pacing_rate` is the paced-GSO patch extension (zero for
  /// stock GSO).
  sim::Duration sendmsg_gso(std::vector<net::Packet> segments,
                            net::DataRate gso_pacing_rate);

  /// sendmmsg batching: one syscall, but each packet is a separate skb, so
  /// qdiscs can still pace them individually (paper Section 4.3 contrasts
  /// this with GSO).
  sim::Duration sendmmsg(std::vector<net::Packet> packets);

  void set_egress(net::PacketSink* egress) { egress_ = egress; }

  /// Joins the shared slab: GSO segment buffers recycle through its pool
  /// instead of being allocated per sendmsg_gso call.
  void enable_batched(net::PacketSlab* slab) { slab_ = slab; }

  const net::Counters& counters() const { return counters_; }
  std::uint64_t gso_buffers_sent() const { return next_gso_id_ - 1; }
  std::uint64_t syscalls() const { return syscalls_; }

 private:
  void inject(net::Packet pkt);

  sim::EventLoop& loop_;
  OsModel& os_;
  net::PacketSink* egress_;
  net::PacketSlab* slab_ = nullptr;
  net::Counters counters_;
  std::uint64_t next_gso_id_ = 1;
  std::uint64_t syscalls_ = 0;
};

/// Receive side: delivers datagrams to the owning stack's handler after an
/// epoll wakeup latency, enforcing the configured receive buffer.
///
/// With a non-zero GRO window, packets arriving within the window of the
/// first unflushed packet are coalesced and handed to user space in one
/// wakeup (Generic Receive Offload): fewer recvmsg calls, but the receiver
/// sees — and acknowledges — bursts, which chops the ACK clock the sender
/// paces against.
class UdpReceiver final : public net::PacketSink, public obs::TraceSource {
 public:
  using Handler = std::function<void(net::Packet)>;

  UdpReceiver(sim::EventLoop& loop, OsModel& os, std::int64_t rcvbuf_bytes,
              Handler handler, sim::Duration gro_window = sim::Duration::zero())
      : loop_(loop),
        os_(os),
        rcvbuf_bytes_(rcvbuf_bytes),
        gro_window_(gro_window),
        handler_(std::move(handler)) {}

  void deliver(net::Packet pkt) override;

  /// Switches per-datagram wakeups to slab-backed drain records (batched
  /// datapath). Call once during wiring. The GRO path already batches and
  /// is unaffected.
  void enable_batched(net::PacketSlab* slab);

  const net::Counters& counters() const { return counters_; }
  /// User-space wakeups performed (each models one recvmsg/recvmmsg).
  std::int64_t wakeups() const { return wakeups_; }

 private:
  void flush();
  static void drain_wakeup(void* self, std::uint32_t ref);

  sim::EventLoop& loop_;
  OsModel& os_;
  net::PacketSlab* slab_ = nullptr;
  sim::DrainId wakeup_channel_ = 0;
  std::int64_t rcvbuf_bytes_;
  sim::Duration gro_window_;
  std::int64_t buffered_bytes_ = 0;
  Handler handler_;
  net::Counters counters_;
  std::vector<net::Packet> gro_batch_;
  sim::EventHandle gro_timer_;
  std::int64_t wakeups_ = 0;
};

}  // namespace quicsteps::kernel
