// User-space timer model.
//
// Stack event loops do not see the simulator's perfect clock: when an
// application asks to wake at T, the actual wakeup is quantized to the
// loop's timer granularity and lands late by a drawn slack. This is the
// mechanism behind the paper's observation that purely user-space pacing
// quality depends on the implementation's timer discipline (coarse-timer
// picoquic bursts vs. its fine-grained BBR path).
#pragma once

#include <functional>
#include <utility>

#include "kernel/os_model.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::kernel {

class TimerService {
 public:
  struct Config {
    /// Requested wakeups are rounded up to a multiple of this granularity
    /// *relative to the request instant* (epoll_wait-style ms timeouts).
    /// Zero means no quantization (timerfd with nanosecond arguments).
    sim::Duration granularity = sim::Duration::zero();
    /// Additional late-firing slack drawn uniformly in [0, slack_max].
    sim::Duration slack_max = sim::Duration::micros(30);
  };

  TimerService(sim::EventLoop& loop, OsModel& os, Config config)
      : loop_(loop), os_(os), config_(config) {}

  /// Arms a one-shot timer for `at`; fires at the OS-adjusted instant with
  /// the actual time passed to the callback. Returns a cancellable handle.
  sim::EventHandle arm(sim::Time at, std::function<void()> fn) {
    return loop_.schedule_at(adjusted_fire_time(at), sim::EventClass::kTimer,
                             std::move(fn));
  }

  /// The instant a wakeup requested for `at` would actually fire.
  sim::Time adjusted_fire_time(sim::Time at) {
    const sim::Time now = loop_.now();
    if (at < now) at = now;
    // The never-firing sentinel: rounding must not move (or overflow) it.
    if (at.is_infinite()) return at;
    sim::Time fire = at;
    const sim::Duration gran = config_.granularity;
    if (gran > sim::Duration::zero()) {
      // epoll-style: the app computes a timeout and rounds it up to whole
      // granules; a zero remainder still costs one granule when the
      // deadline is not "now" (the loop cannot wake mid-granule).
      // Ceil as div-then-round: `(req + g - 1)` would overflow int64 for
      // deadlines near the far end of the epoch.
      const std::int64_t g = gran.ns();
      const std::int64_t req = (at - now).ns();
      const std::int64_t granules = req / g + (req % g != 0 ? 1 : 0);
      fire = now + sim::Duration::nanos(granules * g);
    }
    fire += os_.rng().uniform_duration(sim::Duration::zero(), config_.slack_max);
    return fire;
  }

  const Config& config() const { return config_; }
  sim::EventLoop& loop() { return loop_; }

 private:
  sim::EventLoop& loop_;
  OsModel& os_;
  Config config_;
};

}  // namespace quicsteps::kernel
