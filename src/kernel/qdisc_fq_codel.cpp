#include "kernel/qdisc_fq_codel.hpp"

#include <cmath>
#include <utility>

namespace quicsteps::kernel {

void FqCodelQdisc::deliver(net::Packet pkt) {
  note_arrival(pkt);
  if (static_cast<std::int64_t>(queue_.size()) >= config_.limit_packets) {
    drop(pkt);
    return;
  }
  queue_.push_back(Entry{std::move(pkt), loop_.now()});
  schedule_drain();
}

void FqCodelQdisc::schedule_drain() {
  if (drain_scheduled_ || queue_.empty()) return;
  drain_scheduled_ = true;
  const sim::Time start = sim::max(loop_.now(), drain_free_);
  const sim::Duration tx =
      config_.drain_rate.transmit_time(queue_.front().pkt.size_bytes);
  drain_free_ = start + tx;
  loop_.schedule_at(drain_free_, sim::EventClass::kQueue, [this] {
    drain_scheduled_ = false;
    drain_one();
    schedule_drain();
  });
}

void FqCodelQdisc::drain_one() {
  while (!queue_.empty()) {
    Entry entry = std::move(queue_.front());
    queue_.pop_front();
    const sim::Duration sojourn = loop_.now() - entry.enqueue_time;
    if (codel_should_drop(loop_.now(), sojourn)) {
      ++codel_drops_;
      drop(entry.pkt);
      continue;  // CoDel drops and dequeues the next packet
    }
    forward(std::move(entry.pkt));
    return;
  }
}

bool FqCodelQdisc::codel_should_drop(sim::Time now, sim::Duration sojourn) {
  // RFC 8289 dequeue logic, condensed: track how long the sojourn time has
  // continuously exceeded `target`; once it has for a full `interval`,
  // enter dropping state and drop at intervals shrinking with 1/sqrt(count).
  const bool above = sojourn >= config_.target;
  if (!above) {
    first_above_time_ = sim::Time::infinite();
    dropping_ = false;
    return false;
  }
  if (first_above_time_.is_infinite()) {
    first_above_time_ = now + config_.interval;
    return false;
  }
  if (!dropping_) {
    if (now < first_above_time_) return false;
    dropping_ = true;
    // Restart from the last count if we re-entered dropping recently
    // (RFC 8289 section 5.4, the "count decay" heuristic).
    count_ = (count_ > 2 && last_count_ == count_) ? count_ - 2 : 1;
    last_count_ = count_;
    drop_next_ = now + config_.interval *
                           (1.0 / std::sqrt(static_cast<double>(count_)));
    return true;
  }
  if (now >= drop_next_) {
    ++count_;
    last_count_ = count_;
    drop_next_ = drop_next_ + config_.interval *
                                  (1.0 / std::sqrt(static_cast<double>(count_)));
    return true;
  }
  return false;
}

}  // namespace quicsteps::kernel
