#include "kernel/qdisc.hpp"

// Base class is header-only; this translation unit anchors the target.
