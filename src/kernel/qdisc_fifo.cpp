#include "kernel/qdisc_fifo.hpp"

// Header-only; anchors the library target.
