// FQ_CoDel model (Debian's default qdisc, per the paper's background
// discussion of why default TCP traffic is not paced).
//
// Implements the CoDel control law (RFC 8289) over a FIFO drained at a
// configurable rate (defaults to the NIC line rate). With a single bulk
// flow on a 1 Gbit/s egress carrying <=40 Mbit/s of traffic the sojourn
// time never crosses the target, so — as in the paper's baseline — the
// qdisc is effectively transparent; the control law is still fully
// implemented and exercised by tests at lower drain rates.
#pragma once

#include <cstdint>
#include <deque>

#include "kernel/qdisc.hpp"

namespace quicsteps::kernel {

class FqCodelQdisc final : public Qdisc {
 public:
  struct Config {
    sim::Duration target = sim::Duration::millis(5);
    sim::Duration interval = sim::Duration::millis(100);
    std::int64_t limit_packets = 10240;
    /// Rate at which the downstream drains this queue.
    net::DataRate drain_rate = net::DataRate::gigabits_per_second(1);
  };

  FqCodelQdisc(sim::EventLoop& loop, Config config,
               net::PacketSink* downstream)
      : Qdisc(loop, "fq_codel", downstream), config_(config) {}

  void deliver(net::Packet pkt) override;

  std::int64_t codel_drops() const { return codel_drops_; }
  std::int64_t backlog_packets() const override {
    return static_cast<std::int64_t>(queue_.size());
  }

 private:
  struct Entry {
    net::Packet pkt;
    sim::Time enqueue_time;
  };

  void schedule_drain();
  void drain_one();
  // CoDel control law: returns true if the packet at the head should drop.
  bool codel_should_drop(sim::Time sojourn_ref, sim::Duration sojourn);

  Config config_;
  std::deque<Entry> queue_;
  sim::Time drain_free_;  // when the virtual serializer is free
  bool drain_scheduled_ = false;

  // CoDel state (RFC 8289 pseudocode names).
  bool dropping_ = false;
  sim::Time first_above_time_ = sim::Time::infinite();
  sim::Time drop_next_;
  std::uint32_t count_ = 0;
  std::uint32_t last_count_ = 0;
  std::int64_t codel_drops_ = 0;
};

}  // namespace quicsteps::kernel
