// Queueing-discipline base.
//
// A qdisc sits between the kernel socket layer and the NIC. Each model
// reproduces the scheduling semantics of its Linux counterpart that matter
// for pacing: whether SO_TXTIME release timestamps are honored (FQ, ETF),
// whether late packets are dropped (ETF), and whether the rate can be
// steered from user space (TBF cannot, which is why the paper dismisses it
// for QUIC).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "check/audit.hpp"
#include "net/counters.hpp"
#include "net/packet.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::kernel {

class Qdisc : public net::PacketSink, public obs::TraceSource {
 public:
  Qdisc(sim::EventLoop& loop, std::string name, net::PacketSink* downstream)
      : loop_(loop), name_(std::move(name)), downstream_(downstream) {}

  const std::string& name() const { return name_; }
  const net::Counters& counters() const { return counters_; }
  void set_downstream(net::PacketSink* sink) { downstream_ = sink; }

  /// Live queue depth in packets for conservation auditing, or -1 when the
  /// discipline does not report one (only sign/edge invariants then apply
  /// to its stage). Disciplines that hold packets should override this
  /// with their actual structure size — the auditor cross-checks it
  /// against the counter-implied backlog, which catches miscounted holds.
  virtual std::int64_t backlog_packets() const { return -1; }

  /// Observes every dropped packet (after it is counted). A shared
  /// bottleneck uses this to attribute losses to the flows that suffered
  /// them — the per-flow "dropped packets" column of a competing-flow run.
  void set_drop_observer(std::function<void(const net::Packet&)> observer) {
    drop_observer_ = std::move(observer);
  }

 protected:
  // note_arrival/forward/drop are the one funnel every discipline's
  // packets pass through, so instrumenting them here gives all six qdiscs
  // (sender disciplines, the bottleneck TBF, both netems) their
  // enqueue/dequeue/drop spans without per-subclass hooks.
  void forward(net::Packet pkt) {
    counters_.count_out(pkt.size_bytes);
    // A qdisc can only forward what it accepted: emitting an uncounted
    // (duplicated or conjured) packet drives the implied backlog negative.
    QUICSTEPS_AUDIT(counters_.packets_queued() >= 0,
                    name_ + " forwarded a packet it never enqueued");
    QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kQdiscDequeue,
                         trace_component_, loop_.now(), pkt);
    if (downstream_ != nullptr) downstream_->deliver(std::move(pkt));
  }
  void drop(const net::Packet& pkt) {
    counters_.count_drop(pkt.size_bytes);
    QUICSTEPS_AUDIT(counters_.packets_queued() >= 0,
                    name_ + " dropped a packet it never enqueued");
    QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kQdiscDrop,
                         trace_component_, loop_.now(), pkt);
    if (drop_observer_) drop_observer_(pkt);
  }
  void note_arrival(const net::Packet& pkt) {
    counters_.count_in(pkt.size_bytes);
    QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kQdiscEnqueue,
                         trace_component_, loop_.now(), pkt);
  }

  sim::EventLoop& loop_;

 private:
  std::string name_;
  net::PacketSink* downstream_;
  net::Counters counters_;
  std::function<void(const net::Packet&)> drop_observer_;
};

}  // namespace quicsteps::kernel
