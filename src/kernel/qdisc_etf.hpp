// ETF (Earliest TxTime First) qdisc model.
//
// Differences from FQ that the paper exercises:
//  * packets whose txtime is already in the past are DROPPED, not sent;
//  * the qdisc dequeues `delta` ahead of each packet's txtime so the
//    driver path has time to complete — the packet then spends a variable
//    amount of that window in the kernel/driver before reaching the NIC;
//  * with hardware offload (LaunchTime) the NIC holds the early packet
//    until its txtime (see nic.hpp), clipping the early-send error but not
//    the late tail — which is why the paper measures no precision gain.
#pragma once

#include <cstdint>
#include <map>

#include "kernel/os_model.hpp"
#include "kernel/qdisc.hpp"

namespace quicsteps::kernel {

class EtfQdisc final : public Qdisc {
 public:
  struct Config {
    /// How far ahead of txtime the qdisc hands packets to the driver.
    sim::Duration delta = sim::Duration::micros(200);
    std::int64_t limit_packets = 1000;
    /// Mean/stddev of the kernel+driver path time between dequeue and NIC
    /// arrival. On the modelled host this typically EXCEEDS the 200 us
    /// delta (Bosk et al. call 175 us borderline), so packets usually reach
    /// the NIC after their txtime — which is why LaunchTime offload cannot
    /// improve precision (Section 4.4's null result).
    sim::Duration driver_path_mean = sim::Duration::micros(420);
    sim::Duration driver_path_stddev = sim::Duration::micros(250);
  };

  EtfQdisc(sim::EventLoop& loop, Config config, OsModel& os,
           net::PacketSink* downstream)
      : Qdisc(loop, "etf", downstream), config_(config), os_(os) {}

  void deliver(net::Packet pkt) override;

  std::size_t queued_packets() const { return timed_.size(); }
  std::int64_t late_drops() const { return late_drops_; }

 private:
  void arm_watchdog();
  void on_watchdog();

  Config config_;
  OsModel& os_;
  std::multimap<sim::Time, net::Packet> timed_;
  sim::EventHandle watchdog_;
  sim::Time watchdog_at_ = sim::Time::infinite();
  /// Releases are monotone: the driver queue preserves order, so a packet
  /// never overtakes its predecessor regardless of path-time jitter.
  sim::Time last_release_;
  std::int64_t late_drops_ = 0;
};

}  // namespace quicsteps::kernel
