// pfifo_fast stand-in: pass-through FIFO with a packet-count limit.
//
// This is the kernel-default qdisc used in the paper's baseline: it ignores
// SO_TXTIME entirely, so whatever burst pattern user space produces reaches
// the wire unchanged.
#pragma once

#include <cstdint>

#include "kernel/qdisc.hpp"

namespace quicsteps::kernel {

class FifoQdisc final : public Qdisc {
 public:
  struct Config {
    std::int64_t limit_packets = 1000;  // Linux default txqueuelen
  };

  FifoQdisc(sim::EventLoop& loop, Config config, net::PacketSink* downstream)
      : Qdisc(loop, "pfifo_fast", downstream), config_(config) {}

  void deliver(net::Packet pkt) override {
    note_arrival(pkt);
    // The downstream NIC serializes; the FIFO itself adds no delay. The
    // packet-count limit only matters when the NIC is slower than the
    // arrival rate, which the NIC's own queue accounts for; we model the
    // limit against packets not yet serialized.
    if (queued_ >= config_.limit_packets) {
      drop(pkt);
      return;
    }
    forward(std::move(pkt));
  }

 private:
  Config config_;
  std::int64_t queued_ = 0;  // reserved for a rate-limited downstream
};

}  // namespace quicsteps::kernel
