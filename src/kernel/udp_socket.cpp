#include "kernel/udp_socket.hpp"

namespace quicsteps::kernel {

void UdpSocket::inject(net::Packet pkt) {
  pkt.kernel_entry_time = loop_.now();
  counters_.count_in(pkt.size_bytes);
  counters_.count_out(pkt.size_bytes);
  QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kSocketWrite,
                       trace_component_, pkt.kernel_entry_time, pkt);
  if (egress_ != nullptr) egress_->deliver(std::move(pkt));
}

sim::Duration UdpSocket::sendmsg(net::Packet pkt) {
  ++syscalls_;
  inject(std::move(pkt));
  return os_.draw_syscall_cost();
}

sim::Duration UdpSocket::sendmsg_gso(std::vector<net::Packet> segments,
                                     net::DataRate gso_pacing_rate) {
  ++syscalls_;
  // Draw a recycled buffer from the slab pool (the NIC returns husks once
  // it has segmented them); only the first bursts of a run allocate.
  std::shared_ptr<std::vector<net::Packet>> buffer =
      slab_ != nullptr ? slab_->take_gso_buffer() : nullptr;
  if (buffer == nullptr) {
    buffer = std::make_shared<std::vector<net::Packet>>();
  }
  *buffer = std::move(segments);
  net::Packet carrier =
      make_gso_buffer(std::move(buffer), next_gso_id_++, gso_pacing_rate);
  inject(std::move(carrier));
  // One syscall regardless of segment count — this is GSO's CPU win.
  return os_.draw_syscall_cost();
}

sim::Duration UdpSocket::sendmmsg(std::vector<net::Packet> packets) {
  ++syscalls_;
  for (auto& pkt : packets) {
    inject(std::move(pkt));
  }
  // One kernel entry regardless of message count — the kernel loops over
  // the messages inside the syscall.
  return os_.draw_syscall_cost();
}

void UdpReceiver::deliver(net::Packet pkt) {
  counters_.count_in(pkt.size_bytes);
  if (buffered_bytes_ + pkt.size_bytes > rcvbuf_bytes_) {
    counters_.count_drop(pkt.size_bytes);
    return;
  }
  buffered_bytes_ += pkt.size_bytes;
  pkt.delivery_time = loop_.now();

  if (gro_window_.is_zero()) {
    if (slab_ != nullptr) {
      // Wakeups are never cancelled, so the record can be slotless.
      loop_.post_drain_at(loop_.now() + os_.draw_wakeup_latency(),
                          wakeup_channel_, slab_->put(std::move(pkt)));
      return;
    }
    loop_.schedule_after(os_.draw_wakeup_latency(), sim::EventClass::kWakeup,
                         [this, pkt = std::move(pkt)]() mutable {
                           ++wakeups_;
                           buffered_bytes_ -= pkt.size_bytes;
                           counters_.count_out(pkt.size_bytes);
                           QUICSTEPS_TRACE_SPAN(
                               trace_bus_, obs::TraceStage::kDelivery,
                               trace_component_, loop_.now(), pkt);
                           if (handler_) handler_(std::move(pkt));
                         });
    return;
  }

  // GRO: coalesce everything arriving within the window of the first
  // unflushed packet; one wakeup delivers the whole batch.
  gro_batch_.push_back(std::move(pkt));
  if (!gro_timer_.pending()) {
    gro_timer_ =
        loop_.schedule_after(gro_window_ + os_.draw_wakeup_latency(),
                             sim::EventClass::kWakeup, [this] { flush(); });
  }
}

void UdpReceiver::enable_batched(net::PacketSlab* slab) {
  slab_ = slab;
  wakeup_channel_ = loop_.register_drain(sim::EventClass::kWakeup,
                                         &UdpReceiver::drain_wakeup, this);
}

void UdpReceiver::drain_wakeup(void* self, std::uint32_t ref) {
  UdpReceiver* rx = static_cast<UdpReceiver*>(self);
  net::Packet pkt = rx->slab_->take(ref);
  ++rx->wakeups_;
  rx->buffered_bytes_ -= pkt.size_bytes;
  rx->counters_.count_out(pkt.size_bytes);
  QUICSTEPS_TRACE_SPAN(rx->trace_bus_, obs::TraceStage::kDelivery,
                       rx->trace_component_, rx->loop_.now(), pkt);
  if (rx->handler_) rx->handler_(std::move(pkt));
}

void UdpReceiver::flush() {
  ++wakeups_;
  std::vector<net::Packet> batch;
  batch.swap(gro_batch_);
  for (auto& pkt : batch) {
    buffered_bytes_ -= pkt.size_bytes;
    counters_.count_out(pkt.size_bytes);
    QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kDelivery,
                         trace_component_, loop_.now(), pkt);
    if (handler_) handler_(std::move(pkt));
  }
}

}  // namespace quicsteps::kernel
