#include "kernel/qdisc_fq.hpp"

#include <utility>

namespace quicsteps::kernel {

void FqQdisc::deliver(net::Packet pkt) {
  note_arrival(pkt);

  if (static_cast<std::int64_t>(timed_.size()) >= config_.limit_packets) {
    drop(pkt);
    return;
  }

  const sim::Time now = loop_.now();
  if (!pkt.has_txtime || pkt.txtime <= now) {
    // No timestamp, or timestamp already due: fq transmits immediately.
    forward(std::move(pkt));
    return;
  }
  if (config_.horizon_drop && pkt.txtime > now + config_.horizon) {
    drop(pkt);
    return;
  }

  timed_.emplace(pkt.txtime, std::move(pkt));
  arm_watchdog();
}

void FqQdisc::arm_watchdog() {
  if (timed_.empty()) return;
  const sim::Time head = timed_.begin()->first;
  if (watchdog_.pending() && watchdog_at_ <= head) return;
  watchdog_.cancel();
  // hrtimer wakeup: fires at the head timestamp plus kernel slack. All
  // packets due by then leave in one softirq.
  watchdog_at_ = head;
  const sim::Time fire = head + os_.draw_kernel_release_delay();
  watchdog_ = loop_.schedule_at(fire, sim::EventClass::kQueue,
                                [this] { on_watchdog(); });
}

void FqQdisc::on_watchdog() {
  const sim::Time now = loop_.now();
  while (!timed_.empty() && timed_.begin()->first <= now) {
    net::Packet pkt = std::move(timed_.begin()->second);
    timed_.erase(timed_.begin());
    forward(std::move(pkt));
  }
  watchdog_at_ = sim::Time::infinite();
  arm_watchdog();
}

}  // namespace quicsteps::kernel
