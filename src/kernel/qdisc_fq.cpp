#include "kernel/qdisc_fq.hpp"

#include <algorithm>
#include <utility>

namespace quicsteps::kernel {

namespace {

/// Strict-weak "releases later" on (at, seq): std::push_heap builds a
/// max-heap, so heaping with this puts the earliest (at, seq) at front —
/// a min-heap reproducing the old multimap's (timestamp, insertion) order.
template <typename T>
bool releases_later(const T& a, const T& b) {
  return a.at > b.at || (a.at == b.at && a.seq > b.seq);
}

}  // namespace

FqQdisc::FlowQueue& FqQdisc::flow_for(std::uint32_t flow) {
  if (last_hit_ < flow_index_.size() &&
      flow_index_[last_hit_].first == flow) {
    return flows_[flow_index_[last_hit_].second];
  }
  const auto pos = std::lower_bound(
      flow_index_.begin(), flow_index_.end(), flow,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (pos != flow_index_.end() && pos->first == flow) {
    last_hit_ = static_cast<std::size_t>(pos - flow_index_.begin());
    return flows_[pos->second];
  }
  // First packet of a new flow: create its queue. The O(n) sorted insert
  // happens once per flow, not per packet.
  const std::uint32_t index = static_cast<std::uint32_t>(flows_.size());
  flows_.emplace_back();
  flows_.back().flow = flow;
  last_hit_ = static_cast<std::size_t>(pos - flow_index_.begin());
  flow_index_.insert(pos, {flow, index});
  return flows_[index];
}

const FqQdisc::FlowQueue* FqQdisc::find_flow(std::uint32_t flow) const {
  const auto pos = std::lower_bound(
      flow_index_.begin(), flow_index_.end(), flow,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (pos != flow_index_.end() && pos->first == flow) {
    return &flows_[pos->second];
  }
  return nullptr;
}

void FqQdisc::set_flow_rate(std::uint32_t flow, net::DataRate rate) {
  flow_for(flow).rate = rate;
}

std::size_t FqQdisc::queued_packets(std::uint32_t flow) const {
  const FlowQueue* fq = find_flow(flow);
  return fq != nullptr ? fq->heap.size() : 0;
}

void FqQdisc::push_entry(FlowQueue& fq, Entry entry) {
  const bool new_head =
      fq.heap.empty() || releases_later<Entry>(fq.heap.front(), entry);
  fq.heap.push_back(std::move(entry));
  std::push_heap(fq.heap.begin(), fq.heap.end(), releases_later<Entry>);
  ++total_queued_;
  if (new_head) {
    push_global_head(static_cast<std::uint32_t>(&fq - flows_.data()));
  }
}

net::Packet FqQdisc::pop_head(FlowQueue& fq) {
  std::pop_heap(fq.heap.begin(), fq.heap.end(), releases_later<Entry>);
  net::Packet pkt = std::move(fq.heap.back().pkt);
  fq.heap.pop_back();
  --total_queued_;
  return pkt;
}

void FqQdisc::push_global_head(std::uint32_t flow_index) {
  const Entry& head = flows_[flow_index].heap.front();
  global_.push_back({head.at, head.seq, flow_index});
  std::push_heap(global_.begin(), global_.end(), releases_later<Head>);
}

void FqQdisc::prune_global() {
  // Lazy deletion: an element is live only while it still names its
  // flow's current head. Stale elements were pushed for earlier heads,
  // whose keys were >= the key that superseded them — so the pruned top
  // is always the true minimum over flow heads.
  while (!global_.empty()) {
    const Head& top = global_.front();
    const FlowQueue& fq = flows_[top.flow_index];
    if (!fq.heap.empty() && fq.heap.front().at == top.at &&
        fq.heap.front().seq == top.seq) {
      return;
    }
    std::pop_heap(global_.begin(), global_.end(), releases_later<Head>);
    global_.pop_back();
  }
}

void FqQdisc::deliver(net::Packet pkt) {
  note_arrival(pkt);

  if (static_cast<std::int64_t>(total_queued_) >= config_.limit_packets) {
    drop(pkt);
    return;
  }

  const sim::Time now = loop_.now();
  FlowQueue& fq = flow_for(pkt.flow);
  const bool paced = !fq.rate.is_zero();

  // The release time is the SO_TXTIME stamp (now if absent), pushed out to
  // the flow's pacing-rate eligibility when a maxrate is set.
  sim::Time release = pkt.has_txtime ? pkt.txtime : now;
  if (paced && fq.rate_next > release) release = fq.rate_next;

  if (release <= now) {
    // No timestamp, or timestamp already due (and the flow's rate allows
    // it): fq transmits immediately.
    if (paced) fq.rate_next = now + fq.rate.transmit_time(pkt.size_bytes);
    forward(std::move(pkt));
    return;
  }
  if (config_.horizon_drop && pkt.has_txtime &&
      pkt.txtime > now + config_.horizon) {
    drop(pkt);
    return;
  }

  if (paced) fq.rate_next = release + fq.rate.transmit_time(pkt.size_bytes);
  push_entry(fq, {release, next_seq_++, std::move(pkt)});
  arm_watchdog();
}

void FqQdisc::arm_watchdog() {
  prune_global();
  if (global_.empty()) return;
  const sim::Time head = global_.front().at;
  if (watchdog_.pending() && watchdog_at_ <= head) return;
  watchdog_.cancel();
  // hrtimer wakeup: fires at the head timestamp plus kernel slack. All
  // packets due by then leave in one softirq.
  watchdog_at_ = head;
  const sim::Time fire = head + os_.draw_kernel_release_delay();
  watchdog_ = loop_.schedule_at(fire, sim::EventClass::kQueue,
                                [this] { on_watchdog(); });
}

void FqQdisc::on_watchdog() {
  drain_due(loop_.now());
  watchdog_at_ = sim::Time::infinite();
  arm_watchdog();
}

void FqQdisc::drain_due(sim::Time now) {
  // Gather every flow whose head is due into this softirq's service round,
  // in global (release, arrival) order.
  service_.clear();
  for (;;) {
    prune_global();
    if (global_.empty() || global_.front().at > now) break;
    const std::uint32_t index = global_.front().flow_index;
    std::pop_heap(global_.begin(), global_.end(), releases_later<Head>);
    global_.pop_back();
    if (flows_[index].in_service) continue;  // duplicate head element
    flows_[index].in_service = true;
    service_.push_back(index);
  }
  if (service_.empty()) return;

  if (service_.size() == 1) {
    // One due flow — the only case a per-sender qdisc ever sees. Drain in
    // (release, arrival) order with no DRR bookkeeping: byte-for-byte the
    // historical single-flow behavior.
    FlowQueue& fq = flows_[service_.front()];
    while (!fq.heap.empty() && fq.heap.front().at <= now) {
      forward(pop_head(fq));
    }
    fq.in_service = false;
    if (!fq.heap.empty()) push_global_head(service_.front());
    return;
  }

  // Several flows due at once: DRR round-robin, quantum bytes of credit
  // per visit, so simultaneously due flows share the softirq fairly
  // instead of strictly by timestamp (sch_fq's round-robin among
  // eligible flows).
  std::size_t live = service_.size();
  while (live > 0) {
    for (const std::uint32_t index : service_) {
      FlowQueue& fq = flows_[index];
      if (!fq.in_service) continue;
      fq.deficit += config_.quantum_bytes;
      while (!fq.heap.empty() && fq.heap.front().at <= now &&
             fq.heap.front().pkt.size_bytes <= fq.deficit) {
        fq.deficit -= fq.heap.front().pkt.size_bytes;
        forward(pop_head(fq));
      }
      if (fq.heap.empty() || fq.heap.front().at > now) {
        fq.in_service = false;
        fq.deficit = 0;  // credit does not persist across rounds
        --live;
        if (!fq.heap.empty()) push_global_head(index);
      }
    }
  }
}

}  // namespace quicsteps::kernel
