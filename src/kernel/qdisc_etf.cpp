#include "kernel/qdisc_etf.hpp"

#include <utility>

namespace quicsteps::kernel {

void EtfQdisc::deliver(net::Packet pkt) {
  note_arrival(pkt);

  const sim::Time now = loop_.now();
  if (!pkt.has_txtime) {
    // ETF refuses packets without a timestamp (EINVAL on the real qdisc);
    // we count them as drops so misconfiguration is visible.
    drop(pkt);
    return;
  }
  if (pkt.txtime < now) {
    ++late_drops_;
    drop(pkt);
    return;
  }
  if (static_cast<std::int64_t>(timed_.size()) >= config_.limit_packets) {
    drop(pkt);
    return;
  }

  timed_.emplace(pkt.txtime, std::move(pkt));
  arm_watchdog();
}

void EtfQdisc::arm_watchdog() {
  if (timed_.empty()) return;
  const sim::Time head = timed_.begin()->first;
  if (watchdog_.pending() && watchdog_at_ <= head) return;
  watchdog_.cancel();
  watchdog_at_ = head;
  // Dequeue `delta` ahead of the head's txtime (never in the past).
  const sim::Time dequeue = sim::max(loop_.now(), head - config_.delta);
  watchdog_ = loop_.schedule_at(dequeue, sim::EventClass::kQueue,
                                [this] { on_watchdog(); });
}

void EtfQdisc::on_watchdog() {
  const sim::Time now = loop_.now();
  // Everything entering its delta window leaves towards the driver now.
  while (!timed_.empty() && timed_.begin()->first - config_.delta <= now) {
    net::Packet pkt = std::move(timed_.begin()->second);
    timed_.erase(timed_.begin());
    // Kernel + driver path consumes a variable slice of the delta window;
    // the packet reaches the NIC after it. Without LaunchTime the NIC
    // transmits on arrival, so this spread is the ETF precision the paper
    // measures; with LaunchTime the NIC clips early arrivals to txtime.
    const sim::Duration path = os_.rng().normal_duration(
        config_.driver_path_mean, config_.driver_path_stddev,
        sim::Duration::micros(5));
    const sim::Time release = sim::max(now + path, last_release_);
    last_release_ = release;
    loop_.schedule_at(release, sim::EventClass::kQueue,
                      [this, pkt = std::move(pkt)]() mutable {
                        forward(std::move(pkt));
                      });
  }
  watchdog_at_ = sim::Time::infinite();
  arm_watchdog();
}

}  // namespace quicsteps::kernel
