#include "kernel/timer_service.hpp"

// TimerService is header-only; this translation unit anchors the target.
