// FQ qdisc model.
//
// The property the paper relies on: FQ schedules packets that carry an
// SO_TXTIME timestamp at that timestamp, releasing them via kernel hrtimer
// watchdogs (so with some tens of microseconds of slack), and — unlike ETF —
// never drops a packet whose timestamp already passed; it sends it
// immediately instead. Packets without a timestamp pass straight through
// (there is a single flow; FQ's TCP rate pacing is not exercised by UDP).
// Packets time-stamped beyond the horizon are dropped (fq's default
// horizon-drop behavior).
#pragma once

#include <cstdint>
#include <map>

#include "kernel/os_model.hpp"
#include "kernel/qdisc.hpp"

namespace quicsteps::kernel {

class FqQdisc final : public Qdisc {
 public:
  struct Config {
    std::int64_t limit_packets = 10000;  // fq "limit" (per-qdisc)
    sim::Duration horizon = sim::Duration::seconds(10);
    bool horizon_drop = true;
  };

  FqQdisc(sim::EventLoop& loop, Config config, OsModel& os,
          net::PacketSink* downstream)
      : Qdisc(loop, "fq", downstream), config_(config), os_(os) {}

  void deliver(net::Packet pkt) override;

  std::size_t queued_packets() const { return timed_.size(); }

 private:
  void arm_watchdog();
  void on_watchdog();

  Config config_;
  OsModel& os_;
  // Held packets ordered by release timestamp; the multimap key keeps
  // same-timestamp packets in insertion order.
  std::multimap<sim::Time, net::Packet> timed_;
  sim::EventHandle watchdog_;
  sim::Time watchdog_at_ = sim::Time::infinite();
};

}  // namespace quicsteps::kernel
