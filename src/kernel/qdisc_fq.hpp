// FQ qdisc model — true multi-flow fair queueing.
//
// The property the paper relies on: FQ schedules packets that carry an
// SO_TXTIME timestamp at that timestamp, releasing them via kernel hrtimer
// watchdogs (so with some tens of microseconds of slack), and — unlike ETF —
// never drops a packet whose timestamp already passed; it sends it
// immediately instead. Packets without a timestamp pass straight through.
// Packets time-stamped beyond the horizon are dropped (fq's default
// horizon-drop behavior).
//
// Beyond the single-flow pass-through the paper's figures exercise, this
// model now reproduces the parts of sch_fq that matter when many flows
// share one qdisc (the 10k-flow fabric):
//
//   classification   per-flow queues keyed by pkt.flow (sorted index +
//                    burst cache, the FlowTableSink idiom);
//   scheduling       each flow's packets release in (txtime, arrival)
//                    order via a per-flow binary min-heap, and the qdisc
//                    arms its watchdog off a global heap of flow head
//                    release times — O(log n) per operation, not O(n);
//   fairness         flows whose packets are due in the same softirq are
//                    served DRR-style (quantum bytes per round), sch_fq's
//                    round-robin among eligible flows;
//   rate pacing      an optional per-flow pacing rate (sch_fq's
//                    "maxrate"/SO_MAX_PACING_RATE): each released byte
//                    pushes the flow's next eligible time out by
//                    size/rate, enforced on top of any SO_TXTIME stamp.
//
// A single-flow FQ (every sender host owns its qdisc) takes exactly the
// historical code path: one flow in the round never triggers DRR
// bookkeeping, the global heap degenerates to the old multimap head, and
// the watchdog arming times — hence its RNG draw sequence — are
// bit-identical to the pre-multi-flow model (the N<=8 wire-hash goldens
// pin this).
#pragma once

#include <cstdint>
#include <vector>

#include "kernel/os_model.hpp"
#include "kernel/qdisc.hpp"
#include "net/data_rate.hpp"

namespace quicsteps::kernel {

class FqQdisc final : public Qdisc {
 public:
  struct Config {
    std::int64_t limit_packets = 10000;  // fq "limit" (per-qdisc, all flows)
    sim::Duration horizon = sim::Duration::seconds(10);
    bool horizon_drop = true;
    /// DRR quantum: bytes a flow may send per service round when several
    /// flows are due at once (sch_fq default: 2 full-size frames).
    std::int64_t quantum_bytes = 3028;
  };

  FqQdisc(sim::EventLoop& loop, Config config, OsModel& os,
          net::PacketSink* downstream)
      : Qdisc(loop, "fq", downstream), config_(config), os_(os) {}

  void deliver(net::Packet pkt) override;

  /// Caps this flow's throughput (sch_fq maxrate): each released packet
  /// pushes the flow's next eligible time out by size/rate, on top of any
  /// SO_TXTIME stamp. Zero (the default) leaves the flow unpaced.
  void set_flow_rate(std::uint32_t flow, net::DataRate rate);

  /// All packets held across every flow queue (the old single-structure
  /// count missed nothing; this one is maintained across per-flow heaps).
  std::size_t queued_packets() const { return total_queued_; }
  /// Conservation hook: the auditor cross-checks this live depth against
  /// the counter-implied backlog.
  std::int64_t backlog_packets() const override {
    return static_cast<std::int64_t>(total_queued_);
  }
  /// Packets held for one flow (0 for flows never seen).
  std::size_t queued_packets(std::uint32_t flow) const;
  /// Flows that have ever traversed the qdisc.
  std::size_t flow_count() const { return flows_.size(); }

 private:
  /// One queued packet: release time plus a global arrival sequence so
  /// same-timestamp packets leave in arrival order (the multimap ordering
  /// this heap replaced).
  struct Entry {
    sim::Time at;
    std::uint64_t seq = 0;
    net::Packet pkt;
  };
  /// Global-heap element: a flow's head release key when it was pushed.
  /// Entries go stale when the head changes; reads prune lazily.
  struct Head {
    sim::Time at;
    std::uint64_t seq = 0;
    std::uint32_t flow_index = 0;
  };
  struct FlowQueue {
    std::uint32_t flow = 0;
    std::vector<Entry> heap;  // min-heap on (at, seq)
    net::DataRate rate;       // zero = unpaced
    sim::Time rate_next = sim::Time::zero();  // next eligible (paced flows)
    std::int64_t deficit = 0;                 // DRR credit, this round only
    bool in_service = false;
  };

  FlowQueue& flow_for(std::uint32_t flow);
  const FlowQueue* find_flow(std::uint32_t flow) const;
  void push_entry(FlowQueue& fq, Entry entry);
  net::Packet pop_head(FlowQueue& fq);
  void push_global_head(std::uint32_t flow_index);
  /// Drops stale global-heap tops (flow head changed since the push).
  void prune_global();
  void drain_due(sim::Time now);
  void arm_watchdog();
  void on_watchdog();

  Config config_;
  OsModel& os_;

  /// (flow id -> flows_ index), sorted by id, with a burst cache — packets
  /// arrive in per-flow trains, so the previous answer usually repeats.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> flow_index_;
  std::size_t last_hit_ = 0;
  std::vector<FlowQueue> flows_;

  /// Min-heap of flow head release keys (lazy deletion). Its pruned top is
  /// the earliest pending release across all flows — what the watchdog
  /// arms against.
  std::vector<Head> global_;
  /// Scratch for drain_due's service round (kept to avoid reallocating).
  std::vector<std::uint32_t> service_;

  std::uint64_t next_seq_ = 0;
  std::size_t total_queued_ = 0;
  sim::EventHandle watchdog_;
  sim::Time watchdog_at_ = sim::Time::infinite();
};

}  // namespace quicsteps::kernel
