#include "kernel/qdisc_netem.hpp"

// Header-only; anchors the library target.
