#include "kernel/nic.hpp"

#include <memory>
#include <utility>
#include <vector>

namespace quicsteps::kernel {

void Nic::deliver(net::Packet pkt) {
  const sim::Time now = loop_.now();

  if (pkt.is_gso_buffer()) {
    // Segmentation happens here, at the driver boundary. Stock GSO releases
    // all segments immediately (they then serialize back-to-back at line
    // rate); the paced-GSO patch spaces segment i by i * seg/rate.
    const bool paced = !pkt.gso_pacing_rate.is_zero();
    sim::Time release = now;
    if (slab_ != nullptr && pkt.gso_segments.use_count() == 1) {
      // Batched fast path: the buffer is uniquely ours at the driver
      // boundary, so the segment train moves straight into the slab —
      // no per-segment Packet copy.
      auto& segments =
          const_cast<std::vector<net::Packet>&>(*pkt.gso_segments);
      for (auto& seg : segments) {
        const std::int64_t seg_bytes = seg.size_bytes;
        net::Packet wire = std::move(seg);
        wire.kernel_entry_time = pkt.kernel_entry_time;
        QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kGsoSegment,
                             trace_component_, now, wire);
        transmit(std::move(wire), release);
        if (paced) {
          release += pkt.gso_pacing_rate.transmit_time(seg_bytes);
        }
      }
      // The buffer is spent; hand the husk (and its capacity) back to the
      // slab pool so the next sendmsg_gso reuses it instead of allocating.
      segments.clear();
      slab_->put_gso_buffer(std::const_pointer_cast<std::vector<net::Packet>>(
          std::move(pkt.gso_segments)));
      return;
    }
    const auto& segments = *pkt.gso_segments;
    for (const auto& seg : segments) {
      net::Packet wire = seg;
      wire.kernel_entry_time = pkt.kernel_entry_time;
      QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kGsoSegment,
                           trace_component_, now, wire);
      transmit(std::move(wire), release);
      if (paced) {
        release += pkt.gso_pacing_rate.transmit_time(seg.size_bytes);
      }
    }
    return;
  }

  sim::Time earliest = now;
  if (config_.launch_time && pkt.has_txtime) {
    if (pkt.txtime > now) {
      earliest = pkt.txtime + os_.rng().uniform_duration(
                                  sim::Duration::zero(),
                                  config_.launch_jitter_max);
    } else if (config_.drop_missed_launch) {
      // The launch slot has passed before the descriptor reached the NIC.
      ++missed_launch_drops_;
      return;
    }
  }
  transmit(std::move(pkt), earliest);
}

void Nic::transmit(net::Packet pkt, sim::Time earliest) {
  const sim::Time start = sim::max(sim::max(loop_.now(), earliest), busy_until_);
  const sim::Duration tx = config_.line_rate.transmit_time(pkt.size_bytes);
  busy_until_ = start + tx;
  ++packets_sent_;
  QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kNicTx, trace_component_,
                       start, pkt);
  if (slab_ != nullptr) {
    // Completions are never cancelled, so the record can be slotless.
    loop_.post_drain_at(busy_until_, tx_channel_, slab_->put(std::move(pkt)));
    return;
  }
  loop_.schedule_at(busy_until_, sim::EventClass::kTransmit,
                    [this, pkt = std::move(pkt)]() mutable {
    if (downstream_ != nullptr) downstream_->deliver(std::move(pkt));
  });
}

void Nic::enable_batched(net::PacketSlab* slab) {
  slab_ = slab;
  tx_channel_ =
      loop_.register_drain(sim::EventClass::kTransmit, &Nic::drain_tx, this);
}

void Nic::drain_tx(void* self, std::uint32_t ref) {
  Nic* nic = static_cast<Nic*>(self);
  net::Packet pkt = nic->slab_->take(ref);
  if (nic->downstream_ != nullptr) nic->downstream_->deliver(std::move(pkt));
}

}  // namespace quicsteps::kernel
