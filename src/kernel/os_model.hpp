// Operating-system timing model.
//
// QUIC pays for running in user space: every sendmsg is a syscall, timers
// fire with slack, and the scheduler can delay a wakeup. These are precisely
// the effects the paper studies, so they are modelled explicitly and drawn
// from a seeded generator. The defaults approximate a tuned low-latency
// Linux host (the paper used a 6.1 RT kernel); experiments can tighten or
// loosen them.
#pragma once

#include <cstdint>

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace quicsteps::kernel {

struct OsTimingConfig {
  /// Cost of a sendmsg/sendmmsg syscall (per call, not per packet): base
  /// plus exponential jitter. GSO amortizes this over many packets.
  sim::Duration syscall_base = sim::Duration::micros(3);
  sim::Duration syscall_jitter_mean = sim::Duration::micros(1);
  sim::Duration syscall_jitter_cap = sim::Duration::micros(30);

  /// Per-packet CPU cost of building/encrypting a QUIC packet in user space.
  sim::Duration packet_build_cost = sim::Duration::micros(2);

  /// High-resolution kernel timer (hrtimer) slack: applies to qdisc watchdog
  /// wakeups (FQ/ETF release timers).
  sim::Duration hrtimer_slack_mean = sim::Duration::micros(30);
  sim::Duration hrtimer_slack_stddev = sim::Duration::micros(55);

  /// Occasional softirq/scheduling hiccup affecting kernel releases.
  double softirq_delay_chance = 0.08;
  sim::Duration softirq_delay_mean = sim::Duration::micros(250);
  sim::Duration softirq_delay_cap = sim::Duration::millis(2);

  /// Wakeup latency for a user-space thread blocked in epoll/select when a
  /// datagram arrives.
  sim::Duration wakeup_latency_mean = sim::Duration::micros(8);
  sim::Duration wakeup_latency_stddev = sim::Duration::micros(5);
};

class OsModel {
 public:
  OsModel(OsTimingConfig config, sim::Rng rng)
      : config_(config), rng_(std::move(rng)) {}

  /// Duration the calling thread spends inside one send syscall.
  sim::Duration draw_syscall_cost();

  /// Extra delay the kernel adds when releasing a packet from an
  /// hrtimer-driven qdisc (FQ, software ETF).
  sim::Duration draw_kernel_release_delay();

  /// Latency between datagram arrival and the user-space loop observing it.
  sim::Duration draw_wakeup_latency();

  const OsTimingConfig& config() const { return config_; }
  sim::Rng& rng() { return rng_; }

 private:
  OsTimingConfig config_;
  sim::Rng rng_;
};

}  // namespace quicsteps::kernel
