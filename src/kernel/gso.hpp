// Generic Segmentation Offload model.
//
// A GSO send hands the kernel one buffer that is split into wire packets at
// the driver/NIC boundary. Three modes reproduce the paper's Section 4.3:
//   kOff    — one sendmsg per packet (baseline; qdisc can pace each packet);
//   kOn     — stock GSO: the buffer crosses the qdisc as ONE unit, so all
//             segments hit the wire back-to-back (pacing is defeated);
//   kPaced  — the paper's extended kernel patch: user space attaches a
//             pacing rate to the buffer and the kernel releases segment i
//             at t0 + i * segment_bytes / rate, keeping single-syscall
//             efficiency AND per-packet spacing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace quicsteps::kernel {

enum class GsoMode : std::uint8_t { kOff, kOn, kPaced };

const char* to_string(GsoMode mode);

/// Builds the super-packet the kernel sees for one GSO sendmsg. `segments`
/// must be non-null and non-empty; their sizes are summed for the carrier.
/// The carrier inherits the txtime of the FIRST segment (a real GSO buffer
/// carries one SCM_TXTIME for the whole call). The caller owns the buffer's
/// lifetime: UdpSocket recycles buffers through a pool so the steady-state
/// send path performs no allocation here.
net::Packet make_gso_buffer(std::shared_ptr<std::vector<net::Packet>> segments,
                            std::uint64_t buffer_id,
                            net::DataRate gso_pacing_rate);

}  // namespace quicsteps::kernel
