#include "net/link.hpp"

#include <utility>

#include "check/audit.hpp"

namespace quicsteps::net {

void Link::deliver(Packet pkt) {
  counters_.count_in(pkt.size_bytes);

  if (config_.buffer_bytes > 0 &&
      backlog_bytes_ + pkt.size_bytes > config_.buffer_bytes) {
    counters_.count_drop(pkt.size_bytes);
    return;
  }

  const sim::Time now = loop_.now();
  const sim::Time start = sim::max(now, busy_until_);
  const sim::Duration tx = config_.rate.transmit_time(pkt.size_bytes);
  const sim::Time done = start + tx;
  busy_until_ = done;
  backlog_bytes_ += pkt.size_bytes;

  const std::int64_t size = pkt.size_bytes;
  // The buffer slot frees when serialization completes ...
  loop_.schedule_at(done, [this, size] {
    backlog_bytes_ -= size;
    QUICSTEPS_AUDIT(backlog_bytes_ >= 0, "link freed more buffer than held");
  });
  // ... and the packet reaches the far end one propagation delay later.
  loop_.schedule_at(done + config_.delay, [this, pkt = std::move(pkt)]() mutable {
    counters_.count_out(pkt.size_bytes);
    QUICSTEPS_AUDIT(counters_.packets_queued() >= 0,
                    "link delivered a packet it never accepted");
    if (downstream_ != nullptr) {
      downstream_->deliver(std::move(pkt));
    }
  });
}

}  // namespace quicsteps::net
