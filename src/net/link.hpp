// Point-to-point link with serialization rate, propagation delay and a
// drop-tail buffer.
//
// The link models the physical path between two components: packets are
// serialized one after another at `rate` (an infinite rate makes the link a
// pure delay element), then arrive at the downstream sink `delay` later.
// The buffer bounds the bytes waiting for or undergoing serialization; a
// packet arriving at a full buffer is dropped (drop-tail), which is how the
// bottleneck in the measurement topology loses packets.
#pragma once

#include <cstdint>
#include <string>

#include "net/counters.hpp"
#include "net/packet.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::net {

class Link final : public PacketSink {
 public:
  struct Config {
    DataRate rate = DataRate::infinite();
    sim::Duration delay = sim::Duration::zero();
    /// Bytes of buffering before the serializer; <=0 means unlimited.
    std::int64_t buffer_bytes = -1;
    std::string name = "link";
  };

  Link(sim::EventLoop& loop, Config config, PacketSink* downstream)
      : loop_(loop), config_(config), downstream_(downstream) {}

  void deliver(Packet pkt) override;

  void set_downstream(PacketSink* sink) { downstream_ = sink; }
  const Counters& counters() const { return counters_; }
  const Config& config() const { return config_; }
  /// Bytes currently waiting for (or in) serialization.
  std::int64_t backlog_bytes() const { return backlog_bytes_; }
  /// Instant at which the serializer becomes free.
  sim::Time busy_until() const { return busy_until_; }

 private:
  sim::EventLoop& loop_;
  Config config_;
  PacketSink* downstream_;
  Counters counters_;
  std::int64_t backlog_bytes_ = 0;
  sim::Time busy_until_;
};

}  // namespace quicsteps::net
