#include "net/flow_table.hpp"

#include <algorithm>
#include <string>

#include "check/audit.hpp"

namespace quicsteps::net {

void FlowTableSink::add_route(std::uint32_t flow, PacketSink* sink) {
  const auto pos = std::lower_bound(
      table_.begin(), table_.end(), flow,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  QUICSTEPS_AUDIT(pos == table_.end() || pos->first != flow,
                  "flow " + std::to_string(flow) + " registered twice");
  if (pos != table_.end() && pos->first == flow) {
    pos->second = sink;  // audit-off builds: last registration wins
    return;
  }
  table_.insert(pos, {flow, sink});
  last_hit_ = 0;
}

PacketSink* FlowTableSink::find(std::uint32_t flow) {
  if (last_hit_ < table_.size() && table_[last_hit_].first == flow) {
    return table_[last_hit_].second;
  }
  const auto pos = std::lower_bound(
      table_.begin(), table_.end(), flow,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (pos != table_.end() && pos->first == flow) {
    last_hit_ = static_cast<std::size_t>(pos - table_.begin());
    return pos->second;
  }
  return nullptr;
}

void FlowTableSink::deliver(Packet pkt) {
  if (PacketSink* sink = find(pkt.flow)) {
    sink->deliver(std::move(pkt));
    return;
  }
  if (default_route_ != nullptr) {
    default_route_->deliver(std::move(pkt));
    return;
  }
  QUICSTEPS_AUDIT(false, "packet for unregistered flow " +
                             std::to_string(pkt.flow) + " (" +
                             to_string(pkt.kind) + std::string(")"));
}

}  // namespace quicsteps::net
