#include "net/flow_table.hpp"

#include <algorithm>
#include <string>

#include "check/audit.hpp"

namespace quicsteps::net {

void FlowTableSink::add_route(std::uint32_t flow, PacketSink* sink) {
  if (bulk_) {
    table_.push_back({flow, sink});  // sorted (and deduped) at finish_bulk
    return;
  }
  const auto pos = std::lower_bound(
      table_.begin(), table_.end(), flow,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  QUICSTEPS_AUDIT(pos == table_.end() || pos->first != flow,
                  "flow " + std::to_string(flow) + " registered twice");
  if (pos != table_.end() && pos->first == flow) {
    pos->second = sink;  // audit-off builds: last registration wins
    return;
  }
  table_.insert(pos, {flow, sink});
  last_hit_ = 0;
}

void FlowTableSink::begin_bulk(std::size_t expected) {
  QUICSTEPS_AUDIT(!bulk_, "FlowTableSink::begin_bulk nested");
  bulk_ = true;
  table_.reserve(table_.size() + expected);
}

void FlowTableSink::finish_bulk() {
  QUICSTEPS_AUDIT(bulk_, "FlowTableSink::finish_bulk without begin_bulk");
  bulk_ = false;
  std::sort(table_.begin(), table_.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (std::size_t i = 1; i < table_.size(); ++i) {
    QUICSTEPS_AUDIT(table_[i - 1].first != table_[i].first,
                    "flow " + std::to_string(table_[i].first) +
                        " registered twice");
  }
  last_hit_ = 0;
}

PacketSink* FlowTableSink::find(std::uint32_t flow) {
  // Burst cache: trains hit one route repeatedly, so the previous answer
  // is usually this packet's answer too.
  if (last_hit_ < table_.size() && table_[last_hit_].first == flow) {
    return table_[last_hit_].second;
  }
  // Branchless binary search: the halving step compiles to a conditional
  // move, so a cold lookup costs log2(n) predictable iterations with no
  // data-dependent branch — at 10k routes the mispredict-per-probe of
  // std::lower_bound is the dominant dispatch cost.
  std::size_t lo = 0;
  std::size_t len = table_.size();
  while (len > 1) {
    const std::size_t half = len / 2;
    lo += table_[lo + half - 1].first < flow ? half : 0;
    len -= half;
  }
  if (len == 1 && table_[lo].first == flow) {
    last_hit_ = lo;
    return table_[lo].second;
  }
  return nullptr;
}

void FlowTableSink::deliver(Packet pkt) {
  QUICSTEPS_AUDIT(!bulk_, "FlowTableSink lookup during a bulk build");
  if (PacketSink* sink = find(pkt.flow)) {
    sink->deliver(std::move(pkt));
    return;
  }
  if (default_route_ != nullptr) {
    default_route_->deliver(std::move(pkt));
    return;
  }
  QUICSTEPS_AUDIT(false, "packet for unregistered flow " +
                             std::to_string(pkt.flow) + " (" +
                             to_string(pkt.kind) + std::string(")"));
}

}  // namespace quicsteps::net
