// Strong type for data rates, and the rate<->time arithmetic the whole
// simulator is built on (serialization delays, pacing intervals, token
// refill).
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace quicsteps::net {

class DataRate {
 public:
  constexpr DataRate() = default;

  static constexpr DataRate bits_per_second(std::int64_t bps) {
    return DataRate(bps);
  }
  static constexpr DataRate kilobits_per_second(std::int64_t kbps) {
    return DataRate(kbps * 1'000);
  }
  static constexpr DataRate megabits_per_second(std::int64_t mbps) {
    return DataRate(mbps * 1'000'000);
  }
  static constexpr DataRate gigabits_per_second(std::int64_t gbps) {
    return DataRate(gbps * 1'000'000'000);
  }
  static constexpr DataRate bytes_per_second(std::int64_t bytes) {
    return DataRate(bytes * 8);
  }
  static constexpr DataRate zero() { return DataRate(0); }
  static constexpr DataRate infinite() {
    return DataRate(std::int64_t{1} << 62);
  }

  /// Rate that moves `bytes` in `period` (0 if period is not positive).
  static DataRate bytes_per(std::int64_t bytes, sim::Duration period);

  constexpr std::int64_t bps() const { return bps_; }
  constexpr double mbps() const { return static_cast<double>(bps_) / 1e6; }
  constexpr double bytes_per_second_f() const {
    return static_cast<double>(bps_) / 8.0;
  }
  constexpr bool is_zero() const { return bps_ == 0; }
  constexpr bool is_infinite() const { return bps_ >= (std::int64_t{1} << 62); }

  /// Time to serialize `bytes` at this rate; zero for an infinite rate,
  /// Duration::infinite() for a zero rate and positive size.
  sim::Duration transmit_time(std::int64_t bytes) const;

  /// Bytes transferred in `d` at this rate (rounded down).
  std::int64_t bytes_in(sim::Duration d) const;

  constexpr DataRate operator*(double k) const {
    return DataRate(static_cast<std::int64_t>(static_cast<double>(bps_) * k));
  }
  constexpr DataRate operator+(DataRate o) const {
    return DataRate(bps_ + o.bps_);
  }
  constexpr auto operator<=>(const DataRate&) const = default;

  std::string to_string() const;

 private:
  constexpr explicit DataRate(std::int64_t bps) : bps_(bps) {}
  std::int64_t bps_ = 0;
};

}  // namespace quicsteps::net
