#include "net/wire_tap.hpp"

// WireTap is header-only; this translation unit anchors the library target.
