// Per-component packet accounting.
//
// Every element in the path (qdiscs, links, shapers) owns a Counters
// instance; the framework reads them after a run to report dropped packets
// (paper Tables 1 and 2) and to assert packet conservation in tests.
#pragma once

#include <cstdint>
#include <string>

namespace quicsteps::net {

struct Counters {
  std::int64_t packets_in = 0;
  std::int64_t bytes_in = 0;
  std::int64_t packets_out = 0;
  std::int64_t bytes_out = 0;
  std::int64_t packets_dropped = 0;
  std::int64_t bytes_dropped = 0;

  void count_in(std::int64_t bytes) {
    ++packets_in;
    bytes_in += bytes;
  }
  void count_out(std::int64_t bytes) {
    ++packets_out;
    bytes_out += bytes;
  }
  void count_drop(std::int64_t bytes) {
    ++packets_dropped;
    bytes_dropped += bytes;
  }

  /// Packets accepted but not yet forwarded or dropped.
  std::int64_t packets_queued() const {
    return packets_in - packets_out - packets_dropped;
  }

  std::string to_string() const;
};

}  // namespace quicsteps::net
