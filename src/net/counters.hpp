// Per-component packet accounting.
//
// Every element in the path (qdiscs, links, shapers) owns a Counters
// instance; the framework reads them after a run to report dropped packets
// (paper Tables 1 and 2) and to assert packet conservation in tests.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace quicsteps::net {

struct Counters {
  std::int64_t packets_in = 0;
  std::int64_t bytes_in = 0;
  std::int64_t packets_out = 0;
  std::int64_t bytes_out = 0;
  std::int64_t packets_dropped = 0;
  std::int64_t bytes_dropped = 0;
  /// High-water mark of packets_queued() — the queue-depth gauge the
  /// observability registry reports per component.
  std::int64_t packets_queued_peak = 0;

  void count_in(std::int64_t bytes) {
    ++packets_in;
    bytes_in += bytes;
    if (packets_queued() > packets_queued_peak) {
      packets_queued_peak = packets_queued();
    }
  }
  void count_out(std::int64_t bytes) {
    ++packets_out;
    bytes_out += bytes;
  }
  void count_drop(std::int64_t bytes) {
    ++packets_dropped;
    bytes_dropped += bytes;
  }

  /// Packets accepted but not yet forwarded or dropped.
  std::int64_t packets_queued() const {
    return packets_in - packets_out - packets_dropped;
  }

  std::string to_string() const;
};

/// Named counter snapshots with deterministic emission: rows are kept
/// sorted by name, so a rendered table is identical across runs and job
/// counts regardless of the order components were registered in. Anything
/// that prints per-component counters (reports, the conservation auditor,
/// debugging dumps) must go through this table — never through a hash-map
/// walk, whose order is a function of the allocator.
class CountersTable {
 public:
  using Row = std::pair<std::string, Counters>;

  /// Inserts a snapshot at its sorted position (duplicates keep insertion
  /// order among themselves).
  void add(std::string name, const Counters& snapshot);

  /// Rows in ascending name order.
  const std::vector<Row>& rows() const { return rows_; }

  /// One "name: in=... out=..." line per row, sorted by name.
  std::string to_string() const;

 private:
  std::vector<Row> rows_;
};

}  // namespace quicsteps::net
