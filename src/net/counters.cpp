#include "net/counters.hpp"

#include <cstdio>

namespace quicsteps::net {

std::string Counters::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "in=%lld out=%lld dropped=%lld queued=%lld",
                static_cast<long long>(packets_in),
                static_cast<long long>(packets_out),
                static_cast<long long>(packets_dropped),
                static_cast<long long>(packets_queued()));
  return buf;
}

}  // namespace quicsteps::net
