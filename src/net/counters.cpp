#include "net/counters.hpp"

#include <algorithm>
#include <cstdio>

namespace quicsteps::net {

std::string Counters::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "in=%lld out=%lld dropped=%lld queued=%lld peak=%lld",
                static_cast<long long>(packets_in),
                static_cast<long long>(packets_out),
                static_cast<long long>(packets_dropped),
                static_cast<long long>(packets_queued()),
                static_cast<long long>(packets_queued_peak));
  return buf;
}

void CountersTable::add(std::string name, const Counters& snapshot) {
  auto pos = std::upper_bound(
      rows_.begin(), rows_.end(), name,
      [](const std::string& n, const Row& row) { return n < row.first; });
  rows_.insert(pos, Row{std::move(name), snapshot});
}

std::string CountersTable::to_string() const {
  std::string out;
  for (const Row& row : rows_) {
    out += row.first;
    out += ": ";
    out += row.second.to_string();
    out += "\n";
  }
  return out;
}

}  // namespace quicsteps::net
