// Flow-id dispatch: the receive-side demultiplexer of a shared path.
//
// When N senders share one bottleneck, every packet that pops out of the
// client-side receiver (and every ACK that comes back) must reach exactly
// the endpoint that owns its flow id. FlowTableSink is that switch: a
// sorted (flow -> sink) table with an optional default route. Unlike the
// old two-way ternary it replaces ("anything that isn't flow A must be
// flow B"), an id that matches no route and has no default is an audited
// error, not a silent misdelivery — a mis-tagged packet trips
// QUICSTEPS_AUDIT instead of corrupting another flow's transport state.
//
// At fabric scale the table is on the per-packet hot path twice (data and
// ACK directions), so lookups are a burst cache — packets arrive in
// per-flow trains, so the last hit usually answers — backed by a
// branchless binary search (conditional-move halving, no unpredictable
// branch per probe) when the train switches flows. Registration of 10k
// routes goes through the bulk builder (reserve, append, sort once)
// instead of 10k O(n) sorted inserts.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.hpp"

namespace quicsteps::net {

class FlowTableSink final : public PacketSink {
 public:
  /// Registers `sink` for packets tagged with `flow`. Registering the same
  /// flow id twice is an audited error (two endpoints would silently split
  /// one flow's packets). Outside a bulk build this keeps the table sorted
  /// with an O(n) insert — fine for the N<=8 paths; use the bulk builder
  /// for fabric-scale registration.
  void add_route(std::uint32_t flow, PacketSink* sink);

  /// Bulk registration: begin_bulk reserves for `expected` routes and
  /// switches add_route to O(1) appends; finish_bulk sorts once and audits
  /// duplicates. Lookups between the two calls are not allowed (the table
  /// is unsorted); nesting begin_bulk is an audited error.
  void begin_bulk(std::size_t expected);
  void finish_bulk();

  /// Fallback for ids with no route (nullptr = none). Topology uses this
  /// for its endpoint-agnostic single-flow handlers; the N-flow fabric
  /// leaves it unset so stray ids are caught.
  void set_default_route(PacketSink* sink) { default_route_ = sink; }

  /// Routes by pkt.flow. No route and no default trips QUICSTEPS_AUDIT
  /// (and drops the packet in audit-off builds).
  void deliver(Packet pkt) override;

  std::size_t route_count() const { return table_.size(); }

 private:
  PacketSink* find(std::uint32_t flow);

  /// Sorted by flow id (except mid-bulk); lookups remember the last hit
  /// because packets arrive in per-flow bursts (a train hits one route
  /// repeatedly).
  std::vector<std::pair<std::uint32_t, PacketSink*>> table_;
  PacketSink* default_route_ = nullptr;
  std::size_t last_hit_ = 0;
  bool bulk_ = false;
};

}  // namespace quicsteps::net
