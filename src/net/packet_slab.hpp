// Flat packet storage for the batched datapath.
//
// The legacy datapath moves a net::Packet into a std::function closure for
// every scheduled hop (NIC completion, netem delivery, receiver wakeup) —
// one heap allocation and two moves per packet per hop. The slab replaces
// that with struct-of-arrays storage addressed by a 32-bit generation-
// checked ref that rides in the event loop's drain records
// (sim::EventLoop::schedule_drain_at): the packet is written once at put()
// and moved out once at take(), and slots recycle through a free list so a
// steady-state run performs no per-packet allocation at all.
//
// Lanes: the Packet values themselves are the cold lane; the generation
// and size lanes are hot — token-bucket byte accounting and drain-train
// bookkeeping read them without pulling a whole Packet into cache.
//
// Ref layout: low 24 bits slot index, high 8 bits the slot's generation at
// put() time. take() audits the generation, so a stale ref — a recycled
// slot reached through a ref that was already consumed — trips
// QUICSTEPS_AUDIT instead of silently aliasing another packet
// (tests/slab_test.cpp pins this).
//
// One slab is shared by every component on a network's datapath and every
// flow on the fabric (framework::BottleneckPath owns it); single-threaded
// like the loop that drives it.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "check/audit.hpp"
#include "net/packet.hpp"

namespace quicsteps::net {

class PacketSlab {
 public:
  /// Opaque slab ticket: pass to the event loop as a drain payload.
  using Ref = std::uint32_t;

  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  /// Stores `pkt` and returns its ref. O(1), allocation-free once the
  /// high-water number of in-flight packets has been reached.
  Ref put(Packet&& pkt) {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
      packets_[slot] = std::move(pkt);
    } else {
      slot = static_cast<std::uint32_t>(packets_.size());
      QUICSTEPS_AUDIT(slot <= kSlotMask, "PacketSlab exceeded 2^24 slots");
      packets_.push_back(std::move(pkt));
      hot_.push_back(HotLane{});
    }
    HotLane& hot = hot_[slot];
    hot.size_bytes = static_cast<std::uint32_t>(packets_[slot].size_bytes);
    ++live_;
    return slot | (static_cast<std::uint32_t>(hot.gen) << kSlotBits);
  }

  /// Moves the packet out and recycles the slot. The ref is dead
  /// afterwards: the slot's generation advances, so a second take()
  /// through the same ref audits (recycled-slot aliasing).
  Packet take(Ref ref) {
    const std::uint32_t slot = ref & kSlotMask;
    QUICSTEPS_AUDIT(slot < packets_.size() &&
                        hot_[slot].gen == static_cast<std::uint8_t>(
                                              ref >> kSlotBits),
                    "stale PacketSlab ref (recycled-slot aliasing)");
    Packet pkt = std::move(packets_[slot]);
    ++hot_[slot].gen;  // wraps mod 256; outstanding refs go stale
    free_.push_back(slot);
    --live_;
    return pkt;
  }

  /// Read-only view of a stored packet (the ref stays live).
  const Packet& peek(Ref ref) const {
    const std::uint32_t slot = ref & kSlotMask;
    QUICSTEPS_AUDIT(slot < packets_.size() &&
                        hot_[slot].gen == static_cast<std::uint8_t>(
                                              ref >> kSlotBits),
                    "stale PacketSlab ref (recycled-slot aliasing)");
    return packets_[slot];
  }

  /// Hot-lane size read: no Packet cache line touched.
  std::uint32_t size_bytes(Ref ref) const {
    return hot_[ref & kSlotMask].size_bytes;
  }

  /// Packets currently stored.
  std::size_t live() const { return live_; }
  /// Slots ever allocated (the in-flight high-water mark).
  std::size_t capacity() const { return packets_.size(); }

  /// GSO buffer recycling. The socket draws a spent segment buffer here
  /// (null when none is free — it then allocates one, once), and the NIC
  /// returns the husk after moving the segments out at the driver
  /// boundary. Nothing holds a pool reference while a buffer is in
  /// flight, so the NIC's unique-ownership fast path (use_count() == 1)
  /// still fires; control block and vector capacity both amortize to the
  /// in-flight high-water mark of GSO bursts.
  std::shared_ptr<std::vector<Packet>> take_gso_buffer() {
    if (gso_buffers_.empty()) return nullptr;
    std::shared_ptr<std::vector<Packet>> buf =
        std::move(gso_buffers_.back());
    gso_buffers_.pop_back();
    return buf;
  }
  void put_gso_buffer(std::shared_ptr<std::vector<Packet>> buf) {
    gso_buffers_.push_back(std::move(buf));
  }
  /// Buffers resting in the pool (test hook).
  std::size_t gso_buffers_pooled() const { return gso_buffers_.size(); }

 private:
  /// One 8-byte entry per slot: the generation check and the byte size the
  /// token loop reads share a cache line access.
  struct HotLane {
    std::uint32_t size_bytes = 0;
    std::uint8_t gen = 0;
  };

  std::vector<Packet> packets_;  // cold lane
  std::vector<HotLane> hot_;
  std::vector<std::uint32_t> free_;
  std::vector<std::shared_ptr<std::vector<Packet>>> gso_buffers_;
  std::size_t live_ = 0;
};

}  // namespace quicsteps::net
