// Passive optical-tap model (the paper's sniffer).
//
// The tap sits on the wire between the server NIC and the bottleneck. It
// stamps each packet's `wire_time` with the exact simulated instant and
// keeps a copy (the capture), then forwards the original unchanged. Like
// the real fiber tap + MoonGen setup, observation is perfectly
// non-intrusive: it adds no delay and never drops.
#pragma once

#include <functional>
#include <vector>

#include "net/packet.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::net {

class WireTap final : public PacketSink, public obs::TraceSource {
 public:
  WireTap(sim::EventLoop& loop, PacketSink* downstream)
      : loop_(loop), downstream_(downstream) {}

  void deliver(Packet pkt) override {
    pkt.wire_time = loop_.now();
    QUICSTEPS_TRACE_SPAN(trace_bus_, obs::TraceStage::kWire,
                         trace_component_, pkt.wire_time, pkt);
    if (retain_capture_) capture_.push_back(pkt);
    if (on_packet_) on_packet_(pkt);
    if (downstream_ != nullptr) downstream_->deliver(std::move(pkt));
  }

  void set_downstream(PacketSink* sink) { downstream_ = sink; }

  /// Full capture, in wire order.
  const std::vector<Packet>& capture() const { return capture_; }
  void clear() { capture_.clear(); }

  /// Retention switch. Defaults to on (every Topology user reads the
  /// capture directly); run_flows turns it off under the batched datapath
  /// — its analysis streams through on_packet, so retaining a copy of
  /// every wire packet was pure per-packet allocation.
  void set_retain_capture(bool retain) { retain_capture_ = retain; }

  /// Optional live callback (used by long-running experiments to stream
  /// metrics instead of retaining the whole capture).
  void set_on_packet(std::function<void(const Packet&)> cb) {
    on_packet_ = std::move(cb);
  }

 private:
  sim::EventLoop& loop_;
  PacketSink* downstream_;
  bool retain_capture_ = true;
  std::vector<Packet> capture_;
  std::function<void(const Packet&)> on_packet_;
};

}  // namespace quicsteps::net
