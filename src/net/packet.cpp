#include "net/packet.hpp"

#include <cstdio>

namespace quicsteps::net {

const char* to_string(PacketKind kind) {
  switch (kind) {
    case PacketKind::kQuicData:
      return "quic-data";
    case PacketKind::kQuicAck:
      return "quic-ack";
    case PacketKind::kQuicControl:
      return "quic-control";
    case PacketKind::kTcpData:
      return "tcp-data";
    case PacketKind::kTcpAck:
      return "tcp-ack";
  }
  return "?";
}

std::string Packet::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "pkt{id=%llu flow=%u %s pn=%llu %lldB%s}",
                static_cast<unsigned long long>(id), flow, net::to_string(kind),
                static_cast<unsigned long long>(packet_number),
                static_cast<long long>(size_bytes),
                has_txtime ? " txtime" : "");
  return buf;
}

}  // namespace quicsteps::net
