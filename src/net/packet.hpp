// The unit of transmission in the simulator.
//
// Packets carry no payload bytes — only sizes and the metadata the
// measurement study needs: transport packet numbers, the user-space pacer's
// intended release time (SO_TXTIME analogue), GSO buffer membership, and the
// timestamps stamped along the path. Packets are small value types; they are
// copied freely (the wire tap keeps copies, like a real capture does).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/data_rate.hpp"
#include "sim/time.hpp"

namespace quicsteps::net {

enum class PacketKind : std::uint8_t {
  kQuicData,
  kQuicAck,
  kQuicControl,  // handshake / connection management
  kTcpData,
  kTcpAck,
};

const char* to_string(PacketKind kind);

/// Inclusive packet-number (QUIC) or sequence-index (TCP) range.
struct AckBlock {
  std::uint64_t first = 0;
  std::uint64_t last = 0;
};

/// Acknowledgment payload carried by ACK packets of either transport.
struct TransportAck {
  std::vector<AckBlock> blocks;  // descending, blocks[0].last = largest
  sim::Duration ack_delay;
  /// Piggybacked MAX_DATA grant (QUIC connection flow control); 0 = none.
  std::int64_t max_data = 0;
  std::uint64_t largest() const { return blocks.empty() ? 0 : blocks[0].last; }
};

struct Packet {
  /// Globally unique per simulation; assigned by the sender stack.
  std::uint64_t id = 0;
  /// Flow the packet belongs to (one flow per connection direction).
  std::uint32_t flow = 0;
  PacketKind kind = PacketKind::kQuicData;
  /// Size on the wire, including all headers.
  std::int64_t size_bytes = 0;
  /// Transport-level packet number (QUIC PN or TCP segment sequence index).
  std::uint64_t packet_number = 0;

  // --- transport payload metadata ------------------------------------------
  /// STREAM chunk carried by a data packet (-1 offset = no stream data).
  std::int64_t stream_offset = -1;
  std::int64_t stream_length = 0;
  bool fin = false;
  /// ACK frame carried by an ACK packet.
  std::shared_ptr<const TransportAck> ack;

  // --- user-space pacing metadata -----------------------------------------
  /// True when the stack attached an SCM_TXTIME release timestamp.
  bool has_txtime = false;
  /// Requested kernel release time (valid when has_txtime).
  sim::Time txtime;
  /// The pacer's intended send time, logged by the server for the precision
  /// metric (present even when txtime is not passed to the kernel).
  sim::Time expected_send_time;

  // --- GSO metadata --------------------------------------------------------
  /// Nonzero when this packet was part of a GSO buffer handed to the kernel
  /// in one sendmsg call.
  std::uint64_t gso_buffer_id = 0;
  std::uint32_t gso_segment_index = 0;
  std::uint32_t gso_segment_count = 0;
  /// Paced-GSO kernel patch: per-buffer pacing rate (zero = unpaced GSO).
  DataRate gso_pacing_rate;
  /// Segments carried by a GSO super-packet. A GSO buffer traverses the
  /// qdisc layer as one unit (this is why GSO defeats qdisc pacing) and is
  /// expanded into wire packets at the NIC/driver boundary.
  std::shared_ptr<const std::vector<Packet>> gso_segments;

  bool is_gso_buffer() const {
    return gso_segments != nullptr && !gso_segments->empty();
  }

  // --- path timestamps ------------------------------------------------------
  /// When user space handed the packet (or its GSO buffer) to the kernel.
  sim::Time kernel_entry_time;
  /// Stamped by the wire tap when the last bit leaves the server NIC.
  sim::Time wire_time;
  /// Stamped by the receiving host model on delivery.
  sim::Time delivery_time;

  std::string to_string() const;
};

/// Anything that accepts packets. Components form a chain: the caller has
/// already accounted for all timing; deliver() is invoked at the simulated
/// instant the packet arrives at this component.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(Packet pkt) = 0;
};

/// Adapter turning any callable into a sink (wiring glue for topologies).
class CallbackSink final : public PacketSink {
 public:
  using Fn = std::function<void(Packet)>;
  explicit CallbackSink(Fn fn) : fn_(std::move(fn)) {}
  void deliver(Packet pkt) override {
    if (fn_) fn_(std::move(pkt));
  }

 private:
  Fn fn_;
};

/// A sink that appends every packet to a vector (test helper and capture
/// buffer).
class CollectorSink final : public PacketSink {
 public:
  void deliver(Packet pkt) override { packets_.push_back(std::move(pkt)); }
  const std::vector<Packet>& packets() const { return packets_; }
  std::vector<Packet>& packets() { return packets_; }
  void clear() { packets_.clear(); }

 private:
  std::vector<Packet> packets_;
};

}  // namespace quicsteps::net
