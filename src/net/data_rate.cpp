#include "net/data_rate.hpp"

#include <cstdio>

namespace quicsteps::net {

DataRate DataRate::bytes_per(std::int64_t bytes, sim::Duration period) {
  if (period <= sim::Duration::zero()) return DataRate::zero();
  const double bps =
      static_cast<double>(bytes) * 8.0 / period.to_seconds();
  return DataRate::bits_per_second(static_cast<std::int64_t>(bps));
}

sim::Duration DataRate::transmit_time(std::int64_t bytes) const {
  if (bytes <= 0 || is_infinite()) return sim::Duration::zero();
  if (bps_ <= 0) return sim::Duration::infinite();
  // ns = bytes * 8 * 1e9 / bps, computed in double to avoid overflow for
  // large buffers on slow links; sub-nanosecond truncation is irrelevant.
  const double ns =
      static_cast<double>(bytes) * 8e9 / static_cast<double>(bps_);
  return sim::Duration::nanos(static_cast<std::int64_t>(ns));
}

std::int64_t DataRate::bytes_in(sim::Duration d) const {
  if (d <= sim::Duration::zero() || bps_ <= 0) return 0;
  const double bytes = static_cast<double>(bps_) / 8.0 * d.to_seconds();
  // Tolerate floating-point dust so exact-rate round trips stay exact.
  return static_cast<std::int64_t>(bytes + 1e-6);
}

std::string DataRate::to_string() const {
  char buf[64];
  if (is_infinite()) return "inf";
  if (bps_ >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fGbit/s",
                  static_cast<double>(bps_) / 1e9);
  } else if (bps_ >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fMbit/s",
                  static_cast<double>(bps_) / 1e6);
  } else if (bps_ >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.2fkbit/s",
                  static_cast<double>(bps_) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lldbit/s", static_cast<long long>(bps_));
  }
  return buf;
}

}  // namespace quicsteps::net
