#include "framework/aggregate.hpp"

namespace quicsteps::framework {

double Aggregate::fraction_in_trains_up_to(std::size_t n) const {
  if (pooled_total_packets == 0) return 0.0;
  std::int64_t covered = 0;
  for (const auto& [len, packets] : pooled_packets_by_length) {
    if (len <= n) covered += packets;
  }
  return static_cast<double>(covered) /
         static_cast<double>(pooled_total_packets);
}

Aggregate aggregate(const std::string& label,
                    const std::vector<RunResult>& runs) {
  Aggregate agg;
  agg.label = label;
  agg.repetitions = static_cast<int>(runs.size());

  std::vector<double> goodput, dropped, lost, b2b, below15, trains5,
      precision, syscalls, cpu, rollbacks;
  for (const auto& run : runs) {
    if (run.completed) ++agg.completed;
    goodput.push_back(run.goodput.goodput.mbps());
    dropped.push_back(static_cast<double>(run.dropped_packets));
    lost.push_back(static_cast<double>(run.packets_declared_lost));
    b2b.push_back(run.gaps.back_to_back_fraction);
    below15.push_back(run.gaps.below_1500us_fraction);
    trains5.push_back(run.trains.fraction_in_trains_up_to(5));
    precision.push_back(run.precision.precision_ms);
    syscalls.push_back(static_cast<double>(run.send_syscalls));
    cpu.push_back(run.cpu_time_ms);
    rollbacks.push_back(static_cast<double>(run.cc_rollbacks));

    agg.pooled_gaps_ms.insert(agg.pooled_gaps_ms.end(),
                              run.gaps.gaps_ms.begin(),
                              run.gaps.gaps_ms.end());
    for (const auto& [len, packets] : run.trains.packets_by_length) {
      agg.pooled_packets_by_length[len] += packets;
      for (std::int64_t i = 0; i < packets; ++i) {
        agg.pooled_train_lengths.push_back(static_cast<double>(len));
      }
    }
    agg.pooled_total_packets += run.trains.total_packets;
  }

  agg.goodput_mbps = metrics::summarize(goodput);
  agg.dropped_packets = metrics::summarize(dropped);
  agg.declared_lost = metrics::summarize(lost);
  agg.back_to_back_fraction = metrics::summarize(b2b);
  agg.below_1500us_fraction = metrics::summarize(below15);
  agg.trains_up_to_5_fraction = metrics::summarize(trains5);
  agg.precision_ms = metrics::summarize(precision);
  agg.send_syscalls = metrics::summarize(syscalls);
  agg.cpu_time_ms = metrics::summarize(cpu);
  agg.rollbacks = metrics::summarize(rollbacks);
  return agg;
}

}  // namespace quicsteps::framework
