// Experiment runner: builds the topology, attaches the configured stack
// (one of the three QUIC profiles, the TCP baseline, or the ideal
// reference), runs the transfer to completion, and extracts every metric
// from the tap capture — once per repetition, with per-repetition seeds.
#pragma once

#include <vector>

#include "framework/experiment.hpp"
#include "stacks/stack_profile.hpp"

namespace quicsteps::framework {

/// Resolves the stack profile an experiment configuration selects.
stacks::StackProfile profile_for(const ExperimentConfig& config);

/// Simulated-time budget for one run (a stall past it marks the run
/// incomplete instead of hanging).
sim::Duration run_deadline(const ExperimentConfig& config);

/// Extra simulated time an app-limited workload needs to release all its
/// data (zero for bulk).
sim::Duration workload_duration(const ExperimentConfig& config);

class Runner {
 public:
  /// One repetition with the given seed.
  static RunResult run_once(const ExperimentConfig& config,
                            std::uint64_t seed);

  /// All configured repetitions (seed, seed+1, ...).
  static std::vector<RunResult> run_all(const ExperimentConfig& config);
};

}  // namespace quicsteps::framework
