#include "framework/topology.hpp"

#include <string>
#include <utility>

#include "framework/network.hpp"

namespace quicsteps::framework {

const char* to_string(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kFifo:
      return "pfifo_fast";
    case QdiscKind::kFqCodel:
      return "fq_codel";
    case QdiscKind::kFq:
      return "fq";
    case QdiscKind::kEtf:
      return "etf";
    case QdiscKind::kEtfOffload:
      return "etf+launchtime";
  }
  return "?";
}

// Fork salts 1 (server OS) and 2-4 (inside BottleneckPath) are the wiring's
// historical values; salts address generators, so construction order is
// free but the salt assignment is load-bearing for reproducibility.
Topology::Topology(sim::EventLoop& loop, TopologyConfig config, sim::Rng& rng)
    : config_(config),
      server_os_(config.server_os, rng.fork(1)),
      path_(std::make_unique<BottleneckPath>(loop, config_, rng, server_os_)),
      sender_(std::make_unique<SenderPath>(loop, config_, server_os_,
                                           path_->wire_ingress(),
                                           path_->slab())),
      to_client_([this](net::Packet pkt) {
        if (client_handler_) client_handler_(std::move(pkt));
      }),
      to_server_([this](net::Packet pkt) {
        if (server_handler_) server_handler_(std::move(pkt));
      }) {
  path_->set_default_routes(&to_client_, &to_server_);
}

Topology::~Topology() = default;

net::PacketSink* Topology::server_egress() { return sender_->egress(); }
net::PacketSink* Topology::client_egress() { return path_->ack_ingress(); }
const net::WireTap& Topology::tap() const { return path_->tap(); }
net::WireTap& Topology::tap() { return path_->tap(); }
std::int64_t Topology::bottleneck_drops() const {
  return path_->bottleneck_drops();
}
const kernel::TbfQdisc& Topology::bottleneck() const {
  return path_->bottleneck();
}
const kernel::Qdisc& Topology::server_qdisc() const {
  return sender_->qdisc();
}
const kernel::NetemQdisc& Topology::data_netem() const {
  return path_->data_netem();
}
const kernel::NetemQdisc& Topology::client_netem() const {
  return path_->ack_netem();
}
kernel::OsModel& Topology::client_os() { return path_->client_os(); }

net::CountersTable Topology::counters_table() const {
  net::CountersTable table;
  table.add(std::string("qdisc/") + sender_->qdisc().name(),
            sender_->qdisc().counters());
  path_->add_counters(table);
  return table;
}

check::ConservationAuditor Topology::conservation_auditor() const {
  check::ConservationAuditor auditor;
  auditor.add_stage(std::string("qdisc/") + sender_->qdisc().name(),
                    sender_->qdisc().counters());
  path_->add_conservation_stages(auditor);
  return auditor;
}

void Topology::set_client_handler(kernel::UdpReceiver::Handler handler) {
  client_handler_ = std::move(handler);
}

void Topology::set_server_handler(kernel::UdpReceiver::Handler handler) {
  server_handler_ = std::move(handler);
}

}  // namespace quicsteps::framework
