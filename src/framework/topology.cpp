#include "framework/topology.hpp"

#include <utility>

namespace quicsteps::framework {

const char* to_string(QdiscKind kind) {
  switch (kind) {
    case QdiscKind::kFifo:
      return "pfifo_fast";
    case QdiscKind::kFqCodel:
      return "fq_codel";
    case QdiscKind::kFq:
      return "fq";
    case QdiscKind::kEtf:
      return "etf";
    case QdiscKind::kEtfOffload:
      return "etf+launchtime";
  }
  return "?";
}

Topology::Topology(sim::EventLoop& loop, TopologyConfig config, sim::Rng& rng)
    : loop_(loop),
      config_(config),
      server_os_(config.server_os, rng.fork(1)),
      client_os_(config.client_os, rng.fork(2)),
      client_receiver_(std::make_unique<kernel::UdpReceiver>(
          loop, client_os_, config.client_rcvbuf_bytes,
          [this](net::Packet pkt) {
            if (client_handler_) client_handler_(std::move(pkt));
          },
          config.client_gro_window)),
      data_netem_(loop,
                  {.delay = config.path_delay_one_way,
                   .jitter = config.path_jitter,
                   .limit_packets = config.netem_limit_packets,
                   .loss_probability = config.path_loss_probability,
                   .reorder_probability = config.path_reorder_probability},
                  rng.fork(3), client_receiver_.get()),
      bottleneck_(loop,
                  {.rate = config.bottleneck_rate,
                   .burst_bytes = config.tbf_burst_bytes,
                   .limit_bytes = config.bottleneck_buffer_bytes},
                  &data_netem_),
      tap_(std::make_unique<net::WireTap>(loop, &bottleneck_)),
      server_receiver_(std::make_unique<kernel::UdpReceiver>(
          loop, server_os_, config.client_rcvbuf_bytes,
          [this](net::Packet pkt) {
            if (server_handler_) server_handler_(std::move(pkt));
          })),
      client_netem_(loop,
                    {.delay = config.path_delay_one_way,
                     .limit_packets = config.netem_limit_packets},
                    rng.fork(4), server_receiver_.get()) {
  kernel::Nic::Config nic_cfg;
  nic_cfg.line_rate = config.server_nic_rate;
  nic_cfg.launch_time = config.server_qdisc == QdiscKind::kEtfOffload;
  nic_cfg.drop_missed_launch = config.drop_missed_launch;
  nic_ = std::make_unique<kernel::Nic>(loop, nic_cfg, server_os_, tap_.get());

  switch (config.server_qdisc) {
    case QdiscKind::kFifo:
      qdisc_ = std::make_unique<kernel::FifoQdisc>(loop, kernel::FifoQdisc::Config{},
                                                   nic_.get());
      break;
    case QdiscKind::kFqCodel: {
      kernel::FqCodelQdisc::Config cfg;
      cfg.drain_rate = config.server_nic_rate;
      qdisc_ = std::make_unique<kernel::FqCodelQdisc>(loop, cfg, nic_.get());
      break;
    }
    case QdiscKind::kFq:
      qdisc_ = std::make_unique<kernel::FqQdisc>(loop, kernel::FqQdisc::Config{},
                                                 server_os_, nic_.get());
      break;
    case QdiscKind::kEtf:
    case QdiscKind::kEtfOffload:
      qdisc_ = std::make_unique<kernel::EtfQdisc>(loop, config.etf, server_os_,
                                                  nic_.get());
      break;
  }
}

net::CountersTable Topology::counters_table() const {
  net::CountersTable table;
  table.add(std::string("qdisc/") + qdisc_->name(), qdisc_->counters());
  table.add("bottleneck/tbf", bottleneck_.counters());
  table.add("path/data_netem", data_netem_.counters());
  table.add("path/ack_netem", client_netem_.counters());
  return table;
}

check::ConservationAuditor Topology::conservation_auditor() const {
  check::ConservationAuditor auditor;
  auditor.add_stage(std::string("qdisc/") + qdisc_->name(),
                    qdisc_->counters());
  const std::size_t tbf = auditor.add_stage(
      "bottleneck/tbf", bottleneck_.counters(),
      [this] { return static_cast<std::int64_t>(bottleneck_.backlog_packets()); });
  const std::size_t netem = auditor.add_stage(
      "path/data_netem", data_netem_.counters(),
      [this] { return data_netem_.in_flight(); });
  auditor.add_stage("path/ack_netem", client_netem_.counters(),
                    [this] { return client_netem_.in_flight(); });
  // The TBF hands released packets straight to netem in the same event, so
  // their books must agree exactly at every instant.
  auditor.add_edge(tbf, netem);
  return auditor;
}

void Topology::set_client_handler(kernel::UdpReceiver::Handler handler) {
  client_handler_ = std::move(handler);
}

void Topology::set_server_handler(kernel::UdpReceiver::Handler handler) {
  server_handler_ = std::move(handler);
}

}  // namespace quicsteps::framework
