#include "framework/network.hpp"

#include <algorithm>
#include <utility>

#include "kernel/qdisc_etf.hpp"
#include "kernel/qdisc_fifo.hpp"
#include "kernel/qdisc_fq.hpp"
#include "kernel/qdisc_fq_codel.hpp"

namespace quicsteps::framework {

SenderPath::SenderPath(sim::EventLoop& loop, const TopologyConfig& config,
                       kernel::OsModel& os, net::PacketSink* wire,
                       net::PacketSlab* slab) {
  kernel::Nic::Config nic_cfg;
  nic_cfg.line_rate = config.server_nic_rate;
  nic_cfg.launch_time = config.server_qdisc == QdiscKind::kEtfOffload;
  nic_cfg.drop_missed_launch = config.drop_missed_launch;
  nic_ = std::make_unique<kernel::Nic>(loop, nic_cfg, os, wire);
  if (slab != nullptr) nic_->enable_batched(slab);

  switch (config.server_qdisc) {
    case QdiscKind::kFifo:
      qdisc_ = std::make_unique<kernel::FifoQdisc>(
          loop, kernel::FifoQdisc::Config{}, nic_.get());
      break;
    case QdiscKind::kFqCodel: {
      kernel::FqCodelQdisc::Config cfg;
      cfg.drain_rate = config.server_nic_rate;
      qdisc_ = std::make_unique<kernel::FqCodelQdisc>(loop, cfg, nic_.get());
      break;
    }
    case QdiscKind::kFq:
      qdisc_ = std::make_unique<kernel::FqQdisc>(
          loop, kernel::FqQdisc::Config{}, os, nic_.get());
      break;
    case QdiscKind::kEtf:
    case QdiscKind::kEtfOffload:
      qdisc_ = std::make_unique<kernel::EtfQdisc>(loop, config.etf, os,
                                                  nic_.get());
      break;
  }
}

void SenderPath::set_trace(obs::TraceBus& bus, const std::string& prefix) {
  qdisc_->set_trace(
      &bus, bus.register_component(prefix + "qdisc/" + qdisc_->name()));
  nic_->set_trace(&bus, bus.register_component(prefix + "nic"));
}

BottleneckPath::BottleneckPath(sim::EventLoop& loop,
                               const TopologyConfig& config, sim::Rng& rng,
                               kernel::OsModel& server_recv_os)
    : client_os_(config.client_os, rng.fork(2)),
      client_receiver_(std::make_unique<kernel::UdpReceiver>(
          loop, client_os_, config.client_rcvbuf_bytes,
          [this](net::Packet pkt) { data_dispatch_.deliver(std::move(pkt)); },
          config.client_gro_window)),
      data_netem_(loop,
                  {.delay = config.path_delay_one_way,
                   .jitter = config.path_jitter,
                   .limit_packets = config.netem_limit_packets,
                   .loss_probability = config.path_loss_probability,
                   .reorder_probability = config.path_reorder_probability},
                  rng.fork(3), client_receiver_.get()),
      bottleneck_(loop,
                  {.rate = config.bottleneck_rate,
                   .burst_bytes = config.tbf_burst_bytes,
                   .limit_bytes = config.bottleneck_buffer_bytes},
                  &data_netem_),
      tap_(std::make_unique<net::WireTap>(loop, &bottleneck_)),
      server_receiver_(std::make_unique<kernel::UdpReceiver>(
          loop, server_recv_os, config.client_rcvbuf_bytes,
          [this](net::Packet pkt) { ack_dispatch_.deliver(std::move(pkt)); })),
      ack_netem_(loop,
                 {.delay = config.path_delay_one_way,
                  .limit_packets = config.netem_limit_packets},
                 rng.fork(4), server_receiver_.get()) {
  bottleneck_.set_drop_observer([this](const net::Packet& pkt) {
    const std::size_t slot = drop_slot(pkt.flow);
    if (slot < drop_counts_.size()) {
      ++drop_counts_[slot];
    } else {
      ++stray_drops_;  // handler-mode (default-route) traffic
    }
  });
  batched_ = config.batched_datapath;
  if (batched_) {
    // One slab serves the whole shared path (and, via slab(), every
    // sender path built on it). Channel registration order is wiring
    // order — deterministic, like trace component ids.
    bottleneck_.enable_batched(&slab_);
    data_netem_.enable_batched(&slab_);
    ack_netem_.enable_batched(&slab_);
    client_receiver_->enable_batched(&slab_);
    server_receiver_->enable_batched(&slab_);
  }
}

void BottleneckPath::register_flow(std::uint32_t id, net::PacketSink* data,
                                   net::PacketSink* ack) {
  data_dispatch_.add_route(id, data);
  ack_dispatch_.add_route(id, ack);
  if (registering_) {
    drop_flow_ids_.push_back(id);  // sorted at finish_flow_registration
    return;
  }
  const auto pos =
      std::lower_bound(drop_flow_ids_.begin(), drop_flow_ids_.end(), id);
  if (pos != drop_flow_ids_.end() && *pos == id) return;  // add_route audited
  drop_counts_.insert(
      drop_counts_.begin() + (pos - drop_flow_ids_.begin()), 0);
  drop_flow_ids_.insert(pos, id);
}

void BottleneckPath::begin_flow_registration(std::size_t expected) {
  registering_ = true;
  data_dispatch_.begin_bulk(expected);
  ack_dispatch_.begin_bulk(expected);
  drop_flow_ids_.reserve(drop_flow_ids_.size() + expected);
}

void BottleneckPath::finish_flow_registration() {
  registering_ = false;
  data_dispatch_.finish_bulk();
  ack_dispatch_.finish_bulk();
  std::sort(drop_flow_ids_.begin(), drop_flow_ids_.end());
  drop_counts_.assign(drop_flow_ids_.size(), 0);
}

void BottleneckPath::set_default_routes(net::PacketSink* data,
                                        net::PacketSink* ack) {
  data_dispatch_.set_default_route(data);
  ack_dispatch_.set_default_route(ack);
}

std::size_t BottleneckPath::drop_slot(std::uint32_t flow) const {
  std::size_t lo = 0;
  std::size_t len = drop_flow_ids_.size();
  while (len > 1) {
    const std::size_t half = len / 2;
    lo += drop_flow_ids_[lo + half - 1] < flow ? half : 0;
    len -= half;
  }
  if (len == 1 && drop_flow_ids_[lo] == flow) return lo;
  return drop_flow_ids_.size();
}

std::int64_t BottleneckPath::bottleneck_drops(std::uint32_t flow) const {
  const std::size_t slot = drop_slot(flow);
  return slot < drop_counts_.size() ? drop_counts_[slot] : 0;
}

void BottleneckPath::add_counters(net::CountersTable& table) const {
  table.add("bottleneck/tbf", bottleneck_.counters());
  table.add("path/data_netem", data_netem_.counters());
  table.add("path/ack_netem", ack_netem_.counters());
}

void BottleneckPath::set_trace(obs::TraceBus& bus) {
  // Registration order is wire order; the names mirror add_counters rows
  // so the trace's component table and the counter table line up.
  tap_->set_trace(&bus, bus.register_component("wire/tap"));
  bottleneck_.set_trace(&bus, bus.register_component("bottleneck/tbf"));
  data_netem_.set_trace(&bus, bus.register_component("path/data_netem"));
  client_receiver_->set_trace(&bus, bus.register_component("client/udp_rx"));
  ack_netem_.set_trace(&bus, bus.register_component("path/ack_netem"));
  server_receiver_->set_trace(&bus, bus.register_component("server/udp_rx"));
}

void BottleneckPath::add_conservation_stages(
    check::ConservationAuditor& auditor) const {
  const std::size_t tbf = auditor.add_stage(
      "bottleneck/tbf", bottleneck_.counters(),
      [this] { return static_cast<std::int64_t>(bottleneck_.backlog_packets()); });
  const std::size_t netem = auditor.add_stage(
      "path/data_netem", data_netem_.counters(),
      [this] { return data_netem_.in_flight(); });
  auditor.add_stage("path/ack_netem", ack_netem_.counters(),
                    [this] { return ack_netem_.in_flight(); });
  // The TBF hands released packets straight to netem in the same event, so
  // their books must agree exactly at every instant.
  auditor.add_edge(tbf, netem);
}

}  // namespace quicsteps::framework
