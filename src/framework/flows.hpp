// N competing flows over one shared bottleneck — the experiment family
// the paper defers (Section 3.4) and the fabric's reason to exist.
//
//   SenderHost  one sender: its own OS model, kernel egress (SenderPath:
//               qdisc + NIC), and endpoint (QUIC stack, ideal, or TCP),
//               registered on the shared path under its flow id.
//   Network     N SenderHosts composed onto one BottleneckPath, with
//               per-flow start delays (a flow can join an ongoing race).
//   run_flows   builds a Network, runs every transfer to its deadline,
//               and demuxes the shared tap into per-flow metrics in a
//               single pass. Runner::run_once is the N=1 call (and stays
//               bit-identical to the historical single-flow wiring);
//               run_duel is the N=2 call.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "framework/endpoint.hpp"
#include "framework/experiment.hpp"
#include "framework/flow_slab.hpp"
#include "framework/network.hpp"
#include "obs/flow_sampler.hpp"
#include "obs/health_report.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/time_series.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"

namespace quicsteps::framework {

struct FlowSpec {
  ExperimentConfig config;
  /// Delay before this flow's sender starts.
  sim::Duration start_delay = sim::Duration::zero();
  /// Wire flow id; 0 = auto-assign. A single flow keeps Runner::run_once's
  /// historical ids (QUIC=1, TCP=2) so N=1 runs are bit-identical to the
  /// old wiring; multi-flow runs get ids 10, 11, ...
  std::uint32_t id = 0;
};

struct MultiFlowConfig {
  /// Topology parameters (bottleneck, RTT, buffers) are taken from
  /// flows[0].config.topology; each sender gets its own qdisc/NIC/OS per
  /// its own config.
  std::vector<FlowSpec> flows;
  std::uint64_t seed = 1;
  /// Stream per-flow gap/offset stats through O(1) Welford accumulators
  /// instead of retaining raw sample vectors (CaptureAnalyzer lite mode).
  /// Required headroom at fabric scale (10k flows); summaries and
  /// fractions survive, per-sample CDFs don't.
  bool lite_metrics = false;
  /// Deterministic 1-in-N flow sampling for the trace spine (<=1 = trace
  /// every flow whose config opted in). Whether a flow is sampled is a
  /// pure function of (seed, flow id) — obs::FlowSampler — so serial and
  /// sharded runs trace identical subsets. Unsampled flows keep a null
  /// bus on their sender components and are filtered at the shared-path
  /// publish, bounding span memory at fabric scale.
  std::uint32_t trace_sample = 0;
  /// Fleet telemetry window width (zero = telemetry off). When set, the
  /// run carries an obs::TimeSeries fed from the wire tap and bottleneck
  /// counters, fleet quantile sketches land in the metrics registry, and
  /// MultiFlowResult::timeseries is populated.
  sim::Duration telemetry_window = sim::Duration::zero();
  /// Ring capacity of the telemetry window store (oldest windows evict
  /// beyond this; evictions are counted, never silent).
  std::size_t telemetry_capacity = 4096;
};

struct MultiFlowResult {
  /// Per-flow results, in flows[] order. dropped_packets holds the drops
  /// attributed to that flow at the shared bottleneck.
  std::vector<RunResult> flows;
  /// Jain's fairness index over the per-flow goodputs (1.0 = perfectly
  /// fair; 1/N = one flow took everything). Zero when nothing moved.
  double fairness = 0.0;
  /// Total bottleneck drops across all flows.
  std::int64_t bottleneck_drops = 0;
  /// Per-component packet/byte books for every stage of the run (sender
  /// qdiscs, bottleneck, netems) — the same rows the conservation auditor
  /// checks, now part of the result.
  net::CountersTable counters;
  /// Everything the run measured about itself: counter-table gauges,
  /// event-loop profile per event class, per-flow pacer ledgers and drop
  /// attribution, (when tracing) per-stage pacing-error histograms, and
  /// (when telemetry is on) the fleet quantile sketches
  /// "fleet/pacing_error_us/wire" and "fleet/fct_us".
  obs::MetricsRegistry metrics;
  /// Windowed fleet telemetry when MultiFlowConfig::telemetry_window is
  /// set; null otherwise. Byte-identical between run_flows and
  /// run_flows_sharded (the feeding tap runs in the serial event core).
  std::shared_ptr<const obs::TimeSeries> timeseries;
};

/// One sender host: kernel egress chain + endpoint, attached to the shared
/// path under `flow_id`. The host's OsModel lives on the flow slab's kernel
/// lane (same slot), not inside the host — `os` must outlive it.
class SenderHost {
 public:
  SenderHost(sim::EventLoop& loop, const FlowSpec& spec,
             std::uint32_t flow_id, std::uint64_t seed, kernel::OsModel& os,
             BottleneckPath& path, RunResult& live_result);

  /// Starts the endpoint (server send loop + application source).
  void start() { endpoint_->start(); }

  std::uint32_t flow_id() const { return flow_id_; }
  sim::Duration start_delay() const { return spec_.start_delay; }
  const ExperimentConfig& config() const { return spec_.config; }
  kernel::OsModel& os() { return os_; }
  const kernel::Qdisc& qdisc() const { return path_.qdisc(); }
  FlowEndpoint& endpoint() { return *endpoint_; }
  const FlowEndpoint& endpoint() const { return *endpoint_; }

  /// Installs tracing on this host's user-space (stack, socket) and kernel
  /// (qdisc, NIC) components, registered under `prefix` in path order.
  void set_trace(obs::TraceBus& bus, const std::string& prefix) {
    endpoint_->set_trace(bus, prefix);
    path_.set_trace(bus, prefix);
  }

 private:
  std::uint32_t flow_id_;
  FlowSpec spec_;
  kernel::OsModel& os_;
  SenderPath path_;
  // The endpoint stays behind one pointer: it is the polymorphic seam
  // (QUIC stack / ideal server / TCP baseline share no layout). Everything
  // monomorphic about a flow lives flat on the slab lanes.
  std::unique_ptr<FlowEndpoint> endpoint_;
};

/// N sender hosts on one shared bottleneck path.
class Network {
 public:
  /// `live_results[i]` receives flow i's streaming fields (cwnd trace)
  /// during the run; it must be sized to the flow count and outlive the
  /// network. Flow ids come from FlowSpec::id (0 = auto, see FlowSpec).
  Network(sim::EventLoop& loop, const MultiFlowConfig& config, sim::Rng& rng,
          std::vector<RunResult>& live_results);

  /// Starts every flow: zero-delay flows immediately (in flows[] order),
  /// delayed flows via scheduled events.
  void start();

  /// When the run gives up: the max over flows of start delay + per-flow
  /// deadline — every flow gets its full time budget (the old duel loop
  /// granted only flow A's).
  sim::Time deadline() const { return deadline_; }

  BottleneckPath& path() { return *path_; }
  std::size_t flow_count() const { return handles_.size(); }
  SenderHost& host(std::size_t i) { return hosts_.record(handles_[i]); }

  /// Per-component counters / conservation stages across all hosts plus
  /// the shared path. Single-host networks use Topology's stage names;
  /// multi-host networks prefix per-sender stages with "host<i>/".
  net::CountersTable counters_table() const;
  check::ConservationAuditor conservation_auditor() const;

  /// Installs tracing on every host and the shared path. Component ids are
  /// assigned in wiring order (hosts in flows[] order, then the path), so
  /// the table is a pure function of the config.
  void set_trace(obs::TraceBus& bus);
  /// Sampled variant: hosts whose flow id the sampler rejects keep a null
  /// bus (their sender-side spans cost nothing); the shared path is always
  /// wired and the bus filters its per-flow packets via the sampler. The
  /// component table stays a pure function of (config, seed).
  void set_trace(obs::TraceBus& bus, const obs::FlowSampler& sampler);

 private:
  sim::EventLoop& loop_;
  // path_ before hosts_: hosts are destroyed first (their NICs point into
  // the path, their endpoints into the slab's OS lane).
  std::unique_ptr<BottleneckPath> path_;
  // Per-flow state lives flat on the slab (OS lane + host lane, one slot
  // per flow) instead of N heap objects; handles_ maps flows[] order to
  // generation-checked slots.
  FlowStateSlab<SenderHost> hosts_;
  std::vector<FlowStateSlab<SenderHost>::Handle> handles_;
  sim::Time deadline_;
};

/// Jain's fairness index (sum x)^2 / (n * sum x^2); 0 when all x are 0.
double jain_index(const std::vector<double>& xs);

/// Simulated-time budget for a whole multi-flow run, measured from t=0:
/// max over flows of start_delay + run_deadline + workload_duration.
sim::Duration flows_deadline(const MultiFlowConfig& config);

/// Runs N competing flows to completion (or deadline) and extracts every
/// per-flow metric from the shared tap in one pass.
MultiFlowResult run_flows(const MultiFlowConfig& config);

/// Shard plan for the per-flow phases of a multi-flow run. The event-loop
/// core is one serial discrete-event simulation either way (the flows
/// share a bottleneck — their packets interleave in one timeline); what
/// shards is the embarrassingly parallel per-flow work around it: the
/// post-run extraction of each flow's reports, hash, capture, and trace
/// from the shared tap state. Every shard writes preassigned per-flow
/// slots and the merge reads them back in flows[] order, so a sharded run
/// is bit-identical to the serial one at any shard size and job count
/// (tests/flows_test.cpp pins this at N=1000).
struct ShardPlan {
  /// Flows per shard (0 = everything in one shard).
  std::size_t shard_size = 256;
  /// Worker threads for the sharded phases (<=1 = serial).
  int jobs = 1;
};

/// run_flows with the per-flow extraction phase split into deterministic,
/// merge-stable shards. ParallelRunner::run_flow_shards is the pooled
/// entry point.
MultiFlowResult run_flows_sharded(const MultiFlowConfig& config,
                                  const ShardPlan& shards);

/// Builds the deterministic run health report (obs::HealthReport) from a
/// finished fleet run: stall/spike/drop-burst detection over the
/// telemetry windows, fleet tail summaries from the registry sketches,
/// and conservation deltas from the counters table. Works on any result —
/// sections without telemetry inputs stay empty.
obs::HealthReport fleet_health(const MultiFlowConfig& config,
                               const MultiFlowResult& result);

}  // namespace quicsteps::framework
