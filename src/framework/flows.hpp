// N competing flows over one shared bottleneck — the experiment family
// the paper defers (Section 3.4) and the fabric's reason to exist.
//
//   SenderHost  one sender: its own OS model, kernel egress (SenderPath:
//               qdisc + NIC), and endpoint (QUIC stack, ideal, or TCP),
//               registered on the shared path under its flow id.
//   Network     N SenderHosts composed onto one BottleneckPath, with
//               per-flow start delays (a flow can join an ongoing race).
//   run_flows   builds a Network, runs every transfer to its deadline,
//               and demuxes the shared tap into per-flow metrics in a
//               single pass. Runner::run_once is the N=1 call (and stays
//               bit-identical to the historical single-flow wiring);
//               run_duel is the N=2 call.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include <string>

#include "framework/endpoint.hpp"
#include "framework/experiment.hpp"
#include "framework/network.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"

namespace quicsteps::framework {

struct FlowSpec {
  ExperimentConfig config;
  /// Delay before this flow's sender starts.
  sim::Duration start_delay = sim::Duration::zero();
  /// Wire flow id; 0 = auto-assign. A single flow keeps Runner::run_once's
  /// historical ids (QUIC=1, TCP=2) so N=1 runs are bit-identical to the
  /// old wiring; multi-flow runs get ids 10, 11, ...
  std::uint32_t id = 0;
};

struct MultiFlowConfig {
  /// Topology parameters (bottleneck, RTT, buffers) are taken from
  /// flows[0].config.topology; each sender gets its own qdisc/NIC/OS per
  /// its own config.
  std::vector<FlowSpec> flows;
  std::uint64_t seed = 1;
};

struct MultiFlowResult {
  /// Per-flow results, in flows[] order. dropped_packets holds the drops
  /// attributed to that flow at the shared bottleneck.
  std::vector<RunResult> flows;
  /// Jain's fairness index over the per-flow goodputs (1.0 = perfectly
  /// fair; 1/N = one flow took everything). Zero when nothing moved.
  double fairness = 0.0;
  /// Total bottleneck drops across all flows.
  std::int64_t bottleneck_drops = 0;
  /// Per-component packet/byte books for every stage of the run (sender
  /// qdiscs, bottleneck, netems) — the same rows the conservation auditor
  /// checks, now part of the result.
  net::CountersTable counters;
  /// Everything the run measured about itself: counter-table gauges,
  /// event-loop profile per event class, per-flow pacer ledgers and drop
  /// attribution, and (when tracing) per-stage pacing-error histograms.
  obs::MetricsRegistry metrics;
};

/// One sender host: OS + kernel egress chain + endpoint, attached to the
/// shared path under `flow_id`.
class SenderHost {
 public:
  SenderHost(sim::EventLoop& loop, const FlowSpec& spec,
             std::uint32_t flow_id, std::uint64_t seed,
             std::unique_ptr<kernel::OsModel> os, BottleneckPath& path,
             RunResult& live_result);

  /// Starts the endpoint (server send loop + application source).
  void start() { endpoint_->start(); }

  std::uint32_t flow_id() const { return flow_id_; }
  sim::Duration start_delay() const { return spec_.start_delay; }
  const ExperimentConfig& config() const { return spec_.config; }
  kernel::OsModel& os() { return *os_; }
  const kernel::Qdisc& qdisc() const { return path_.qdisc(); }
  FlowEndpoint& endpoint() { return *endpoint_; }
  const FlowEndpoint& endpoint() const { return *endpoint_; }

  /// Installs tracing on this host's user-space (stack, socket) and kernel
  /// (qdisc, NIC) components, registered under `prefix` in path order.
  void set_trace(obs::TraceBus& bus, const std::string& prefix) {
    endpoint_->set_trace(bus, prefix);
    path_.set_trace(bus, prefix);
  }

 private:
  std::uint32_t flow_id_;
  FlowSpec spec_;
  std::unique_ptr<kernel::OsModel> os_;
  SenderPath path_;
  std::unique_ptr<FlowEndpoint> endpoint_;
};

/// N sender hosts on one shared bottleneck path.
class Network {
 public:
  /// `live_results[i]` receives flow i's streaming fields (cwnd trace)
  /// during the run; it must be sized to the flow count and outlive the
  /// network. Flow ids come from FlowSpec::id (0 = auto, see FlowSpec).
  Network(sim::EventLoop& loop, const MultiFlowConfig& config, sim::Rng& rng,
          std::vector<RunResult>& live_results);

  /// Starts every flow: zero-delay flows immediately (in flows[] order),
  /// delayed flows via scheduled events.
  void start();

  /// When the run gives up: the max over flows of start delay + per-flow
  /// deadline — every flow gets its full time budget (the old duel loop
  /// granted only flow A's).
  sim::Time deadline() const { return deadline_; }

  BottleneckPath& path() { return *path_; }
  std::size_t flow_count() const { return hosts_.size(); }
  SenderHost& host(std::size_t i) { return *hosts_[i]; }

  /// Per-component counters / conservation stages across all hosts plus
  /// the shared path. Single-host networks use Topology's stage names;
  /// multi-host networks prefix per-sender stages with "host<i>/".
  net::CountersTable counters_table() const;
  check::ConservationAuditor conservation_auditor() const;

  /// Installs tracing on every host and the shared path. Component ids are
  /// assigned in wiring order (hosts in flows[] order, then the path), so
  /// the table is a pure function of the config.
  void set_trace(obs::TraceBus& bus);

 private:
  sim::EventLoop& loop_;
  std::unique_ptr<BottleneckPath> path_;
  std::vector<std::unique_ptr<SenderHost>> hosts_;
  sim::Time deadline_;
};

/// Jain's fairness index (sum x)^2 / (n * sum x^2); 0 when all x are 0.
double jain_index(const std::vector<double>& xs);

/// Simulated-time budget for a whole multi-flow run, measured from t=0:
/// max over flows of start_delay + run_deadline + workload_duration.
sim::Duration flows_deadline(const MultiFlowConfig& config);

/// Runs N competing flows to completion (or deadline) and extracts every
/// per-flow metric from the shared tap in one pass.
MultiFlowResult run_flows(const MultiFlowConfig& config);

}  // namespace quicsteps::framework
