// Competing flows (paper Section 3.4 future work): two connections share
// the 40 Mbit/s bottleneck, each with its own server host (stack + qdisc +
// NIC). Measures per-flow goodput, Jain's fairness index, and loss — the
// questions the paper defers: does pacing keep competing flows from
// synchronizing their losses, and who wins the buffer?
#pragma once

#include "framework/experiment.hpp"

namespace quicsteps::framework {

struct DuelConfig {
  /// Flow 1 and flow 2 configurations. Topology parameters (bottleneck,
  /// RTT, buffers) are taken from `a.topology`; each flow gets its own
  /// server-side qdisc per its own config.
  ExperimentConfig a;
  ExperimentConfig b;
  /// Head start for flow A before B joins.
  sim::Duration b_start_delay = sim::Duration::zero();
  std::uint64_t seed = 1;
};

struct DuelResult {
  RunResult a;
  RunResult b;
  /// Jain's fairness index over the two goodputs (1.0 = perfectly fair).
  double fairness = 0.0;
  std::int64_t bottleneck_drops = 0;
};

DuelResult run_duel(const DuelConfig& config);

}  // namespace quicsteps::framework
