// Artifact export — the paper publishes its packet captures, logs, and
// evaluation inputs (Appendix B); these helpers write the simulation's
// equivalents as CSV so external tooling (pandas/gnuplot) can re-analyze
// runs without touching C++.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "framework/experiment.hpp"
#include "net/packet.hpp"
#include "obs/exporters.hpp"

namespace quicsteps::framework {

/// Writes a wire capture as CSV: one row per packet with the timestamps
/// and metadata the paper's evaluation scripts consume
/// (id, flow, kind, packet_number, size, wire_time_ns, expected_send_ns,
///  kernel_entry_ns, txtime_ns, gso_buffer, gso_index).
void write_capture_csv(std::ostream& out,
                       const std::vector<net::Packet>& capture);

/// Writes a congestion-window trace (Fig. 7 data) as CSV:
/// time_ns, cwnd_bytes, bytes_in_flight.
void write_cwnd_trace_csv(std::ostream& out, const RunResult& run);

/// Writes per-packet inter-arrival gaps (ms) as a single CSV column.
void write_gaps_csv(std::ostream& out, const RunResult& run);

/// One-row experiment summary (headers on request): goodput, drops,
/// losses, pacing metrics.
void write_summary_csv(std::ostream& out, const std::string& label,
                       const RunResult& run, bool header);

/// Writes a run's per-packet path trace (RunResult::trace) as path-qlog
/// JSONL — header only when the run was untraced.
void write_path_qlog(std::ostream& out, const RunResult& run,
                     const std::string& title);

/// Same trace as CSV (obs exporter column set) — header row only when the
/// run was untraced.
void write_path_trace_csv(std::ostream& out, const RunResult& run);

}  // namespace quicsteps::framework
