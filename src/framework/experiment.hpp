// Experiment configuration and per-run results — the vocabulary every
// bench and example speaks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "framework/topology.hpp"
#include "obs/trace.hpp"
#include "quic/app_source.hpp"
#include "metrics/gap_analyzer.hpp"
#include "metrics/goodput.hpp"
#include "metrics/precision.hpp"
#include "metrics/train_analyzer.hpp"
#include "stacks/stack_profile.hpp"

namespace quicsteps::framework {

enum class StackKind : std::uint8_t {
  kQuiche,
  kQuicheSf,   // quiche + the paper's SF patch (rollback disabled)
  kPicoquic,
  kNgtcp2,
  kTcpTls,     // nginx/wget baseline
  kIdealQuic,  // perfect user-space pacing (reference server, ablations)
};

const char* to_string(StackKind kind);

struct ExperimentConfig {
  std::string label;
  StackKind stack = StackKind::kQuiche;
  cc::CcAlgorithm cca = cc::CcAlgorithm::kCubic;
  kernel::GsoMode gso = kernel::GsoMode::kOff;
  int gso_segments = 16;
  /// Batch sends with sendmmsg (kernel can still pace per packet).
  bool use_sendmmsg = false;
  /// SO_TXTIME scheduling headroom for txtime stacks (ETF deployments).
  sim::Duration txtime_headroom = sim::Duration::zero();
  TopologyConfig topology;
  /// Transfer size. The paper uses 100 MiB; benches default to a scaled
  /// transfer for turnaround and honor QUICSTEPS_PAYLOAD_MIB.
  std::int64_t payload_bytes = 10ll * 1024 * 1024;
  int repetitions = 5;
  std::uint64_t seed = 1;
  bool record_cwnd_trace = false;
  /// Application workload shape (bulk download, chunked VOD, CBR
  /// real-time); QUIC stacks only.
  quic::SourceConfig workload;
  /// Retain the full tap capture in RunResult (CSV export, tooling).
  bool keep_capture = false;
  /// Write a qlog JSON-SEQ trace of the server connection to this path
  /// (empty = no trace). One file per repetition: "<path>.<rep>".
  std::string qlog_path;
  /// Record per-packet path spans (pacer release through delivery) on the
  /// run's TraceBus; the finished trace lands in RunResult::trace. Requires
  /// a QUICSTEPS_TRACE build (silently off otherwise).
  bool trace = false;

  ExperimentConfig& with(StackKind s, cc::CcAlgorithm a) {
    stack = s;
    cca = a;
    return *this;
  }
};

struct RunResult {
  bool completed = false;
  metrics::GapReport gaps;
  metrics::TrainReport trains;
  metrics::PrecisionReport precision;
  metrics::GoodputReport goodput;
  std::int64_t dropped_packets = 0;  // at the bottleneck
  std::int64_t wire_data_packets = 0;
  /// FNV-1a digest of every wire-tap departure timestamp, in wire order —
  /// the run's determinism fingerprint. Serial and parallel executions of
  /// the same (config, seed) must produce the same value at any job count
  /// (tests/check_test.cpp and tools/check.sh enforce this).
  std::uint64_t wire_hash = 0;

  // Sender-side stats.
  std::int64_t packets_sent = 0;
  std::int64_t packets_declared_lost = 0;
  std::int64_t retransmissions = 0;
  std::int64_t send_syscalls = 0;
  double cpu_time_ms = 0.0;
  std::int64_t cc_rollbacks = 0;
  /// Pacer ledger (QUIC flows): packets the pacer released and how often
  /// it made the stack wait.
  std::int64_t pacer_releases = 0;
  std::int64_t pacer_deferrals = 0;

  /// This flow's per-packet path spans when ExperimentConfig::trace was
  /// set (component table shared across flows; events filtered to the
  /// flow). Null otherwise.
  std::shared_ptr<const obs::TraceData> trace;

  /// Full tap capture when ExperimentConfig::keep_capture is set.
  std::shared_ptr<const std::vector<net::Packet>> capture;

  /// (time, cwnd, bytes_in_flight) trace when requested (Fig. 7).
  struct CwndPoint {
    sim::Time t;
    std::int64_t cwnd;
    std::int64_t in_flight;
  };
  std::vector<CwndPoint> cwnd_trace;
};

/// Environment knobs shared by all benches:
///   QUICSTEPS_PAYLOAD_MIB — transfer size per repetition (default 10)
///   QUICSTEPS_REPS        — repetitions per configuration (default 5)
std::int64_t env_payload_bytes(std::int64_t fallback = 10ll * 1024 * 1024);
int env_repetitions(int fallback = 5);

}  // namespace quicsteps::framework
