#include "framework/duel.hpp"

#include <utility>

#include "framework/flows.hpp"

namespace quicsteps::framework {

DuelResult run_duel(const DuelConfig& config) {
  // The N=2 instantiation of the flow fabric: no hand-built path here.
  // run_flows also fixes two old duel bugs — the run deadline covers both
  // flows (not just A's budget plus B's delay), and an unregistered flow
  // id trips an audit instead of being silently routed to flow B.
  MultiFlowConfig flows;
  flows.seed = config.seed;
  flows.flows.push_back(FlowSpec{.config = config.a});
  flows.flows.push_back(
      FlowSpec{.config = config.b, .start_delay = config.b_start_delay});
  MultiFlowResult multi = run_flows(flows);

  DuelResult result;
  result.a = std::move(multi.flows[0]);
  result.b = std::move(multi.flows[1]);
  result.fairness = multi.fairness;
  result.bottleneck_drops = multi.bottleneck_drops;
  return result;
}

}  // namespace quicsteps::framework
