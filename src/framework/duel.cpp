#include "framework/duel.hpp"

#include <memory>
#include <utility>

#include "framework/runner.hpp"
#include "kernel/nic.hpp"
#include "kernel/qdisc_etf.hpp"
#include "kernel/qdisc_fifo.hpp"
#include "kernel/qdisc_fq.hpp"
#include "kernel/qdisc_fq_codel.hpp"
#include "kernel/qdisc_netem.hpp"
#include "kernel/qdisc_tbf.hpp"
#include "kernel/udp_socket.hpp"
#include "net/wire_tap.hpp"
#include "quic/client.hpp"
#include "stacks/event_loop_model.hpp"
#include "tcp/tcp_client.hpp"
#include "tcp/tcp_server.hpp"

namespace quicsteps::framework {

namespace {

/// One sender host plus its matching client endpoint (QUIC or TCP).
struct Flow {
  std::uint32_t id;
  std::unique_ptr<kernel::OsModel> os;
  std::unique_ptr<kernel::Nic> nic;
  std::unique_ptr<kernel::Qdisc> qdisc;
  std::unique_ptr<stacks::StackServer> quic_server;
  std::unique_ptr<tcp::TcpServer> tcp_server;
  std::unique_ptr<quic::Client> quic_client;
  std::unique_ptr<tcp::TcpClient> tcp_client;

  void start() {
    if (quic_server != nullptr) {
      quic_server->start();
    } else {
      tcp_server->start();
    }
  }
  void on_ack(const net::Packet& pkt) {
    if (quic_server != nullptr) {
      quic_server->on_datagram(pkt);
    } else {
      tcp_server->on_datagram(pkt);
    }
  }
  void on_data(const net::Packet& pkt) {
    if (quic_client != nullptr) {
      quic_client->on_datagram(pkt);
    } else {
      tcp_client->on_datagram(pkt);
    }
  }
};

std::unique_ptr<kernel::Qdisc> make_qdisc(sim::EventLoop& loop,
                                          const ExperimentConfig& config,
                                          kernel::OsModel& os,
                                          net::PacketSink* downstream) {
  switch (config.topology.server_qdisc) {
    case QdiscKind::kFifo:
      return std::make_unique<kernel::FifoQdisc>(
          loop, kernel::FifoQdisc::Config{}, downstream);
    case QdiscKind::kFqCodel: {
      kernel::FqCodelQdisc::Config cfg;
      cfg.drain_rate = config.topology.server_nic_rate;
      return std::make_unique<kernel::FqCodelQdisc>(loop, cfg, downstream);
    }
    case QdiscKind::kFq:
      return std::make_unique<kernel::FqQdisc>(
          loop, kernel::FqQdisc::Config{}, os, downstream);
    case QdiscKind::kEtf:
    case QdiscKind::kEtfOffload:
      return std::make_unique<kernel::EtfQdisc>(loop, config.topology.etf,
                                                os, downstream);
  }
  return nullptr;
}

void fill_run_result(RunResult& result, const Flow& flow,
                     const std::vector<net::Packet>& capture) {
  const std::uint32_t id = flow.id;
  metrics::GapAnalyzer gaps({.flow = id});
  metrics::TrainAnalyzer trains({.flow = id});
  metrics::PrecisionAnalyzer precision({.flow = id});
  result.gaps = gaps.analyze(capture);
  result.trains = trains.analyze(capture);
  result.precision = precision.analyze(capture);
  result.wire_data_packets =
      static_cast<std::int64_t>(gaps.data_times(capture).size());
  if (flow.quic_server != nullptr) {
    const auto& conn = flow.quic_server->connection();
    result.packets_sent = conn.stats().packets_sent;
    result.packets_declared_lost = conn.stats().packets_declared_lost;
    result.retransmissions = conn.stats().packets_retransmitted;
    result.completed = flow.quic_client->complete();
    result.goodput = metrics::compute_goodput(
        flow.quic_client->stats().payload_bytes_received,
        flow.quic_client->stats().first_packet_time,
        flow.quic_client->stats().completion_time);
  } else {
    const auto& conn = flow.tcp_server->connection();
    result.packets_sent = conn.stats().segments_sent;
    result.packets_declared_lost = conn.stats().segments_declared_lost;
    result.retransmissions = conn.stats().segments_retransmitted;
    result.completed = flow.tcp_client->complete();
    result.goodput = metrics::compute_goodput(
        flow.tcp_client->stats().payload_bytes_received,
        flow.tcp_client->stats().first_packet_time,
        flow.tcp_client->stats().completion_time);
  }
}

}  // namespace

DuelResult run_duel(const DuelConfig& config) {
  sim::EventLoop loop;
  sim::Rng rng(config.seed);

  const TopologyConfig& topo = config.a.topology;
  kernel::OsModel client_os(topo.client_os, rng.fork(100));

  // Shared path pieces, downstream-first. Flow endpoints attach later via
  // the dispatch sinks.
  Flow flows[2];
  net::CallbackSink to_clients([&flows](net::Packet pkt) {
    Flow& flow = pkt.flow == flows[0].id ? flows[0] : flows[1];
    flow.on_data(pkt);
  });
  kernel::UdpReceiver client_receiver(loop, client_os,
                                      topo.client_rcvbuf_bytes,
                                      [&to_clients](net::Packet pkt) {
                                        to_clients.deliver(std::move(pkt));
                                      });
  kernel::NetemQdisc data_netem(
      loop,
      {.delay = topo.path_delay_one_way,
       .limit_packets = topo.netem_limit_packets},
      rng.fork(101), &client_receiver);
  kernel::TbfQdisc bottleneck(loop,
                              {.rate = topo.bottleneck_rate,
                               .burst_bytes = topo.tbf_burst_bytes,
                               .limit_bytes = topo.bottleneck_buffer_bytes},
                              &data_netem);
  net::WireTap tap(loop, &bottleneck);

  net::CallbackSink to_servers([&flows](net::Packet pkt) {
    Flow& flow = pkt.flow == flows[0].id ? flows[0] : flows[1];
    flow.on_ack(pkt);
  });
  kernel::OsModel server_recv_os(topo.server_os, rng.fork(102));
  kernel::UdpReceiver server_receiver(loop, server_recv_os,
                                      topo.client_rcvbuf_bytes,
                                      [&to_servers](net::Packet pkt) {
                                        to_servers.deliver(std::move(pkt));
                                      });
  kernel::NetemQdisc ack_netem(
      loop,
      {.delay = topo.path_delay_one_way,
       .limit_packets = topo.netem_limit_packets},
      rng.fork(103), &server_receiver);

  // Per-flow sender hosts and client endpoints.
  const ExperimentConfig* configs[2] = {&config.a, &config.b};
  for (int i = 0; i < 2; ++i) {
    Flow& flow = flows[i];
    const ExperimentConfig& exp = *configs[i];
    flow.id = static_cast<std::uint32_t>(10 + i);
    flow.os = std::make_unique<kernel::OsModel>(
        exp.topology.server_os, rng.fork(200 + static_cast<std::uint64_t>(i)));

    kernel::Nic::Config nic_cfg;
    nic_cfg.line_rate = exp.topology.server_nic_rate;
    nic_cfg.launch_time =
        exp.topology.server_qdisc == QdiscKind::kEtfOffload;
    flow.nic = std::make_unique<kernel::Nic>(loop, nic_cfg, *flow.os, &tap);
    flow.qdisc = make_qdisc(loop, exp, *flow.os, flow.nic.get());

    if (exp.stack == StackKind::kTcpTls) {
      tcp::TcpServer::Config scfg;
      scfg.connection.total_payload_bytes = exp.payload_bytes;
      scfg.connection.flow = flow.id;
      scfg.connection.cc.algorithm = exp.cca;
      scfg.line_rate = exp.topology.server_nic_rate;
      flow.tcp_server = std::make_unique<tcp::TcpServer>(loop, scfg,
                                                         flow.qdisc.get());
      flow.tcp_client = std::make_unique<tcp::TcpClient>(
          loop,
          tcp::TcpClient::Config{.flow = flow.id,
                                 .expected_payload_bytes = exp.payload_bytes,
                                 .ack = {}},
          &ack_netem);
    } else {
      auto profile = profile_for(exp);
      quic::Connection::Config conn_cfg;
      conn_cfg.total_payload_bytes = exp.payload_bytes;
      conn_cfg.flow = flow.id;
      conn_cfg.flow_control_credit = profile.flow_control_credit;
      flow.quic_server = std::make_unique<stacks::StackServer>(
          loop, *flow.os, profile, conn_cfg, flow.qdisc.get());
      flow.quic_client = std::make_unique<quic::Client>(
          loop,
          quic::Client::Config{.flow = flow.id,
                               .ack = {},
                               .expected_payload_bytes = exp.payload_bytes,
                               .flow_control_credit =
                                   profile.flow_control_credit},
          &ack_netem);
    }
  }

  flows[0].start();
  // Pointer capture: `flows` outlives run_until below, but the scheduled
  // callback must not hold a reference to a local by the analyzer's
  // dangling-callback rule (scheduling/ref-capture).
  Flow* flow_b = &flows[1];
  loop.schedule_after(config.b_start_delay, [flow_b] { flow_b->start(); });
  loop.run_until(sim::Time::zero() + run_deadline(config.a) +
                 config.b_start_delay);

  DuelResult result;
  fill_run_result(result.a, flows[0], tap.capture());
  fill_run_result(result.b, flows[1], tap.capture());
  result.bottleneck_drops = bottleneck.counters().packets_dropped;
  const double ga = result.a.goodput.goodput.mbps();
  const double gb = result.b.goodput.goodput.mbps();
  if (ga + gb > 0) {
    result.fairness =
        (ga + gb) * (ga + gb) / (2.0 * (ga * ga + gb * gb));
  }
  return result;
}

}  // namespace quicsteps::framework
