#include "framework/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <utility>

#include "framework/parallel_for.hpp"
#include "framework/runner.hpp"

namespace quicsteps::framework {

int env_jobs(int fallback) {
  if (const char* env = std::getenv("QUICSTEPS_JOBS")) {
    const long jobs = std::strtol(env, nullptr, 10);
    if (jobs > 0) return static_cast<int>(jobs);
  }
  return fallback;
}

ParallelRunner::ParallelRunner(int jobs) {
  if (jobs <= 0) jobs = env_jobs(0);
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs_ = jobs > 0 ? jobs : 1;
}

std::vector<RunResult> ParallelRunner::run_all(
    const ExperimentConfig& config) const {
  return run_grid({config}).front();
}

std::vector<std::vector<RunResult>> ParallelRunner::run_grid(
    const std::vector<ExperimentConfig>& configs) const {
  // Flatten the (config, repetition) grid into one task list; each task
  // writes into its preassigned slot, so completion order is irrelevant.
  struct Task {
    std::size_t config;
    int rep;
  };
  std::vector<Task> tasks;
  std::vector<std::vector<RunResult>> results(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const int reps = std::max(configs[c].repetitions, 0);
    results[c].resize(static_cast<std::size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) tasks.push_back({c, rep});
  }

  parallel_for(tasks.size(), jobs_, [&](std::size_t i) {
    const Task& task = tasks[i];
    const ExperimentConfig& config = configs[task.config];
    results[task.config][static_cast<std::size_t>(task.rep)] =
        Runner::run_once(config,
                         config.seed + static_cast<std::uint64_t>(task.rep));
  });
  return results;
}

std::vector<DuelResult> ParallelRunner::run_duels(
    const std::vector<DuelConfig>& duels) const {
  std::vector<DuelResult> results(duels.size());
  parallel_for(duels.size(), jobs_,
               [&](std::size_t i) { results[i] = run_duel(duels[i]); });
  return results;
}

std::vector<MultiFlowResult> ParallelRunner::run_flow_sets(
    const std::vector<MultiFlowConfig>& configs) const {
  std::vector<MultiFlowResult> results(configs.size());
  parallel_for(configs.size(), jobs_,
               [&](std::size_t i) { results[i] = run_flows(configs[i]); });
  return results;
}

MultiFlowResult ParallelRunner::run_flow_shards(const MultiFlowConfig& config,
                                                std::size_t shard_size) const {
  ShardPlan plan;
  if (shard_size > 0) plan.shard_size = shard_size;
  plan.jobs = jobs_;
  return run_flows_sharded(config, plan);
}

}  // namespace quicsteps::framework
