#include "framework/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

#include "framework/runner.hpp"

namespace quicsteps::framework {

namespace {

/// Runs body(0..n-1), each index exactly once, across `jobs` workers.
/// Inline on the caller thread when one worker (or one task) suffices.
/// The first exception thrown by any body is rethrown on the caller.
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& body) {
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(jobs), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (error == nullptr) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace

int env_jobs(int fallback) {
  if (const char* env = std::getenv("QUICSTEPS_JOBS")) {
    const long jobs = std::strtol(env, nullptr, 10);
    if (jobs > 0) return static_cast<int>(jobs);
  }
  return fallback;
}

ParallelRunner::ParallelRunner(int jobs) {
  if (jobs <= 0) jobs = env_jobs(0);
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs_ = jobs > 0 ? jobs : 1;
}

std::vector<RunResult> ParallelRunner::run_all(
    const ExperimentConfig& config) const {
  return run_grid({config}).front();
}

std::vector<std::vector<RunResult>> ParallelRunner::run_grid(
    const std::vector<ExperimentConfig>& configs) const {
  // Flatten the (config, repetition) grid into one task list; each task
  // writes into its preassigned slot, so completion order is irrelevant.
  struct Task {
    std::size_t config;
    int rep;
  };
  std::vector<Task> tasks;
  std::vector<std::vector<RunResult>> results(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    const int reps = std::max(configs[c].repetitions, 0);
    results[c].resize(static_cast<std::size_t>(reps));
    for (int rep = 0; rep < reps; ++rep) tasks.push_back({c, rep});
  }

  parallel_for(tasks.size(), jobs_, [&](std::size_t i) {
    const Task& task = tasks[i];
    const ExperimentConfig& config = configs[task.config];
    results[task.config][static_cast<std::size_t>(task.rep)] =
        Runner::run_once(config,
                         config.seed + static_cast<std::uint64_t>(task.rep));
  });
  return results;
}

std::vector<DuelResult> ParallelRunner::run_duels(
    const std::vector<DuelConfig>& duels) const {
  std::vector<DuelResult> results(duels.size());
  parallel_for(duels.size(), jobs_,
               [&](std::size_t i) { results[i] = run_duel(duels[i]); });
  return results;
}

std::vector<MultiFlowResult> ParallelRunner::run_flow_sets(
    const std::vector<MultiFlowConfig>& configs) const {
  std::vector<MultiFlowResult> results(configs.size());
  parallel_for(configs.size(), jobs_,
               [&](std::size_t i) { results[i] = run_flows(configs[i]); });
  return results;
}

}  // namespace quicsteps::framework
