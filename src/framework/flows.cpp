#include "framework/flows.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "check/audit.hpp"
#include "check/determinism_hasher.hpp"
#include "framework/parallel_for.hpp"
#include "framework/runner.hpp"
#include "metrics/capture_analysis.hpp"
#include "obs/path_timeline.hpp"

namespace quicsteps::framework {

namespace {

std::uint32_t default_flow_id(const FlowSpec& spec, std::size_t index,
                              std::size_t count) {
  if (spec.id != 0) return spec.id;
  if (count == 1) {
    // Runner::run_once's historical convention, load-bearing for the N=1
    // bit-identity guarantee.
    return spec.config.stack == StackKind::kTcpTls ? 2u : 1u;
  }
  return static_cast<std::uint32_t>(10 + index);
}

/// TimeSeries snapshot provider: cumulative bottleneck counters, read
/// through a raw function pointer (no heap closure on the hot path).
obs::TimeSeries::Snapshot bottleneck_snapshot(void* ctx) {
  Network* net = static_cast<Network*>(ctx);
  const net::Counters& c = net->path().bottleneck().counters();
  obs::TimeSeries::Snapshot snap;
  snap.delivered_packets = c.packets_out;
  snap.dropped_packets = c.packets_dropped;
  snap.backlog_packets = c.packets_queued();
  return snap;
}

}  // namespace

SenderHost::SenderHost(sim::EventLoop& loop, const FlowSpec& spec,
                       std::uint32_t flow_id, std::uint64_t seed,
                       kernel::OsModel& os, BottleneckPath& path,
                       RunResult& live_result)
    : flow_id_(flow_id),
      spec_(spec),
      os_(os),
      path_(loop, spec_.config.topology, os_, path.wire_ingress(),
            path.slab()) {
  endpoint_ =
      make_flow_endpoint(loop, os_, spec_.config, flow_id_, seed,
                         path_.egress(), path.ack_ingress(), live_result);
  endpoint_->enable_batched(path.slab());
  // Duplicate flow ids trip the flow table's registration audit.
  path.register_flow(flow_id_, &endpoint_->data_ingress(),
                     &endpoint_->ack_ingress());
}

Network::Network(sim::EventLoop& loop, const MultiFlowConfig& config,
                 sim::Rng& rng, std::vector<RunResult>& live_results)
    : loop_(loop),
      hosts_(config.flows.size()),
      deadline_(sim::Time::zero() + flows_deadline(config)) {
  QUICSTEPS_AUDIT(!config.flows.empty(), "Network needs at least one flow");
  QUICSTEPS_AUDIT(live_results.size() == config.flows.size(),
                  "live_results must be sized to the flow count");
  if (config.flows.empty()) return;
  const std::size_t n = config.flows.size();

  // Host 0's kernel also runs the shared server-side ACK receiver — as in
  // the single-flow topology, where the one server OS serves both roles.
  // Its slot is reserved and its OS lane built before the path, which
  // borrows the OsModel&. Per-host OS salts are 1 + 16*i: host 0 keeps
  // Topology's fork(1) so an N=1 run is bit-identical to the old wiring,
  // and salts 2-4 stay reserved for the shared path.
  const FlowStateSlab<SenderHost>::Handle host0 = hosts_.reserve_slot();
  kernel::OsModel& host0_os = hosts_.emplace_os(
      host0, config.flows[0].config.topology.server_os, rng.fork(1));
  path_ = std::make_unique<BottleneckPath>(
      loop, config.flows[0].config.topology, rng, host0_os);

  // Routes are bulk-registered: reserve, append per host, sort once at
  // finish (an O(n) insert per flow is O(n^2) at 10k routes).
  path_->begin_flow_registration(n);
  handles_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FlowSpec spec = config.flows[i];
    const std::uint32_t id = default_flow_id(spec, i, n);
    if (n > 1 && !spec.config.qlog_path.empty()) {
      // One qlog file per flow, not N writers on one file.
      spec.config.qlog_path += ".flow" + std::to_string(id);
    }
    const FlowStateSlab<SenderHost>::Handle handle =
        i == 0 ? host0 : hosts_.reserve_slot();
    if (i != 0) {
      hosts_.emplace_os(handle, spec.config.topology.server_os,
                        rng.fork(1 + 16 * static_cast<std::uint64_t>(i)));
    }
    hosts_.emplace_record(handle, loop, spec, id, config.seed,
                          hosts_.os(handle), *path_, live_results[i]);
    handles_.push_back(handle);
  }
  path_->finish_flow_registration();
}

void Network::start() {
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    SenderHost& flow_host = host(i);
    if (flow_host.start_delay().is_zero()) {
      flow_host.start();
      continue;
    }
    // Pointer capture: the host outlives the run loop, but a scheduled
    // callback must not hold a reference to a local by the analyzer's
    // dangling-callback rule (scheduling/ref-capture).
    SenderHost* delayed = &flow_host;
    loop_.schedule_after(flow_host.start_delay(),
                         [delayed] { delayed->start(); });
  }
}

void Network::set_trace(obs::TraceBus& bus) {
  set_trace(bus, obs::FlowSampler());
}

void Network::set_trace(obs::TraceBus& bus, const obs::FlowSampler& sampler) {
  bus.set_sampler(sampler);
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    // Sender-side components of unsampled flows never get a bus: their
    // QUICSTEPS_TRACE_SPAN sites stay on the null-pointer fast path, so an
    // unsampled flow costs the same as an untraced one.
    if (!sampler.sampled(host(i).flow_id())) continue;
    const std::string prefix =
        handles_.size() == 1 ? std::string()
                             : "host" + std::to_string(i) + "/";
    host(i).set_trace(bus, prefix);
  }
  path_->set_trace(bus);
}

net::CountersTable Network::counters_table() const {
  net::CountersTable table;
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    const SenderHost& flow_host = hosts_.record(handles_[i]);
    const std::string prefix =
        handles_.size() == 1 ? std::string("qdisc/")
                             : "host" + std::to_string(i) + "/qdisc/";
    table.add(prefix + flow_host.qdisc().name(), flow_host.qdisc().counters());
  }
  path_->add_counters(table);
  return table;
}

check::ConservationAuditor Network::conservation_auditor() const {
  check::ConservationAuditor auditor;
  for (std::size_t i = 0; i < handles_.size(); ++i) {
    const SenderHost& flow_host = hosts_.record(handles_[i]);
    const std::string prefix =
        handles_.size() == 1 ? std::string("qdisc/")
                             : "host" + std::to_string(i) + "/qdisc/";
    const kernel::Qdisc& qdisc = flow_host.qdisc();
    if (qdisc.backlog_packets() >= 0) {
      // The discipline reports its live depth: audit the full per-stage
      // identity (in == out + dropped + queued, queued == live depth).
      const kernel::Qdisc* q = &qdisc;
      auditor.add_stage(prefix + qdisc.name(), qdisc.counters(),
                        [q] { return q->backlog_packets(); });
    } else {
      auditor.add_stage(prefix + qdisc.name(), qdisc.counters());
    }
  }
  path_->add_conservation_stages(auditor);
  return auditor;
}

double jain_index(const std::vector<double>& xs) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 0.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

sim::Duration flows_deadline(const MultiFlowConfig& config) {
  // Every flow gets its full budget, offset by its start delay — the max,
  // not flow A's budget plus B's delay (which truncated a larger flow B).
  sim::Duration deadline = sim::Duration::zero();
  for (const FlowSpec& spec : config.flows) {
    const sim::Duration flow_deadline = spec.start_delay +
                                        run_deadline(spec.config) +
                                        workload_duration(spec.config);
    if (flow_deadline > deadline) deadline = flow_deadline;
  }
  return deadline;
}

MultiFlowResult run_flows(const MultiFlowConfig& config) {
  // One shard, inline: the historical serial path. run_flows_sharded is
  // bit-identical at any plan, so this is a convenience, not a semantics
  // fork (flows_test asserts the equivalence at N=1000).
  ShardPlan serial;
  serial.shard_size = 0;
  serial.jobs = 1;
  return run_flows_sharded(config, serial);
}

MultiFlowResult run_flows_sharded(const MultiFlowConfig& config,
                                  const ShardPlan& shards) {
  MultiFlowResult result;
  if (config.flows.empty()) return result;

  sim::EventLoop loop;
  sim::Rng rng(config.seed);
  result.flows.resize(config.flows.size());
  Network net(loop, config, rng, result.flows);
  const std::size_t n = net.flow_count();

  // One bus serves the whole network; it is installed only when a flow
  // opted in, so an untraced run keeps every component's bus pointer null
  // (the runtime no-op path BENCH_micro measures).
  obs::TraceBus trace_bus;
  bool tracing = false;
  for (const FlowSpec& spec : config.flows) {
    if (spec.config.trace) tracing = true;
  }
  const obs::FlowSampler sampler(config.seed, config.trace_sample);
  if (tracing && obs::kTraceEnabled) {
    net.set_trace(trace_bus, sampler);
    // Pre-size the span store: ~payload/MSS wire packets per flow, ~9
    // stages each plus ACK-path spans, scaled down by the sampling period
    // (only sampled flows publish). Overshooting slightly is fine — the
    // goal is no reallocation while the run is hot.
    std::size_t hint = 0;
    for (const FlowSpec& spec : config.flows) {
      hint += static_cast<std::size_t>(spec.config.payload_bytes / 1200 + 64) *
              12;
    }
    trace_bus.reserve(hint / sampler.every() + 1024);
  }

  // Fleet telemetry: the windowed time series rides the serial event core
  // (fed from the tap callback below), so serial and sharded runs produce
  // byte-identical series. Counter snapshots land at window rolls.
  const bool telemetry = !config.telemetry_window.is_zero();
  std::unique_ptr<obs::TimeSeries> timeseries;
  obs::TimeSeries* ts = nullptr;
  obs::CounterHandle wire_packets_handle;
  obs::CounterHandle wire_bytes_handle;
  if (telemetry) {
    timeseries = std::make_unique<obs::TimeSeries>(
        config.telemetry_window, config.telemetry_capacity,
        &bottleneck_snapshot, &net);
    ts = timeseries.get();
    // Pre-resolved handles: the per-packet path below pays one int64 add,
    // not a map lookup per touch (obs::CounterHandle).
    wire_packets_handle = result.metrics.counter("fleet/wire_packets");
    wire_bytes_handle = result.metrics.counter("fleet/wire_bytes");
  }

  // All per-flow metrics derive from the shared tap; one incremental pass
  // demuxes each departure into its flow's analyzer, determinism hash,
  // and (when requested) retained capture — the capture is walked once
  // regardless of N. In audit builds the same pass checks that wire time
  // never goes backwards.
  metrics::FlowCaptureDemux demux;
  std::vector<check::DeterminismHasher> hashers(n);
  std::vector<std::shared_ptr<std::vector<net::Packet>>> captures(n);
  metrics::CaptureAnalyzer::Config analyzer_config;
  analyzer_config.lite = config.lite_metrics;
  for (std::size_t i = 0; i < n; ++i) {
    demux.add_flow(net.host(i).flow_id(), analyzer_config);
    if (config.flows[i].config.keep_capture) {
      captures[i] = std::make_shared<std::vector<net::Packet>>();
    }
  }
  check::MonotonicityAuditor tap_monotone("wire-tap departure time");
  std::int64_t tap_packets = 0;
  // The streaming demux below makes the tap's own retained capture dead
  // weight — per-flow captures are filled on the fly when requested. The
  // legacy datapath keeps retaining so that batched_datapath=false stays a
  // faithful pre-batching baseline for A/B benchmarks.
  if (config.flows[0].config.topology.batched_datapath) {
    net.path().tap().set_retain_capture(false);
  }
  net.path().tap().set_on_packet([&demux, &hashers, &captures, &tap_monotone,
                                  &tap_packets, ts, wire_packets_handle,
                                  wire_bytes_handle](const net::Packet& pkt) {
    ++tap_packets;
    if (ts != nullptr) {
      ts->on_wire_packet(pkt.wire_time, pkt.size_bytes);
      wire_packets_handle.add(1);
      wire_bytes_handle.add(pkt.size_bytes);
    }
    const int slot = demux.add(pkt);
    if (slot >= 0) {
      hashers[static_cast<std::size_t>(slot)].add_i64(pkt.wire_time.ns());
      if (captures[static_cast<std::size_t>(slot)] != nullptr) {
        captures[static_cast<std::size_t>(slot)]->push_back(pkt);
      }
    }
    if constexpr (check::kAuditEnabled) {
      tap_monotone.observe(pkt.wire_time.ns());
    }
  });

  net.start();
  loop.run_until(net.deadline());

  // Post-run invariants: every stage's books balance, and the tap saw
  // exactly what entered the bottleneck (they are wired back-to-back).
  if constexpr (check::kAuditEnabled) {
    net.conservation_auditor().audit();
    QUICSTEPS_AUDIT(net.path().bottleneck().counters().packets_in ==
                        tap_packets,
                    "tap and bottleneck disagree on wire packet count");
  }

  // Close the telemetry series before the spans move: finalize attributes
  // the post-run queue drain to the last active window, then the span fold
  // adds per-stage pacing errors into the windows of their timestamps
  // (sampled flows only — exact for the sampled population).
  if (telemetry) timeseries->finalize();

  // Demux the shared bus into per-flow traces: each traced flow gets the
  // full component table plus only its own spans (ACKs included — they
  // carry the flow's id on the return path).
  obs::TraceData all_spans;
  if (tracing) all_spans = trace_bus.take();
  if (telemetry && tracing) timeseries->fold_spans(all_spans.events);

  // Per-flow extraction. The event core above is inherently serial (one
  // shared bottleneck, one clock); what shards is this phase — demux
  // finish, hash digest, fill_result, trace filtering — which touches only
  // flow-indexed slots. Shard-merge determinism rules (DESIGN.md §14):
  // every write lands in a slot preassigned to exactly one flow index
  // (result.flows[i], goodputs[i], demux slot i), shards own disjoint
  // index ranges, and everything cross-flow (fairness, registry fold)
  // happens after the join, iterating flows[] in index order. Output is
  // therefore bit-identical at any shard size and job count.
  std::vector<double> goodputs(n);
  // Per-flow pacing-error sketch slots: each shard writes only its own
  // flows' slots; the fleet merge below reads them back in flows[] index
  // order, so the merged sketch is bit-identical at any shard plan (and
  // order-independent anyway — integer bucket adds commute).
  std::vector<obs::QuantileSketch> flow_sketches(telemetry && tracing ? n : 0);
  auto extract_flow = [&](std::size_t i) {
    RunResult& flow_result = result.flows[i];
    net.host(i).endpoint().fill_result(flow_result);
    metrics::CaptureAnalysis analysis = demux.finish(i);
    flow_result.gaps = std::move(analysis.gaps);
    flow_result.trains = std::move(analysis.trains);
    flow_result.precision = std::move(analysis.precision);
    flow_result.wire_data_packets = analysis.wire_data_packets;
    flow_result.wire_hash = hashers[i].digest();
    flow_result.dropped_packets =
        net.path().bottleneck_drops(net.host(i).flow_id());
    if (captures[i] != nullptr) {
      flow_result.capture = std::move(captures[i]);
    }
    if (tracing && config.flows[i].config.trace &&
        sampler.sampled(net.host(i).flow_id())) {
      const std::uint32_t id = net.host(i).flow_id();
      auto flow_trace = std::make_shared<obs::TraceData>();
      if (n == 1) {
        // Single flow: every span on the bus is this flow's — move the
        // whole trace instead of filter-copying it (the dominant cost of
        // a traced 1-flow run before the batched-datapath work).
        *flow_trace = std::move(all_spans);
      } else {
        flow_trace->components = all_spans.components;
        for (const obs::SpanEvent& ev : all_spans.events) {
          if (ev.flow == id) flow_trace->events.push_back(ev);
        }
      }
      if (!flow_sketches.empty()) {
        // Wire-stage pacing error into this flow's preassigned sketch
        // slot (merged fleet-wide after the join).
        obs::QuantileSketch& sketch = flow_sketches[i];
        for (const obs::SpanEvent& ev : flow_trace->events) {
          if (ev.stage == obs::TraceStage::kWire && ev.intended.ns() != 0) {
            sketch.observe((ev.at - ev.intended).us());
          }
        }
      }
      flow_result.trace = std::move(flow_trace);
    }
    goodputs[i] = flow_result.goodput.goodput.mbps();
  };
  const std::size_t shard_size =
      shards.shard_size == 0 ? n : std::min(shards.shard_size, n);
  const std::size_t shard_count = (n + shard_size - 1) / shard_size;
  parallel_for(shard_count, shards.jobs, [&](std::size_t s) {
    const std::size_t begin = s * shard_size;
    const std::size_t end = std::min(n, begin + shard_size);
    for (std::size_t i = begin; i < end; ++i) extract_flow(i);
  });
  result.fairness = jain_index(goodputs);
  result.bottleneck_drops = net.path().bottleneck_drops();

  // Self-measurement: fold the counter table, the loop profile, and the
  // per-flow ledgers into one deterministic registry.
  result.counters = net.counters_table();
  obs::MetricsRegistry& reg = result.metrics;
  reg.add_counters_table("", result.counters);
  const sim::LoopStats& ls = loop.stats();
  for (std::size_t c = 0; c < sim::kEventClassCount; ++c) {
    const char* cls = sim::to_string(static_cast<sim::EventClass>(c));
    reg.add_counter(std::string("loop/scheduled/") + cls,
                    static_cast<std::int64_t>(ls.scheduled[c]));
    reg.add_counter(std::string("loop/executed/") + cls,
                    static_cast<std::int64_t>(ls.executed[c]));
  }
  reg.add_counter("loop/cancelled", static_cast<std::int64_t>(ls.cancelled));
  reg.add_counter("loop/overflow_scheduled",
                  static_cast<std::int64_t>(ls.overflow_scheduled));
  reg.add_counter("loop/drain_executed",
                  static_cast<std::int64_t>(ls.drain_executed));
  reg.add_counter("loop/drain_batched",
                  static_cast<std::int64_t>(ls.drain_batched));
  reg.set_gauge("loop/max_pending",
                static_cast<std::int64_t>(ls.max_pending));
  for (std::size_t i = 0; i < n; ++i) {
    const RunResult& flow_result = result.flows[i];
    const std::string flow_prefix =
        "flow" + std::to_string(net.host(i).flow_id()) + "/";
    reg.set_gauge(flow_prefix + "bottleneck_drops",
                  flow_result.dropped_packets);
    reg.add_counter(flow_prefix + "pacer_releases",
                    flow_result.pacer_releases);
    reg.add_counter(flow_prefix + "pacer_deferrals",
                    flow_result.pacer_deferrals);
    if (flow_result.trace != nullptr) {
      // Streaming digest — aggregate-identical to build_timelines +
      // count_complete + stage_errors, minus the per-packet materialization
      // (the dominant traced-run overhead before the batched-datapath PR).
      const obs::TraceSummary summary =
          obs::summarize_trace(*flow_result.trace);
      reg.set_gauge(flow_prefix + "complete_chains", summary.complete_chains);
      for (const obs::StageErrorReport& se : summary.errors) {
        reg.histogram(flow_prefix + "pacing_error/" +
                      obs::to_string(se.stage)) = se.error_us;
      }
    }
  }
  if (telemetry) {
    // Fleet tails. Merging the preassigned per-flow slots in flows[]
    // index order keeps the registry output byte-identical at any shard
    // plan (bucket adds commute, but min/max/count do too only because
    // merge is elementwise — the fixed order costs nothing and removes
    // the question).
    if (tracing) {
      obs::QuantileSketch& pacing = reg.sketch("fleet/pacing_error_us/wire");
      for (const obs::QuantileSketch& sk : flow_sketches) pacing.merge(sk);
    }
    obs::QuantileSketch& fct = reg.sketch("fleet/fct_us");
    for (const RunResult& flow_result : result.flows) {
      if (flow_result.completed) {
        fct.observe(flow_result.goodput.elapsed.us());
      }
    }
    result.timeseries = std::move(timeseries);
  }
  return result;
}

obs::HealthReport fleet_health(const MultiFlowConfig& config,
                               const MultiFlowResult& result) {
  obs::HealthContext ctx;
  if (!config.flows.empty()) {
    // Two one-way netem legs: base RTT is twice the one-way delay. The
    // stall threshold scales from this, so a long-RTT run is not flagged
    // for gaps a short-RTT run would sail through.
    ctx.rtt = config.flows[0].config.topology.path_delay_one_way * 2.0;
  }
  ctx.flows = static_cast<std::int64_t>(result.flows.size());
  for (const RunResult& flow : result.flows) {
    if (flow.completed) ++ctx.completed_flows;
  }
  ctx.fairness = result.fairness;
  const auto& sketches = result.metrics.sketches();
  const auto pacing = sketches.find("fleet/pacing_error_us/wire");
  const auto fct = sketches.find("fleet/fct_us");
  return obs::build_health_report(
      ctx, result.timeseries.get(),
      pacing == sketches.end() ? nullptr : &pacing->second,
      fct == sketches.end() ? nullptr : &fct->second, result.counters);
}

}  // namespace quicsteps::framework
