#include "framework/report.hpp"

#include <algorithm>
#include <cstdio>

namespace quicsteps::framework {

namespace {

std::string heading(const std::string& title) {
  std::string out = "\n== " + title + " ==\n";
  return out;
}

}  // namespace

std::string render_goodput_table(const std::vector<Aggregate>& rows,
                                 const std::string& title) {
  std::string out = heading(title);
  char line[160];
  std::snprintf(line, sizeof(line), "%-14s %20s %20s %8s\n", "Configuration",
                "Dropped packets", "Goodput [Mbit/s]", "runs");
  out += line;
  out += std::string(66, '-') + "\n";
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-14s %20s %20s %4d/%-3d\n",
                  row.label.c_str(),
                  row.dropped_packets.to_string(2).c_str(),
                  row.goodput_mbps.to_string(2).c_str(), row.completed,
                  row.repetitions);
    out += line;
  }
  return out;
}

std::string render_gap_figure(const std::vector<Aggregate>& rows,
                              const std::string& title, sim::Duration x_max) {
  std::string out = heading(title);
  std::vector<metrics::Cdf> cdfs;
  cdfs.reserve(rows.size());
  for (const auto& row : rows) cdfs.push_back(row.gap_cdf());
  std::vector<std::pair<std::string, const metrics::Cdf*>> series;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    series.emplace_back(rows[i].label, &cdfs[i]);
  }
  out += metrics::render_ascii_cdf(series, 0.0, x_max.to_millis(), 72, 16,
                                   "inter-packet gap [ms]");
  char line[160];
  std::snprintf(line, sizeof(line), "%-14s %16s %16s %12s\n", "Configuration",
                "back-to-back", "gap < 1.5 ms", "samples");
  out += line;
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-14s %13.1f %%  %13.1f %% %12zu\n",
                  row.label.c_str(),
                  100.0 * row.back_to_back_fraction.mean,
                  100.0 * row.below_1500us_fraction.mean,
                  row.pooled_gaps_ms.size());
    out += line;
  }
  return out;
}

std::string render_train_figure(const std::vector<Aggregate>& rows,
                                const std::string& title) {
  std::string out = heading(title);
  char line[256];

  // Bucketed share of packets per train length, like the paper's bars.
  static const std::pair<std::size_t, std::size_t> kBuckets[] = {
      {1, 1}, {2, 2}, {3, 5}, {6, 10}, {11, 15}, {16, 20}, {21, 1u << 20}};
  std::snprintf(line, sizeof(line),
                "%-14s %6s %6s %6s %6s %6s %6s %6s | %9s %6s\n", "Config",
                "1", "2", "3-5", "6-10", "11-15", "16-20", ">20", "<=5 pkts",
                "max");
  out += line;
  out += std::string(96, '-') + "\n";
  for (const auto& row : rows) {
    double share[7] = {0};
    for (const auto& [len, packets] : row.pooled_packets_by_length) {
      for (int b = 0; b < 7; ++b) {
        if (len >= kBuckets[b].first && len <= kBuckets[b].second) {
          share[b] += static_cast<double>(packets);
          break;
        }
      }
    }
    const double total = std::max<double>(
        1.0, static_cast<double>(row.pooled_total_packets));
    std::size_t max_len = 0;
    if (!row.pooled_packets_by_length.empty()) {
      max_len = row.pooled_packets_by_length.rbegin()->first;
    }
    std::snprintf(
        line, sizeof(line),
        "%-14s %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% %5.1f%% | "
        "%8.2f%% %6zu\n",
        row.label.c_str(), 100 * share[0] / total, 100 * share[1] / total,
        100 * share[2] / total, 100 * share[3] / total, 100 * share[4] / total,
        100 * share[5] / total, 100 * share[6] / total,
        100 * row.fraction_in_trains_up_to(5), max_len);
    out += line;
  }
  return out;
}

std::string render_precision_table(const std::vector<Aggregate>& rows,
                                   const std::string& title) {
  std::string out = heading(title);
  char line[160];
  std::snprintf(line, sizeof(line), "%-18s %24s\n", "Configuration",
                "Precision (stddev) [ms]");
  out += line;
  out += std::string(44, '-') + "\n";
  for (const auto& row : rows) {
    std::snprintf(line, sizeof(line), "%-18s %24s\n", row.label.c_str(),
                  row.precision_ms.to_string(3).c_str());
    out += line;
  }
  return out;
}

std::string render_flow_report(const MultiFlowResult& result,
                               const std::string& title) {
  std::string out = heading(title);
  out += "Per-component counters:\n";
  out += result.counters.to_string();
  char line[160];
  std::snprintf(line, sizeof(line), "\n%-6s %10s %18s %18s %10s\n", "Flow",
                "completed", "Goodput [Mbit/s]", "Bottleneck drops",
                "lost");
  out += line;
  out += std::string(66, '-') + "\n";
  for (std::size_t i = 0; i < result.flows.size(); ++i) {
    const RunResult& flow = result.flows[i];
    std::snprintf(line, sizeof(line), "%-6zu %10s %18.2f %18lld %10lld\n", i,
                  flow.completed ? "yes" : "no", flow.goodput.goodput.mbps(),
                  static_cast<long long>(flow.dropped_packets),
                  static_cast<long long>(flow.packets_declared_lost));
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "\nBottleneck drops total: %lld   Jain fairness: %.4f\n",
                static_cast<long long>(result.bottleneck_drops),
                result.fairness);
  out += line;
  return out;
}

std::string render_cwnd_trace(const RunResult& run, const std::string& title,
                              int width, int height) {
  std::string out = heading(title);
  if (run.cwnd_trace.empty()) {
    out += "(no trace recorded)\n";
    return out;
  }
  const auto t0 = run.cwnd_trace.front().t;
  const auto t1 = run.cwnd_trace.back().t;
  std::int64_t max_cwnd = 1;
  for (const auto& p : run.cwnd_trace) max_cwnd = std::max(max_cwnd, p.cwnd);

  std::vector<std::string> grid(
      static_cast<std::size_t>(height),
      std::string(static_cast<std::size_t>(width), ' '));
  for (const auto& p : run.cwnd_trace) {
    const double xf = (t1 - t0).ns() > 0
                          ? static_cast<double>((p.t - t0).ns()) /
                                static_cast<double>((t1 - t0).ns())
                          : 0.0;
    int col = static_cast<int>(xf * (width - 1) + 0.5);
    int row = static_cast<int>(
        (1.0 - static_cast<double>(p.cwnd) / static_cast<double>(max_cwnd)) *
            (height - 1) +
        0.5);
    col = std::clamp(col, 0, width - 1);
    row = std::clamp(row, 0, height - 1);
    grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = '*';
  }
  char label[64];
  std::snprintf(label, sizeof(label), "cwnd max = %lld bytes\n",
                static_cast<long long>(max_cwnd));
  out += label;
  for (const auto& row : grid) {
    out += "  |" + row + "\n";
  }
  out += "  +" + std::string(static_cast<std::size_t>(width), '-') + "\n";
  std::snprintf(label, sizeof(label), "   %.2fs ... %.2fs\n", t0.to_seconds(),
                t1.to_seconds());
  out += label;
  return out;
}

}  // namespace quicsteps::framework
