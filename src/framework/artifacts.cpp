#include "framework/artifacts.hpp"

namespace quicsteps::framework {

void write_capture_csv(std::ostream& out,
                       const std::vector<net::Packet>& capture) {
  out << "id,flow,kind,packet_number,size_bytes,wire_time_ns,"
         "expected_send_ns,kernel_entry_ns,has_txtime,txtime_ns,"
         "gso_buffer,gso_index\n";
  for (const auto& pkt : capture) {
    out << pkt.id << ',' << pkt.flow << ',' << net::to_string(pkt.kind)
        << ',' << pkt.packet_number << ',' << pkt.size_bytes << ','
        << pkt.wire_time.ns() << ',' << pkt.expected_send_time.ns() << ','
        << pkt.kernel_entry_time.ns() << ',' << (pkt.has_txtime ? 1 : 0)
        << ',' << (pkt.has_txtime ? pkt.txtime.ns() : 0) << ','
        << pkt.gso_buffer_id << ',' << pkt.gso_segment_index << '\n';
  }
}

void write_cwnd_trace_csv(std::ostream& out, const RunResult& run) {
  out << "time_ns,cwnd_bytes,bytes_in_flight\n";
  for (const auto& point : run.cwnd_trace) {
    out << point.t.ns() << ',' << point.cwnd << ',' << point.in_flight
        << '\n';
  }
}

void write_gaps_csv(std::ostream& out, const RunResult& run) {
  out << "gap_ms\n";
  for (double gap : run.gaps.gaps_ms) {
    out << gap << '\n';
  }
}

void write_summary_csv(std::ostream& out, const std::string& label,
                       const RunResult& run, bool header) {
  if (header) {
    out << "label,completed,goodput_mbps,dropped_packets,declared_lost,"
           "retransmissions,packets_sent,wire_data_packets,"
           "back_to_back_fraction,trains_up_to_5_fraction,precision_ms,"
           "send_syscalls,cpu_time_ms,cc_rollbacks\n";
  }
  out << label << ',' << (run.completed ? 1 : 0) << ','
      << run.goodput.goodput.mbps() << ',' << run.dropped_packets << ','
      << run.packets_declared_lost << ',' << run.retransmissions << ','
      << run.packets_sent << ',' << run.wire_data_packets << ','
      << run.gaps.back_to_back_fraction << ','
      << run.trains.fraction_in_trains_up_to(5) << ','
      << run.precision.precision_ms << ',' << run.send_syscalls << ','
      << run.cpu_time_ms << ',' << run.cc_rollbacks << '\n';
}

void write_path_qlog(std::ostream& out, const RunResult& run,
                     const std::string& title) {
  if (run.trace == nullptr) {
    const obs::TraceData empty;
    obs::write_path_qlog(out, empty, title);
    return;
  }
  obs::write_path_qlog(out, *run.trace, title);
}

void write_path_trace_csv(std::ostream& out, const RunResult& run) {
  if (run.trace == nullptr) {
    const obs::TraceData empty;
    obs::write_trace_csv(out, empty);
    return;
  }
  obs::write_trace_csv(out, *run.trace);
}

}  // namespace quicsteps::framework
