// The measurement topology (paper Figure 1), as one wired object:
//
//   server stack ── UdpSocket ── [qdisc under test] ── NIC (1 Gbit/s,
//   optional LaunchTime) ── WIRE TAP (sniffer) ── TBF 40 Mbit/s (the
//   client-side IFB ingress bottleneck; DROPS HAPPEN HERE) ── netem +20 ms
//   ── client UDP receiver (50 MiB buffer) ── client
//
//   client ACKs ── netem +20 ms ── server UDP receiver ── server stack
//
// The tap sits before the shaper, so captured timing reflects the server's
// pacing, not the bottleneck's re-shaping — exactly the paper's design.
//
// Topology is the single-sender (N=1) instantiation of the datapath
// fabric: one framework::SenderPath on one framework::BottleneckPath
// (network.hpp), with endpoint-agnostic handler routing. Competing-flow
// experiments compose N sender hosts onto the same shared path via
// framework::Network (flows.hpp).
#pragma once

#include <cstdint>
#include <memory>

#include "check/conservation_auditor.hpp"
#include "kernel/nic.hpp"
#include "kernel/os_model.hpp"
#include "kernel/qdisc.hpp"
#include "kernel/qdisc_etf.hpp"
#include "kernel/qdisc_fifo.hpp"
#include "kernel/qdisc_fq.hpp"
#include "kernel/qdisc_fq_codel.hpp"
#include "kernel/qdisc_netem.hpp"
#include "kernel/qdisc_tbf.hpp"
#include "kernel/udp_socket.hpp"
#include "net/wire_tap.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"

namespace quicsteps::framework {

class BottleneckPath;
class SenderPath;

enum class QdiscKind : std::uint8_t {
  kFifo,        // pfifo_fast: kernel default, txtime ignored
  kFqCodel,     // Debian default
  kFq,          // timestamp-honoring fair queue
  kEtf,         // software ETF
  kEtfOffload,  // ETF + NIC LaunchTime
};

const char* to_string(QdiscKind kind);

struct TopologyConfig {
  QdiscKind server_qdisc = QdiscKind::kFqCodel;  // Debian Bookworm default
  kernel::EtfQdisc::Config etf;                  // delta defaults to 200 us
  /// TSN-strict LaunchTime (see kernel::Nic::Config::drop_missed_launch).
  bool drop_missed_launch = false;
  net::DataRate server_nic_rate = net::DataRate::gigabits_per_second(1);

  net::DataRate bottleneck_rate = net::DataRate::megabits_per_second(40);
  /// Bottleneck FIFO depth in bytes (1 BDP at 40 Mbit/s x 40 ms = 200 kB).
  std::int64_t bottleneck_buffer_bytes = 200 * 1000;
  std::int64_t tbf_burst_bytes = 2 * 1514;

  sim::Duration path_delay_one_way = sim::Duration::millis(20);
  /// netem queue sized to two BDPs so it never drops (paper Section 3.2).
  std::int64_t netem_limit_packets = 100000;
  /// Path impairments on the DATA direction (tc netem loss/reorder) — zero
  /// in the paper's controlled setup; exposed for robustness experiments.
  double path_loss_probability = 0.0;
  double path_reorder_probability = 0.0;
  sim::Duration path_jitter = sim::Duration::zero();

  std::int64_t client_rcvbuf_bytes = 50 * 1024 * 1024;
  /// Client-side GRO coalescing window (zero = GRO off, the paper setup).
  sim::Duration client_gro_window = sim::Duration::zero();

  kernel::OsTimingConfig server_os;
  kernel::OsTimingConfig client_os;

  /// Batched datapath (the multi-Gbit hot path): per-packet hops ride the
  /// event loop's drain channels with packets stored flat in a shared
  /// net::PacketSlab, instead of one heap-allocated closure per packet.
  /// Timing, RNG draw order, and wire_hash are identical either way
  /// (tests/check_test.cpp pins batched == legacy across stacks x seeds);
  /// OFF reproduces the pre-batching datapath for A/B benchmarking
  /// (bench/bench_ext_highbw.cpp reports the ratio).
  bool batched_datapath = true;
};

/// Owns every path element between (and including) the two hosts' kernels.
/// The transport endpoints attach via the exposed sinks/handlers.
class Topology {
 public:
  Topology(sim::EventLoop& loop, TopologyConfig config, sim::Rng& rng);
  ~Topology();

  /// Head of the server egress chain: the stack's UdpSocket target.
  net::PacketSink* server_egress();
  /// Head of the client egress chain (ACK path back to the server).
  net::PacketSink* client_egress();

  /// Wire the endpoint handlers.
  void set_client_handler(kernel::UdpReceiver::Handler handler);
  void set_server_handler(kernel::UdpReceiver::Handler handler);

  const net::WireTap& tap() const;
  net::WireTap& tap();
  /// Bottleneck drop count — the paper's "dropped packets" column.
  std::int64_t bottleneck_drops() const;
  const kernel::TbfQdisc& bottleneck() const;
  const kernel::Qdisc& server_qdisc() const;
  const kernel::NetemQdisc& data_netem() const;
  const kernel::NetemQdisc& client_netem() const;
  kernel::OsModel& server_os() { return server_os_; }
  kernel::OsModel& client_os();
  const TopologyConfig& config() const { return config_; }

  /// The shared-path half of this topology (the fabric piece the N-flow
  /// Network also builds).
  BottleneckPath& path() { return *path_; }

  /// Per-component counter snapshots in sorted name order.
  net::CountersTable counters_table() const;

  /// Conservation auditor spanning both directions of the path. The
  /// auditor borrows this topology's counters — audit() while it's alive.
  /// Valid at any instant, including mid-run: it checks per-stage book
  /// balance and the synchronous bottleneck -> netem hand-off, not
  /// end-to-end delivery (packets may legitimately be in flight on links).
  check::ConservationAuditor conservation_auditor() const;

 private:
  TopologyConfig config_;
  kernel::OsModel server_os_;
  std::unique_ptr<BottleneckPath> path_;
  std::unique_ptr<SenderPath> sender_;

  // Endpoint-agnostic routing: the shared path's default routes point at
  // these adapters, which forward to whatever handlers are set (or drop).
  net::CallbackSink to_client_;
  net::CallbackSink to_server_;
  kernel::UdpReceiver::Handler client_handler_;
  kernel::UdpReceiver::Handler server_handler_;
};

}  // namespace quicsteps::framework
