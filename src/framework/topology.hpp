// The measurement topology (paper Figure 1), as one wired object:
//
//   server stack ── UdpSocket ── [qdisc under test] ── NIC (1 Gbit/s,
//   optional LaunchTime) ── WIRE TAP (sniffer) ── TBF 40 Mbit/s (the
//   client-side IFB ingress bottleneck; DROPS HAPPEN HERE) ── netem +20 ms
//   ── client UDP receiver (50 MiB buffer) ── client
//
//   client ACKs ── netem +20 ms ── server UDP receiver ── server stack
//
// The tap sits before the shaper, so captured timing reflects the server's
// pacing, not the bottleneck's re-shaping — exactly the paper's design.
#pragma once

#include <cstdint>
#include <memory>

#include "check/conservation_auditor.hpp"
#include "kernel/nic.hpp"
#include "kernel/os_model.hpp"
#include "kernel/qdisc.hpp"
#include "kernel/qdisc_etf.hpp"
#include "kernel/qdisc_fifo.hpp"
#include "kernel/qdisc_fq.hpp"
#include "kernel/qdisc_fq_codel.hpp"
#include "kernel/qdisc_netem.hpp"
#include "kernel/qdisc_tbf.hpp"
#include "kernel/udp_socket.hpp"
#include "net/wire_tap.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"

namespace quicsteps::framework {

enum class QdiscKind : std::uint8_t {
  kFifo,        // pfifo_fast: kernel default, txtime ignored
  kFqCodel,     // Debian default
  kFq,          // timestamp-honoring fair queue
  kEtf,         // software ETF
  kEtfOffload,  // ETF + NIC LaunchTime
};

const char* to_string(QdiscKind kind);

struct TopologyConfig {
  QdiscKind server_qdisc = QdiscKind::kFqCodel;  // Debian Bookworm default
  kernel::EtfQdisc::Config etf;                  // delta defaults to 200 us
  /// TSN-strict LaunchTime (see kernel::Nic::Config::drop_missed_launch).
  bool drop_missed_launch = false;
  net::DataRate server_nic_rate = net::DataRate::gigabits_per_second(1);

  net::DataRate bottleneck_rate = net::DataRate::megabits_per_second(40);
  /// Bottleneck FIFO depth in bytes (1 BDP at 40 Mbit/s x 40 ms = 200 kB).
  std::int64_t bottleneck_buffer_bytes = 200 * 1000;
  std::int64_t tbf_burst_bytes = 2 * 1514;

  sim::Duration path_delay_one_way = sim::Duration::millis(20);
  /// netem queue sized to two BDPs so it never drops (paper Section 3.2).
  std::int64_t netem_limit_packets = 100000;
  /// Path impairments on the DATA direction (tc netem loss/reorder) — zero
  /// in the paper's controlled setup; exposed for robustness experiments.
  double path_loss_probability = 0.0;
  double path_reorder_probability = 0.0;
  sim::Duration path_jitter = sim::Duration::zero();

  std::int64_t client_rcvbuf_bytes = 50 * 1024 * 1024;
  /// Client-side GRO coalescing window (zero = GRO off, the paper setup).
  sim::Duration client_gro_window = sim::Duration::zero();

  kernel::OsTimingConfig server_os;
  kernel::OsTimingConfig client_os;
};

/// Owns every path element between (and including) the two hosts' kernels.
/// The transport endpoints attach via the exposed sinks/handlers.
class Topology {
 public:
  Topology(sim::EventLoop& loop, TopologyConfig config, sim::Rng& rng);

  /// Head of the server egress chain: the stack's UdpSocket target.
  net::PacketSink* server_egress() { return qdisc_.get(); }
  /// Head of the client egress chain (ACK path back to the server).
  net::PacketSink* client_egress() { return &client_netem_; }

  /// Wire the endpoint handlers.
  void set_client_handler(kernel::UdpReceiver::Handler handler);
  void set_server_handler(kernel::UdpReceiver::Handler handler);

  const net::WireTap& tap() const { return *tap_; }
  net::WireTap& tap() { return *tap_; }
  /// Bottleneck drop count — the paper's "dropped packets" column.
  std::int64_t bottleneck_drops() const {
    return bottleneck_.counters().packets_dropped;
  }
  const kernel::TbfQdisc& bottleneck() const { return bottleneck_; }
  const kernel::Qdisc& server_qdisc() const { return *qdisc_; }
  const kernel::NetemQdisc& data_netem() const { return data_netem_; }
  const kernel::NetemQdisc& client_netem() const { return client_netem_; }
  kernel::OsModel& server_os() { return server_os_; }
  kernel::OsModel& client_os() { return client_os_; }
  const TopologyConfig& config() const { return config_; }

  /// Per-component counter snapshots in sorted name order.
  net::CountersTable counters_table() const;

  /// Conservation auditor spanning both directions of the path. The
  /// auditor borrows this topology's counters — audit() while it's alive.
  /// Valid at any instant, including mid-run: it checks per-stage book
  /// balance and the synchronous bottleneck -> netem hand-off, not
  /// end-to-end delivery (packets may legitimately be in flight on links).
  check::ConservationAuditor conservation_auditor() const;

 private:
  sim::EventLoop& loop_;
  TopologyConfig config_;
  kernel::OsModel server_os_;
  kernel::OsModel client_os_;

  // Data path, downstream-first construction order.
  std::unique_ptr<kernel::UdpReceiver> client_receiver_;
  kernel::NetemQdisc data_netem_;
  kernel::TbfQdisc bottleneck_;
  std::unique_ptr<net::WireTap> tap_;
  std::unique_ptr<kernel::Nic> nic_;
  std::unique_ptr<kernel::Qdisc> qdisc_;

  // ACK path.
  std::unique_ptr<kernel::UdpReceiver> server_receiver_;
  kernel::NetemQdisc client_netem_;

  kernel::UdpReceiver::Handler client_handler_;
  kernel::UdpReceiver::Handler server_handler_;
};

}  // namespace quicsteps::framework
