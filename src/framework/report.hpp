// Terminal rendering of paper-style tables and figures.
#pragma once

#include <string>
#include <vector>

#include "framework/aggregate.hpp"
#include "framework/flows.hpp"
#include "sim/time.hpp"

namespace quicsteps::framework {

/// Table 1 / Table 2 style: label, dropped packets, goodput.
std::string render_goodput_table(const std::vector<Aggregate>& rows,
                                 const std::string& title);

/// Figure 2 style: pooled inter-packet gap CDFs (x axis rendered in ms).
std::string render_gap_figure(const std::vector<Aggregate>& rows,
                              const std::string& title,
                              sim::Duration x_max = sim::Duration::millis(2));

/// Figure 3 style: packet-train length table — share of packets per train
/// length bucket, plus the <=5 headline number.
std::string render_train_figure(const std::vector<Aggregate>& rows,
                                const std::string& title);

/// Section 4.4 style: precision (stddev of expected-vs-actual) per config.
std::string render_precision_table(const std::vector<Aggregate>& rows,
                                   const std::string& title);

/// Fig. 7 style: cwnd time series as an ASCII plot.
std::string render_cwnd_trace(const RunResult& run, const std::string& title,
                              int width = 78, int height = 16);

/// Multi-flow self-report: every component's packet books (sorted rows),
/// then one line per flow with its goodput, bottleneck-drop attribution,
/// and loss count, then the totals and Jain fairness.
std::string render_flow_report(const MultiFlowResult& result,
                               const std::string& title);

}  // namespace quicsteps::framework
