// Parallel experiment execution.
//
// Every paper artifact is dozens of independent (config, seed) simulations;
// each Runner::run_once owns its EventLoop, Rng, and Topology, so the runs
// are embarrassingly parallel. ParallelRunner fans a whole grid out across
// a worker pool and returns results in deterministic (config index, rep
// index) order regardless of scheduling — parallel output is bit-identical
// to the serial path (framework_test asserts this).
//
// Worker count resolution (first match wins):
//   1. explicit `jobs` constructor argument (> 0)
//   2. QUICSTEPS_JOBS environment variable
//   3. std::thread::hardware_concurrency()
// With one job (or one task) everything runs inline on the caller thread.
#pragma once

#include <vector>

#include "framework/duel.hpp"
#include "framework/experiment.hpp"
#include "framework/flows.hpp"

namespace quicsteps::framework {

/// Worker count from QUICSTEPS_JOBS, else `fallback`; 0 keeps the
/// hardware default.
int env_jobs(int fallback = 0);

class ParallelRunner {
 public:
  /// jobs <= 0 resolves via QUICSTEPS_JOBS / hardware_concurrency.
  explicit ParallelRunner(int jobs = 0);

  int jobs() const { return jobs_; }

  /// All repetitions of one configuration (seed, seed+1, ...), in
  /// repetition order.
  std::vector<RunResult> run_all(const ExperimentConfig& config) const;

  /// A whole configuration grid: result[i] holds configs[i]'s repetitions
  /// in repetition order. The grid is flattened so workers stay busy even
  /// when repetition counts differ per config.
  std::vector<std::vector<RunResult>> run_grid(
      const std::vector<ExperimentConfig>& configs) const;

  /// Independent duels (competing-flow pairs), in input order.
  std::vector<DuelResult> run_duels(
      const std::vector<DuelConfig>& duels) const;

  /// Independent N-flow fabrics (each one shared bottleneck with its own
  /// sender set), in input order.
  std::vector<MultiFlowResult> run_flow_sets(
      const std::vector<MultiFlowConfig>& configs) const;

  /// ONE fabric, large N: the event core stays a single serial simulation
  /// (the flows share a bottleneck), while the per-flow extraction phase
  /// is split into deterministic shards of `shard_size` flows (0 = the
  /// ShardPlan default) fanned across this runner's pool. Bit-identical to
  /// run_flows at any shard size and job count.
  MultiFlowResult run_flow_shards(const MultiFlowConfig& config,
                                  std::size_t shard_size = 0) const;

 private:
  int jobs_;
};

}  // namespace quicsteps::framework
