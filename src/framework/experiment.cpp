#include "framework/experiment.hpp"

#include <cstdlib>

namespace quicsteps::framework {

const char* to_string(StackKind kind) {
  switch (kind) {
    case StackKind::kQuiche:
      return "quiche";
    case StackKind::kQuicheSf:
      return "quiche+SF";
    case StackKind::kPicoquic:
      return "picoquic";
    case StackKind::kNgtcp2:
      return "ngtcp2";
    case StackKind::kTcpTls:
      return "TCP/TLS";
    case StackKind::kIdealQuic:
      return "ideal-quic";
  }
  return "?";
}

std::int64_t env_payload_bytes(std::int64_t fallback) {
  if (const char* env = std::getenv("QUICSTEPS_PAYLOAD_MIB")) {
    const long mib = std::strtol(env, nullptr, 10);
    if (mib > 0) return static_cast<std::int64_t>(mib) * 1024 * 1024;
  }
  return fallback;
}

int env_repetitions(int fallback) {
  if (const char* env = std::getenv("QUICSTEPS_REPS")) {
    const long reps = std::strtol(env, nullptr, 10);
    if (reps > 0) return static_cast<int>(reps);
  }
  return fallback;
}

}  // namespace quicsteps::framework
