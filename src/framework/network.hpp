// The datapath fabric, factored so one wiring serves any sender count.
//
// Three constructions used to build the paper's Figure 1 path by hand:
// framework::Topology (one sender), Runner::run_once (endpoint attachment
// on top of Topology), and run_duel (the whole path again, with 2-element
// arrays). This header holds the two shareable pieces they had in common:
//
//   SenderPath      one sender's kernel egress: [qdisc under test] -> NIC
//                   (1 Gbit/s, optional LaunchTime) -> the wire.
//   BottleneckPath  everything the senders share: WIRE TAP (sniffer) ->
//                   TBF 40 Mbit/s (DROPS HAPPEN HERE) -> netem +20 ms ->
//                   client UDP receiver -> per-flow dispatch table, plus
//                   the ACK return path (netem +20 ms -> server receiver
//                   -> dispatch back to the owning sender).
//
// Topology is the N=1 instantiation (one SenderPath on one
// BottleneckPath); framework::Network (flows.hpp) composes N sender hosts
// onto one shared path for competing-flow experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/conservation_auditor.hpp"
#include "framework/topology.hpp"
#include "kernel/nic.hpp"
#include "kernel/os_model.hpp"
#include "kernel/qdisc.hpp"
#include "kernel/qdisc_netem.hpp"
#include "kernel/qdisc_tbf.hpp"
#include "kernel/udp_socket.hpp"
#include "net/counters.hpp"
#include "net/flow_table.hpp"
#include "net/packet_slab.hpp"
#include "net/wire_tap.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"

namespace quicsteps::framework {

/// One sender's kernel egress chain, built per `config.server_qdisc`:
/// the qdisc under test feeding a NIC that serializes onto `wire`.
/// `slab` is the shared packet slab when the batched datapath is on
/// (null = legacy per-packet closures).
class SenderPath {
 public:
  SenderPath(sim::EventLoop& loop, const TopologyConfig& config,
             kernel::OsModel& os, net::PacketSink* wire,
             net::PacketSlab* slab = nullptr);

  /// Head of the chain: the stack's UdpSocket target.
  net::PacketSink* egress() { return qdisc_.get(); }
  kernel::Qdisc& qdisc() { return *qdisc_; }
  const kernel::Qdisc& qdisc() const { return *qdisc_; }
  const kernel::Nic& nic() const { return *nic_; }

  /// Registers this sender's kernel stages (qdisc, NIC) on `bus` under
  /// `prefix` and installs their span hookups.
  void set_trace(obs::TraceBus& bus, const std::string& prefix);

 private:
  std::unique_ptr<kernel::Nic> nic_;
  std::unique_ptr<kernel::Qdisc> qdisc_;
};

/// Everything between the senders' NICs and the endpoints, shared by all
/// flows: tap, bottleneck TBF, both netem delays, both UDP receivers, and
/// the flow-id dispatch tables that route each packet to the endpoint
/// owning its flow.
///
/// `server_recv_os` models the kernel that runs the server-side ACK
/// receiver (Topology and the N-flow fabric both use the first sender
/// host's OS). RNG forks are salt-addressed: client OS = fork(2), data
/// netem = fork(3), ack netem = fork(4) — the same salts Topology always
/// used, so an N=1 fabric run is bit-identical to the historical wiring.
class BottleneckPath {
 public:
  BottleneckPath(sim::EventLoop& loop, const TopologyConfig& config,
                 sim::Rng& rng, kernel::OsModel& server_recv_os);

  /// Where sender NICs serialize to: the tap (then TBF, netem, client).
  net::PacketSink* wire_ingress() { return tap_.get(); }
  /// Where client endpoints send ACKs: netem back toward the servers.
  net::PacketSink* ack_ingress() { return &ack_netem_; }

  /// Routes flow `id`'s data packets (client side) to `data` and its ACKs
  /// (server side) to `ack`. Unregistered ids trip QUICSTEPS_AUDIT unless
  /// default routes are set.
  void register_flow(std::uint32_t id, net::PacketSink* data,
                     net::PacketSink* ack);
  /// Bulk registration bracket for fabric-scale flow counts: reserves the
  /// dispatch tables and the drop-attribution array for `expected` flows,
  /// turns each register_flow into O(1) appends, and sorts everything once
  /// at finish. Optional — incremental register_flow keeps working (and is
  /// what the N<=8 paths use).
  void begin_flow_registration(std::size_t expected);
  void finish_flow_registration();
  /// Endpoint-agnostic fallback routes (Topology's handler API).
  void set_default_routes(net::PacketSink* data, net::PacketSink* ack);

  net::WireTap& tap() { return *tap_; }
  const net::WireTap& tap() const { return *tap_; }
  /// The shared packet slab, or null when the legacy datapath is active.
  /// Sender paths built on this bottleneck join the same slab.
  net::PacketSlab* slab() { return batched_ ? &slab_ : nullptr; }
  const kernel::TbfQdisc& bottleneck() const { return bottleneck_; }
  const kernel::NetemQdisc& data_netem() const { return data_netem_; }
  const kernel::NetemQdisc& ack_netem() const { return ack_netem_; }
  kernel::OsModel& client_os() { return client_os_; }

  /// Total bottleneck drops — the paper's "dropped packets" column.
  std::int64_t bottleneck_drops() const {
    return bottleneck_.counters().packets_dropped;
  }
  /// Drops attributed to one flow (who actually lost the buffer race).
  std::int64_t bottleneck_drops(std::uint32_t flow) const;

  /// Appends the shared stages to a counter table / conservation auditor
  /// (the caller adds its per-sender qdisc stages). The auditor borrows
  /// this path's counters — audit() while it is alive.
  void add_counters(net::CountersTable& table) const;
  void add_conservation_stages(check::ConservationAuditor& auditor) const;

  /// Registers every shared stage (tap, bottleneck, netems, receivers) on
  /// `bus` and installs their span hookups — component names match the
  /// counter-table rows.
  void set_trace(obs::TraceBus& bus);

 private:
  kernel::OsModel client_os_;

  // The flat packet store every datapath component shares under the
  // batched datapath — constructed first so it outlives the components
  // holding a pointer to it.
  bool batched_ = true;
  net::PacketSlab slab_;

  // Dispatch tables outlive the receivers that deliver into them.
  net::FlowTableSink data_dispatch_;
  net::FlowTableSink ack_dispatch_;

  // Data path, downstream-first construction order.
  std::unique_ptr<kernel::UdpReceiver> client_receiver_;
  kernel::NetemQdisc data_netem_;
  kernel::TbfQdisc bottleneck_;
  std::unique_ptr<net::WireTap> tap_;

  // ACK path.
  std::unique_ptr<kernel::UdpReceiver> server_receiver_;
  kernel::NetemQdisc ack_netem_;

  /// Index of `flow` in drop_flow_ids_, or drop_flow_ids_.size() when the
  /// id was never registered. Branchless binary search — the drop observer
  /// runs on the bottleneck's per-drop hot path.
  std::size_t drop_slot(std::uint32_t flow) const;

  // Per-flow drop attribution, flat instead of a map: ids sorted after
  // registration, counts aligned by index, strays (ids that were never
  // registered — Topology's handler mode) in one overflow counter. A drop
  // costs one branchless search + one increment, not a map node touch.
  std::vector<std::uint32_t> drop_flow_ids_;
  std::vector<std::int64_t> drop_counts_;
  std::int64_t stray_drops_ = 0;
  bool registering_ = false;
};

}  // namespace quicsteps::framework
