// Slab flow state: contiguous per-flow records for the N-flow fabric.
//
// The fabric used to hold one heap object per flow — a
// std::vector<std::unique_ptr<SenderHost>>, each host owning its OS model
// through another unique_ptr. At N = 8 that is invisible; at N = 10,000 it
// is 20k scattered allocations and a pointer chase per flow touched
// ("QUIC is not Quick Enough over Fast Internet": per-flow CPU overhead is
// the bottleneck at scale). FlowStateSlab replaces that graph with two
// contiguous lanes sharing one slot index:
//
//   os lane       kernel::OsModel records, constructed in place — the RNG
//                 and timing state every per-flow component samples.
//   record lane   the Record type (framework::SenderHost), constructed in
//                 place against a borrowed OsModel& from the same slot.
//
// Handles are generation-checked like net::PacketSlab refs (low 24 bits
// slot, high 8 bits generation): a handle that outlives destroy() of its
// slot trips QUICSTEPS_AUDIT instead of silently aliasing a recycled
// flow's state (tests/flow_slab_test.cpp pins this, mirroring
// tests/slab_test.cpp). Capacity is fixed at construction — the flow count
// of a MultiFlowConfig is known up front — so records never move: borrowed
// references stay valid for the slab's lifetime or until their slot is
// destroyed, whichever comes first.
//
// Construction is two-phase because the fabric needs it: slot 0's OsModel
// doubles as the shared path's server-side receiver kernel, so it must
// exist before the BottleneckPath that the SenderHost constructor then
// wires against. reserve_slot() hands out the handle, emplace_os() builds
// the kernel lane, emplace_record() the host lane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "check/audit.hpp"
#include "kernel/os_model.hpp"
#include "sim/random.hpp"

namespace quicsteps::framework {

template <typename Record>
class FlowStateSlab {
 public:
  /// Generation-checked flow ticket; layout identical to
  /// net::PacketSlab::Ref (low 24 bits slot, high 8 bits generation).
  using Handle = std::uint32_t;

  static constexpr std::uint32_t kSlotBits = 24;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;

  explicit FlowStateSlab(std::size_t capacity)
      : capacity_(capacity),
        os_lane_(new std::byte[capacity * sizeof(kernel::OsModel)]),
        record_lane_(new std::byte[capacity * sizeof(Record)]) {
    QUICSTEPS_AUDIT(capacity <= kSlotMask + 1,
                    "FlowStateSlab capacity exceeds 2^24 slots");
    slots_.resize(capacity);
  }

  ~FlowStateSlab() { clear(); }

  FlowStateSlab(const FlowStateSlab&) = delete;
  FlowStateSlab& operator=(const FlowStateSlab&) = delete;

  /// Allocates a slot (free-list reuse first, then the next fresh slot)
  /// and returns its handle. Nothing is constructed yet.
  Handle reserve_slot() {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      QUICSTEPS_AUDIT(high_water_ < capacity_,
                      "FlowStateSlab exceeded its fixed capacity");
      slot = static_cast<std::uint32_t>(high_water_++);
    }
    slots_[slot].reserved = true;
    ++live_;
    return slot | (static_cast<std::uint32_t>(slots_[slot].gen) << kSlotBits);
  }

  /// Constructs the slot's OsModel in place on the kernel lane. Exactly
  /// once per reserved slot, before emplace_record().
  kernel::OsModel& emplace_os(Handle h, const kernel::OsTimingConfig& config,
                              sim::Rng rng) {
    const std::uint32_t slot = checked_slot(h);
    QUICSTEPS_AUDIT(!slots_[slot].has_os,
                    "FlowStateSlab slot already holds an OsModel");
    kernel::OsModel* os =
        new (os_ptr(slot)) kernel::OsModel(config, std::move(rng));
    slots_[slot].has_os = true;
    return *os;
  }

  /// Constructs the slot's Record in place on the record lane.
  template <typename... Args>
  Record& emplace_record(Handle h, Args&&... args) {
    const std::uint32_t slot = checked_slot(h);
    QUICSTEPS_AUDIT(slots_[slot].has_os,
                    "FlowStateSlab record constructed before its OsModel");
    QUICSTEPS_AUDIT(!slots_[slot].has_record,
                    "FlowStateSlab slot already holds a record");
    Record* rec = new (record_ptr(slot)) Record(std::forward<Args>(args)...);
    slots_[slot].has_record = true;
    return *rec;
  }

  /// Generation-checked borrows. A stale handle — its slot destroyed and
  /// possibly recycled — audits instead of aliasing the new occupant.
  Record& record(Handle h) { return *record_ptr(checked_live_slot(h)); }
  const Record& record(Handle h) const {
    return *record_ptr(checked_live_slot(h));
  }
  kernel::OsModel& os(Handle h) {
    const std::uint32_t slot = checked_slot(h);
    QUICSTEPS_AUDIT(slots_[slot].has_os,
                    "FlowStateSlab os() on a slot with no OsModel");
    return *os_ptr(slot);
  }

  /// Destroys the slot's record and OsModel (record first — it borrows the
  /// OS) and recycles the slot. The handle is dead afterwards: the slot's
  /// generation advances, so stale borrows audit.
  void destroy(Handle h) {
    const std::uint32_t slot = checked_slot(h);
    destroy_slot(slot);
    free_.push_back(slot);
  }

  /// Live (reserved) slot count and the fixed capacity.
  std::size_t size() const { return live_; }
  std::size_t capacity() const { return capacity_; }
  bool alive(Handle h) const {
    const std::uint32_t slot = h & kSlotMask;
    return slot < slots_.size() && slots_[slot].reserved &&
           slots_[slot].gen ==
               static_cast<std::uint8_t>(h >> kSlotBits);
  }

  /// Destroys every live slot. Generations advance, so all outstanding
  /// handles go stale.
  void clear() {
    for (std::uint32_t slot = 0; slot < high_water_; ++slot) {
      if (slots_[slot].reserved) destroy_slot(slot);
    }
    free_.clear();
    high_water_ = 0;
  }

 private:
  struct SlotState {
    std::uint8_t gen = 0;
    bool reserved = false;
    bool has_os = false;
    bool has_record = false;
  };

  kernel::OsModel* os_ptr(std::uint32_t slot) const {
    return std::launder(reinterpret_cast<kernel::OsModel*>(
        os_lane_.get() + slot * sizeof(kernel::OsModel)));
  }
  Record* record_ptr(std::uint32_t slot) const {
    return std::launder(reinterpret_cast<Record*>(
        record_lane_.get() + slot * sizeof(Record)));
  }

  std::uint32_t checked_slot(Handle h) const {
    const std::uint32_t slot = h & kSlotMask;
    QUICSTEPS_AUDIT(slot < slots_.size() && slots_[slot].reserved &&
                        slots_[slot].gen ==
                            static_cast<std::uint8_t>(h >> kSlotBits),
                    "stale FlowStateSlab handle (recycled-slot aliasing)");
    return slot;
  }
  std::uint32_t checked_live_slot(Handle h) const {
    const std::uint32_t slot = checked_slot(h);
    QUICSTEPS_AUDIT(slots_[slot].has_record,
                    "FlowStateSlab record() on a slot with no record");
    return slot;
  }

  void destroy_slot(std::uint32_t slot) {
    if (slots_[slot].has_record) record_ptr(slot)->~Record();
    if (slots_[slot].has_os) os_ptr(slot)->~OsModel();
    slots_[slot].has_record = false;
    slots_[slot].has_os = false;
    slots_[slot].reserved = false;
    ++slots_[slot].gen;  // wraps mod 256; outstanding handles go stale
    --live_;
  }

  std::size_t capacity_;
  // Raw lanes: fixed-size, so in-place records never move and borrowed
  // references survive for the slab's lifetime.
  std::unique_ptr<std::byte[]> os_lane_;
  std::unique_ptr<std::byte[]> record_lane_;
  std::vector<SlotState> slots_;
  std::vector<std::uint32_t> free_;
  std::size_t high_water_ = 0;
  std::size_t live_ = 0;
};

}  // namespace quicsteps::framework
