#include "framework/endpoint.hpp"

#include <fstream>
#include <string>
#include <utility>

#include "cc/cubic.hpp"
#include "framework/runner.hpp"
#include "metrics/goodput.hpp"
#include "quic/app_source.hpp"
#include "quic/client.hpp"
#include "quic/qlog.hpp"
#include "quic/server.hpp"
#include "stacks/event_loop_model.hpp"
#include "tcp/tcp_client.hpp"
#include "tcp/tcp_server.hpp"

namespace quicsteps::framework {

namespace {

/// A measured stack (StackServer) or the ideal reference server, plus the
/// downloading client and the application source feeding the connection.
class QuicEndpoint final : public FlowEndpoint {
 public:
  QuicEndpoint(sim::EventLoop& loop, kernel::OsModel& sender_os,
               const ExperimentConfig& config, std::uint32_t flow_id,
               std::uint64_t seed, net::PacketSink* server_egress,
               net::PacketSink* client_egress, RunResult& live_result) {
    const stacks::StackProfile profile = profile_for(config);
    quic::Connection::Config conn_cfg;
    conn_cfg.total_payload_bytes = config.payload_bytes;
    conn_cfg.flow = flow_id;
    conn_cfg.flow_control_credit = profile.flow_control_credit;
    conn_cfg.app_limited_source =
        config.workload.kind != quic::SourceKind::kBulk;

    if (config.stack == StackKind::kIdealQuic) {
      conn_cfg.cc.algorithm = config.cca;
      ideal_ = std::make_unique<quic::ReferenceServer>(loop, conn_cfg,
                                                       server_egress);
    } else {
      stack_ = std::make_unique<stacks::StackServer>(
          loop, sender_os, profile, conn_cfg, server_egress);
    }

    client_ = std::make_unique<quic::Client>(
        loop,
        quic::Client::Config{.flow = flow_id,
                             .ack = {},
                             .expected_payload_bytes = config.payload_bytes,
                             .flow_control_credit =
                                 profile.flow_control_credit},
        client_egress);

    quic::Connection& conn = connection();
    if (config.record_cwnd_trace) {
      RunResult* live = &live_result;
      conn.set_cwnd_tracer([live](sim::Time t, std::int64_t cwnd,
                                  std::int64_t in_flight) {
        live->cwnd_trace.push_back(RunResult::CwndPoint{t, cwnd, in_flight});
      });
    }
    if (!config.qlog_path.empty()) {
      qlog_stream_.open(config.qlog_path + "." + std::to_string(seed));
      qlog_ = std::make_unique<quic::QlogWriter>(qlog_stream_);
      qlog_->write_header(config.label.empty() ? "quicsteps run"
                                               : config.label);
      conn.set_observer(qlog_.get());
    }

    source_ = std::make_unique<quic::AppSource>(
        loop, conn, config.workload, [this] {
          if (stack_ != nullptr) {
            stack_->poke();
          } else {
            ideal_->start();  // re-enter the ideal send loop
          }
        });
  }

  void start() override {
    if (stack_ != nullptr) {
      stack_->start();
    } else {
      ideal_->start();
    }
    source_->start();
  }

  net::PacketSink& data_ingress() override { return *client_; }
  net::PacketSink& ack_ingress() override {
    if (stack_ != nullptr) return *stack_;
    return *ideal_;
  }

  bool complete() const override { return client_->complete(); }

  void enable_batched(net::PacketSlab* slab) override {
    if (stack_ != nullptr && slab != nullptr) stack_->enable_batched(slab);
  }

  void set_trace(obs::TraceBus& bus, const std::string& prefix) override {
    const std::uint16_t id = bus.register_component(prefix + "stack");
    if (stack_ != nullptr) {
      stack_->set_trace(&bus, id, bus.register_component(prefix + "socket"));
    } else {
      ideal_->set_trace(&bus, id);  // the ideal server has no socket
    }
  }

  void fill_result(RunResult& result) const override {
    const quic::Connection& conn = connection();
    result.completed = client_->complete();
    result.packets_sent = conn.stats().packets_sent;
    result.packets_declared_lost = conn.stats().packets_declared_lost;
    result.retransmissions = conn.stats().packets_retransmitted;
    result.pacer_releases = conn.pacer().stats().packets_released;
    result.pacer_deferrals = conn.pacer().stats().deferrals;
    if (const auto* cubic =
            dynamic_cast<const cc::Cubic*>(&conn.controller())) {
      result.cc_rollbacks = cubic->rollbacks_performed();
    }
    if (stack_ != nullptr) {
      result.send_syscalls =
          static_cast<std::int64_t>(stack_->stats().send_syscalls);
      result.cpu_time_ms = stack_->stats().cpu_time.to_millis();
    }
    result.goodput = metrics::compute_goodput(
        client_->stats().payload_bytes_received,
        client_->stats().first_packet_time,
        client_->stats().completion_time);
  }

 private:
  quic::Connection& connection() {
    return stack_ != nullptr ? stack_->connection() : ideal_->connection();
  }
  const quic::Connection& connection() const {
    return stack_ != nullptr ? stack_->connection() : ideal_->connection();
  }

  std::unique_ptr<stacks::StackServer> stack_;
  std::unique_ptr<quic::ReferenceServer> ideal_;
  std::unique_ptr<quic::Client> client_;
  std::ofstream qlog_stream_;
  std::unique_ptr<quic::QlogWriter> qlog_;
  std::unique_ptr<quic::AppSource> source_;
};

/// The kernel TCP baseline: segments enter the same egress qdisc directly
/// (tc treats them alike); no UDP sockets, app source, or qlog.
class TcpEndpoint final : public FlowEndpoint {
 public:
  TcpEndpoint(sim::EventLoop& loop, const ExperimentConfig& config,
              std::uint32_t flow_id, net::PacketSink* server_egress,
              net::PacketSink* client_egress) {
    tcp::TcpServer::Config server_cfg;
    server_cfg.connection.total_payload_bytes = config.payload_bytes;
    server_cfg.connection.flow = flow_id;
    server_cfg.connection.cc.algorithm = config.cca;
    server_cfg.line_rate = config.topology.server_nic_rate;
    server_ = std::make_unique<tcp::TcpServer>(loop, server_cfg,
                                               server_egress);
    client_ = std::make_unique<tcp::TcpClient>(
        loop,
        tcp::TcpClient::Config{.flow = flow_id,
                               .expected_payload_bytes = config.payload_bytes,
                               .ack = {}},
        client_egress);
  }

  void start() override { server_->start(); }

  net::PacketSink& data_ingress() override { return *client_; }
  net::PacketSink& ack_ingress() override { return *server_; }

  bool complete() const override { return client_->complete(); }

  void fill_result(RunResult& result) const override {
    const auto& stats = server_->connection().stats();
    result.completed = client_->complete();
    result.packets_sent = stats.segments_sent;
    result.packets_declared_lost = stats.segments_declared_lost;
    result.retransmissions = stats.segments_retransmitted;
    result.goodput = metrics::compute_goodput(
        client_->stats().payload_bytes_received,
        client_->stats().first_packet_time,
        client_->stats().completion_time);
  }

 private:
  std::unique_ptr<tcp::TcpServer> server_;
  std::unique_ptr<tcp::TcpClient> client_;
};

}  // namespace

std::unique_ptr<FlowEndpoint> make_flow_endpoint(
    sim::EventLoop& loop, kernel::OsModel& sender_os,
    const ExperimentConfig& config, std::uint32_t flow_id, std::uint64_t seed,
    net::PacketSink* server_egress, net::PacketSink* client_egress,
    RunResult& live_result) {
  if (config.stack == StackKind::kTcpTls) {
    return std::make_unique<TcpEndpoint>(loop, config, flow_id,
                                         server_egress, client_egress);
  }
  return std::make_unique<QuicEndpoint>(loop, sender_os, config, flow_id,
                                        seed, server_egress, client_egress,
                                        live_result);
}

}  // namespace quicsteps::framework
