// The one worker-pool primitive every parallel phase shares.
//
// parallel_for(n, jobs, body) runs body(0..n-1), each index exactly once,
// across `jobs` workers pulling indices from one atomic counter. It is the
// concurrency funnel of the repo: ParallelRunner's grid/duel/flow-set
// collectors and run_flows_sharded's extraction shards all go through it,
// so the analyzer's concurrency/parallel-shared-state walk roots here
// (tools/analyze/layers.json parallel_entries) and audits every lambda
// that ever runs on a pool thread.
//
// Contract for bodies: writes must land in slots preassigned to exactly
// one index before the workers start (results[i], shard-owned ranges), so
// they are disjoint by construction; the join publishes them.
#pragma once

#include <cstddef>
#include <functional>

namespace quicsteps::framework {

/// Runs body(0..n-1), each index exactly once, across `jobs` workers.
/// Inline on the caller thread when one worker (or one task) suffices.
/// The first exception thrown by any body is rethrown on the caller.
void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& body);

}  // namespace quicsteps::framework
