#include "framework/runner.hpp"

#include <memory>
#include <utility>

#include <fstream>

#include "check/audit.hpp"
#include "check/determinism_hasher.hpp"
#include "framework/parallel.hpp"
#include "kernel/udp_socket.hpp"
#include "metrics/capture_analysis.hpp"
#include "quic/client.hpp"
#include "quic/app_source.hpp"
#include "quic/qlog.hpp"
#include "quic/server.hpp"
#include "stacks/event_loop_model.hpp"
#include "tcp/tcp_client.hpp"
#include "tcp/tcp_server.hpp"

namespace quicsteps::framework {

namespace {
using namespace quicsteps::sim::literals;
}  // namespace

stacks::StackProfile profile_for(const ExperimentConfig& config) {
  stacks::ProfileOptions opts;
  opts.cca = config.cca;
  opts.gso = config.gso;
  opts.gso_segments = config.gso_segments;
  opts.txtime_headroom = config.txtime_headroom;
  opts.use_sendmmsg = config.use_sendmmsg;
  switch (config.stack) {
    case StackKind::kQuiche:
      return stacks::quiche_profile(opts);
    case StackKind::kQuicheSf:
      opts.sf_patch = true;
      return stacks::quiche_profile(opts);
    case StackKind::kPicoquic:
      return stacks::picoquic_profile(opts);
    case StackKind::kNgtcp2:
      return stacks::ngtcp2_profile(opts);
    default:
      return stacks::quiche_profile(opts);
  }
}

/// Extra simulated time an app-limited workload needs to release all its
/// data (zero for bulk).
sim::Duration workload_duration(const ExperimentConfig& config) {
  const auto& w = config.workload;
  switch (w.kind) {
    case quic::SourceKind::kBulk:
      return sim::Duration::zero();
    case quic::SourceKind::kChunked: {
      const double chunks = static_cast<double>(config.payload_bytes) /
                            static_cast<double>(w.chunk_bytes);
      return w.period * chunks;
    }
    case quic::SourceKind::kCbr: {
      const double seconds = static_cast<double>(config.payload_bytes) /
                             w.rate.bytes_per_second_f();
      return sim::Duration::seconds_f(seconds);
    }
  }
  return sim::Duration::zero();
}

sim::Duration run_deadline(const ExperimentConfig& config) {
  // Generous bound: 8x the ideal transfer time plus startup slack. A stall
  // beyond this marks the run incomplete instead of hanging the bench.
  const double ideal_seconds =
      static_cast<double>(config.payload_bytes) * 8.0 /
      static_cast<double>(config.topology.bottleneck_rate.bps());
  return sim::Duration::seconds_f(8.0 * ideal_seconds + 10.0);
}

RunResult Runner::run_once(const ExperimentConfig& config,
                           std::uint64_t seed) {
  sim::EventLoop loop;
  sim::Rng rng(seed);
  Topology topo(loop, config.topology, rng);
  RunResult result;

  const bool is_tcp = config.stack == StackKind::kTcpTls;
  const std::uint32_t flow = is_tcp ? 2u : 1u;

  // All metrics derive from the tap; one incremental pass as packets hit
  // the wire replaces four post-hoc walks over the capture. The same pass
  // folds each departure timestamp into the run's determinism fingerprint
  // and (in audit builds) checks that wire time never goes backwards.
  metrics::CaptureAnalyzer capture_analyzer({.flow = flow});
  check::DeterminismHasher wire_hasher;
  check::MonotonicityAuditor tap_monotone("wire-tap departure time");
  topo.tap().set_on_packet([&capture_analyzer, &wire_hasher,
                            &tap_monotone](const net::Packet& pkt) {
    capture_analyzer.add(pkt);
    wire_hasher.add_i64(pkt.wire_time.ns());
    if constexpr (check::kAuditEnabled) {
      tap_monotone.observe(pkt.wire_time.ns());
    }
  });

  // Post-run invariants: every stage's books balance, and the tap saw
  // exactly what entered the bottleneck (they are wired back-to-back).
  auto audit_run = [&topo, &wire_hasher] {
    if constexpr (check::kAuditEnabled) {
      topo.conservation_auditor().audit();
      QUICSTEPS_AUDIT(topo.bottleneck().counters().packets_in ==
                          static_cast<std::int64_t>(wire_hasher.count()),
                      "tap and bottleneck disagree on wire packet count");
    }
  };

  if (is_tcp) {
    tcp::TcpServer::Config server_cfg;
    server_cfg.connection.total_payload_bytes = config.payload_bytes;
    server_cfg.connection.flow = flow;
    server_cfg.connection.cc.algorithm = config.cca;
    server_cfg.line_rate = config.topology.server_nic_rate;
    // The kernel TCP path bypasses UDP sockets: segments enter the same
    // egress qdisc directly (tc treats them alike).
    tcp::TcpServer server(loop, server_cfg, topo.server_egress());
    tcp::TcpClient client(loop,
                          {.flow = flow,
                           .expected_payload_bytes = config.payload_bytes,
                           .ack = {}},
                          topo.client_egress());
    topo.set_client_handler(
        [&](net::Packet pkt) { client.on_datagram(pkt); });
    topo.set_server_handler(
        [&](net::Packet pkt) { server.on_datagram(pkt); });

    server.start();
    loop.run_until(sim::Time::zero() + run_deadline(config));

    result.completed = client.complete();
    result.packets_sent = server.connection().stats().segments_sent;
    result.packets_declared_lost =
        server.connection().stats().segments_declared_lost;
    result.retransmissions =
        server.connection().stats().segments_retransmitted;
    result.goodput = metrics::compute_goodput(
        client.stats().payload_bytes_received,
        client.stats().first_packet_time, client.stats().completion_time);
    result.dropped_packets = topo.bottleneck_drops();
    result.wire_hash = wire_hasher.digest();
    audit_run();
    metrics::CaptureAnalysis analysis = capture_analyzer.finish();
    result.gaps = std::move(analysis.gaps);
    result.trains = std::move(analysis.trains);
    result.precision = std::move(analysis.precision);
    result.wire_data_packets = analysis.wire_data_packets;
    if (config.keep_capture) {
      result.capture = std::make_shared<const std::vector<net::Packet>>(
          topo.tap().capture());
    }
    return result;
  }

  // --- QUIC stacks -----------------------------------------------------------
  const stacks::StackProfile profile = profile_for(config);
  quic::Connection::Config conn_cfg;
  conn_cfg.total_payload_bytes = config.payload_bytes;
  conn_cfg.flow = flow;
  conn_cfg.flow_control_credit = profile.flow_control_credit;
  conn_cfg.app_limited_source =
      config.workload.kind != quic::SourceKind::kBulk;

  std::unique_ptr<stacks::StackServer> stack_server;
  std::unique_ptr<quic::ReferenceServer> ideal_server;

  if (config.stack == StackKind::kIdealQuic) {
    conn_cfg.cc.algorithm = config.cca;
    ideal_server = std::make_unique<quic::ReferenceServer>(
        loop, conn_cfg, topo.server_egress());
  } else {
    stack_server = std::make_unique<stacks::StackServer>(
        loop, topo.server_os(), profile, conn_cfg, topo.server_egress());
  }

  quic::Client client(loop,
                      {.flow = flow,
                       .ack = {},
                       .expected_payload_bytes = config.payload_bytes,
                       .flow_control_credit = profile.flow_control_credit},
                      topo.client_egress());
  topo.set_client_handler([&](net::Packet pkt) { client.on_datagram(pkt); });
  topo.set_server_handler([&](net::Packet pkt) {
    if (stack_server != nullptr) {
      stack_server->on_datagram(pkt);
    } else {
      ideal_server->on_datagram(pkt);
    }
  });

  quic::Connection& conn = stack_server != nullptr
                               ? stack_server->connection()
                               : ideal_server->connection();
  if (config.record_cwnd_trace) {
    conn.set_cwnd_tracer([&result](sim::Time t, std::int64_t cwnd,
                                   std::int64_t in_flight) {
      result.cwnd_trace.push_back(RunResult::CwndPoint{t, cwnd, in_flight});
    });
  }
  std::ofstream qlog_stream;
  std::unique_ptr<quic::QlogWriter> qlog;
  if (!config.qlog_path.empty()) {
    qlog_stream.open(config.qlog_path + "." + std::to_string(seed));
    qlog = std::make_unique<quic::QlogWriter>(qlog_stream);
    qlog->write_header(config.label.empty() ? "quicsteps run" : config.label);
    conn.set_observer(qlog.get());
  }

  quic::AppSource source(
      loop, conn, config.workload, [&] {
        if (stack_server != nullptr) {
          stack_server->poke();
        } else {
          ideal_server->start();  // re-enter the ideal send loop
        }
      });

  if (stack_server != nullptr) {
    stack_server->start();
  } else {
    ideal_server->start();
  }
  source.start();
  loop.run_until(sim::Time::zero() + run_deadline(config) +
                 workload_duration(config));

  result.completed = client.complete();
  result.packets_sent = conn.stats().packets_sent;
  result.packets_declared_lost = conn.stats().packets_declared_lost;
  result.retransmissions = conn.stats().packets_retransmitted;
  if (const auto* cubic =
          dynamic_cast<const cc::Cubic*>(&conn.controller())) {
    result.cc_rollbacks = cubic->rollbacks_performed();
  }
  if (stack_server != nullptr) {
    result.send_syscalls =
        static_cast<std::int64_t>(stack_server->stats().send_syscalls);
    result.cpu_time_ms = stack_server->stats().cpu_time.to_millis();
  }
  result.goodput = metrics::compute_goodput(
      client.stats().payload_bytes_received, client.stats().first_packet_time,
      client.stats().completion_time);
  result.dropped_packets = topo.bottleneck_drops();
  result.wire_hash = wire_hasher.digest();
  audit_run();
  metrics::CaptureAnalysis analysis = capture_analyzer.finish();
  result.gaps = std::move(analysis.gaps);
  result.trains = std::move(analysis.trains);
  result.precision = std::move(analysis.precision);
  result.wire_data_packets = analysis.wire_data_packets;
  if (config.keep_capture) {
    result.capture = std::make_shared<const std::vector<net::Packet>>(
        topo.tap().capture());
  }
  return result;
}

std::vector<RunResult> Runner::run_all(const ExperimentConfig& config) {
  // Repetitions fan out across the default worker pool (QUICSTEPS_JOBS /
  // hardware concurrency); results are bit-identical to a serial loop.
  return ParallelRunner().run_all(config);
}

}  // namespace quicsteps::framework
