#include "framework/runner.hpp"

#include <utility>

#include "framework/flows.hpp"
#include "framework/parallel.hpp"

namespace quicsteps::framework {

stacks::StackProfile profile_for(const ExperimentConfig& config) {
  stacks::ProfileOptions opts;
  opts.cca = config.cca;
  opts.gso = config.gso;
  opts.gso_segments = config.gso_segments;
  opts.txtime_headroom = config.txtime_headroom;
  opts.use_sendmmsg = config.use_sendmmsg;
  switch (config.stack) {
    case StackKind::kQuiche:
      return stacks::quiche_profile(opts);
    case StackKind::kQuicheSf:
      opts.sf_patch = true;
      return stacks::quiche_profile(opts);
    case StackKind::kPicoquic:
      return stacks::picoquic_profile(opts);
    case StackKind::kNgtcp2:
      return stacks::ngtcp2_profile(opts);
    default:
      return stacks::quiche_profile(opts);
  }
}

sim::Duration workload_duration(const ExperimentConfig& config) {
  const auto& w = config.workload;
  switch (w.kind) {
    case quic::SourceKind::kBulk:
      return sim::Duration::zero();
    case quic::SourceKind::kChunked: {
      const double chunks = static_cast<double>(config.payload_bytes) /
                            static_cast<double>(w.chunk_bytes);
      return w.period * chunks;
    }
    case quic::SourceKind::kCbr: {
      const double seconds = static_cast<double>(config.payload_bytes) /
                             w.rate.bytes_per_second_f();
      return sim::Duration::seconds_f(seconds);
    }
  }
  return sim::Duration::zero();
}

sim::Duration run_deadline(const ExperimentConfig& config) {
  // Generous bound: 8x the ideal transfer time plus startup slack. A stall
  // beyond this marks the run incomplete instead of hanging the bench.
  const double ideal_seconds =
      static_cast<double>(config.payload_bytes) * 8.0 /
      static_cast<double>(config.topology.bottleneck_rate.bps());
  return sim::Duration::seconds_f(8.0 * ideal_seconds + 10.0);
}

RunResult Runner::run_once(const ExperimentConfig& config,
                           std::uint64_t seed) {
  // The N=1 instantiation of the flow fabric. run_flows reproduces the
  // historical single-flow wiring bit-for-bit (same RNG fork salts, same
  // flow id, same start order), so this delegation changes no wire_hash.
  MultiFlowConfig flows;
  flows.seed = seed;
  flows.flows.push_back(FlowSpec{.config = config});
  MultiFlowResult result = run_flows(flows);
  return std::move(result.flows.front());
}

std::vector<RunResult> Runner::run_all(const ExperimentConfig& config) {
  // Repetitions fan out across the default worker pool (QUICSTEPS_JOBS /
  // hardware concurrency); results are bit-identical to a serial loop.
  return ParallelRunner().run_all(config);
}

}  // namespace quicsteps::framework
