// One interface over the three endpoint families an experiment can attach
// to a sender host: a measured QUIC stack (StackServer + its event-loop
// quirks), the ideal reference QUIC server, or the kernel TCP baseline.
//
// Runner::run_once and run_duel used to each construct these by hand with
// diverging feature sets (the duel path had no app source, no qlog, no
// cwnd trace). make_flow_endpoint is now the only place an experiment
// config turns into transport objects; every caller — single-flow runs,
// duels, N-flow fairness experiments — gets the same construction.
#pragma once

#include <cstdint>
#include <memory>

#include <string>

#include "framework/experiment.hpp"
#include "kernel/os_model.hpp"
#include "net/packet.hpp"
#include "net/packet_slab.hpp"
#include "obs/trace.hpp"
#include "sim/event_loop.hpp"

namespace quicsteps::framework {

/// A sender/receiver endpoint pair bound to one flow id.
class FlowEndpoint {
 public:
  virtual ~FlowEndpoint() = default;

  /// Kicks off the transfer (server send loop plus application source).
  virtual void start() = 0;

  /// Sink for this flow's data packets at the client host (register as
  /// the flow's data route on the shared path).
  virtual net::PacketSink& data_ingress() = 0;
  /// Sink for this flow's ACKs back at the server host.
  virtual net::PacketSink& ack_ingress() = 0;

  virtual bool complete() const = 0;

  /// Installs path tracing on the endpoint's user-space components (stack
  /// and socket), registering them on `bus` under `prefix`. Default: the
  /// endpoint has no traceable user-space stages (TCP baseline).
  virtual void set_trace(obs::TraceBus& bus, const std::string& prefix) {
    (void)bus;
    (void)prefix;
  }

  /// Joins the shared packet slab (batched datapath): the stack's socket
  /// recycles GSO segment buffers through the slab's pool. Default: the
  /// endpoint has no socket to wire (ideal server, TCP baseline).
  virtual void enable_batched(net::PacketSlab* slab) { (void)slab; }

  /// Endpoint-side result fields: completion, sender stats, goodput.
  /// Wire-derived fields (gaps, trains, precision, hash, drops) come from
  /// the shared tap and are filled by the caller.
  virtual void fill_result(RunResult& result) const = 0;
};

/// Builds the endpoint `config` selects. `sender_os` is the host kernel
/// the stack's syscalls and timers are charged to; `server_egress` is the
/// host's qdisc; `client_egress` is the shared ACK return path. Cwnd
/// trace points stream into `live_result` during the run (it must outlive
/// the endpoint); qlog files are named "<qlog_path>.<seed>".
std::unique_ptr<FlowEndpoint> make_flow_endpoint(
    sim::EventLoop& loop, kernel::OsModel& sender_os,
    const ExperimentConfig& config, std::uint32_t flow_id, std::uint64_t seed,
    net::PacketSink* server_egress, net::PacketSink* client_egress,
    RunResult& live_result);

}  // namespace quicsteps::framework
