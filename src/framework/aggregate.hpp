// Cross-repetition aggregation: mean ± std of every reported metric, plus
// pooled distributions ("the values of all repetitions are combined for
// the evaluation", paper Section 4).
#pragma once

#include <map>
#include <vector>

#include "framework/experiment.hpp"
#include "metrics/stats.hpp"

namespace quicsteps::framework {

struct Aggregate {
  std::string label;
  int repetitions = 0;
  int completed = 0;

  metrics::Summary goodput_mbps;
  metrics::Summary dropped_packets;
  metrics::Summary declared_lost;
  metrics::Summary back_to_back_fraction;
  metrics::Summary below_1500us_fraction;
  metrics::Summary trains_up_to_5_fraction;
  metrics::Summary precision_ms;
  metrics::Summary send_syscalls;
  metrics::Summary cpu_time_ms;
  metrics::Summary rollbacks;

  /// Pooled per-packet gap samples (ms) across repetitions.
  std::vector<double> pooled_gaps_ms;
  /// Pooled per-packet train lengths across repetitions.
  std::vector<double> pooled_train_lengths;
  /// Pooled packets-per-train-length histogram.
  std::map<std::size_t, std::int64_t> pooled_packets_by_length;
  std::int64_t pooled_total_packets = 0;

  metrics::Cdf gap_cdf() const { return metrics::Cdf(pooled_gaps_ms); }
  metrics::Cdf train_cdf() const {
    return metrics::Cdf(pooled_train_lengths);
  }
  double fraction_in_trains_up_to(std::size_t n) const;
};

Aggregate aggregate(const std::string& label,
                    const std::vector<RunResult>& runs);

}  // namespace quicsteps::framework
