#include "framework/parallel_for.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace quicsteps::framework {

void parallel_for(std::size_t n, int jobs,
                  const std::function<void(std::size_t)>& body) {
  const std::size_t workers =
      std::min<std::size_t>(static_cast<std::size_t>(std::max(jobs, 0)), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;

  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n || failed.load(std::memory_order_relaxed)) return;
      try {
        body(i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (error == nullptr) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
  worker();
  for (auto& t : pool) t.join();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace quicsteps::framework
