// Leaky-bucket pacer: picoquic style, as RFC 9002 section 7.7 suggests.
//
// Credit (tokens) refills at the pacing rate up to `depth` bytes. A packet
// may go as soon as the bucket covers it. The defining property: after an
// idle period the bucket is full, so a whole depth's worth of packets
// drains back-to-back — which, combined with a coarse application timer,
// produces picoquic's 16-17 packet bursts under loss-based CCAs (paper
// Section 4.1). picoquic's BBR path uses a shallow bucket instead, giving
// near-perfect spacing from pure user space.
#pragma once

#include "pacing/pacer.hpp"

namespace quicsteps::pacing {

class LeakyBucketPacer final : public Pacer {
 public:
  explicit LeakyBucketPacer(std::int64_t depth_bytes)
      : depth_(depth_bytes), tokens_(static_cast<double>(depth_bytes)) {}

  sim::Time earliest_send_time(sim::Time now, std::int64_t bytes,
                               net::DataRate rate) override;
  void on_packet_sent(sim::Time at, std::int64_t bytes,
                      net::DataRate rate) override;
  void reset() override;
  const char* name() const override { return "leaky-bucket"; }

  double tokens() const { return tokens_; }
  std::int64_t depth() const { return depth_; }
  void set_depth(std::int64_t depth_bytes);

 private:
  void refill(sim::Time now, net::DataRate rate);

  std::int64_t depth_;
  double tokens_;
  sim::Time last_update_;
  bool started_ = false;
};

}  // namespace quicsteps::pacing
