// Pacing strategies.
//
// The paper observes that all three stacks compute the pacing *rate* the
// same way but differ in who enforces release times and how credit is
// accumulated:
//   * interval pacing (quiche, ngtcp2): each packet's release time is the
//     previous release plus size/rate — no credit, no bursts;
//   * leaky bucket (picoquic, as RFC 9002 suggests): credit accrues while
//     idle up to the bucket depth, so a coarse application timer drains a
//     multi-packet burst on every wakeup — the 16-17 packet trains in
//     Figure 3.
//
// A pacer answers "when may a packet of N bytes go?" and is told when one
// actually went. The enforcement point (kernel qdisc vs. app timer) is the
// stack model's business.
#pragma once

#include <cstdint>
#include <memory>

#include "net/data_rate.hpp"
#include "sim/time.hpp"

namespace quicsteps::pacing {

class Pacer {
 public:
  /// Release bookkeeping every implementation maintains: how many packets
  /// the pacer was told went out, and how often it asked the caller to
  /// wait (earliest_send_time strictly after `now`).
  struct Stats {
    std::int64_t packets_released = 0;
    std::int64_t deferrals = 0;
  };

  virtual ~Pacer() = default;

  /// Earliest instant a packet of `bytes` may be released given the current
  /// pacing `rate`. May be in the past relative to `now` only when pacing
  /// imposes no wait.
  virtual sim::Time earliest_send_time(sim::Time now, std::int64_t bytes,
                                       net::DataRate rate) = 0;

  /// Records a (planned or actual) release at `at`.
  virtual void on_packet_sent(sim::Time at, std::int64_t bytes,
                              net::DataRate rate) = 0;

  virtual void reset() = 0;
  virtual const char* name() const = 0;

  /// Cumulative over the connection's lifetime (reset() does not clear —
  /// it restarts the release schedule, not the ledger).
  const Stats& stats() const { return stats_; }

 protected:
  Stats stats_;
};

enum class PacerKind : std::uint8_t { kNone, kInterval, kLeakyBucket };

const char* to_string(PacerKind kind);

struct PacerConfig {
  PacerKind kind = PacerKind::kInterval;
  /// Leaky bucket depth in bytes (credit ceiling).
  std::int64_t bucket_depth_bytes = 16 * 1500;
  /// Interval pacer: cap on how far the release schedule may run ahead of
  /// the clock. quiche releases in quanta and catches the schedule up, so
  /// its txtimes never drift more than a few milliseconds ahead — this cap
  /// models that and bounds the baseline precision spread (Section 4.4).
  sim::Duration max_schedule_ahead = sim::Duration::millis(3);
};

std::unique_ptr<Pacer> make_pacer(const PacerConfig& config);

/// Pass-through pacer: never delays (used for "no pacing" ablations).
class NullPacer final : public Pacer {
 public:
  sim::Time earliest_send_time(sim::Time now, std::int64_t,
                               net::DataRate) override {
    return now;
  }
  void on_packet_sent(sim::Time, std::int64_t, net::DataRate) override {
    ++stats_.packets_released;
  }
  void reset() override {}
  const char* name() const override { return "none"; }
};

}  // namespace quicsteps::pacing
