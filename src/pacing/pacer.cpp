#include "pacing/pacer.hpp"

#include "pacing/interval_pacer.hpp"
#include "pacing/leaky_bucket_pacer.hpp"

namespace quicsteps::pacing {

const char* to_string(PacerKind kind) {
  switch (kind) {
    case PacerKind::kNone:
      return "none";
    case PacerKind::kInterval:
      return "interval";
    case PacerKind::kLeakyBucket:
      return "leaky-bucket";
  }
  return "?";
}

std::unique_ptr<Pacer> make_pacer(const PacerConfig& config) {
  switch (config.kind) {
    case PacerKind::kNone:
      return std::make_unique<NullPacer>();
    case PacerKind::kInterval:
      return std::make_unique<IntervalPacer>(config.max_schedule_ahead);
    case PacerKind::kLeakyBucket:
      return std::make_unique<LeakyBucketPacer>(config.bucket_depth_bytes);
  }
  return nullptr;
}

}  // namespace quicsteps::pacing
