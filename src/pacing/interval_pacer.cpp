#include "pacing/interval_pacer.hpp"

namespace quicsteps::pacing {

sim::Time IntervalPacer::earliest_send_time(sim::Time now, std::int64_t,
                                            net::DataRate rate) {
  if (!started_ || rate.is_zero() || rate.is_infinite()) return now;
  // No credit accumulates: a schedule that fell behind restarts at now.
  // A schedule that ran ahead is clamped (quantum release + catch-up).
  const sim::Time t =
      sim::min(sim::max(next_allowed_, now), now + max_ahead_);
  if (t > now) ++stats_.deferrals;
  return t;
}

void IntervalPacer::on_packet_sent(sim::Time at, std::int64_t bytes,
                                   net::DataRate rate) {
  ++stats_.packets_released;
  if (rate.is_zero() || rate.is_infinite()) {
    next_allowed_ = at;
    started_ = true;
    return;
  }
  const sim::Time base = started_ ? sim::max(at, next_allowed_) : at;
  next_allowed_ =
      sim::min(base + rate.transmit_time(bytes), at + max_ahead_);
  started_ = true;
}

void IntervalPacer::reset() { started_ = false; }

}  // namespace quicsteps::pacing
