// Interval pacer: quiche / ngtcp2 style.
//
// Each packet's release time is the previous packet's release time plus
// size/rate. There is no credit: after an idle period the schedule simply
// restarts at "now". quiche turns these release times into SO_TXTIME
// timestamps for the kernel; ngtcp2 expects the application to sleep until
// them.
#pragma once

#include "pacing/pacer.hpp"

namespace quicsteps::pacing {

class IntervalPacer final : public Pacer {
 public:
  IntervalPacer() = default;
  explicit IntervalPacer(sim::Duration max_schedule_ahead)
      : max_ahead_(max_schedule_ahead) {}

  sim::Time earliest_send_time(sim::Time now, std::int64_t bytes,
                               net::DataRate rate) override;
  void on_packet_sent(sim::Time at, std::int64_t bytes,
                      net::DataRate rate) override;
  void reset() override;
  const char* name() const override { return "interval"; }

 private:
  sim::Duration max_ahead_ = sim::Duration::millis(3);
  sim::Time next_allowed_;  // zero = fresh schedule
  bool started_ = false;
};

}  // namespace quicsteps::pacing
