#include "pacing/leaky_bucket_pacer.hpp"

#include <algorithm>

namespace quicsteps::pacing {

void LeakyBucketPacer::set_depth(std::int64_t depth_bytes) {
  depth_ = depth_bytes;
  tokens_ = std::min(tokens_, static_cast<double>(depth_));
}

void LeakyBucketPacer::refill(sim::Time now, net::DataRate rate) {
  if (!started_) {
    last_update_ = now;
    started_ = true;
    return;
  }
  if (now <= last_update_) return;
  tokens_ += rate.bytes_per_second_f() * (now - last_update_).to_seconds();
  tokens_ = std::min(tokens_, static_cast<double>(depth_));
  last_update_ = now;
}

sim::Time LeakyBucketPacer::earliest_send_time(sim::Time now,
                                               std::int64_t bytes,
                                               net::DataRate rate) {
  if (rate.is_zero() || rate.is_infinite()) return now;
  refill(now, rate);
  const double need = static_cast<double>(bytes) - tokens_;
  if (need <= 0) return now;
  ++stats_.deferrals;
  const double seconds = need / rate.bytes_per_second_f();
  return now + sim::Duration::seconds_f(seconds);
}

void LeakyBucketPacer::on_packet_sent(sim::Time at, std::int64_t bytes,
                                      net::DataRate rate) {
  ++stats_.packets_released;
  if (rate.is_zero() || rate.is_infinite()) return;
  refill(at, rate);
  tokens_ -= static_cast<double>(bytes);
  // The bucket may dip below zero when the caller sends slightly early
  // (timer slack); the deficit self-repays through refill.
  tokens_ = std::max(tokens_, -static_cast<double>(depth_));
}

void LeakyBucketPacer::reset() {
  tokens_ = static_cast<double>(depth_);
  started_ = false;
}

}  // namespace quicsteps::pacing
