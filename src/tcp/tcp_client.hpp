// TCP receiver (the wget side): cumulative + SACK acknowledgments with the
// kernel's delayed-ACK policy (ACK every second segment or after the
// delayed-ACK timer).
#pragma once

#include "net/packet.hpp"
#include "quic/ack_manager.hpp"
#include "quic/frames.hpp"
#include "sim/event_loop.hpp"
#include "tcp/tcp_connection.hpp"

namespace quicsteps::tcp {

class TcpClient : public net::PacketSink {
 public:
  struct Config {
    std::uint32_t flow = 2;
    std::int64_t expected_payload_bytes = 0;
    quic::AckManager::Config ack;  // same delayed-ACK shape as the kernel's
  };

  struct Stats {
    std::int64_t segments_received = 0;
    std::int64_t duplicate_segments = 0;
    std::int64_t payload_bytes_received = 0;
    std::int64_t acks_sent = 0;
    sim::Time first_packet_time = sim::Time::infinite();
    sim::Time last_packet_time;
    sim::Time completion_time = sim::Time::infinite();
  };

  TcpClient(sim::EventLoop& loop, Config config, net::PacketSink* ack_egress)
      : loop_(loop), config_(config), ack_manager_(config.ack),
        ack_egress_(ack_egress) {}

  void on_datagram(const net::Packet& pkt);

  /// PacketSink ingress (flow-table routing targets the client directly).
  void deliver(net::Packet pkt) override { on_datagram(pkt); }

  bool complete() const {
    return config_.expected_payload_bytes > 0 &&
           received_.covered_bytes() >= config_.expected_payload_bytes;
  }
  const Stats& stats() const { return stats_; }

 private:
  void send_ack_now(bool force = false);
  void arm_ack_timer();

  sim::EventLoop& loop_;
  Config config_;
  quic::AckManager ack_manager_;
  net::PacketSink* ack_egress_;
  quic::ByteIntervalSet received_;
  Stats stats_;
  sim::EventHandle ack_timer_;
  std::uint64_t next_ack_id_ = 1;
};

}  // namespace quicsteps::tcp
