// Kernel TCP (with TLS payload accounting) — the paper's nginx/wget
// baseline.
//
// Differences from the QUIC model that matter for the comparison:
//   * lives "in the kernel": no syscall cost, timer slack, or event-loop
//     batching on the send path — ACK clocking is immediate;
//   * cumulative ACK + SACK, retransmissions reuse the sequence number;
//   * no pacing (Debian's default CUBIC + FQ_CoDel does not pace, as the
//     paper's background section points out); burst size is bounded by TSQ
//     (TCP Small Queues) — the sender never dumps more than a couple of
//     segments into the qdisc at once;
//   * classic HyStart: slow start exits as soon as the delay increase is
//     detected (no multi-round CSS), which is why TCP's slow start barely
//     overshoots and Table 1 shows ~16 dropped packets against the QUIC
//     stacks' hundreds.
#pragma once

#include <cstdint>
#include <deque>
#include <map>

#include "cc/cc_factory.hpp"
#include "net/packet.hpp"
#include "quic/rtt_estimator.hpp"

namespace quicsteps::tcp {

/// Wire bytes of a full segment (IP + TCP + TLS record overhead inside a
/// 1500 B MTU) and the TLS application payload it carries.
inline constexpr std::int64_t kSegmentSize = 1500;
inline constexpr std::int64_t kPayloadPerSegment = 1402;
inline constexpr std::int64_t kAckSegmentSize = 66;

class TcpConnection {
 public:
  struct Config {
    std::int64_t total_payload_bytes = 10 * 1024 * 1024;
    std::uint32_t flow = 2;
    cc::CcConfig cc;  // algorithm; HyStart handled TCP-style below
    sim::Duration max_ack_delay = sim::Duration::millis(25);
    int dupack_threshold = 3;  // == SACK reordering window in segments
    double time_threshold = 9.0 / 8.0;  // RACK-style reordering window
  };

  struct Stats {
    std::int64_t segments_sent = 0;
    std::int64_t segments_retransmitted = 0;
    std::int64_t segments_declared_lost = 0;
    std::int64_t rto_fired = 0;
    sim::Time completion_time = sim::Time::infinite();
  };

  explicit TcpConnection(Config config);

  bool has_data_to_send() const;
  bool congestion_blocked() const;
  /// Builds the next segment (retransmission first).
  net::Packet build_segment(sim::Time now);
  void on_ack_packet(const net::Packet& pkt, sim::Time now);

  sim::Time next_timer_deadline() const;
  void on_timer(sim::Time now);

  bool transfer_complete() const {
    return cumulative_acked_ >= static_cast<std::uint64_t>(total_segments_);
  }
  const Stats& stats() const { return stats_; }
  const cc::CongestionController& controller() const { return *cc_; }
  const quic::RttEstimator& rtt() const { return rtt_; }
  std::int64_t bytes_in_flight() const { return bytes_in_flight_; }
  std::int64_t cwnd_bytes() const { return cc_->cwnd_bytes(); }
  std::int64_t total_segments() const { return total_segments_; }

 private:
  struct Outstanding {
    sim::Time time_sent;
    std::int64_t bytes = kSegmentSize;
    bool sacked = false;
    bool retransmitted = false;
  };

  void run_loss_detection(sim::Time now);

  Config config_;
  std::unique_ptr<cc::CongestionController> cc_;
  quic::RttEstimator rtt_;

  std::int64_t total_segments_;
  std::uint64_t next_seq_ = 0;          // next NEW segment index
  std::uint64_t cumulative_acked_ = 0;  // segments [0, cum) delivered
  std::uint64_t highest_sacked_ = 0;
  std::map<std::uint64_t, Outstanding> outstanding_;
  std::deque<std::uint64_t> retransmit_queue_;
  std::int64_t bytes_in_flight_ = 0;
  std::uint64_t next_packet_id_ = 1;

  sim::Time loss_timer_ = sim::Time::infinite();
  int rto_count_ = 0;

  Stats stats_;
};

}  // namespace quicsteps::tcp
