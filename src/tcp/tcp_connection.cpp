#include "tcp/tcp_connection.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace quicsteps::tcp {

TcpConnection::TcpConnection(Config config)
    : config_(config),
      total_segments_((config.total_payload_bytes + kPayloadPerSegment - 1) /
                      kPayloadPerSegment) {
  // Classic HyStart (Linux flavor): checks the delay signal after a few
  // samples per round and exits immediately — no multi-round CSS dwell.
  // This is why kernel TCP barely overshoots in slow start (Table 1's ~16
  // drops) while the HyStart++ QUIC stacks overshoot by hundreds.
  config_.cc.hystart_config.css_rounds = 0;
  config_.cc.hystart_config.n_rtt_sample = 2;
  // Linux packet-counting slow start: +1 MSS per ACK, 1.5x per RTT under
  // delayed ACKs.
  config_.cc.slow_start_ack_divisor = 2;
  cc_ = cc::make_controller(config_.cc);
}

bool TcpConnection::has_data_to_send() const {
  return !retransmit_queue_.empty() ||
         next_seq_ < static_cast<std::uint64_t>(total_segments_);
}

bool TcpConnection::congestion_blocked() const {
  return bytes_in_flight_ + kSegmentSize > cc_->cwnd_bytes();
}

net::Packet TcpConnection::build_segment(sim::Time now) {
  std::uint64_t seq;
  bool retransmission = false;
  if (!retransmit_queue_.empty()) {
    seq = retransmit_queue_.front();
    retransmit_queue_.pop_front();
    retransmission = true;
    ++stats_.segments_retransmitted;
  } else {
    seq = next_seq_++;
  }

  const std::int64_t payload =
      std::min<std::int64_t>(kPayloadPerSegment,
                             config_.total_payload_bytes -
                                 static_cast<std::int64_t>(seq) *
                                     kPayloadPerSegment);
  net::Packet pkt;
  pkt.id = next_packet_id_++;
  pkt.flow = config_.flow;
  pkt.kind = net::PacketKind::kTcpData;
  pkt.packet_number = seq;
  pkt.stream_offset = static_cast<std::int64_t>(seq) * kPayloadPerSegment;
  pkt.stream_length = payload;
  pkt.size_bytes = payload + (kSegmentSize - kPayloadPerSegment);
  pkt.fin = seq + 1 == static_cast<std::uint64_t>(total_segments_);

  outstanding_[seq] = Outstanding{now, pkt.size_bytes, false, retransmission};
  bytes_in_flight_ += pkt.size_bytes;
  cc_->on_packet_sent(now, seq, pkt.size_bytes,
                      bytes_in_flight_ - pkt.size_bytes);
  ++stats_.segments_sent;
  return pkt;
}

void TcpConnection::on_ack_packet(const net::Packet& pkt, sim::Time now) {
  if (pkt.ack == nullptr) return;
  const net::TransportAck& ack = *pkt.ack;

  std::int64_t acked_bytes = 0;
  std::uint64_t largest_acked = 0;
  sim::Time largest_sent_time;
  bool largest_was_retransmitted = false;
  bool any = false;

  for (const auto& block : ack.blocks) {
    if (block.first == 0) {
      cumulative_acked_ = std::max(cumulative_acked_, block.last + 1);
    }
    auto it = outstanding_.lower_bound(block.first);
    while (it != outstanding_.end() && it->first <= block.last) {
      acked_bytes += it->second.bytes;
      bytes_in_flight_ -= it->second.bytes;
      if (!any || it->first > largest_acked) {
        largest_acked = it->first;
        largest_sent_time = it->second.time_sent;
        largest_was_retransmitted = it->second.retransmitted;
      }
      any = true;
      it = outstanding_.erase(it);
    }
  }
  if (transfer_complete() && stats_.completion_time.is_infinite()) {
    stats_.completion_time = now;
  }
  if (!any) return;
  rto_count_ = 0;
  highest_sacked_ = std::max(highest_sacked_, largest_acked);

  // Karn's rule: no RTT sample from retransmitted segments.
  if (!largest_was_retransmitted) {
    rtt_.update(now - largest_sent_time, ack.ack_delay, config_.max_ack_delay);
  }

  run_loss_detection(now);

  cc::AckSample sample;
  sample.now = now;
  sample.acked_bytes = acked_bytes;
  sample.largest_acked_pn = largest_acked;
  sample.largest_acked_sent_time = largest_sent_time;
  sample.latest_rtt = rtt_.has_samples() ? rtt_.latest() : sim::Duration::zero();
  sample.smoothed_rtt = rtt_.smoothed();
  sample.min_rtt = rtt_.min();
  sample.bytes_in_flight = bytes_in_flight_;
  cc_->on_ack(sample);
}

void TcpConnection::run_loss_detection(sim::Time now) {
  // SACK/RACK-style: a hole is lost once `dupack_threshold` newer segments
  // were acked, or once it is older than the reordering time window.
  if (highest_sacked_ == 0 && outstanding_.empty()) return;
  const sim::Duration window =
      sim::max(rtt_.smoothed(), rtt_.latest()) * config_.time_threshold;
  const sim::Time lost_before = now - window;

  cc::LossSample sample;
  sample.now = now;
  std::vector<std::uint64_t> lost;
  sim::Time next_loss = sim::Time::infinite();
  for (auto& [seq, info] : outstanding_) {
    if (seq >= highest_sacked_) break;
    // RACK rule: a RETRANSMITTED segment keeps its old (small) sequence
    // number, so sequence-distance to newer SACKs says nothing about it —
    // judge it only by the time window from its own (re)send time.
    const bool seq_lost = !info.retransmitted &&
                          highest_sacked_ >= seq + config_.dupack_threshold;
    if (seq_lost || info.time_sent <= lost_before) {
      lost.push_back(seq);
      sample.lost_bytes += info.bytes;
      ++sample.lost_packets;
      sample.largest_lost_pn = seq;
      sample.largest_lost_sent_time =
          sim::max(sample.largest_lost_sent_time, info.time_sent);
    } else {
      next_loss = sim::min(next_loss, info.time_sent + window);
    }
  }
  loss_timer_ = next_loss;
  if (lost.empty()) return;

  for (std::uint64_t seq : lost) {
    bytes_in_flight_ -= outstanding_.at(seq).bytes;
    outstanding_.erase(seq);
    retransmit_queue_.push_back(seq);
    ++stats_.segments_declared_lost;
  }
  std::sort(retransmit_queue_.begin(), retransmit_queue_.end());
  sample.bytes_in_flight = bytes_in_flight_;
  if (std::getenv("QS_DEBUG_LOSS")) {
    std::fprintf(stderr, "[loss] now=%.1fms n=%lld first_seq=%llu last_seq=%llu largest_sent=%.1fms highest_sacked=%llu window=%.1fms\n",
      now.to_millis(), (long long)sample.lost_packets,
      (unsigned long long)lost.front(), (unsigned long long)lost.back(),
      sample.largest_lost_sent_time.to_millis(), (unsigned long long)highest_sacked_, window.to_millis());
  }
  cc_->on_loss(sample);
}

sim::Time TcpConnection::next_timer_deadline() const {
  sim::Time deadline = loss_timer_;
  if (!outstanding_.empty()) {
    // RTO: conservative lower bound of 200 ms (Linux TCP_RTO_MIN), doubled
    // per backoff.
    sim::Duration rto =
        sim::max(rtt_.pto_interval(config_.max_ack_delay),
                 sim::Duration::millis(200));
    for (int i = 0; i < rto_count_; ++i) rto = rto * 2;
    deadline = sim::min(deadline, outstanding_.begin()->second.time_sent + rto);
  }
  return deadline;
}

void TcpConnection::on_timer(sim::Time now) {
  if (!loss_timer_.is_infinite() && now >= loss_timer_) {
    run_loss_detection(now);
    return;
  }
  if (outstanding_.empty()) return;
  // Retransmission timeout.
  ++rto_count_;
  ++stats_.rto_fired;
  const std::uint64_t seq = outstanding_.begin()->first;
  bytes_in_flight_ -= outstanding_.begin()->second.bytes;
  outstanding_.erase(outstanding_.begin());
  retransmit_queue_.push_front(seq);
  ++stats_.segments_declared_lost;

  cc::LossSample sample;
  sample.now = now;
  sample.lost_bytes = kSegmentSize;  // full-size estimate for the probe
  sample.lost_packets = 1;
  sample.largest_lost_pn = seq;
  sample.largest_lost_sent_time = now;  // forces a fresh congestion event
  sample.bytes_in_flight = bytes_in_flight_;
  sample.persistent_congestion = rto_count_ >= 2;
  cc_->on_loss(sample);
}

}  // namespace quicsteps::tcp
