#include "tcp/tcp_server.hpp"

namespace quicsteps::tcp {

void TcpServer::attempt_send() {
  const sim::Time now = loop_.now();
  int burst = 0;
  while (connection_.has_data_to_send() && !connection_.congestion_blocked()) {
    if (burst >= config_.tsq_burst) {
      // TSQ: wait for TX completion of the enqueued burst before handing
      // the device more segments.
      if (!tsq_timer_.pending()) {
        const sim::Duration drain =
            config_.line_rate.transmit_time(burst * kSegmentSize);
        tsq_timer_ = loop_.schedule_after(drain, [this] { attempt_send(); });
      }
      break;
    }
    net::Packet pkt = connection_.build_segment(now);
    ++burst;
    if (egress_ != nullptr) egress_->deliver(std::move(pkt));
  }
  rearm_loss_timer();
}

void TcpServer::rearm_loss_timer() {
  loss_timer_.cancel();
  const sim::Time deadline = connection_.next_timer_deadline();
  if (deadline.is_infinite()) return;
  loss_timer_ = loop_.schedule_at(deadline, [this] {
    connection_.on_timer(loop_.now());
    rearm_loss_timer();
    attempt_send();
  });
}

}  // namespace quicsteps::tcp
