#include "tcp/tcp_client.hpp"

namespace quicsteps::tcp {

void TcpClient::on_datagram(const net::Packet& pkt) {
  if (pkt.kind != net::PacketKind::kTcpData) return;
  const sim::Time now = loop_.now();

  if (stats_.first_packet_time.is_infinite()) {
    stats_.first_packet_time = now;
  }
  stats_.last_packet_time = now;

  const bool fresh =
      ack_manager_.on_packet_received(pkt.packet_number, true, now);
  if (!fresh) {
    ++stats_.duplicate_segments;
    // TCP acknowledges duplicates immediately — without this, a spurious
    // retransmission (same sequence number) would never be confirmed and
    // the sender would stall at min-cwnd behind RTO backoff.
    send_ack_now(true);
    return;
  } else {
    ++stats_.segments_received;
    if (pkt.stream_offset >= 0) {
      stats_.payload_bytes_received +=
          received_.add(pkt.stream_offset, pkt.stream_length);
    }
    if (complete() && stats_.completion_time.is_infinite()) {
      stats_.completion_time = now;
    }
  }

  if (ack_manager_.ack_due_now()) {
    send_ack_now();
  } else {
    arm_ack_timer();
  }
}

void TcpClient::send_ack_now(bool force) {
  ack_timer_.cancel();
  if (!force && !ack_manager_.has_pending()) return;
  const sim::Time now = loop_.now();

  net::Packet ack;
  ack.id = (std::uint64_t{config_.flow} << 40) + next_ack_id_++;
  ack.flow = config_.flow;
  ack.kind = net::PacketKind::kTcpAck;
  ack.size_bytes = kAckSegmentSize;
  ack.ack = ack_manager_.build_ack(now);
  ++stats_.acks_sent;
  if (ack_egress_ != nullptr) ack_egress_->deliver(std::move(ack));
}

void TcpClient::arm_ack_timer() {
  if (ack_timer_.pending()) return;
  const sim::Time deadline = ack_manager_.ack_deadline();
  if (deadline.is_infinite()) return;
  ack_timer_ = loop_.schedule_at(deadline, [this] { send_ack_now(); });
}

}  // namespace quicsteps::tcp
