// Kernel-side TCP sender driver (the nginx box, as the network sees it).
//
// ACK processing and transmission happen "in the kernel": immediately, with
// no syscall or timer noise. Burstiness is bounded by a TSQ (TCP Small
// Queues) model — at most `tsq_burst` segments sit in the device queue at
// once, and further sends wait for TX-completion clocking. This produces
// the short (<=5 packet) trains Table 1 and Figure 3 report for TCP/TLS.
#pragma once

#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "tcp/tcp_connection.hpp"

namespace quicsteps::tcp {

class TcpServer : public net::PacketSink {
 public:
  struct Config {
    TcpConnection::Config connection;
    int tsq_burst = 3;
    /// Device serialization rate used for TX-completion pacing.
    net::DataRate line_rate = net::DataRate::gigabits_per_second(1);
  };

  TcpServer(sim::EventLoop& loop, Config config, net::PacketSink* egress)
      : loop_(loop), config_(config), connection_(config.connection),
        egress_(egress) {}

  void start() { attempt_send(); }

  void on_datagram(const net::Packet& pkt) {
    if (pkt.kind != net::PacketKind::kTcpAck) return;
    connection_.on_ack_packet(pkt, loop_.now());
    rearm_loss_timer();
    attempt_send();
  }

  /// PacketSink ingress (flow-table routing targets the server directly).
  void deliver(net::Packet pkt) override { on_datagram(pkt); }

  TcpConnection& connection() { return connection_; }
  const TcpConnection& connection() const { return connection_; }

 private:
  void attempt_send();
  void rearm_loss_timer();

  sim::EventLoop& loop_;
  Config config_;
  TcpConnection connection_;
  net::PacketSink* egress_;
  sim::EventHandle tsq_timer_;
  sim::EventHandle loss_timer_;
};

}  // namespace quicsteps::tcp
