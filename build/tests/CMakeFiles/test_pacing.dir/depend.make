# Empty dependencies file for test_pacing.
# This may be replaced when dependencies are built.
