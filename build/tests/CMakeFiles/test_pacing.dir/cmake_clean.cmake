file(REMOVE_RECURSE
  "CMakeFiles/test_pacing.dir/pacing_test.cpp.o"
  "CMakeFiles/test_pacing.dir/pacing_test.cpp.o.d"
  "test_pacing"
  "test_pacing.pdb"
  "test_pacing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
