# Empty dependencies file for test_framework.
# This may be replaced when dependencies are built.
