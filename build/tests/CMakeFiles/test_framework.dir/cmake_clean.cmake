file(REMOVE_RECURSE
  "CMakeFiles/test_framework.dir/framework_test.cpp.o"
  "CMakeFiles/test_framework.dir/framework_test.cpp.o.d"
  "test_framework"
  "test_framework.pdb"
  "test_framework[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_framework.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
