file(REMOVE_RECURSE
  "CMakeFiles/test_quic.dir/quic_test.cpp.o"
  "CMakeFiles/test_quic.dir/quic_test.cpp.o.d"
  "test_quic"
  "test_quic.pdb"
  "test_quic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
