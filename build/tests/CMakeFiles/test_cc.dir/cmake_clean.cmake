file(REMOVE_RECURSE
  "CMakeFiles/test_cc.dir/cc_test.cpp.o"
  "CMakeFiles/test_cc.dir/cc_test.cpp.o.d"
  "test_cc"
  "test_cc.pdb"
  "test_cc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
