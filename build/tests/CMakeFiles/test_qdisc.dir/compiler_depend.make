# Empty compiler generated dependencies file for test_qdisc.
# This may be replaced when dependencies are built.
