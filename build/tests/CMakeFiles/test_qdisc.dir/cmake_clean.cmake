file(REMOVE_RECURSE
  "CMakeFiles/test_qdisc.dir/qdisc_test.cpp.o"
  "CMakeFiles/test_qdisc.dir/qdisc_test.cpp.o.d"
  "test_qdisc"
  "test_qdisc.pdb"
  "test_qdisc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qdisc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
