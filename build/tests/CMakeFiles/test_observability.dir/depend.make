# Empty dependencies file for test_observability.
# This may be replaced when dependencies are built.
