file(REMOVE_RECURSE
  "CMakeFiles/test_observability.dir/observability_test.cpp.o"
  "CMakeFiles/test_observability.dir/observability_test.cpp.o.d"
  "test_observability"
  "test_observability.pdb"
  "test_observability[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_observability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
