# Empty compiler generated dependencies file for test_stacks.
# This may be replaced when dependencies are built.
