file(REMOVE_RECURSE
  "CMakeFiles/test_stacks.dir/stacks_test.cpp.o"
  "CMakeFiles/test_stacks.dir/stacks_test.cpp.o.d"
  "test_stacks"
  "test_stacks.pdb"
  "test_stacks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
