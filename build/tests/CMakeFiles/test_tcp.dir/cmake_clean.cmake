file(REMOVE_RECURSE
  "CMakeFiles/test_tcp.dir/tcp_test.cpp.o"
  "CMakeFiles/test_tcp.dir/tcp_test.cpp.o.d"
  "test_tcp"
  "test_tcp.pdb"
  "test_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
