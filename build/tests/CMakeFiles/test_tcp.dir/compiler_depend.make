# Empty compiler generated dependencies file for test_tcp.
# This may be replaced when dependencies are built.
