# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_qdisc[1]_include.cmake")
include("/root/repo/build/tests/test_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_cc[1]_include.cmake")
include("/root/repo/build/tests/test_pacing[1]_include.cmake")
include("/root/repo/build/tests/test_quic[1]_include.cmake")
include("/root/repo/build/tests/test_tcp[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_stacks[1]_include.cmake")
include("/root/repo/build/tests/test_framework[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_observability[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
