# Empty dependencies file for bench_ext_ack_frequency.
# This may be replaced when dependencies are built.
