file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_ack_frequency.dir/bench_ext_ack_frequency.cpp.o"
  "CMakeFiles/bench_ext_ack_frequency.dir/bench_ext_ack_frequency.cpp.o.d"
  "bench_ext_ack_frequency"
  "bench_ext_ack_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_ack_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
