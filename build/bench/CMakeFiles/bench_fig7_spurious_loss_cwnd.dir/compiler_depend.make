# Empty compiler generated dependencies file for bench_fig7_spurious_loss_cwnd.
# This may be replaced when dependencies are built.
