file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_spurious_loss_cwnd.dir/bench_fig7_spurious_loss_cwnd.cpp.o"
  "CMakeFiles/bench_fig7_spurious_loss_cwnd.dir/bench_fig7_spurious_loss_cwnd.cpp.o.d"
  "bench_fig7_spurious_loss_cwnd"
  "bench_fig7_spurious_loss_cwnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_spurious_loss_cwnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
