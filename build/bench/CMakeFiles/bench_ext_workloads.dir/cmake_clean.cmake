file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_workloads.dir/bench_ext_workloads.cpp.o"
  "CMakeFiles/bench_ext_workloads.dir/bench_ext_workloads.cpp.o.d"
  "bench_ext_workloads"
  "bench_ext_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
