# Empty dependencies file for bench_ext_workloads.
# This may be replaced when dependencies are built.
