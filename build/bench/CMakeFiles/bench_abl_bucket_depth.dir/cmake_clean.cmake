file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_bucket_depth.dir/bench_abl_bucket_depth.cpp.o"
  "CMakeFiles/bench_abl_bucket_depth.dir/bench_abl_bucket_depth.cpp.o.d"
  "bench_abl_bucket_depth"
  "bench_abl_bucket_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_bucket_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
