# Empty dependencies file for bench_abl_bucket_depth.
# This may be replaced when dependencies are built.
