file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_baseline_goodput.dir/bench_tab1_baseline_goodput.cpp.o"
  "CMakeFiles/bench_tab1_baseline_goodput.dir/bench_tab1_baseline_goodput.cpp.o.d"
  "bench_tab1_baseline_goodput"
  "bench_tab1_baseline_goodput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_baseline_goodput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
