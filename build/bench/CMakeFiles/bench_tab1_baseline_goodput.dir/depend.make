# Empty dependencies file for bench_tab1_baseline_goodput.
# This may be replaced when dependencies are built.
