file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_batching.dir/bench_ext_batching.cpp.o"
  "CMakeFiles/bench_ext_batching.dir/bench_ext_batching.cpp.o.d"
  "bench_ext_batching"
  "bench_ext_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
