# Empty dependencies file for bench_ext_batching.
# This may be replaced when dependencies are built.
