
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_batching.cpp" "bench/CMakeFiles/bench_ext_batching.dir/bench_ext_batching.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_batching.dir/bench_ext_batching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_framework.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_stacks.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_pacing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
