# Empty compiler generated dependencies file for bench_fig5_fq_quiche.
# This may be replaced when dependencies are built.
