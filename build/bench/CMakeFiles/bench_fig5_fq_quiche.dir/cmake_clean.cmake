file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_fq_quiche.dir/bench_fig5_fq_quiche.cpp.o"
  "CMakeFiles/bench_fig5_fq_quiche.dir/bench_fig5_fq_quiche.cpp.o.d"
  "bench_fig5_fq_quiche"
  "bench_fig5_fq_quiche.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_fq_quiche.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
