file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_gso_budget.dir/bench_abl_gso_budget.cpp.o"
  "CMakeFiles/bench_abl_gso_budget.dir/bench_abl_gso_budget.cpp.o.d"
  "bench_abl_gso_budget"
  "bench_abl_gso_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_gso_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
