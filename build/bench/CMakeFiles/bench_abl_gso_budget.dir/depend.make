# Empty dependencies file for bench_abl_gso_budget.
# This may be replaced when dependencies are built.
