# Empty compiler generated dependencies file for bench_ext_competing_flows.
# This may be replaced when dependencies are built.
