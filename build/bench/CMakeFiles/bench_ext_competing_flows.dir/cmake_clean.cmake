file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_competing_flows.dir/bench_ext_competing_flows.cpp.o"
  "CMakeFiles/bench_ext_competing_flows.dir/bench_ext_competing_flows.cpp.o.d"
  "bench_ext_competing_flows"
  "bench_ext_competing_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_competing_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
