# Empty compiler generated dependencies file for bench_tab2_gso_goodput.
# This may be replaced when dependencies are built.
