# Empty dependencies file for bench_fig2_baseline_gaps.
# This may be replaced when dependencies are built.
