file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_baseline_gaps.dir/bench_fig2_baseline_gaps.cpp.o"
  "CMakeFiles/bench_fig2_baseline_gaps.dir/bench_fig2_baseline_gaps.cpp.o.d"
  "bench_fig2_baseline_gaps"
  "bench_fig2_baseline_gaps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_baseline_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
