file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_etf_delta.dir/bench_abl_etf_delta.cpp.o"
  "CMakeFiles/bench_abl_etf_delta.dir/bench_abl_etf_delta.cpp.o.d"
  "bench_abl_etf_delta"
  "bench_abl_etf_delta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_etf_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
