# Empty compiler generated dependencies file for bench_abl_etf_delta.
# This may be replaced when dependencies are built.
