# Empty compiler generated dependencies file for bench_ext_network_sweep.
# This may be replaced when dependencies are built.
