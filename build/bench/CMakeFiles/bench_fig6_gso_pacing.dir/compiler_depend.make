# Empty compiler generated dependencies file for bench_fig6_gso_pacing.
# This may be replaced when dependencies are built.
