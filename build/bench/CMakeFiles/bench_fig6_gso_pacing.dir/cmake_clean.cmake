file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_gso_pacing.dir/bench_fig6_gso_pacing.cpp.o"
  "CMakeFiles/bench_fig6_gso_pacing.dir/bench_fig6_gso_pacing.cpp.o.d"
  "bench_fig6_gso_pacing"
  "bench_fig6_gso_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_gso_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
