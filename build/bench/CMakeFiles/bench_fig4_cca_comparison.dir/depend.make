# Empty dependencies file for bench_fig4_cca_comparison.
# This may be replaced when dependencies are built.
