file(REMOVE_RECURSE
  "CMakeFiles/bench_sec44_precision.dir/bench_sec44_precision.cpp.o"
  "CMakeFiles/bench_sec44_precision.dir/bench_sec44_precision.cpp.o.d"
  "bench_sec44_precision"
  "bench_sec44_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec44_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
