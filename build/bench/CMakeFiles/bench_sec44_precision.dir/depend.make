# Empty dependencies file for bench_sec44_precision.
# This may be replaced when dependencies are built.
