file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_impairments.dir/bench_ext_impairments.cpp.o"
  "CMakeFiles/bench_ext_impairments.dir/bench_ext_impairments.cpp.o.d"
  "bench_ext_impairments"
  "bench_ext_impairments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_impairments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
