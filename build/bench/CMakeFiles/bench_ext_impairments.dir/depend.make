# Empty dependencies file for bench_ext_impairments.
# This may be replaced when dependencies are built.
