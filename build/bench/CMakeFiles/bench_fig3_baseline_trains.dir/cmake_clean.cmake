file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_baseline_trains.dir/bench_fig3_baseline_trains.cpp.o"
  "CMakeFiles/bench_fig3_baseline_trains.dir/bench_fig3_baseline_trains.cpp.o.d"
  "bench_fig3_baseline_trains"
  "bench_fig3_baseline_trains.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_baseline_trains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
