# Empty compiler generated dependencies file for bench_fig3_baseline_trains.
# This may be replaced when dependencies are built.
