file(REMOVE_RECURSE
  "libqs_quic.a"
)
