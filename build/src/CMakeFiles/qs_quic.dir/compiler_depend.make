# Empty compiler generated dependencies file for qs_quic.
# This may be replaced when dependencies are built.
