
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quic/ack_manager.cpp" "src/CMakeFiles/qs_quic.dir/quic/ack_manager.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/ack_manager.cpp.o.d"
  "/root/repo/src/quic/app_source.cpp" "src/CMakeFiles/qs_quic.dir/quic/app_source.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/app_source.cpp.o.d"
  "/root/repo/src/quic/client.cpp" "src/CMakeFiles/qs_quic.dir/quic/client.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/client.cpp.o.d"
  "/root/repo/src/quic/connection.cpp" "src/CMakeFiles/qs_quic.dir/quic/connection.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/connection.cpp.o.d"
  "/root/repo/src/quic/frames.cpp" "src/CMakeFiles/qs_quic.dir/quic/frames.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/frames.cpp.o.d"
  "/root/repo/src/quic/loss_detection.cpp" "src/CMakeFiles/qs_quic.dir/quic/loss_detection.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/loss_detection.cpp.o.d"
  "/root/repo/src/quic/qlog.cpp" "src/CMakeFiles/qs_quic.dir/quic/qlog.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/qlog.cpp.o.d"
  "/root/repo/src/quic/rtt_estimator.cpp" "src/CMakeFiles/qs_quic.dir/quic/rtt_estimator.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/rtt_estimator.cpp.o.d"
  "/root/repo/src/quic/sent_packet_map.cpp" "src/CMakeFiles/qs_quic.dir/quic/sent_packet_map.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/sent_packet_map.cpp.o.d"
  "/root/repo/src/quic/server.cpp" "src/CMakeFiles/qs_quic.dir/quic/server.cpp.o" "gcc" "src/CMakeFiles/qs_quic.dir/quic/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_pacing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
