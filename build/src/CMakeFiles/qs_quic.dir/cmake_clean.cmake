file(REMOVE_RECURSE
  "CMakeFiles/qs_quic.dir/quic/ack_manager.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/ack_manager.cpp.o.d"
  "CMakeFiles/qs_quic.dir/quic/app_source.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/app_source.cpp.o.d"
  "CMakeFiles/qs_quic.dir/quic/client.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/client.cpp.o.d"
  "CMakeFiles/qs_quic.dir/quic/connection.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/connection.cpp.o.d"
  "CMakeFiles/qs_quic.dir/quic/frames.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/frames.cpp.o.d"
  "CMakeFiles/qs_quic.dir/quic/loss_detection.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/loss_detection.cpp.o.d"
  "CMakeFiles/qs_quic.dir/quic/qlog.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/qlog.cpp.o.d"
  "CMakeFiles/qs_quic.dir/quic/rtt_estimator.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/rtt_estimator.cpp.o.d"
  "CMakeFiles/qs_quic.dir/quic/sent_packet_map.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/sent_packet_map.cpp.o.d"
  "CMakeFiles/qs_quic.dir/quic/server.cpp.o"
  "CMakeFiles/qs_quic.dir/quic/server.cpp.o.d"
  "libqs_quic.a"
  "libqs_quic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_quic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
