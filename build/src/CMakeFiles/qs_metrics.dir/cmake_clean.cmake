file(REMOVE_RECURSE
  "CMakeFiles/qs_metrics.dir/metrics/gap_analyzer.cpp.o"
  "CMakeFiles/qs_metrics.dir/metrics/gap_analyzer.cpp.o.d"
  "CMakeFiles/qs_metrics.dir/metrics/goodput.cpp.o"
  "CMakeFiles/qs_metrics.dir/metrics/goodput.cpp.o.d"
  "CMakeFiles/qs_metrics.dir/metrics/precision.cpp.o"
  "CMakeFiles/qs_metrics.dir/metrics/precision.cpp.o.d"
  "CMakeFiles/qs_metrics.dir/metrics/stats.cpp.o"
  "CMakeFiles/qs_metrics.dir/metrics/stats.cpp.o.d"
  "CMakeFiles/qs_metrics.dir/metrics/train_analyzer.cpp.o"
  "CMakeFiles/qs_metrics.dir/metrics/train_analyzer.cpp.o.d"
  "libqs_metrics.a"
  "libqs_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
