
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/gap_analyzer.cpp" "src/CMakeFiles/qs_metrics.dir/metrics/gap_analyzer.cpp.o" "gcc" "src/CMakeFiles/qs_metrics.dir/metrics/gap_analyzer.cpp.o.d"
  "/root/repo/src/metrics/goodput.cpp" "src/CMakeFiles/qs_metrics.dir/metrics/goodput.cpp.o" "gcc" "src/CMakeFiles/qs_metrics.dir/metrics/goodput.cpp.o.d"
  "/root/repo/src/metrics/precision.cpp" "src/CMakeFiles/qs_metrics.dir/metrics/precision.cpp.o" "gcc" "src/CMakeFiles/qs_metrics.dir/metrics/precision.cpp.o.d"
  "/root/repo/src/metrics/stats.cpp" "src/CMakeFiles/qs_metrics.dir/metrics/stats.cpp.o" "gcc" "src/CMakeFiles/qs_metrics.dir/metrics/stats.cpp.o.d"
  "/root/repo/src/metrics/train_analyzer.cpp" "src/CMakeFiles/qs_metrics.dir/metrics/train_analyzer.cpp.o" "gcc" "src/CMakeFiles/qs_metrics.dir/metrics/train_analyzer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
