# Empty compiler generated dependencies file for qs_metrics.
# This may be replaced when dependencies are built.
