file(REMOVE_RECURSE
  "libqs_metrics.a"
)
