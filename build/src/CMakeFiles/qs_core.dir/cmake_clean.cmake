file(REMOVE_RECURSE
  "CMakeFiles/qs_core.dir/core/quicsteps.cpp.o"
  "CMakeFiles/qs_core.dir/core/quicsteps.cpp.o.d"
  "libqs_core.a"
  "libqs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
