file(REMOVE_RECURSE
  "libqs_core.a"
)
