# Empty compiler generated dependencies file for qs_core.
# This may be replaced when dependencies are built.
