file(REMOVE_RECURSE
  "libqs_stacks.a"
)
