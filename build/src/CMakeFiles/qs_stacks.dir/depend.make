# Empty dependencies file for qs_stacks.
# This may be replaced when dependencies are built.
