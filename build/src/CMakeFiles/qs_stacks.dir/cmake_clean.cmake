file(REMOVE_RECURSE
  "CMakeFiles/qs_stacks.dir/stacks/event_loop_model.cpp.o"
  "CMakeFiles/qs_stacks.dir/stacks/event_loop_model.cpp.o.d"
  "CMakeFiles/qs_stacks.dir/stacks/ngtcp2_model.cpp.o"
  "CMakeFiles/qs_stacks.dir/stacks/ngtcp2_model.cpp.o.d"
  "CMakeFiles/qs_stacks.dir/stacks/picoquic_model.cpp.o"
  "CMakeFiles/qs_stacks.dir/stacks/picoquic_model.cpp.o.d"
  "CMakeFiles/qs_stacks.dir/stacks/quiche_model.cpp.o"
  "CMakeFiles/qs_stacks.dir/stacks/quiche_model.cpp.o.d"
  "CMakeFiles/qs_stacks.dir/stacks/stack_profile.cpp.o"
  "CMakeFiles/qs_stacks.dir/stacks/stack_profile.cpp.o.d"
  "libqs_stacks.a"
  "libqs_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
