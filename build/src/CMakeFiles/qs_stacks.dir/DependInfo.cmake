
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stacks/event_loop_model.cpp" "src/CMakeFiles/qs_stacks.dir/stacks/event_loop_model.cpp.o" "gcc" "src/CMakeFiles/qs_stacks.dir/stacks/event_loop_model.cpp.o.d"
  "/root/repo/src/stacks/ngtcp2_model.cpp" "src/CMakeFiles/qs_stacks.dir/stacks/ngtcp2_model.cpp.o" "gcc" "src/CMakeFiles/qs_stacks.dir/stacks/ngtcp2_model.cpp.o.d"
  "/root/repo/src/stacks/picoquic_model.cpp" "src/CMakeFiles/qs_stacks.dir/stacks/picoquic_model.cpp.o" "gcc" "src/CMakeFiles/qs_stacks.dir/stacks/picoquic_model.cpp.o.d"
  "/root/repo/src/stacks/quiche_model.cpp" "src/CMakeFiles/qs_stacks.dir/stacks/quiche_model.cpp.o" "gcc" "src/CMakeFiles/qs_stacks.dir/stacks/quiche_model.cpp.o.d"
  "/root/repo/src/stacks/stack_profile.cpp" "src/CMakeFiles/qs_stacks.dir/stacks/stack_profile.cpp.o" "gcc" "src/CMakeFiles/qs_stacks.dir/stacks/stack_profile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qs_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_pacing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
