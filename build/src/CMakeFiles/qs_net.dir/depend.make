# Empty dependencies file for qs_net.
# This may be replaced when dependencies are built.
