file(REMOVE_RECURSE
  "libqs_net.a"
)
