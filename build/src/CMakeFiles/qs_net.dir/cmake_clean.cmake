file(REMOVE_RECURSE
  "CMakeFiles/qs_net.dir/net/counters.cpp.o"
  "CMakeFiles/qs_net.dir/net/counters.cpp.o.d"
  "CMakeFiles/qs_net.dir/net/data_rate.cpp.o"
  "CMakeFiles/qs_net.dir/net/data_rate.cpp.o.d"
  "CMakeFiles/qs_net.dir/net/link.cpp.o"
  "CMakeFiles/qs_net.dir/net/link.cpp.o.d"
  "CMakeFiles/qs_net.dir/net/packet.cpp.o"
  "CMakeFiles/qs_net.dir/net/packet.cpp.o.d"
  "CMakeFiles/qs_net.dir/net/wire_tap.cpp.o"
  "CMakeFiles/qs_net.dir/net/wire_tap.cpp.o.d"
  "libqs_net.a"
  "libqs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
