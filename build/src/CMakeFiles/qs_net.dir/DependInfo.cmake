
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/counters.cpp" "src/CMakeFiles/qs_net.dir/net/counters.cpp.o" "gcc" "src/CMakeFiles/qs_net.dir/net/counters.cpp.o.d"
  "/root/repo/src/net/data_rate.cpp" "src/CMakeFiles/qs_net.dir/net/data_rate.cpp.o" "gcc" "src/CMakeFiles/qs_net.dir/net/data_rate.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/qs_net.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/qs_net.dir/net/link.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/qs_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/qs_net.dir/net/packet.cpp.o.d"
  "/root/repo/src/net/wire_tap.cpp" "src/CMakeFiles/qs_net.dir/net/wire_tap.cpp.o" "gcc" "src/CMakeFiles/qs_net.dir/net/wire_tap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
