file(REMOVE_RECURSE
  "libqs_pacing.a"
)
