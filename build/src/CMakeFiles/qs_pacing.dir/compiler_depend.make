# Empty compiler generated dependencies file for qs_pacing.
# This may be replaced when dependencies are built.
