file(REMOVE_RECURSE
  "CMakeFiles/qs_pacing.dir/pacing/interval_pacer.cpp.o"
  "CMakeFiles/qs_pacing.dir/pacing/interval_pacer.cpp.o.d"
  "CMakeFiles/qs_pacing.dir/pacing/leaky_bucket_pacer.cpp.o"
  "CMakeFiles/qs_pacing.dir/pacing/leaky_bucket_pacer.cpp.o.d"
  "CMakeFiles/qs_pacing.dir/pacing/pacer.cpp.o"
  "CMakeFiles/qs_pacing.dir/pacing/pacer.cpp.o.d"
  "libqs_pacing.a"
  "libqs_pacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_pacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
