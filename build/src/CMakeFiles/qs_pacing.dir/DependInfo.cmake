
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pacing/interval_pacer.cpp" "src/CMakeFiles/qs_pacing.dir/pacing/interval_pacer.cpp.o" "gcc" "src/CMakeFiles/qs_pacing.dir/pacing/interval_pacer.cpp.o.d"
  "/root/repo/src/pacing/leaky_bucket_pacer.cpp" "src/CMakeFiles/qs_pacing.dir/pacing/leaky_bucket_pacer.cpp.o" "gcc" "src/CMakeFiles/qs_pacing.dir/pacing/leaky_bucket_pacer.cpp.o.d"
  "/root/repo/src/pacing/pacer.cpp" "src/CMakeFiles/qs_pacing.dir/pacing/pacer.cpp.o" "gcc" "src/CMakeFiles/qs_pacing.dir/pacing/pacer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
