# Empty compiler generated dependencies file for qs_cc.
# This may be replaced when dependencies are built.
