file(REMOVE_RECURSE
  "libqs_cc.a"
)
