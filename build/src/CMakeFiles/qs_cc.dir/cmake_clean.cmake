file(REMOVE_RECURSE
  "CMakeFiles/qs_cc.dir/cc/bbr.cpp.o"
  "CMakeFiles/qs_cc.dir/cc/bbr.cpp.o.d"
  "CMakeFiles/qs_cc.dir/cc/cc_factory.cpp.o"
  "CMakeFiles/qs_cc.dir/cc/cc_factory.cpp.o.d"
  "CMakeFiles/qs_cc.dir/cc/congestion_controller.cpp.o"
  "CMakeFiles/qs_cc.dir/cc/congestion_controller.cpp.o.d"
  "CMakeFiles/qs_cc.dir/cc/cubic.cpp.o"
  "CMakeFiles/qs_cc.dir/cc/cubic.cpp.o.d"
  "CMakeFiles/qs_cc.dir/cc/hystart_pp.cpp.o"
  "CMakeFiles/qs_cc.dir/cc/hystart_pp.cpp.o.d"
  "CMakeFiles/qs_cc.dir/cc/new_reno.cpp.o"
  "CMakeFiles/qs_cc.dir/cc/new_reno.cpp.o.d"
  "libqs_cc.a"
  "libqs_cc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_cc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
