
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/bbr.cpp" "src/CMakeFiles/qs_cc.dir/cc/bbr.cpp.o" "gcc" "src/CMakeFiles/qs_cc.dir/cc/bbr.cpp.o.d"
  "/root/repo/src/cc/cc_factory.cpp" "src/CMakeFiles/qs_cc.dir/cc/cc_factory.cpp.o" "gcc" "src/CMakeFiles/qs_cc.dir/cc/cc_factory.cpp.o.d"
  "/root/repo/src/cc/congestion_controller.cpp" "src/CMakeFiles/qs_cc.dir/cc/congestion_controller.cpp.o" "gcc" "src/CMakeFiles/qs_cc.dir/cc/congestion_controller.cpp.o.d"
  "/root/repo/src/cc/cubic.cpp" "src/CMakeFiles/qs_cc.dir/cc/cubic.cpp.o" "gcc" "src/CMakeFiles/qs_cc.dir/cc/cubic.cpp.o.d"
  "/root/repo/src/cc/hystart_pp.cpp" "src/CMakeFiles/qs_cc.dir/cc/hystart_pp.cpp.o" "gcc" "src/CMakeFiles/qs_cc.dir/cc/hystart_pp.cpp.o.d"
  "/root/repo/src/cc/new_reno.cpp" "src/CMakeFiles/qs_cc.dir/cc/new_reno.cpp.o" "gcc" "src/CMakeFiles/qs_cc.dir/cc/new_reno.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
