file(REMOVE_RECURSE
  "CMakeFiles/qs_sim.dir/sim/event_loop.cpp.o"
  "CMakeFiles/qs_sim.dir/sim/event_loop.cpp.o.d"
  "CMakeFiles/qs_sim.dir/sim/random.cpp.o"
  "CMakeFiles/qs_sim.dir/sim/random.cpp.o.d"
  "CMakeFiles/qs_sim.dir/sim/time.cpp.o"
  "CMakeFiles/qs_sim.dir/sim/time.cpp.o.d"
  "libqs_sim.a"
  "libqs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
