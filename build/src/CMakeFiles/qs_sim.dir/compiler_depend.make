# Empty compiler generated dependencies file for qs_sim.
# This may be replaced when dependencies are built.
