file(REMOVE_RECURSE
  "libqs_sim.a"
)
