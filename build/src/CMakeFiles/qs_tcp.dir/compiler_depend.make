# Empty compiler generated dependencies file for qs_tcp.
# This may be replaced when dependencies are built.
