
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/tcp_client.cpp" "src/CMakeFiles/qs_tcp.dir/tcp/tcp_client.cpp.o" "gcc" "src/CMakeFiles/qs_tcp.dir/tcp/tcp_client.cpp.o.d"
  "/root/repo/src/tcp/tcp_connection.cpp" "src/CMakeFiles/qs_tcp.dir/tcp/tcp_connection.cpp.o" "gcc" "src/CMakeFiles/qs_tcp.dir/tcp/tcp_connection.cpp.o.d"
  "/root/repo/src/tcp/tcp_server.cpp" "src/CMakeFiles/qs_tcp.dir/tcp/tcp_server.cpp.o" "gcc" "src/CMakeFiles/qs_tcp.dir/tcp/tcp_server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/qs_quic.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_cc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_pacing.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/qs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
