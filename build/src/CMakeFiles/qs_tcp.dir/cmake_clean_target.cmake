file(REMOVE_RECURSE
  "libqs_tcp.a"
)
