file(REMOVE_RECURSE
  "CMakeFiles/qs_tcp.dir/tcp/tcp_client.cpp.o"
  "CMakeFiles/qs_tcp.dir/tcp/tcp_client.cpp.o.d"
  "CMakeFiles/qs_tcp.dir/tcp/tcp_connection.cpp.o"
  "CMakeFiles/qs_tcp.dir/tcp/tcp_connection.cpp.o.d"
  "CMakeFiles/qs_tcp.dir/tcp/tcp_server.cpp.o"
  "CMakeFiles/qs_tcp.dir/tcp/tcp_server.cpp.o.d"
  "libqs_tcp.a"
  "libqs_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
